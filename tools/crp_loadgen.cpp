// crp_loadgen — load-test harness for the crp serve daemon.
//
// Two modes against a running daemon (boot one with `crp serve
// --socket PATH`):
//
//   crp_loadgen --socket PATH [--jobs N] [--clients C] [--cells K]
//               [--out bench.json] [--shutdown 1]
//       Throughput mode (default): C client connections, each with its
//       own session, together submitting N bmgen jobs; records per-job
//       latency and writes {jobs, jobsPerSec, latencyMsP50,
//       latencyMsP99, ...} — the BENCH_serve.json payload.
//
//   crp_loadgen --socket PATH --chain 1 [--jobs N] [--clients C]
//       Validation mode (the CI smoke leg): each chain runs
//       bmgen(+perturb) -> run (streamed) -> eco (streamed) -> report
//       and checks the streamed events and final documents — iteration
//       events arrive in order with timeline + heatmap deltas, the
//       final frames carry fingerprints, and report's fingerprint is
//       bit-identical to eco's.  Exits nonzero on the first violation.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "util/file_io.hpp"

namespace {

using namespace crp;

struct Args {
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[token.substr(2)] = argv[++i];
      }
    }
    return args;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

double elapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// The final frame of a call stream must be ok; returns it.
const obs::Json& requireOk(const std::vector<obs::Json>& frames,
                           const char* op) {
  const obs::Json& last = frames.back();
  if (!last.at("ok").asBool()) {
    throw std::runtime_error(std::string(op) + " failed: " +
                             last.at("error").asString());
  }
  return last;
}

std::uint64_t openSession(serve::Client& client, const std::string& name) {
  obs::Json request = obs::Json::object();
  request.set("op", "open_session");
  request.set("name", name);
  const auto frames = client.call(request);
  return static_cast<std::uint64_t>(
      requireOk(frames, "open_session").at("session").asInt());
}

obs::Json bmgenRequest(std::uint64_t session, int cells,
                       std::uint64_t seed, bool perturb) {
  obs::Json request = obs::Json::object();
  request.set("op", "bmgen");
  request.set("session", session);
  request.set("cells", cells);
  request.set("seed", seed);
  if (perturb) {
    obs::Json p = obs::Json::object();
    p.set("seed", 7);
    p.set("frac", 0.05);
    request.set("perturb", std::move(p));
  }
  return request;
}

// ---- throughput mode ------------------------------------------------------

struct ClientResult {
  std::vector<double> latenciesMs;
  std::string error;
};

void throughputClient(const std::string& socketPath, int clientIndex,
                      int jobs, int cells, ClientResult& out) {
  try {
    serve::Client client(socketPath);
    const std::uint64_t session =
        openSession(client, "load" + std::to_string(clientIndex));
    out.latenciesMs.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
      const auto start = std::chrono::steady_clock::now();
      const std::uint64_t seed =
          static_cast<std::uint64_t>(clientIndex) * 100003u + j + 1;
      const auto frames =
          client.call(bmgenRequest(session, cells, seed, false));
      requireOk(frames, "bmgen");
      out.latenciesMs.push_back(elapsedMs(start));
    }
    obs::Json closeReq = obs::Json::object();
    closeReq.set("op", "close_session");
    closeReq.set("session", session);
    requireOk(client.call(closeReq), "close_session");
  } catch (const std::exception& e) {
    out.error = e.what();
  }
}

/// Microsecond bucket layout for the latency histogram: powers of two
/// from 1 us to ~16.8 s — the same shape the serve daemon uses for its
/// per-op histograms, so loadgen percentiles and server-side
/// percentiles come from one estimator (obs::Histogram::quantile)
/// instead of two ad-hoc implementations.
std::vector<std::uint64_t> latencyBoundsMicros() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= (1ull << 24); b <<= 1) bounds.push_back(b);
  return bounds;
}

int runThroughput(const Args& args, const std::string& socketPath) {
  const int jobs = static_cast<int>(args.number("jobs", 1000));
  const int clients =
      std::max(1, static_cast<int>(args.number("clients", 8)));
  const int cells = static_cast<int>(args.number("cells", 150));

  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto wallStart = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    // Spread the job count so the totals add up to `jobs` exactly.
    const int share = jobs / clients + (c < jobs % clients ? 1 : 0);
    threads.emplace_back(throughputClient, socketPath, c, share, cells,
                         std::ref(results[static_cast<std::size_t>(c)]));
  }
  for (std::thread& t : threads) t.join();
  const double wallSeconds = elapsedMs(wallStart) / 1000.0;

  obs::Histogram latency(latencyBoundsMicros());
  double sum = 0.0;
  double maxMs = 0.0;
  std::size_t count = 0;
  for (const ClientResult& result : results) {
    if (!result.error.empty()) {
      std::cerr << "client error: " << result.error << "\n";
      return 1;
    }
    for (const double ms : result.latenciesMs) {
      latency.record(static_cast<std::uint64_t>(ms * 1000.0 + 0.5));
      sum += ms;
      maxMs = std::max(maxMs, ms);
      ++count;
    }
  }

  obs::Json doc = obs::Json::object();
  doc.set("schemaVersion", 1);
  doc.set("bench", "serve");
  doc.set("mode", "throughput");
  doc.set("jobs", static_cast<std::int64_t>(count));
  doc.set("clients", clients);
  doc.set("cellsPerJob", cells);
  doc.set("wallSeconds", wallSeconds);
  doc.set("jobsPerSec",
          wallSeconds > 0.0 ? static_cast<double>(count) / wallSeconds
                            : 0.0);
  // Bucket-interpolated percentiles (micros -> ms); mean and max stay
  // exact from the raw samples.
  doc.set("latencyMsP50", latency.quantile(0.50) / 1000.0);
  doc.set("latencyMsP99", latency.quantile(0.99) / 1000.0);
  doc.set("latencyMsMean",
          count == 0 ? 0.0 : sum / static_cast<double>(count));
  doc.set("latencyMsMax", maxMs);

  const auto outIt = args.flags.find("out");
  if (outIt != args.flags.end()) {
    std::string error;
    if (!util::writeFileAtomic(outIt->second, doc.dump(2) + "\n", &error)) {
      std::cerr << "error: cannot write " << outIt->second << ": " << error
                << "\n";
      return 1;
    }
  }
  std::cout << doc.dump(2) << "\n";
  return 0;
}

// ---- chain (validation) mode ----------------------------------------------

void expect(bool condition, const std::string& what) {
  if (!condition) throw std::runtime_error("validation failed: " + what);
}

/// One bmgen -> run -> eco -> report chain with event validation.
void validateChain(serve::Client& client, std::uint64_t session,
                   std::uint64_t seed) {
  const auto bmgenFrames =
      client.call(bmgenRequest(session, 220, seed, /*perturb=*/false));
  const obs::Json& bmgenResult = requireOk(bmgenFrames, "bmgen");
  expect(bmgenResult.at("cells").asInt() > 0, "bmgen reported no cells");

  const int k = 2;
  obs::Json runReq = obs::Json::object();
  runReq.set("op", "run");
  runReq.set("session", session);
  runReq.set("k", k);
  runReq.set("snapshots", 1);
  {
    // The eco job needs a delta valid against the post-run placement.
    obs::Json p = obs::Json::object();
    p.set("seed", 7);
    p.set("frac", 0.05);
    runReq.set("perturb", std::move(p));
  }
  const auto runFrames = client.call(runReq);
  const obs::Json& runResult = requireOk(runFrames, "run");
  expect(static_cast<int>(runFrames.size()) == k + 1,
         "run streamed " + std::to_string(runFrames.size() - 1) +
             " iteration events, wanted " + std::to_string(k));
  for (int i = 0; i < k; ++i) {
    const obs::Json& event = runFrames[static_cast<std::size_t>(i)];
    expect(event.at("event").asString() == "iteration",
           "frame " + std::to_string(i) + " is not an iteration event");
    expect(static_cast<int>(event.at("iteration").asInt()) == i,
           "iteration events out of order");
    expect(event.find("timeline") != nullptr,
           "iteration event lacks its timeline record");
    expect(event.find("heatmapDelta") != nullptr,
           "iteration event lacks its heatmap delta");
  }
  expect(runResult.find("fingerprint") != nullptr,
         "run result lacks a fingerprint");
  expect(runResult.find("report") != nullptr, "run result lacks the report");
  expect(runResult.find("ecoDelta") != nullptr,
         "run result lacks the requested eco delta");

  obs::Json ecoReq = obs::Json::object();
  ecoReq.set("op", "eco");
  ecoReq.set("session", session);
  ecoReq.set("delta", runResult.at("ecoDelta"));
  ecoReq.set("k", 1);
  const auto ecoFrames = client.call(ecoReq);
  const obs::Json& ecoResult = requireOk(ecoFrames, "eco");
  expect(ecoResult.find("eco") != nullptr, "eco result lacks eco stats");
  expect(ecoResult.find("fingerprint") != nullptr,
         "eco result lacks a fingerprint");

  obs::Json reportReq = obs::Json::object();
  reportReq.set("op", "report");
  reportReq.set("session", session);
  const auto reportFrames = client.call(reportReq);
  const obs::Json& reportResult = requireOk(reportFrames, "report");
  expect(reportResult.at("fingerprint") == ecoResult.at("fingerprint"),
         "report fingerprint drifted from the eco result's");
}

int runChains(const Args& args, const std::string& socketPath) {
  const int chains = static_cast<int>(args.number("jobs", 2));
  const int clients =
      std::max(1, static_cast<int>(args.number("clients", 2)));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    const int share = chains / clients + (c < chains % clients ? 1 : 0);
    threads.emplace_back([&, c, share] {
      try {
        serve::Client client(socketPath);
        const std::uint64_t session =
            openSession(client, "chain" + std::to_string(c));
        for (int j = 0; j < share; ++j) {
          validateChain(client, session,
                        static_cast<std::uint64_t>(c) * 1000u + j + 1);
        }
      } catch (const std::exception& e) {
        std::cerr << "chain client " << c << ": " << e.what() << "\n";
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (failures.load() != 0) return 1;
  std::cout << "chain validation: " << chains << " chains over " << clients
            << " clients OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  const auto socketIt = args.flags.find("socket");
  if (socketIt == args.flags.end()) {
    std::cerr << "usage: crp_loadgen --socket PATH [--jobs N] [--clients C] "
                 "[--cells K] [--out bench.json] [--chain 1] "
                 "[--shutdown 1]\n";
    return 2;
  }
  try {
    const int status = args.number("chain", 0) > 0
                           ? runChains(args, socketIt->second)
                           : runThroughput(args, socketIt->second);
    if (args.number("shutdown", 0) > 0) {
      serve::Client client(socketIt->second);
      obs::Json request = obs::Json::object();
      request.set("op", "shutdown");
      client.call(request);
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
