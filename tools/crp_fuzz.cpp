// crp_fuzz — seeded differential fuzzing of the CR&P pipeline
// (docs/checking.md).
//
//   crp_fuzz [--seeds N] [--seed-start S] [--k K]
//            [--min-cells N] [--max-cells N] [--router-threads N]
//            [--level off|phase|paranoid] [--artifacts DIR]
//            [--no-minimize] [--eco 1] [--macros N] [--multi-row F]
//            [--tiles R,C]
//       Run a campaign over seeds [S, S+N).  Exit 0 when every seed
//       passes (clean audits, bit-identical fingerprints across the
//       paired configurations), 1 otherwise.  --eco 1 appends the
//       eco-vs-scratch paired leg to every seed.  --macros N draws
//       [1,N] fixed macro blocks per seed; --multi-row F draws a
//       multi-row cell fraction from [0.05,F] (docs/scenarios.md).
//       --tiles R,C appends the tiled-RxC paired leg (docs/tiling.md):
//       the chip-tile decomposition at the rt-N thread count, required
//       to match the serial fingerprints exactly.
//
//   crp_fuzz --replay SEED [--cells N] [--k K] [...]
//       Re-run one seed, optionally at a minimized size — the command
//       a failed campaign prints and writes into its artifacts.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "check/fuzz.hpp"

namespace {

using namespace crp;

/// Minimal --flag value parser (same shape as crp_cli's).
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[token.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return flags.count(key) != 0; }
};

void printSeedFailure(const check::SeedResult& result) {
  std::cerr << "seed " << result.seed << " FAILED ("
            << result.minimizedCells << " cells, k="
            << result.minimizedIterations << "): " << result.failure << "\n";
  for (const check::LegResult& leg : result.legs) {
    std::cerr << "  leg " << leg.name << ": "
              << (leg.ok ? "ok" : "failed") << ", state fingerprint "
              << leg.stateFingerprint << "\n";
    if (!leg.error.empty()) std::cerr << "    " << leg.error << "\n";
  }
  if (!result.replayCommand.empty()) {
    std::cerr << "  replay: " << result.replayCommand << "\n";
  }
  if (!result.artifactPath.empty()) {
    std::cerr << "  artifact: " << result.artifactPath << "\n";
  }
  if (!result.flightRecorderPath.empty()) {
    std::cerr << "  flight recorder: " << result.flightRecorderPath << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  // Flags that take a value but arrived without one land in positional;
  // anything positional is a usage error for this tool.
  if (!args.positional.empty()) {
    std::cerr << "unexpected argument: " << args.positional.front() << "\n"
              << "usage: crp_fuzz [--seeds N] [--seed-start S] [--k K]\n"
              << "                [--min-cells N] [--max-cells N]\n"
              << "                [--router-threads N] [--artifacts DIR]\n"
              << "                [--level off|phase|paranoid]\n"
              << "                [--macros N] [--multi-row F] [--tiles R,C]\n"
              << "                [--no-minimize 1] [--eco 1] [--replay SEED "
                 "[--cells N]]\n";
    return 2;
  }

  check::FuzzOptions options;
  options.seedStart = static_cast<std::uint64_t>(args.number("seed-start", 1));
  options.seedCount = static_cast<int>(args.number("seeds", 25));
  options.iterations = static_cast<int>(args.number("k", 2));
  options.minCells = static_cast<int>(args.number("min-cells", 80));
  options.maxCells = static_cast<int>(args.number("max-cells", 220));
  options.routerThreadsVariant =
      static_cast<int>(args.number("router-threads", 4));
  options.minimize = !args.has("no-minimize");
  options.ecoLeg = args.number("eco", 0) != 0;
  options.macroCount = static_cast<int>(args.number("macros", 0));
  options.multiRowFrac = args.number("multi-row", 0.0);
  if (args.has("tiles")) {
    const std::string& value = args.flags.at("tiles");
    const std::size_t comma = value.find(',');
    if (comma == std::string::npos) {
      std::cerr << "bad --tiles '" << value << "' (want R,C)\n";
      return 2;
    }
    options.tileRows = std::atoi(value.c_str());
    options.tileCols = std::atoi(value.substr(comma + 1).c_str());
  }
  if (args.has("artifacts")) options.artifactDir = args.flags.at("artifacts");
  if (args.has("level")) {
    const auto level = check::auditLevelFromString(args.flags.at("level"));
    if (!level) {
      std::cerr << "unknown --level " << args.flags.at("level")
                << " (want off|phase|paranoid)\n";
      return 2;
    }
    options.auditLevel = *level;
  }

  check::FuzzCampaign campaign(options);

  if (args.has("replay")) {
    const auto seed = static_cast<std::uint64_t>(args.number("replay", 0));
    const int cells = static_cast<int>(args.number("cells", 0));
    const check::SeedResult result =
        campaign.replaySeed(seed, cells, options.iterations);
    if (result.passed) {
      std::cout << "seed " << seed << " passed ("
                << result.minimizedCells << " cells, k="
                << result.minimizedIterations << ", fingerprint "
                << result.legs.front().stateFingerprint << ")\n";
      return 0;
    }
    printSeedFailure(result);
    return 1;
  }

  const check::CampaignReport report = campaign.run();
  std::cout << report.summary() << "\n";
  for (const check::SeedResult& seed : report.seeds) {
    if (!seed.passed) printSeedFailure(seed);
  }
  return report.clean() ? 0 : 1;
}
