// crp — command-line front end to the CR&P toolkit.
//
// Subcommands (all file formats are the LEF/DEF/guide subset the
// library reads and writes):
//
//   crp generate out.lef out.def [--cells N] [--util U] [--hotspots H]
//                [--seed S] [--perturb SEED,FRAC]
//       Generate a synthetic ISPD-2018-style benchmark.  --perturb also
//       derives an EcoDelta touching FRAC of the cells and writes it
//       next to out.def as <stem>.eco.json — the paired input for
//       `crp eco`.
//
//   crp eco in.lef in.def delta.json out.def out.guide [--k N]
//           [--base-k N] [--halo G] [--seed S] [--router-threads N]
//           [--audit off|phase|paranoid] [--compare-scratch 1]
//           [--report-out report.json]
//       Incremental ECO (docs/eco.md): global-route the input, apply
//       the JSON delta transactionally, patch only the dirty gcell
//       region, and run --k restricted CR&P iterations.  --base-k runs
//       full iterations before the delta (modelling an already-
//       optimized input).  --compare-scratch re-runs the same delta
//       from scratch and prints the wall-clock speedup.
//
//   crp route in.lef in.def out.guide
//       Global-route and write the route guides.
//
//   crp run in.lef in.def out.def out.guide [--k N] [--gamma G]
//           [--router-threads N] [--snapshots 0|1]
//           [--trace-out trace.json] [--report-out report.json]
//           [--heatmaps-out series.json] [--flight-out dump.json]
//           [--flight-dir DIR] [--metrics-out metrics.prom]
//           [--ledger ledger.jsonl]
//       Global route + CR&P iterations; writes the improved placement
//       and guides (the paper's Fig. 1 interface).  --trace-out dumps
//       a Chrome trace_event file (load in chrome://tracing or
//       https://ui.perfetto.dev); --report-out dumps the versioned
//       RunReport JSON (docs/observability.md).  --snapshots 1 arms the
//       spatial tier (k+1 congestion heatmaps + the RunReport
//       timeline); --heatmaps-out writes the delta-encoded series,
//       --flight-out dumps the flight-recorder event ring, and
//       --flight-dir makes a dirty in-flow audit dump the ring there
//       before aborting.  Render any of these with crp_report.
//       --metrics-out writes the run's metric registry as Prometheus
//       text exposition; --ledger appends a run-ledger entry (QoR,
//       phase times, provenance) to the given JSONL file — gate it
//       later with `crp_report ledger --check`.
//
//   crp detail in.lef in.def in.guide
//       Detailed-route against existing guides and print the ISPD-2018
//       metrics.
//
//   crp flow in.lef in.def [--k N]
//       Full flow with before/after comparison (GR -> DR baseline,
//       then GR -> CR&P -> DR).
//
//   crp congestion in.lef in.def [--layer L]
//       Global-route and print an ASCII congestion heatmap.
//
//   crp suite outdir [--scale S]
//       Export the crp_test1..10 suite as LEF/DEF pairs.
//
//   crp serve --socket PATH [--workers N] [--max-sessions N]
//             [--verbose 1] [--ledger ledger.jsonl]
//       Run the CR&P daemon (docs/serve.md): a unix-socket job server
//       with resident per-session state.  Stops cleanly on SIGTERM /
//       SIGINT or a client shutdown op.  --ledger appends one run-
//       ledger entry per completed run/eco job.
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bmgen/generator.hpp"
#include "bmgen/perturb.hpp"
#include "bmgen/suite.hpp"
#include "check/audit.hpp"
#include "crp/framework.hpp"
#include "db/eco.hpp"
#include "db/legality.hpp"
#include "dplace/detailed_placer.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/congestion_report.hpp"
#include "groute/global_router.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/guide_io.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "obs/run_ledger.hpp"
#include "obs/run_report.hpp"
#include "serve/server.hpp"
#include "util/file_io.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"
#include "viz/svg_writer.hpp"

namespace {

using namespace crp;

/// Minimal --flag value parser: positional args + "--key value" pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv, int firstArg) {
    Args args;
    for (int i = firstArg; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[token.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

db::Database loadDesign(const std::string& lefPath,
                        const std::string& defPath) {
  auto [tech, lib] = lefdef::parseLefFile(lefPath);
  db::Design design = lefdef::parseDefFile(defPath, tech, lib);
  return db::Database(std::move(tech), std::move(lib), std::move(design));
}

void printMetrics(const droute::DetailedRouteStats& stats,
                  const db::Database& db) {
  const auto metrics = eval::collectMetrics(stats);
  std::cout << "wirelength (dbu): " << metrics.wirelengthDbu << "\n"
            << "vias:             " << metrics.viaCount << "\n"
            << "shorts:           " << metrics.shorts << "\n"
            << "spacing DRVs:     " << metrics.spacing << "\n"
            << "min-area DRVs:    " << metrics.minArea << "\n"
            << "open nets:        " << metrics.openNets << "\n"
            << "contest score:    " << eval::score(metrics, db) << "\n";
}

int cmdGenerate(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: crp generate out.lef out.def [--cells N] "
                 "[--util U] [--hotspots H] [--seed S]\n";
    return 2;
  }
  bmgen::BenchmarkSpec spec;
  spec.name = std::filesystem::path(args.positional[1]).stem().string();
  spec.targetCells = static_cast<int>(args.number("cells", 1000));
  spec.utilization = args.number("util", 0.85);
  spec.hotspots = static_cast<int>(args.number("hotspots", 2));
  spec.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const auto db = bmgen::generateBenchmark(spec);
  lefdef::writeLefFile(args.positional[0], db.tech(), db.library());
  lefdef::writeDefFile(args.positional[1], db);
  std::cout << "generated " << db.numCells() << " cells / " << db.numNets()
            << " nets -> " << args.positional[0] << ", "
            << args.positional[1] << "\n";
  const auto perturbIt = args.flags.find("perturb");
  if (perturbIt != args.flags.end()) {
    // --perturb SEED,FRAC: the paired-benchmark emission (docs/eco.md).
    bmgen::PerturbOptions perturb;
    const std::string& value = perturbIt->second;
    const std::size_t comma = value.find(',');
    perturb.seed = static_cast<std::uint64_t>(
        std::atof(value.substr(0, comma).c_str()));
    if (comma != std::string::npos) {
      perturb.frac = std::atof(value.substr(comma + 1).c_str());
    }
    const db::EcoDelta delta = bmgen::perturbDesign(db, perturb);
    std::filesystem::path deltaPath(args.positional[1]);
    deltaPath.replace_extension(".eco.json");
    std::string writeError;
    if (!util::writeFileAtomic(deltaPath.string(),
                               db::ecoDeltaToJson(delta).dump(2) + "\n",
                               &writeError)) {
      std::cerr << "error: cannot write " << deltaPath.string() << ": "
                << writeError << "\n";
      return 1;
    }
    std::cout << "eco delta (" << delta.size() << " edits, seed "
              << perturb.seed << ", frac " << perturb.frac << ") -> "
              << deltaPath.string() << "\n";
  }
  return 0;
}

int writeObsArtifacts(const Args& args, core::CrpFramework& framework);
int appendLedgerFromCli(const Args& args, const std::string& kind,
                        const db::Database& db,
                        core::CrpFramework& framework,
                        const core::CrpOptions& options);

int cmdEco(const Args& args) {
  if (args.positional.size() < 5) {
    std::cerr << "usage: crp eco in.lef in.def delta.json out.def out.guide "
                 "[--k N] [--base-k N] [--halo G] [--seed S] "
                 "[--router-threads N] [--audit off|phase|paranoid] "
                 "[--compare-scratch 1] [--report-out report.json] "
                 "[--metrics-out metrics.prom] [--ledger ledger.jsonl]\n";
    return 2;
  }
  obs::setEnabled(args.number("obs", 1) > 0);
  auto db = loadDesign(args.positional[0], args.positional[1]);
  if (!db::isPlacementLegal(db)) {
    std::cerr << "error: input placement is not legal\n";
    return 1;
  }
  db::EcoDelta delta;
  {
    std::ifstream in(args.positional[2]);
    if (!in) {
      std::cerr << "error: cannot read " << args.positional[2] << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    delta = db::ecoDeltaFromJson(obs::Json::parse(text.str()));
  }

  const int routerThreads =
      static_cast<int>(args.number("router-threads", 0));
  groute::GlobalRouterOptions routerOptions;
  routerOptions.routerThreads = routerThreads;
  groute::GlobalRouter router(db, routerOptions);
  router.run();

  core::CrpOptions options;
  options.iterations = static_cast<int>(args.number("base-k", 0));
  options.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  options.routerThreads = routerThreads;
  if (args.flags.count("audit") != 0) {
    const auto level = check::auditLevelFromString(args.flags.at("audit"));
    if (!level) {
      std::cerr << "unknown --audit level '" << args.flags.at("audit")
                << "' (want off|phase|paranoid)\n";
      return 2;
    }
    options.auditLevel = *level;
  }
  core::CrpFramework framework(db, router, options);
  if (options.iterations > 0) framework.run();

  // Fork the pre-delta state only when the scratch comparison needs it.
  const bool compareScratch = args.number("compare-scratch", 0) > 0;
  std::optional<db::Database> scratchDb;
  if (compareScratch) scratchDb = db;

  core::EcoOptions eco;
  eco.iterations = static_cast<int>(args.number("k", 1));
  eco.haloGCells = static_cast<int>(args.number("halo", eco.haloGCells));
  const core::EcoReport report = framework.runEco(delta, eco);
  std::cout << "eco: " << delta.size() << " edits -> " << report.dirtyNets
            << " dirty nets, " << report.scopeCells << " scope cells, "
            << report.cacheEvictions << " cache evictions, "
            << report.crp.totalMoves << " moves, "
            << report.crp.totalReroutes << " reroutes in "
            << report.totalSeconds << " s; placement legal: "
            << (db::isPlacementLegal(db) ? "yes" : "NO") << "\n";
  lefdef::writeDefFile(args.positional[3], db);
  lefdef::writeGuidesFile(args.positional[4], db, router.buildGuides());
  std::cout << "outputs -> " << args.positional[3] << ", "
            << args.positional[4] << "\n";

  if (compareScratch) {
    util::Stopwatch scratchTimer;
    db::applyEcoDelta(*scratchDb, delta);
    groute::GlobalRouter scratchRouter(*scratchDb, routerOptions);
    scratchRouter.run();
    core::CrpOptions scratchOptions = options;
    scratchOptions.iterations = eco.iterations;
    core::CrpFramework scratchFramework(*scratchDb, scratchRouter,
                                        scratchOptions);
    scratchFramework.run();
    const double scratchSeconds = scratchTimer.seconds();
    const auto ecoStats = router.stats();
    const auto scratchStats = scratchRouter.stats();
    std::cout << "scratch: " << scratchSeconds << " s ("
              << (report.totalSeconds > 0.0
                      ? scratchSeconds / report.totalSeconds
                      : 0.0)
              << "x speedup); wl eco=" << ecoStats.wirelengthDbu
              << " scratch=" << scratchStats.wirelengthDbu
              << ", vias eco=" << ecoStats.vias
              << " scratch=" << scratchStats.vias << "\n";
  }
  if (const int rc = appendLedgerFromCli(args, "eco", db, framework, options);
      rc != 0) {
    return rc;
  }
  return writeObsArtifacts(args, framework);
}

int cmdRoute(const Args& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: crp route in.lef in.def out.guide\n";
    return 2;
  }
  const auto db = loadDesign(args.positional[0], args.positional[1]);
  groute::GlobalRouter router(db);
  const auto stats = router.run();
  lefdef::writeGuidesFile(args.positional[2], db, router.buildGuides());
  std::cout << "global route: wl=" << stats.wirelengthDbu
            << " dbu, vias=" << stats.vias << ", open nets=" << stats.openNets
            << ", overflowed edges=" << stats.overflowedEdges << "\n"
            << "guides -> " << args.positional[2] << "\n";
  return 0;
}

/// Prints the human-readable telemetry.  All phase names and counters
/// come from the RunReport itself — no literals re-typed here.
void printCrpTelemetry(core::CrpFramework& framework) {
  std::cout << obs::formatRunReport(framework.runReport());
}

/// Writes the Chrome trace and/or RunReport JSON files when the
/// corresponding --trace-out / --report-out flags were given.
int writeObsArtifacts(const Args& args, core::CrpFramework& framework) {
  // Every artifact goes through writeFileAtomic: a full disk or bad
  // path exits nonzero instead of leaving a truncated JSON that
  // downstream tooling would half-parse.
  std::string writeError;
  const auto traceIt = args.flags.find("trace-out");
  if (traceIt != args.flags.end()) {
    const bool ok = util::writeFileAtomic(
        traceIt->second,
        [&framework](std::ostream& os) -> bool {
          framework.obsContext().tracer().writeChromeTrace(os);
          return os.good();
        },
        &writeError);
    if (!ok) {
      std::cerr << "error: cannot write " << traceIt->second << ": "
                << writeError << "\n";
      return 1;
    }
    std::cout << "trace -> " << traceIt->second << "\n";
  }
  const auto reportIt = args.flags.find("report-out");
  if (reportIt != args.flags.end()) {
    if (!util::writeFileAtomic(reportIt->second,
                               framework.runReport().toJson().dump(2) + "\n",
                               &writeError)) {
      std::cerr << "error: cannot write " << reportIt->second << ": "
                << writeError << "\n";
      return 1;
    }
    std::cout << "report -> " << reportIt->second << "\n";
  }
  const auto heatmapsIt = args.flags.find("heatmaps-out");
  if (heatmapsIt != args.flags.end()) {
    if (!util::writeFileAtomic(heatmapsIt->second,
                               framework.heatmaps().toJson().dump(2) + "\n",
                               &writeError)) {
      std::cerr << "error: cannot write " << heatmapsIt->second << ": "
                << writeError << "\n";
      return 1;
    }
    std::cout << "heatmaps -> " << heatmapsIt->second << " ("
              << framework.heatmaps().size() << " snapshot(s))\n";
  }
  const auto flightIt = args.flags.find("flight-out");
  if (flightIt != args.flags.end()) {
    obs::Json trigger = obs::Json::object();
    trigger.set("source", "crp_cli");
    trigger.set("context", "flight-out");
    if (!framework.obsContext().flightRecorder().dumpToFile(
            flightIt->second, std::move(trigger))) {
      std::cerr << "error: cannot write " << flightIt->second << "\n";
      return 1;
    }
    std::cout << "flight recorder -> " << flightIt->second << "\n";
  }
  const auto metricsIt = args.flags.find("metrics-out");
  if (metricsIt != args.flags.end()) {
    // Prometheus text exposition of the run's metrics registry
    // (docs/observability.md "Operational telemetry").
    const std::string text = obs::renderPrometheus(
        framework.obsContext().metrics().snapshot(), "crp");
    if (!util::writeFileAtomic(metricsIt->second, text, &writeError)) {
      std::cerr << "error: cannot write " << metricsIt->second << ": "
                << writeError << "\n";
      return 1;
    }
    std::cout << "metrics -> " << metricsIt->second << "\n";
  }
  return 0;
}

/// --ledger FILE: appends one run-ledger entry (docs/observability.md)
/// for the finished flow.  `kind` is "run" or "eco".
int appendLedgerFromCli(const Args& args, const std::string& kind,
                        const db::Database& db,
                        core::CrpFramework& framework,
                        const core::CrpOptions& options) {
  const auto ledgerIt = args.flags.find("ledger");
  if (ledgerIt == args.flags.end()) return 0;
  obs::RunLedgerEntry entry = obs::makeRunLedgerEntry(framework.runReport());
  entry.kind = kind;
  entry.design = db.design().name;
  entry.optionsDigest =
      obs::fnv1a64Hex(core::optionsFingerprintJson(options).dump());
  entry.tileRows = options.tileRows;
  entry.tileCols = options.tileCols;
  obs::RunLedger ledger(ledgerIt->second);
  std::string error;
  if (!ledger.append(entry, &error)) {
    std::cerr << "error: ledger append to " << ledgerIt->second
              << " failed: " << error << "\n";
    return 1;
  }
  std::cout << "ledger += " << kind << " entry (" << entry.design << ", "
            << entry.fingerprintDigest << ") -> " << ledgerIt->second << "\n";
  return 0;
}

int cmdRun(const Args& args) {
  if (args.positional.size() < 4) {
    std::cerr << "usage: crp run in.lef in.def out.def out.guide [--k N] "
                 "[--gamma G] [--seed S] [--threads N] "
                 "[--router-threads N] [--cache 0|1] "
                 "[--delta 0|1] [--obs 0|1] "
                 "[--tiles R,C] [--tile-halo N] "
                 "[--audit off|phase|paranoid] "
                 "[--snapshots 0|1] "
                 "[--trace-out trace.json] "
                 "[--report-out report.json] "
                 "[--heatmaps-out series.json] "
                 "[--flight-out dump.json] [--flight-dir DIR] "
                 "[--metrics-out metrics.prom] [--ledger ledger.jsonl]\n";
    return 2;
  }
  obs::setEnabled(args.number("obs", 1) > 0);
  auto db = loadDesign(args.positional[0], args.positional[1]);
  if (!db::isPlacementLegal(db)) {
    std::cerr << "error: input placement is not legal\n";
    return 1;
  }
  // --router-threads N parallelizes the RRR rounds and the UD-phase
  // reroutes (1 = serial, 0 = hardware); value-exact, see DESIGN.md §6.
  const int routerThreads =
      static_cast<int>(args.number("router-threads", 0));
  groute::GlobalRouterOptions routerOptions;
  routerOptions.routerThreads = routerThreads;
  groute::GlobalRouter router(db, routerOptions);
  router.run();
  core::CrpOptions options;
  options.iterations = static_cast<int>(args.number("k", 10));
  options.gamma = args.number("gamma", options.gamma);
  options.seed = static_cast<std::uint64_t>(args.number("seed", 1));
  options.threads = static_cast<int>(args.number("threads", 0));
  options.routerThreads = routerThreads;
  options.pricingCache = args.number("cache", 1) > 0;
  options.deltaPricing = args.number("delta", 1) > 0;
  // --tiles R,C shards the UD reroutes, GCP windows, and ECC pricing
  // over an R x C chip-tile grid (docs/tiling.md); --tile-halo widens
  // the per-tile halo (-1 = conflict margin).  Value-exact: results
  // are bit-identical for any grid at any thread count.
  const auto tilesIt = args.flags.find("tiles");
  if (tilesIt != args.flags.end()) {
    const std::string& value = tilesIt->second;
    const std::size_t comma = value.find(',');
    if (comma == std::string::npos) {
      std::cerr << "bad --tiles '" << value << "' (want R,C)\n";
      return 2;
    }
    options.tileRows = std::atoi(value.c_str());
    options.tileCols = std::atoi(value.substr(comma + 1).c_str());
  }
  options.haloGcells = static_cast<int>(args.number("tile-halo", -1));
  // --audit arms the in-flow invariant audits (docs/checking.md); a
  // violation aborts the run with the structured failure list.
  if (args.flags.count("audit") != 0) {
    const auto level = check::auditLevelFromString(args.flags.at("audit"));
    if (!level) {
      std::cerr << "unknown --audit level '" << args.flags.at("audit")
                << "' (want off|phase|paranoid)\n";
      return 2;
    }
    options.auditLevel = *level;
  }
  // --snapshots arms the spatial observability tier: one heatmap after
  // GR plus one per iteration, and the RunReport timeline.
  options.snapshots = args.number("snapshots", 0) > 0;
  if (args.flags.count("flight-dir") != 0) {
    options.flightRecorderDir = args.flags.at("flight-dir");
  }
  core::CrpFramework framework(db, router, options);
  const auto report = framework.run();
  std::cout << "CR&P: " << options.iterations << " iterations, "
            << report.totalMoves << " moves, " << report.totalReroutes
            << " reroutes; placement legal: "
            << (db::isPlacementLegal(db) ? "yes" : "NO") << "\n";
  printCrpTelemetry(framework);
  lefdef::writeDefFile(args.positional[2], db);
  lefdef::writeGuidesFile(args.positional[3], db, router.buildGuides());
  std::cout << "outputs -> " << args.positional[2] << ", "
            << args.positional[3] << "\n";
  if (const int rc = appendLedgerFromCli(args, "run", db, framework, options);
      rc != 0) {
    return rc;
  }
  return writeObsArtifacts(args, framework);
}

int cmdDetail(const Args& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: crp detail in.lef in.def in.guide\n";
    return 2;
  }
  const auto db = loadDesign(args.positional[0], args.positional[1]);
  const auto guides = lefdef::parseGuidesFile(args.positional[2], db.tech());
  droute::DetailedRouter detailed(db, guides);
  printMetrics(detailed.run(), db);
  return 0;
}

int cmdFlow(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: crp flow in.lef in.def [--k N] [--obs 0|1] "
                 "[--trace-out trace.json] [--report-out report.json]\n";
    return 2;
  }
  obs::setEnabled(args.number("obs", 1) > 0);
  auto db = loadDesign(args.positional[0], args.positional[1]);
  groute::GlobalRouter router(db);
  router.run();
  std::cout << "--- baseline (GR + DR) ---\n";
  droute::DetailedRouter before(db, router.buildGuides());
  const auto beforeStats = before.run();
  printMetrics(beforeStats, db);

  core::CrpOptions options;
  options.iterations = static_cast<int>(args.number("k", 10));
  core::CrpFramework framework(db, router, options);
  framework.run();
  std::cout << "--- after CR&P (k=" << options.iterations << ") ---\n";
  printCrpTelemetry(framework);
  droute::DetailedRouter after(db, router.buildGuides());
  const auto afterStats = after.run();
  printMetrics(afterStats, db);

  std::cout << "--- improvement ---\n";
  std::cout << "wirelength: "
            << eval::improvementPercent(
                   static_cast<double>(beforeStats.wirelengthDbu),
                   static_cast<double>(afterStats.wirelengthDbu))
            << "%\n"
            << "vias:       "
            << eval::improvementPercent(
                   static_cast<double>(beforeStats.viaCount),
                   static_cast<double>(afterStats.viaCount))
            << "%\n";
  return writeObsArtifacts(args, framework);
}

int cmdCongestion(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: crp congestion in.lef in.def [--layer L]\n";
    return 2;
  }
  const auto db = loadDesign(args.positional[0], args.positional[1]);
  groute::GlobalRouter router(db);
  router.run();
  const int layer = static_cast<int>(args.number("layer", -1));
  const auto map = groute::buildCongestionMap(router.graph(), layer);
  std::cout << "congestion map (" << map.width << "x" << map.height
            << "), mean=" << map.mean() << ", peak=" << map.peak()
            << ", hotspots=" << map.hotspotCount() << "\n";
  groute::printHeatmap(std::cout, map);
  return 0;
}

int cmdPlace(const Args& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: crp place in.lef in.def out.def [--passes N]\n";
    return 2;
  }
  auto db = loadDesign(args.positional[0], args.positional[1]);
  dplace::DetailedPlacerOptions options;
  options.passes = static_cast<int>(args.number("passes", 2));
  dplace::DetailedPlacer placer(db, options);
  const auto report = placer.run();
  std::cout << "HPWL " << report.hpwlBefore << " -> " << report.hpwlAfter
            << " (" << report.improvementPercent() << "% better), "
            << report.swaps << " swaps, " << report.relocations
            << " relocations, " << report.reorders << " reorders\n";
  if (!db::isPlacementLegal(db)) {
    std::cerr << "internal error: placer broke legality\n";
    return 1;
  }
  lefdef::writeDefFile(args.positional[2], db);
  std::cout << "placement -> " << args.positional[2] << "\n";
  return 0;
}

int cmdSvg(const Args& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: crp svg in.lef in.def out.svg [--routes 1] "
                 "[--congestion 1]\n";
    return 2;
  }
  const auto db = loadDesign(args.positional[0], args.positional[1]);
  viz::SvgOptions options;
  options.drawRoutes = args.number("routes", 1) > 0;
  options.drawCongestion = args.number("congestion", 0) > 0;
  if (options.drawRoutes || options.drawCongestion) {
    groute::GlobalRouter router(db);
    router.run();
    viz::writeSvgFile(args.positional[2], db, &router, options);
  } else {
    viz::writeSvgFile(args.positional[2], db, nullptr, options);
  }
  std::cout << "svg -> " << args.positional[2] << "\n";
  return 0;
}

int cmdSuite(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp suite outdir [--scale S]\n";
    return 2;
  }
  const double scale = args.number("scale", 40.0);
  std::filesystem::create_directories(args.positional[0]);
  for (const auto& entry : bmgen::ispdLikeSuite(scale)) {
    const auto db = bmgen::generateBenchmark(entry.spec);
    // The generator promises legal output; hold it to that before the
    // files exist (a broken suite entry otherwise only surfaces when a
    // downstream run trips over it).  bmgen itself cannot link the
    // audit library (check depends on bmgen's consumers), so the
    // gatekeeping lives here in the exporter.
    const check::DbAuditor auditor(db);
    const check::AuditReport audit = auditor.auditAll();
    if (!audit.clean()) {
      std::cerr << entry.name << ": generated design fails its audit\n"
                << audit.summary() << "\n";
      return 1;
    }
    lefdef::writeLefFile(args.positional[0] + "/" + entry.name + ".lef",
                         db.tech(), db.library());
    lefdef::writeDefFile(args.positional[0] + "/" + entry.name + ".def", db);
    std::cout << entry.name << ": " << db.numCells() << " cells\n";
  }
  return 0;
}

/// The daemon under SIGTERM/SIGINT: the handler may only call the
/// async-signal-safe requestStop(), so the live server is published
/// through a plain pointer the handler reads.
serve::Server* g_server = nullptr;

void handleStopSignal(int) {
  if (g_server != nullptr) g_server->requestStop();
}

int cmdServe(const Args& args) {
  const auto socketIt = args.flags.find("socket");
  if (socketIt == args.flags.end()) {
    std::cerr << "usage: crp serve --socket PATH [--workers N] "
                 "[--max-sessions N] [--verbose 1] [--ledger FILE]\n";
    return 2;
  }
  serve::ServeOptions options;
  options.socketPath = socketIt->second;
  options.workers = static_cast<int>(args.number("workers", 0));
  options.maxSessions =
      static_cast<std::size_t>(args.number("max-sessions", 64));
  options.verbose = args.number("verbose", 0) > 0;
  const auto ledgerIt = args.flags.find("ledger");
  if (ledgerIt != args.flags.end()) options.ledgerPath = ledgerIt->second;

  serve::Server server(options);
  server.start();
  g_server = &server;
  struct sigaction action {};
  action.sa_handler = handleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  std::cout << "crp serve: ready on " << server.socketPath() << std::endl;
  server.serve();
  g_server = nullptr;
  std::cout << "crp serve: clean shutdown (" << server.jobsCompleted()
            << " jobs)" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: crp <generate|route|run|eco|detail|flow|place|svg|"
                 "congestion|suite|serve> ...\n";
    return 2;
  }
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (command == "generate") return cmdGenerate(args);
    if (command == "route") return cmdRoute(args);
    if (command == "run") return cmdRun(args);
    if (command == "eco") return cmdEco(args);
    if (command == "detail") return cmdDetail(args);
    if (command == "flow") return cmdFlow(args);
    if (command == "congestion") return cmdCongestion(args);
    if (command == "place") return cmdPlace(args);
    if (command == "svg") return cmdSvg(args);
    if (command == "suite") return cmdSuite(args);
    if (command == "serve") return cmdServe(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
