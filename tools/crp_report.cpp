// crp_report — render the spatial-observability artifacts the flow
// emits (docs/observability.md) without re-running anything.
//
//   crp_report heatmap series.json [--index I] [--layer L]
//              [--ppm out.ppm]
//       Load a delta-encoded HeatmapSeries (crp run --heatmaps-out),
//       reconstruct snapshot I (default: the latest) and print its
//       totals plus the ASCII utilisation map; --ppm additionally
//       writes a P3 image.  --layer restricts to one routing layer.
//
//   crp_report timeline report.json [--csv out.csv]
//       Load a RunReport JSON (crp run --report-out with --snapshots 1)
//       and print the per-iteration flow timeline as an aligned table;
//       --csv writes the machine-readable form.
//
//   crp_report flight dump.json [--layer L]
//       Load a flight-recorder dump (crp run --flight-out, a dirty
//       audit's --flight-dir artifact, or a crp_fuzz *_flight.json) and
//       print the trigger, the recent event ring, and the attached
//       heatmap when one was captured.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "obs/timeline.hpp"

namespace {

using namespace crp;

/// Minimal --flag value parser (same shape as crp_cli's).
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv, int firstArg) {
    Args args;
    for (int i = firstArg; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[token.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

obs::Json loadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

void printSnapshotSummary(const obs::HeatmapSnapshot& snapshot) {
  std::cout << "snapshot '" << snapshot.label << "' (iteration "
            << snapshot.iteration << "): " << snapshot.width << "x"
            << snapshot.height << " gcells, " << snapshot.numLayers
            << " layers, " << snapshot.planes.size() << " planes\n"
            << "  overflow: total=" << std::fixed << std::setprecision(2)
            << snapshot.totalOverflow << ", max=" << snapshot.maxOverflow
            << ", edges=" << snapshot.overflowedEdges << "\n";
}

int cmdHeatmap(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report heatmap series.json [--index I] "
                 "[--layer L] [--ppm out.ppm]\n";
    return 2;
  }
  const obs::HeatmapSeries series =
      obs::HeatmapSeries::fromJson(loadJsonFile(args.positional[0]));
  if (series.empty()) {
    std::cerr << "error: series holds no snapshots (was the run made with "
                 "--snapshots 1 and --obs 1?)\n";
    return 1;
  }
  const int layer = static_cast<int>(args.number("layer", -1));
  const auto index = static_cast<std::size_t>(args.number(
      "index", static_cast<double>(series.size() - 1)));
  if (index >= series.size()) {
    std::cerr << "error: --index " << index << " out of range (series has "
              << series.size() << " snapshot(s))\n";
    return 1;
  }
  const obs::HeatmapSnapshot snapshot = series.snapshot(index);
  std::cout << "series: " << series.size() << " snapshot(s)\n";
  printSnapshotSummary(snapshot);
  obs::renderHeatmapAscii(std::cout, snapshot, layer);

  const auto ppmIt = args.flags.find("ppm");
  if (ppmIt != args.flags.end()) {
    std::ofstream out(ppmIt->second);
    if (!out) {
      std::cerr << "error: cannot write " << ppmIt->second << "\n";
      return 1;
    }
    obs::writeHeatmapPpm(out, snapshot, layer);
    std::cout << "ppm -> " << ppmIt->second << "\n";
  }
  return 0;
}

int cmdTimeline(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report timeline report.json [--csv out.csv]\n";
    return 2;
  }
  const obs::RunReport report =
      obs::RunReport::fromJson(loadJsonFile(args.positional[0]));
  if (report.timeline.empty()) {
    // Not an error: a report without the spatial tier is a normal
    // artifact.  Explain what is (and is not) in it instead of failing
    // or emitting a header-only CSV.
    std::cout << "timeline: no records in this report ("
              << report.iterationStats.size()
              << " iteration(s) of scalar stats present)\n"
              << "hint: the timeline is captured when the run is made "
                 "with --snapshots 1 and --obs 1\n";
    if (args.flags.count("csv") != 0) {
      std::cout << "csv: skipped (no timeline records)\n";
    }
    return 0;
  }
  std::cout << obs::formatTimeline(report.timeline);

  const auto csvIt = args.flags.find("csv");
  if (csvIt != args.flags.end()) {
    std::ofstream out(csvIt->second);
    if (!out) {
      std::cerr << "error: cannot write " << csvIt->second << "\n";
      return 1;
    }
    out << obs::timelineCsv(report.timeline);
    std::cout << "csv -> " << csvIt->second << "\n";
  }
  return 0;
}

int cmdFlight(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report flight dump.json [--layer L]\n";
    return 2;
  }
  const obs::Json dump = loadJsonFile(args.positional[0]);
  const std::int64_t version = dump.at("schemaVersion").asInt();
  if (version != obs::FlightRecorder::kSchemaVersion) {
    std::cerr << "error: unsupported flight dump schemaVersion " << version
              << "\n";
    return 1;
  }

  std::cout << "trigger: " << dump.at("trigger").dump() << "\n";
  const obs::Json& events = dump.at("events");
  std::cout << "events: " << events.asArray().size() << " held of "
            << dump.at("eventsRecorded").asUint() << " recorded (capacity "
            << dump.at("capacity").asInt() << ")\n";
  for (const obs::Json& event : events.asArray()) {
    std::cout << "  " << std::setw(6) << event.at("seq").asUint() << "  "
              << event.at("category").asString() << "/"
              << event.at("label").asString() << "  "
              << event.at("value").asInt() << "\n";
  }

  const obs::Json* heatmap = dump.find("latestHeatmap");
  if (heatmap == nullptr || !heatmap->isObject()) {
    std::cout << "no heatmap attached\n";
    return 0;
  }
  const obs::HeatmapSnapshot snapshot = obs::HeatmapSnapshot::fromJson(*heatmap);
  printSnapshotSummary(snapshot);
  obs::renderHeatmapAscii(std::cout, snapshot,
                          static_cast<int>(args.number("layer", -1)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: crp_report <heatmap|timeline|flight> ...\n";
    return 2;
  }
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (command == "heatmap") return cmdHeatmap(args);
    if (command == "timeline") return cmdTimeline(args);
    if (command == "flight") return cmdFlight(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
