// crp_report — render the spatial-observability artifacts the flow
// emits (docs/observability.md) without re-running anything.
//
//   crp_report heatmap series.json [--index I] [--layer L]
//              [--ppm out.ppm]
//       Load a delta-encoded HeatmapSeries (crp run --heatmaps-out),
//       reconstruct snapshot I (default: the latest) and print its
//       totals plus the ASCII utilisation map; --ppm additionally
//       writes a P3 image.  --layer restricts to one routing layer.
//
//   crp_report timeline report.json [--csv out.csv]
//       Load a RunReport JSON (crp run --report-out with --snapshots 1)
//       and print the per-iteration flow timeline as an aligned table;
//       --csv writes the machine-readable form.
//
//   crp_report flight dump.json [--layer L]
//       Load a flight-recorder dump (crp run --flight-out, a dirty
//       audit's --flight-dir artifact, or a crp_fuzz *_flight.json) and
//       print the trigger, the recent event ring, and the attached
//       heatmap when one was captured.
//
//   crp_report diff a.json b.json [--json out.json]
//       Structural diff of two RunReport documents (crp run
//       --report-out): fingerprint identity, QoR deltas, per-phase
//       wall-time attribution, per-iteration attribution.  Exit 0 when
//       the fingerprints are identical, 3 when they differ — so two
//       same-design/same-seed runs make a determinism gate.  (Also
//       reachable as `crp_report --diff a.json b.json`.)
//
//   crp_report ledger file.jsonl [--check 1] [--add-bench BENCH.json]
//              [--skip-dirty 1] [--tol-qor F] [--tol-perf F]
//       Operate on the run ledger (docs/observability.md).  Default:
//       list the entries.  --add-bench folds one BENCH_*.json artifact
//       in as a bench entry (numeric fields only).  --check gates the
//       newest entry of every (kind, design) series against its
//       predecessor under tolerance bands and exits nonzero on a
//       regression.  (Also reachable as `crp_report --ledger file
//       --check 1`.)
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/json.hpp"
#include "obs/run_ledger.hpp"
#include "obs/run_report.hpp"
#include "obs/timeline.hpp"
#include "util/file_io.hpp"

namespace {

using namespace crp;

/// Minimal --flag value parser (same shape as crp_cli's).
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv, int firstArg) {
    Args args;
    for (int i = firstArg; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[token.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

obs::Json loadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

void printSnapshotSummary(const obs::HeatmapSnapshot& snapshot) {
  std::cout << "snapshot '" << snapshot.label << "' (iteration "
            << snapshot.iteration << "): " << snapshot.width << "x"
            << snapshot.height << " gcells, " << snapshot.numLayers
            << " layers, " << snapshot.planes.size() << " planes\n"
            << "  overflow: total=" << std::fixed << std::setprecision(2)
            << snapshot.totalOverflow << ", max=" << snapshot.maxOverflow
            << ", edges=" << snapshot.overflowedEdges << "\n";
}

int cmdHeatmap(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report heatmap series.json [--index I] "
                 "[--layer L] [--ppm out.ppm]\n";
    return 2;
  }
  const obs::HeatmapSeries series =
      obs::HeatmapSeries::fromJson(loadJsonFile(args.positional[0]));
  if (series.empty()) {
    std::cerr << "error: series holds no snapshots (was the run made with "
                 "--snapshots 1 and --obs 1?)\n";
    return 1;
  }
  const int layer = static_cast<int>(args.number("layer", -1));
  const auto index = static_cast<std::size_t>(args.number(
      "index", static_cast<double>(series.size() - 1)));
  if (index >= series.size()) {
    std::cerr << "error: --index " << index << " out of range (series has "
              << series.size() << " snapshot(s))\n";
    return 1;
  }
  const obs::HeatmapSnapshot snapshot = series.snapshot(index);
  std::cout << "series: " << series.size() << " snapshot(s)\n";
  printSnapshotSummary(snapshot);
  obs::renderHeatmapAscii(std::cout, snapshot, layer);

  const auto ppmIt = args.flags.find("ppm");
  if (ppmIt != args.flags.end()) {
    std::ofstream out(ppmIt->second);
    if (!out) {
      std::cerr << "error: cannot write " << ppmIt->second << "\n";
      return 1;
    }
    obs::writeHeatmapPpm(out, snapshot, layer);
    std::cout << "ppm -> " << ppmIt->second << "\n";
  }
  return 0;
}

int cmdTimeline(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report timeline report.json [--csv out.csv]\n";
    return 2;
  }
  const obs::RunReport report =
      obs::RunReport::fromJson(loadJsonFile(args.positional[0]));
  if (report.timeline.empty()) {
    // Not an error: a report without the spatial tier is a normal
    // artifact.  Explain what is (and is not) in it instead of failing
    // or emitting a header-only CSV.
    std::cout << "timeline: no records in this report ("
              << report.iterationStats.size()
              << " iteration(s) of scalar stats present)\n"
              << "hint: the timeline is captured when the run is made "
                 "with --snapshots 1 and --obs 1\n";
    if (args.flags.count("csv") != 0) {
      std::cout << "csv: skipped (no timeline records)\n";
    }
    return 0;
  }
  std::cout << obs::formatTimeline(report.timeline);

  const auto csvIt = args.flags.find("csv");
  if (csvIt != args.flags.end()) {
    std::ofstream out(csvIt->second);
    if (!out) {
      std::cerr << "error: cannot write " << csvIt->second << "\n";
      return 1;
    }
    out << obs::timelineCsv(report.timeline);
    std::cout << "csv -> " << csvIt->second << "\n";
  }
  return 0;
}

int cmdFlight(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report flight dump.json [--layer L]\n";
    return 2;
  }
  const obs::Json dump = loadJsonFile(args.positional[0]);
  const std::int64_t version = dump.at("schemaVersion").asInt();
  if (version != obs::FlightRecorder::kSchemaVersion) {
    std::cerr << "error: unsupported flight dump schemaVersion " << version
              << "\n";
    return 1;
  }

  std::cout << "trigger: " << dump.at("trigger").dump() << "\n";
  const obs::Json& events = dump.at("events");
  std::cout << "events: " << events.asArray().size() << " held of "
            << dump.at("eventsRecorded").asUint() << " recorded (capacity "
            << dump.at("capacity").asInt() << ")\n";
  for (const obs::Json& event : events.asArray()) {
    std::cout << "  " << std::setw(6) << event.at("seq").asUint() << "  "
              << event.at("category").asString() << "/"
              << event.at("label").asString() << "  "
              << event.at("value").asInt() << "\n";
  }

  const obs::Json* heatmap = dump.find("latestHeatmap");
  if (heatmap == nullptr || !heatmap->isObject()) {
    std::cout << "no heatmap attached\n";
    return 0;
  }
  const obs::HeatmapSnapshot snapshot = obs::HeatmapSnapshot::fromJson(*heatmap);
  printSnapshotSummary(snapshot);
  obs::renderHeatmapAscii(std::cout, snapshot,
                          static_cast<int>(args.number("layer", -1)));
  return 0;
}

int cmdDiff(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: crp_report diff a.json b.json [--json out.json]\n";
    return 2;
  }
  const obs::RunReport a =
      obs::RunReport::fromJson(loadJsonFile(args.positional[0]));
  const obs::RunReport b =
      obs::RunReport::fromJson(loadJsonFile(args.positional[1]));
  const obs::ReportDiff diff = obs::diffReports(a, b);
  std::cout << obs::formatReportDiff(diff, args.positional[0],
                                     args.positional[1]);
  const auto jsonIt = args.flags.find("json");
  if (jsonIt != args.flags.end()) {
    std::string error;
    if (!util::writeFileAtomic(jsonIt->second, diff.toJson().dump(2) + "\n",
                               &error)) {
      std::cerr << "error: cannot write " << jsonIt->second << ": " << error
                << "\n";
      return 1;
    }
    std::cout << "diff json -> " << jsonIt->second << "\n";
  }
  // Exit-code contract (docs/observability.md): identical fingerprints
  // exit 0, so `crp_report diff` doubles as a determinism gate in CI.
  return diff.fingerprintsIdentical ? 0 : 3;
}

/// True when the switch was given either as "--name 1" (the Args flag
/// form) or as a bare trailing "--name" token (which the minimal
/// parser files under positionals).
bool hasSwitch(const Args& args, const std::string& name) {
  const auto it = args.flags.find(name);
  if (it != args.flags.end()) return std::atof(it->second.c_str()) > 0;
  for (const std::string& token : args.positional) {
    if (token == "--" + name) return true;
  }
  return false;
}

int cmdLedger(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: crp_report ledger file.jsonl [--check 1] "
                 "[--add-bench BENCH.json] [--skip-dirty 1] "
                 "[--tol-qor F] [--tol-perf F]\n";
    return 2;
  }
  const std::string& path = args.positional[0];

  const auto benchIt = args.flags.find("add-bench");
  if (benchIt != args.flags.end()) {
    const obs::Json doc = loadJsonFile(benchIt->second);
    obs::RunLedgerEntry entry;
    const obs::Provenance& prov = obs::collectProvenance();
    entry.kind = "bench";
    entry.design = std::filesystem::path(benchIt->second).stem().string();
    entry.unixTime = static_cast<std::uint64_t>(std::time(nullptr));
    entry.gitSha = prov.gitSha;
    entry.dirty = prov.dirty;
    entry.dirtyFiles = prov.dirtyFiles;
    entry.host = prov.host;
    entry.cpus = prov.cpus;
    // Only the flat numeric fields: nested blocks ("context", "host",
    // per-design arrays) are descriptive, not gateable.
    obs::Json metrics = obs::Json::object();
    for (const auto& [key, value] : doc.asObject()) {
      if (value.isNumber()) metrics.set(key, value);
    }
    entry.metrics = std::move(metrics);
    obs::RunLedger ledger(path);
    std::string error;
    if (!ledger.append(entry, &error)) {
      std::cerr << "error: ledger append failed: " << error << "\n";
      return 1;
    }
    std::cout << "ledger += bench entry (" << entry.design << ", "
              << entry.metrics.size() << " metric(s)) -> " << path << "\n";
    return 0;
  }

  const obs::RunLedger::LoadResult loaded = obs::RunLedger::load(path);
  if (hasSwitch(args, "check")) {
    obs::LedgerCheckOptions options;
    options.tolQorRel = args.number("tol-qor", options.tolQorRel);
    options.tolPerfRel = args.number("tol-perf", options.tolPerfRel);
    options.skipDirty = hasSwitch(args, "skip-dirty");
    const obs::LedgerCheckResult result = obs::checkLedger(loaded, options);
    std::cout << result.format();
    return result.ok ? 0 : 4;
  }

  // Default: list the entries.
  std::cout << "ledger " << path << ": " << loaded.entries.size()
            << " entr(ies)";
  if (loaded.skippedLines > 0) {
    std::cout << ", " << loaded.skippedLines << " unparseable line(s)";
  }
  std::cout << "\n";
  for (const obs::RunLedgerEntry& entry : loaded.entries) {
    std::cout << "  [" << entry.kind << "] " << entry.design << "  sha "
              << entry.gitSha.substr(0, 12)
              << (entry.dirty ? "-dirty" : "") << "  t=" << entry.unixTime;
    if (entry.kind == "bench") {
      std::cout << "  " << entry.metrics.size() << " metric(s)";
    } else {
      std::cout << "  wl=" << entry.qor.wirelengthDbu
                << " vias=" << entry.qor.vias
                << " ovf=" << entry.qor.totalOverflow << "  fp "
                << entry.fingerprintDigest;
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: crp_report <heatmap|timeline|flight|diff|ledger> "
                 "...\n";
    return 2;
  }
  // `--diff` / `--ledger` aliases: the flag forms named in
  // docs/observability.md map onto the subcommands.
  std::string command = argv[1];
  if (command == "--diff") command = "diff";
  if (command == "--ledger") command = "ledger";
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (command == "heatmap") return cmdHeatmap(args);
    if (command == "timeline") return cmdTimeline(args);
    if (command == "flight") return cmdFlight(args);
    if (command == "diff") return cmdDiff(args);
    if (command == "ledger") return cmdLedger(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
