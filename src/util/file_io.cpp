#include "util/file_io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace crp::util {

namespace {

void setError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Distinct temp names per process and per call, so two writers racing
// on the same destination never stream into each other's temp file
// (last rename wins, each file is internally consistent).
std::string tempPathFor(const std::string& path) {
  static std::atomic<unsigned> sequence{0};
  const unsigned seq = sequence.fetch_add(1, std::memory_order_relaxed);
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(seq);
}

}  // namespace

bool writeFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& produce,
                     std::string* error) {
  const std::string tmp = tempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      setError(error, "cannot open " + tmp + " for writing: " +
                          std::strerror(errno));
      return false;
    }
    bool produced = false;
    try {
      produced = produce(out);
    } catch (const std::exception& e) {
      out.close();
      std::remove(tmp.c_str());
      setError(error, std::string("writer threw: ") + e.what());
      return false;
    }
    out.flush();
    // `produced` is the producer's own verdict; the stream state is
    // the OS's (covers ENOSPC surfacing at flush/close time).
    if (!produced || !out.good()) {
      out.close();
      std::remove(tmp.c_str());
      setError(error, "write to " + tmp + " failed (disk full or I/O error)");
      return false;
    }
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      setError(error, "closing " + tmp + " failed (disk full or I/O error)");
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    setError(error,
             "rename " + tmp + " -> " + path + " failed: " + ec.message());
    return false;
  }
  return true;
}

bool writeFileAtomic(const std::string& path, std::string_view content,
                     std::string* error) {
  return writeFileAtomic(
      path,
      [content](std::ostream& os) -> bool {
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        return os.good();
      },
      error);
}

bool appendLineAtomic(const std::string& path, std::string_view line,
                      std::string* error) {
  // O_RDWR, not O_WRONLY: the torn-tail probe below pread()s the last
  // byte, which a write-only descriptor would refuse (EBADF).
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    setError(error, "cannot open " + path + " for append: " +
                        std::strerror(errno));
    return false;
  }
  // Repair a torn tail from a crashed earlier append: if the last byte
  // is not a newline, lead with one so the previous partial record
  // stays isolated on its own (unparseable, skipped) line.
  std::string payload;
  struct stat st {};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      payload.push_back('\n');
    }
  }
  payload.append(line);
  payload.push_back('\n');

  // One write() call: O_APPEND makes the position+write atomic against
  // concurrent appenders, and a crash mid-call can only leave a prefix
  // of this single record behind.
  bool ok = true;
  ssize_t n;
  do {
    n = ::write(fd, payload.data(), payload.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0 || static_cast<std::size_t>(n) != payload.size()) {
    setError(error, "append to " + path + " failed: " +
                        (n < 0 ? std::strerror(errno) : "short write"));
    ok = false;
  }
  if (::close(fd) != 0 && ok) {
    setError(error, "closing " + path + " failed: " + std::strerror(errno));
    ok = false;
  }
  return ok;
}

}  // namespace crp::util
