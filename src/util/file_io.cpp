#include "util/file_io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

namespace crp::util {

namespace {

void setError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Distinct temp names per process and per call, so two writers racing
// on the same destination never stream into each other's temp file
// (last rename wins, each file is internally consistent).
std::string tempPathFor(const std::string& path) {
  static std::atomic<unsigned> sequence{0};
  const unsigned seq = sequence.fetch_add(1, std::memory_order_relaxed);
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(seq);
}

}  // namespace

bool writeFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& produce,
                     std::string* error) {
  const std::string tmp = tempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      setError(error, "cannot open " + tmp + " for writing: " +
                          std::strerror(errno));
      return false;
    }
    bool produced = false;
    try {
      produced = produce(out);
    } catch (const std::exception& e) {
      out.close();
      std::remove(tmp.c_str());
      setError(error, std::string("writer threw: ") + e.what());
      return false;
    }
    out.flush();
    // `produced` is the producer's own verdict; the stream state is
    // the OS's (covers ENOSPC surfacing at flush/close time).
    if (!produced || !out.good()) {
      out.close();
      std::remove(tmp.c_str());
      setError(error, "write to " + tmp + " failed (disk full or I/O error)");
      return false;
    }
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      setError(error, "closing " + tmp + " failed (disk full or I/O error)");
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    setError(error,
             "rename " + tmp + " -> " + path + " failed: " + ec.message());
    return false;
  }
  return true;
}

bool writeFileAtomic(const std::string& path, std::string_view content,
                     std::string* error) {
  return writeFileAtomic(
      path,
      [content](std::ostream& os) -> bool {
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        return os.good();
      },
      error);
}

}  // namespace crp::util
