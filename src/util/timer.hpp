// Wall-clock timing utilities.
//
// The CR&P flow reports per-phase runtime (paper Fig. 2 / Fig. 3), so
// phases accumulate elapsed time into a PhaseTimer registry keyed by
// phase name.  A ScopedTimer charges its enclosing scope to one phase.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace crp::util {

/// Simple restartable stopwatch (wall clock).
class Stopwatch {
 public:
  Stopwatch() { restart(); }

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds per named phase.  Not thread-safe; the
/// flow drives phases from the main thread.
class PhaseTimer {
 public:
  /// Adds `seconds` to `phase`'s total.
  void charge(const std::string& phase, double seconds);

  /// Total accumulated seconds for `phase`.  Asking for a phase that
  /// was never charged is almost always a typo in the phase name:
  /// debug builds assert; release builds return 0.  Use has() first
  /// when the phase is genuinely optional.
  double total(const std::string& phase) const;

  /// True when `phase` has been charged at least once.
  bool has(const std::string& phase) const;

  /// Sum over all phases.
  double grandTotal() const;

  /// Phases in first-charged order.
  const std::vector<std::string>& phases() const { return order_; }

  /// Percentage share of `phase` in the grand total (0 when empty).
  double percent(const std::string& phase) const;

  void clear();

 private:
  std::map<std::string, double> totals_;
  std::vector<std::string> order_;
};

/// RAII guard: charges the time between construction and destruction
/// to `phase` of `timer`.
class ScopedTimer {
 public:
  ScopedTimer(PhaseTimer& timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ~ScopedTimer() { timer_.charge(phase_, watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseTimer& timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace crp::util
