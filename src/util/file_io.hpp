// Atomic, error-checked artifact writing.
//
// The CLI and daemon persist JSON artifacts (reports, traces, heatmap
// series, eco deltas) that downstream tooling parses.  A bare
// `std::ofstream << ...` silently "succeeds" on a full disk or an
// unwritable path, leaving a truncated or empty file behind.
// writeFileAtomic closes that hole: the payload goes to a temporary
// file in the destination directory, the stream state is checked
// after an explicit flush, and only a fully written temp file is
// renamed over the destination — readers never observe a partial
// artifact, and every failure mode is reported to the caller.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace crp::util {

/// Writes `produce`'s output to `path` atomically: the producer
/// streams into a temp file next to the destination; after a flush
/// whose stream state is verified, the temp file is renamed into
/// place.  On any failure (open, producer-reported stream failure,
/// flush, rename) the temp file is removed, false is returned, and a
/// one-line reason is stored in *error (when non-null).  The producer
/// may itself return false to abort (e.g. after detecting its own
/// serialization problem).
bool writeFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& produce,
                     std::string* error = nullptr);

/// Convenience overload for ready-made content.
bool writeFileAtomic(const std::string& path, std::string_view content,
                     std::string* error = nullptr);

/// Appends one record line to an append-only file (the run-ledger
/// JSONL, docs/observability.md).  writeFileAtomic's temp+rename is
/// wrong for logs — it would race concurrent appenders and rewrite the
/// whole history per entry — so this uses the POSIX append contract
/// instead: the file is opened O_APPEND and `line` plus its
/// terminating '\n' go out in a single write(), which the kernel
/// applies at end-of-file atomically with respect to other O_APPEND
/// writers.  A crash can only ever truncate the final line (readers
/// skip it); a previous crash's torn tail is repaired by prefixing a
/// newline when the file does not end in one, so the next record never
/// glues onto half a line.  Returns false with *error set on any
/// failure; the file is never left with a record half-applied by a
/// *successful* call.
bool appendLineAtomic(const std::string& path, std::string_view line,
                      std::string* error = nullptr);

}  // namespace crp::util
