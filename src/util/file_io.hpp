// Atomic, error-checked artifact writing.
//
// The CLI and daemon persist JSON artifacts (reports, traces, heatmap
// series, eco deltas) that downstream tooling parses.  A bare
// `std::ofstream << ...` silently "succeeds" on a full disk or an
// unwritable path, leaving a truncated or empty file behind.
// writeFileAtomic closes that hole: the payload goes to a temporary
// file in the destination directory, the stream state is checked
// after an explicit flush, and only a fully written temp file is
// renamed over the destination — readers never observe a partial
// artifact, and every failure mode is reported to the caller.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace crp::util {

/// Writes `produce`'s output to `path` atomically: the producer
/// streams into a temp file next to the destination; after a flush
/// whose stream state is verified, the temp file is renamed into
/// place.  On any failure (open, producer-reported stream failure,
/// flush, rename) the temp file is removed, false is returned, and a
/// one-line reason is stored in *error (when non-null).  The producer
/// may itself return false to abort (e.g. after detecting its own
/// serialization problem).
bool writeFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& produce,
                     std::string* error = nullptr);

/// Convenience overload for ready-made content.
bool writeFileAtomic(const std::string& path, std::string_view content,
                     std::string* error = nullptr);

}  // namespace crp::util
