#include "util/logger.hpp"

namespace crp::util {

std::string_view logLevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug]";
    case LogLevel::kInfo:
      return "[info ]";
    case LogLevel::kWarn:
      return "[warn ]";
    case LogLevel::kError:
      return "[error]";
    case LogLevel::kSilent:
      return "[-----]";
  }
  return "[?????]";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::setStream(std::ostream* os) {
  std::lock_guard lock(mutex_);
  os_ = os;
}

void Logger::write(LogLevel level, std::string_view message) {
  std::lock_guard lock(mutex_);
  std::ostream& os = os_ != nullptr ? *os_ : std::clog;
  os << logLevelTag(level) << ' ' << message << '\n';
}

}  // namespace crp::util
