#include "util/logger.hpp"

namespace crp::util {

namespace {
// Innermost LoggerScope's logger for this thread; null = process default.
thread_local Logger* tlsCurrentLogger = nullptr;
}  // namespace

std::string_view logLevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug]";
    case LogLevel::kInfo:
      return "[info ]";
    case LogLevel::kWarn:
      return "[warn ]";
    case LogLevel::kError:
      return "[error]";
    case LogLevel::kSilent:
      return "[-----]";
  }
  return "[?????]";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger& Logger::current() {
  Logger* scoped = tlsCurrentLogger;
  return scoped != nullptr ? *scoped : instance();
}

void Logger::setSink(std::shared_ptr<std::ostream> os) {
  std::lock_guard lock(mutex_);
  os_ = std::move(os);
}

std::shared_ptr<std::ostream> Logger::sink() const {
  std::lock_guard lock(mutex_);
  return os_;
}

void Logger::setStream(std::ostream* os) {
  // Non-owning adoption: aliasing shared_ptr with a no-op deleter.
  setSink(os != nullptr ? std::shared_ptr<std::ostream>(os, [](std::ostream*) {})
                        : nullptr);
}

void Logger::write(LogLevel level, std::string_view message) {
  std::lock_guard lock(mutex_);
  std::ostream& os = os_ != nullptr ? *os_ : std::clog;
  os << logLevelTag(level) << ' ' << message << '\n';
}

LoggerScope::LoggerScope(Logger* logger) {
  if (logger == nullptr) return;
  previous_ = tlsCurrentLogger;
  tlsCurrentLogger = logger;
  installed_ = true;
}

LoggerScope::~LoggerScope() {
  if (installed_) tlsCurrentLogger = previous_;
}

}  // namespace crp::util
