// Fixed-size thread pool with a parallel-for helper.
//
// Alg. 2 of the paper runs candidate generation and candidate-cost
// estimation "in parallel"; this pool provides that parallelism.  The
// pool is deliberately minimal: a shared queue of std::function tasks
// plus parallelFor, which blocks the caller until every index is
// processed.  Determinism note: parallel loops in this codebase only
// write to disjoint per-index slots, so results are identical to the
// sequential execution regardless of scheduling.
//
// parallelFor uses dynamic (atomic-counter) chunk scheduling: workers
// pull small index ranges off a shared counter, so skewed per-index
// costs (candidate pricing varies heavily with net degree) cannot
// leave the pool idle behind one fat statically-assigned chunk.
//
// Exceptions thrown by a task are captured and rethrown on the calling
// thread: parallelFor rethrows the first exception its body threw;
// waitIdle rethrows the first exception of a plain submit() task.  The
// worker's active count is decremented on the throw path, so waitIdle
// never hangs after a failure.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crp::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.  If the task throws,
  /// the first such exception is rethrown by the next waitIdle().
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished, then rethrows the
  /// first exception any of them threw (if any).
  void waitIdle();

  /// Runs body(i) for i in [0, n); blocks until complete.  Indices are
  /// handed out in contiguous grains through a shared atomic cursor
  /// (dynamic load balancing).  The first exception thrown by `body`
  /// is rethrown here on the calling thread; remaining grains are
  /// abandoned (already-started ones still finish their grain).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr submitError_;  ///< first failure of a submit() task
};

}  // namespace crp::util
