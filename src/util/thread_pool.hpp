// Fixed-size thread pool with a parallel-for helper.
//
// Alg. 2 of the paper runs candidate generation and candidate-cost
// estimation "in parallel"; this pool provides that parallelism.  The
// pool is deliberately minimal: a shared queue of std::function tasks
// plus parallelFor, which blocks the caller until every index is
// processed.  Determinism note: parallel loops in this codebase only
// write to disjoint per-index slots, so results are identical to the
// sequential execution regardless of scheduling.
//
// parallelFor uses dynamic (atomic-counter) chunk scheduling: workers
// pull small index ranges off a shared counter, so skewed per-index
// costs (candidate pricing varies heavily with net degree) cannot
// leave the pool idle behind one fat statically-assigned chunk.
//
// The calling thread participates in its own loop: it drains grains
// alongside the helpers it enqueued and then waits only for helpers
// that actually started.  Two consequences matter for the serve
// daemon, where many sessions share one pool:
//   * parallelFor is reentrant — a task running *on* the pool can call
//     parallelFor on the same pool without deadlocking (its helpers
//     may never be scheduled; the caller completes the loop alone),
//     and
//   * one session's loop never blocks on another session's unrelated
//     queued tasks (it waits on per-call state, not pool-wide
//     idleness).
//
// Exceptions thrown by a task are captured and rethrown on the calling
// thread: parallelFor rethrows the first exception its body threw;
// waitIdle rethrows the first exception of a plain submit() task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crp::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Process-wide hook applied to every task at submit() time, so an
  /// upper layer can capture the submitter's thread-ambient state and
  /// re-install it on the worker (obs::ObsContext registers one that
  /// propagates the current observability context; see
  /// obs/context.cpp).  Must be a stateless function pointer: it is
  /// stored in a constant-initialized atomic, so registration has no
  /// static-init-order hazard.  Pass nullptr to clear.
  using TaskWrapper = Task (*)(Task);
  static void setTaskWrapper(TaskWrapper wrapper) {
    taskWrapper_.store(wrapper, std::memory_order_release);
  }
  static TaskWrapper taskWrapper() {
    return taskWrapper_.load(std::memory_order_acquire);
  }

  /// Creates `threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.  If the task throws,
  /// the first such exception is rethrown by the next waitIdle().
  void submit(Task task);

  /// Blocks until all submitted tasks have finished, then rethrows the
  /// first exception any of them threw (if any).  Do not call from
  /// inside a pool task (it would wait on itself); parallelFor does
  /// not use it and is safe to nest.
  void waitIdle();

  /// Runs body(i) for i in [0, n); blocks until complete.  Indices are
  /// handed out in contiguous grains through a shared atomic cursor
  /// (dynamic load balancing); the calling thread drains grains too.
  /// The first exception thrown by `body` is rethrown here on the
  /// calling thread; remaining grains are abandoned (already-started
  /// ones still finish their grain).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void workerLoop();

  inline static std::atomic<TaskWrapper> taskWrapper_{nullptr};

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr submitError_;  ///< first failure of a submit() task
};

}  // namespace crp::util
