// Fixed-size thread pool with a parallel-for helper.
//
// Alg. 2 of the paper runs candidate generation and candidate-cost
// estimation "in parallel"; this pool provides that parallelism.  The
// pool is deliberately minimal: a shared queue of std::function tasks
// plus parallelFor, which blocks the caller until every index is
// processed.  Determinism note: parallel loops in this codebase only
// write to disjoint per-index slots, so results are identical to the
// sequential execution regardless of scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crp::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void waitIdle();

  /// Runs body(i) for i in [0, n), partitioned into contiguous chunks
  /// across the pool; blocks until complete.  Exceptions escaping
  /// `body` terminate (tasks are noexcept boundaries by design — the
  /// routing kernels do not throw).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace crp::util
