// Lightweight leveled logger for the CR&P toolkit.
//
// The logger is a process-wide singleton with a configurable severity
// threshold.  Formatting uses iostreams under the hood but the public
// interface is printf-like via a tiny variadic formatter, so call sites
// stay compact:
//
//   CRP_LOG_INFO("routed {} nets, {} overflows", nNets, nOv);
//
// Placeholders are positional "{}"; any printable type works.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace crp::util {

/// Severity levels, ordered from most to least verbose.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Converts a level to its fixed-width display tag.
std::string_view logLevelTag(LogLevel level);

/// Process-wide logger.  Thread-safe: each emitted record is written
/// under a mutex so concurrent messages never interleave.
class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Redirects output (default: std::clog).  The stream must outlive
  /// all logging calls; pass nullptr to restore the default.
  void setStream(std::ostream* os);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void write(LogLevel level, std::string_view message);

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kInfo;
  std::ostream* os_ = nullptr;
  std::mutex mutex_;
};

namespace detail {

inline void formatNext(std::ostringstream& os, std::string_view& fmt) {
  os << fmt;
  fmt = {};
}

template <typename Arg, typename... Rest>
void formatNext(std::ostringstream& os, std::string_view& fmt, Arg&& arg,
                Rest&&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;
    fmt = {};
    return;
  }
  os << fmt.substr(0, pos) << arg;
  fmt.remove_prefix(pos + 2);
  formatNext(os, fmt, std::forward<Rest>(rest)...);
}

}  // namespace detail

/// Formats `fmt` with positional "{}" placeholders.
template <typename... Args>
std::string formatMessage(std::string_view fmt, Args&&... args) {
  std::ostringstream os;
  detail::formatNext(os, fmt, std::forward<Args>(args)...);
  return os.str();
}

template <typename... Args>
void log(LogLevel level, std::string_view fmt, Args&&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.write(level, formatMessage(fmt, std::forward<Args>(args)...));
}

}  // namespace crp::util

#define CRP_LOG_DEBUG(...) \
  ::crp::util::log(::crp::util::LogLevel::kDebug, __VA_ARGS__)
#define CRP_LOG_INFO(...) \
  ::crp::util::log(::crp::util::LogLevel::kInfo, __VA_ARGS__)
#define CRP_LOG_WARN(...) \
  ::crp::util::log(::crp::util::LogLevel::kWarn, __VA_ARGS__)
#define CRP_LOG_ERROR(...) \
  ::crp::util::log(::crp::util::LogLevel::kError, __VA_ARGS__)
