// Lightweight leveled logger for the CR&P toolkit.
//
// Loggers are plain objects: the process keeps a default one
// (Logger::instance()) and long-lived services create one per session
// so concurrent flows never interleave their lines (the serve daemon's
// ObsContext owns one per session; see obs/context.hpp).  Call sites
// resolve the *ambient* logger — the innermost LoggerScope on this
// thread, falling back to the process default — so library code never
// names a session explicitly:
//
//   CRP_LOG_INFO("routed {} nets, {} overflows", nNets, nOv);
//
// Formatting uses iostreams under the hood but the public interface is
// printf-like via a tiny variadic formatter; placeholders are
// positional "{}" and any printable type works.
//
// Sink ownership: the logger holds its sink as a shared_ptr, so a
// stream handed over with setSink() stays alive for as long as any
// write could still reach it — swapping sinks while other threads log
// is safe.  setStream() remains as a deprecated non-owning shim for
// legacy callers with static-lifetime streams.
#pragma once

#include <atomic>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace crp::util {

/// Severity levels, ordered from most to least verbose.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Converts a level to its fixed-width display tag.
std::string_view logLevelTag(LogLevel level);

/// Thread-safe leveled logger: each emitted record is written under a
/// mutex so concurrent messages never interleave, and the sink is
/// owned (shared_ptr), so replacing it cannot dangle a writer that is
/// mid-record on another thread.
class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The process-default logger (what CRP_LOG_* uses outside any
  /// LoggerScope).
  static Logger& instance();

  /// The ambient logger: the innermost LoggerScope's logger on this
  /// thread, instance() otherwise.
  static Logger& current();

  void setLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// Redirects output to an owned sink (default: std::clog).  The
  /// logger keeps the stream alive until no write can reach it any
  /// more; pass nullptr to restore the default.
  void setSink(std::shared_ptr<std::ostream> os);
  std::shared_ptr<std::ostream> sink() const;

  /// Deprecated: non-owning setSink().  The caller must guarantee *os
  /// outlives every logging call that could still observe it — with
  /// concurrent writers that is exactly the dangling-sink bug setSink()
  /// exists to prevent.  Kept so existing single-threaded callers with
  /// static/stack streams keep compiling; prefer setSink().
  void setStream(std::ostream* os);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, std::string_view message);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::shared_ptr<std::ostream> os_;  ///< null = std::clog
  mutable std::mutex mutex_;
};

/// RAII ambient-logger override for the current thread (installed by
/// obs::ObsContextScope so a session's log lines go to the session's
/// sink).  Null logger = no-op scope.
class LoggerScope {
 public:
  explicit LoggerScope(Logger* logger);
  explicit LoggerScope(Logger& logger) : LoggerScope(&logger) {}
  ~LoggerScope();
  LoggerScope(const LoggerScope&) = delete;
  LoggerScope& operator=(const LoggerScope&) = delete;

 private:
  Logger* previous_ = nullptr;
  bool installed_ = false;
};

namespace detail {

inline void formatNext(std::ostringstream& os, std::string_view& fmt) {
  os << fmt;
  fmt = {};
}

template <typename Arg, typename... Rest>
void formatNext(std::ostringstream& os, std::string_view& fmt, Arg&& arg,
                Rest&&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;
    fmt = {};
    return;
  }
  os << fmt.substr(0, pos) << arg;
  fmt.remove_prefix(pos + 2);
  formatNext(os, fmt, std::forward<Rest>(rest)...);
}

}  // namespace detail

/// Formats `fmt` with positional "{}" placeholders.
template <typename... Args>
std::string formatMessage(std::string_view fmt, Args&&... args) {
  std::ostringstream os;
  detail::formatNext(os, fmt, std::forward<Args>(args)...);
  return os.str();
}

template <typename... Args>
void log(LogLevel level, std::string_view fmt, Args&&... args) {
  Logger& logger = Logger::current();
  if (!logger.enabled(level)) return;
  logger.write(level, formatMessage(fmt, std::forward<Args>(args)...));
}

}  // namespace crp::util

#define CRP_LOG_DEBUG(...) \
  ::crp::util::log(::crp::util::LogLevel::kDebug, __VA_ARGS__)
#define CRP_LOG_INFO(...) \
  ::crp::util::log(::crp::util::LogLevel::kInfo, __VA_ARGS__)
#define CRP_LOG_WARN(...) \
  ::crp::util::log(::crp::util::LogLevel::kWarn, __VA_ARGS__)
#define CRP_LOG_ERROR(...) \
  ::crp::util::log(::crp::util::LogLevel::kError, __VA_ARGS__)
