#include "util/thread_pool.hpp"

#include <algorithm>

namespace crp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  // Chunk so that each worker gets a few chunks for load balance.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (workers * 4 + 1));
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  waitIdle();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace crp::util
