#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace crp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  if (TaskWrapper wrapper = taskWrapper()) {
    task = wrapper(std::move(task));
  }
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::waitIdle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
    error = std::exchange(submitError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  // Grain: small enough that skewed per-index costs balance across
  // workers, large enough to amortize the atomic fetch.
  const std::size_t grain =
      std::max<std::size_t>(1, n / (workers * 16 + 1));
  const std::size_t grains = (n + grain - 1) / grain;

  // Shared by value (shared_ptr) with the helpers: a helper that only
  // gets scheduled after this frame returned (possible when every
  // worker is busy with other sessions' tasks) must still be able to
  // touch the cursor safely — it will find it exhausted and leave.
  struct ForState {
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> aborted{false};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable idle;
    std::size_t active = 0;  ///< helpers between enter and exit
  };
  auto state = std::make_shared<ForState>();

  const auto drain = [state, &body, n, grain] {
    for (;;) {
      if (state->aborted.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          state->cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->aborted.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The caller drains too, so helpers only help with grains beyond the
  // caller's first.  A helper registers (active++) *before* touching
  // the cursor: once the caller's own drain finds the cursor
  // exhausted, any helper not yet registered can never claim work, so
  // waiting for active == 0 covers exactly the helpers that might
  // still be running `body` (and is a no-wait when none started —
  // the reentrant case where the pool has no free worker).
  const std::size_t helpers = std::min(workers, grains - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([state, drain] {
      {
        std::lock_guard lock(state->mutex);
        ++state->active;
      }
      drain();
      std::lock_guard lock(state->mutex);
      if (--state->active == 0) state->idle.notify_all();
    });
  }
  drain();
  {
    std::unique_lock lock(state->mutex);
    state->idle.wait(lock, [&] { return state->active == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::workerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !submitError_) submitError_ = error;
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace crp::util
