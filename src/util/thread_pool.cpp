#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace crp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::waitIdle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
    error = std::exchange(submitError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  // Grain: small enough that skewed per-index costs balance across
  // workers, large enough to amortize the atomic fetch.
  const std::size_t grain =
      std::max<std::size_t>(1, n / (workers * 16 + 1));
  const std::size_t grains = (n + grain - 1) / grain;

  // All state lives on this frame: waitIdle() below guarantees every
  // puller finished before the frame unwinds.
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr error;
  std::mutex errorMutex;

  auto puller = [&] {
    for (;;) {
      if (aborted.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(errorMutex);
        if (!error) error = std::current_exception();
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  for (std::size_t t = 0; t < std::min(workers, grains); ++t) {
    submit(puller);
  }
  waitIdle();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !submitError_) submitError_ = error;
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace crp::util
