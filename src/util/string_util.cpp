#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace crp::util {

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t begin = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > begin) tokens.emplace_back(text.substr(begin, i - begin));
  }
  return tokens;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool firstTokenIs(std::string_view line, std::string_view keyword) {
  const std::string_view trimmed = trim(line);
  if (!startsWith(trimmed, keyword)) return false;
  return trimmed.size() == keyword.size() ||
         std::isspace(static_cast<unsigned char>(trimmed[keyword.size()]));
}

std::string formatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string padLeft(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string padRight(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

}  // namespace crp::util
