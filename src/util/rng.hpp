// Deterministic pseudo-random number generation.
//
// Everything stochastic in the toolkit (benchmark generation, the
// simulated-annealing-style acceptance test in Alg. 1, tie breaking)
// draws from an explicitly seeded Rng so that runs are reproducible
// bit-for-bit across platforms.  The core generator is SplitMix64 /
// xoshiro256**, which is tiny, fast and has no libstdc++-version
// dependence (std::mt19937 would be reproducible too, but the
// distributions are not portable).
#pragma once

#include <cstdint>
#include <limits>

namespace crp::util {

/// xoshiro256** seeded through SplitMix64.  Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Unbiased via rejection.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Approximately normal draw via the sum of 12 uniforms (Irwin-Hall);
  /// portable and plenty for workload synthesis.
  double normal(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += uniform();
    return mean + stddev * (sum - 6.0);
  }

  /// Geometric-ish pin-count style draw: returns k >= lo where each
  /// increment succeeds with probability `continueProb`.
  std::int64_t geometric(std::int64_t lo, double continueProb,
                         std::int64_t cap) {
    std::int64_t k = lo;
    while (k < cap && bernoulli(continueProb)) ++k;
    return k;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace crp::util
