// Small string helpers shared by the LEF/DEF parsers and reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace crp::util {

/// Splits on any run of whitespace; no empty tokens.
std::vector<std::string> splitWhitespace(std::string_view text);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);

/// Case-sensitive keyword match on the first whitespace token.
bool firstTokenIs(std::string_view line, std::string_view keyword);

/// Formats `value` with `decimals` fraction digits (locale independent).
std::string formatDouble(double value, int decimals);

/// Left-pads/truncates to a fixed-width column for table printing.
std::string padLeft(std::string_view text, std::size_t width);
std::string padRight(std::string_view text, std::size_t width);

}  // namespace crp::util
