#include "util/timer.hpp"

#include <algorithm>
#include <cassert>

namespace crp::util {

void PhaseTimer::charge(const std::string& phase, double seconds) {
  auto [it, inserted] = totals_.try_emplace(phase, 0.0);
  if (inserted) order_.push_back(phase);
  it->second += seconds;
}

double PhaseTimer::total(const std::string& phase) const {
  const auto it = totals_.find(phase);
  assert(it != totals_.end() && "PhaseTimer::total: unknown phase");
  return it == totals_.end() ? 0.0 : it->second;
}

bool PhaseTimer::has(const std::string& phase) const {
  return totals_.find(phase) != totals_.end();
}

double PhaseTimer::grandTotal() const {
  double sum = 0.0;
  for (const auto& [phase, seconds] : totals_) sum += seconds;
  return sum;
}

double PhaseTimer::percent(const std::string& phase) const {
  const double total = grandTotal();
  if (total <= 0.0) return 0.0;
  return 100.0 * this->total(phase) / total;
}

void PhaseTimer::clear() {
  totals_.clear();
  order_.clear();
}

}  // namespace crp::util
