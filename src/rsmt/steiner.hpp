// Rectilinear Steiner minimal tree construction — the FLUTE stand-in
// used by Alg. 3 ("flute = getFlute(C_n, pl_cd)") to build the topology
// that the 3D pattern router prices.
//
// Exactness contract:
//  * <= 4 pins: optimal RSMT via Hanan-grid enumeration (Hanan's
//    theorem guarantees an optimal tree using only Hanan points).
//  * > 4 pins: Prim MST followed by iterative Steinerization and edge
//    re-anchoring; always <= MST length and >= HPWL.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "geom/geometry.hpp"

namespace crp::rsmt {

using geom::Coord;
using geom::Point;

/// A tree over `nodes`; the first `numPins` nodes are the input pins
/// (in input order, after deduplication the extras map to the first
/// equal pin).  Edges connect node indices; each edge is realized
/// rectilinearly (an L between its endpoints), so the tree length is
/// the sum of Manhattan edge lengths.
struct SteinerTree {
  std::vector<Point> nodes;
  std::vector<std::pair<int, int>> edges;
  int numPins = 0;

  /// Total rectilinear length.
  Coord length() const;

  /// True when the edge set connects all nodes.
  bool isConnected() const;

  /// The 2-pin segments (point pairs) the routers consume.
  std::vector<std::pair<Point, Point>> segments() const;
};

/// Reusable work buffers for tree construction.  Hot loops (ECC
/// candidate pricing builds one tree per net per candidate) keep one
/// Scratch per thread so repeated builds make no heap allocations on
/// the common (<= 4 pin, and MST) paths.
struct Scratch {
  std::vector<Point> pins;      ///< deduplicated input pins
  std::vector<char> inTree;     ///< Prim state
  std::vector<Coord> best;
  std::vector<int> from;
};

/// Builds a rectilinear Steiner tree over `pins`.  Duplicated points
/// are merged.  A single pin yields a tree with one node and no edges.
SteinerTree buildSteinerTree(std::span<const Point> pins);

/// Allocation-conscious variant: builds into `out` reusing its and
/// `scratch`'s buffers.  Same result as buildSteinerTree.
void buildSteinerTree(std::span<const Point> pins, SteinerTree& out,
                      Scratch& scratch);

/// Plain Prim MST over the pins (no Steiner points); exposed for
/// benchmarking and as the upper bound in property tests.
SteinerTree buildMst(std::span<const Point> pins);

/// Half-perimeter of the pin bounding box — the classic lower bound.
Coord pinHpwl(std::span<const Point> pins);

}  // namespace crp::rsmt
