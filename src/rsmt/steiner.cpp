#include "rsmt/steiner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace crp::rsmt {

namespace {

/// Union-find over node indices.
class DisjointSet {
 public:
  explicit DisjointSet(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Prim MST over `points` by Manhattan distance into `edges`, reusing
/// the scratch state vectors.
void primEdgesInto(const std::vector<Point>& points,
                   std::vector<std::pair<int, int>>& edges,
                   Scratch& scratch) {
  const int n = static_cast<int>(points.size());
  edges.clear();
  if (n <= 1) return;
  auto& inTree = scratch.inTree;
  auto& best = scratch.best;
  auto& from = scratch.from;
  inTree.assign(n, 0);
  best.assign(n, std::numeric_limits<Coord>::max());
  from.assign(n, 0);
  inTree[0] = 1;
  for (int i = 1; i < n; ++i) {
    best[i] = geom::manhattan(points[0], points[i]);
    from[i] = 0;
  }
  for (int added = 1; added < n; ++added) {
    int pick = -1;
    Coord pickDist = std::numeric_limits<Coord>::max();
    for (int i = 0; i < n; ++i) {
      if (!inTree[i] && best[i] < pickDist) {
        pick = i;
        pickDist = best[i];
      }
    }
    inTree[pick] = 1;
    edges.emplace_back(from[pick], pick);
    for (int i = 0; i < n; ++i) {
      if (!inTree[i]) {
        const Coord dist = geom::manhattan(points[pick], points[i]);
        if (dist < best[i]) {
          best[i] = dist;
          from[i] = pick;
        }
      }
    }
  }
}

std::vector<std::pair<int, int>> primEdges(const std::vector<Point>& points) {
  std::vector<std::pair<int, int>> edges;
  Scratch scratch;
  primEdgesInto(points, edges, scratch);
  return edges;
}

Coord edgesLength(const std::vector<Point>& points,
                  const std::vector<std::pair<int, int>>& edges) {
  Coord total = 0;
  for (const auto& [a, b] : edges) {
    total += geom::manhattan(points[a], points[b]);
  }
  return total;
}

/// Removes degree-1 non-pin nodes (and their edges) repeatedly; the
/// MST over pins + a candidate Steiner subset may leave some Steiner
/// points dangling, and those never help.
void pruneDanglingSteiner(std::vector<Point>& points,
                          std::vector<std::pair<int, int>>& edges,
                          int numPins) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<int> degree(points.size(), 0);
    for (const auto& [a, b] : edges) {
      ++degree[a];
      ++degree[b];
    }
    for (int v = static_cast<int>(points.size()) - 1; v >= numPins; --v) {
      if (degree[v] <= 1) {
        // Drop node v and any incident edge; reindex the tail.
        std::erase_if(edges, [v](const std::pair<int, int>& e) {
          return e.first == v || e.second == v;
        });
        points.erase(points.begin() + v);
        for (auto& [a, b] : edges) {
          if (a > v) --a;
          if (b > v) --b;
        }
        changed = true;
        break;  // degrees are stale; recompute
      }
    }
  }
}

/// Exact RSMT for <= 4 pins: enumerate Hanan-point subsets of size
/// <= numPins - 2 and keep the cheapest pruned MST.
SteinerTree exactSmall(const std::vector<Point>& pins) {
  const int n = static_cast<int>(pins.size());
  // Hanan grid: all (x_i, y_j) combinations that are not pins.
  std::vector<Coord> xs, ys;
  for (const Point& p : pins) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  std::vector<Point> hanan;
  for (const Coord x : xs) {
    for (const Coord y : ys) {
      const Point p{x, y};
      if (std::find(pins.begin(), pins.end(), p) == pins.end()) {
        hanan.push_back(p);
      }
    }
  }

  SteinerTree best;
  best.nodes = pins;
  best.numPins = n;
  best.edges = primEdges(best.nodes);
  Coord bestLen = edgesLength(best.nodes, best.edges);

  const int maxSteiner = std::max(0, n - 2);
  const int h = static_cast<int>(hanan.size());

  // Enumerate subsets of sizes 1..maxSteiner (size 0 is the plain MST
  // already evaluated).  For n <= 4 this is at most C(12,2) + 12 trees.
  std::vector<int> pick;
  auto evaluate = [&](const std::vector<int>& subset) {
    std::vector<Point> points = pins;
    for (const int idx : subset) points.push_back(hanan[idx]);
    auto edges = primEdges(points);
    pruneDanglingSteiner(points, edges, n);
    const Coord len = edgesLength(points, edges);
    if (len < bestLen) {
      bestLen = len;
      best.nodes = std::move(points);
      best.edges = std::move(edges);
    }
  };
  for (int i = 0; i < h && maxSteiner >= 1; ++i) {
    evaluate({i});
    for (int j = i + 1; j < h && maxSteiner >= 2; ++j) {
      evaluate({i, j});
    }
  }
  return best;
}

/// Steinerization pass: for every node u and pair of tree neighbours
/// (a, b), the componentwise median m of {u, a, b} merges the two edges
/// into a Y; apply the best gain until none remains.
void steinerize(SteinerTree& tree) {
  bool improved = true;
  while (improved) {
    improved = false;
    // Adjacency list (edge indices per node).
    std::vector<std::vector<int>> adj(tree.nodes.size());
    for (int e = 0; e < static_cast<int>(tree.edges.size()); ++e) {
      adj[tree.edges[e].first].push_back(e);
      adj[tree.edges[e].second].push_back(e);
    }
    Coord bestGain = 0;
    int bestU = -1, bestEa = -1, bestEb = -1;
    Point bestM;
    for (int u = 0; u < static_cast<int>(tree.nodes.size()); ++u) {
      const auto& incident = adj[u];
      for (std::size_t i = 0; i < incident.size(); ++i) {
        for (std::size_t j = i + 1; j < incident.size(); ++j) {
          const auto& ea = tree.edges[incident[i]];
          const auto& eb = tree.edges[incident[j]];
          const int a = ea.first == u ? ea.second : ea.first;
          const int b = eb.first == u ? eb.second : eb.first;
          const Point& pu = tree.nodes[u];
          const Point& pa = tree.nodes[a];
          const Point& pb = tree.nodes[b];
          Point m;
          m.x = std::max(std::min(pa.x, pb.x),
                         std::min(std::max(pa.x, pb.x), pu.x));
          m.y = std::max(std::min(pa.y, pb.y),
                         std::min(std::max(pa.y, pb.y), pu.y));
          if (m == pu) continue;
          const Coord before =
              geom::manhattan(pu, pa) + geom::manhattan(pu, pb);
          const Coord after = geom::manhattan(pu, m) +
                              geom::manhattan(m, pa) + geom::manhattan(m, pb);
          const Coord gain = before - after;
          if (gain > bestGain) {
            bestGain = gain;
            bestU = u;
            bestEa = incident[i];
            bestEb = incident[j];
            bestM = m;
          }
        }
      }
    }
    if (bestU >= 0) {
      const int a = tree.edges[bestEa].first == bestU
                        ? tree.edges[bestEa].second
                        : tree.edges[bestEa].first;
      const int b = tree.edges[bestEb].first == bestU
                        ? tree.edges[bestEb].second
                        : tree.edges[bestEb].first;
      const int s = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(bestM);
      // Replace the two edges; erase the higher index first.
      const int hi = std::max(bestEa, bestEb);
      const int lo = std::min(bestEa, bestEb);
      tree.edges.erase(tree.edges.begin() + hi);
      tree.edges.erase(tree.edges.begin() + lo);
      tree.edges.emplace_back(bestU, s);
      tree.edges.emplace_back(s, a);
      tree.edges.emplace_back(s, b);
      improved = true;
    }
  }
}

}  // namespace

Coord SteinerTree::length() const {
  Coord total = 0;
  for (const auto& [a, b] : edges) {
    total += geom::manhattan(nodes[a], nodes[b]);
  }
  return total;
}

bool SteinerTree::isConnected() const {
  if (nodes.empty()) return true;
  DisjointSet ds(static_cast<int>(nodes.size()));
  int components = static_cast<int>(nodes.size());
  for (const auto& [a, b] : edges) {
    if (ds.unite(a, b)) --components;
  }
  return components == 1;
}

std::vector<std::pair<Point, Point>> SteinerTree::segments() const {
  std::vector<std::pair<Point, Point>> out;
  out.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    out.emplace_back(nodes[a], nodes[b]);
  }
  return out;
}

Coord pinHpwl(std::span<const Point> pins) {
  if (pins.size() < 2) return 0;
  Coord xlo = pins[0].x, xhi = pins[0].x, ylo = pins[0].y, yhi = pins[0].y;
  for (const Point& p : pins) {
    xlo = std::min(xlo, p.x);
    xhi = std::max(xhi, p.x);
    ylo = std::min(ylo, p.y);
    yhi = std::max(yhi, p.y);
  }
  return (xhi - xlo) + (yhi - ylo);
}

SteinerTree buildMst(std::span<const Point> pins) {
  SteinerTree tree;
  tree.nodes.assign(pins.begin(), pins.end());
  // Deduplicate while preserving order of first occurrence.
  std::vector<Point> unique;
  for (const Point& p : tree.nodes) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
      unique.push_back(p);
    }
  }
  tree.nodes = std::move(unique);
  tree.numPins = static_cast<int>(tree.nodes.size());
  tree.edges = primEdges(tree.nodes);
  return tree;
}

SteinerTree buildSteinerTree(std::span<const Point> pins) {
  SteinerTree tree;
  Scratch scratch;
  buildSteinerTree(pins, tree, scratch);
  return tree;
}

void buildSteinerTree(std::span<const Point> pins, SteinerTree& out,
                      Scratch& scratch) {
  // Deduplicate while preserving order of first occurrence (same
  // contract as buildMst).
  auto& unique = scratch.pins;
  unique.clear();
  for (const Point& p : pins) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
      unique.push_back(p);
    }
  }
  out.nodes.assign(unique.begin(), unique.end());
  out.numPins = static_cast<int>(out.nodes.size());
  primEdgesInto(out.nodes, out.edges, scratch);
  if (out.numPins <= 2) return;
  if (out.numPins <= 4) {
    out = exactSmall(out.nodes);
    return;
  }
  steinerize(out);
}

}  // namespace crp::rsmt
