// Integer geometry primitives used across the database, routers and
// legalizer.  All coordinates are in database units (DBU); int64
// everywhere so intermediate products (e.g. HPWL sums over 100k nets)
// cannot overflow.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <string>

namespace crp::geom {

using Coord = std::int64_t;

/// 2D point in DBU.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;
};

/// Manhattan distance between two points.
inline Coord manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Closed-open 1D interval [lo, hi).
struct Interval {
  Coord lo = 0;
  Coord hi = 0;

  Coord length() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool contains(Coord v) const { return v >= lo && v < hi; }
  bool overlaps(const Interval& other) const {
    return lo < other.hi && other.lo < hi;
  }
  /// Length of the overlap with `other` (0 when disjoint).
  Coord overlapLength(const Interval& other) const {
    return std::max<Coord>(0, std::min(hi, other.hi) - std::max(lo, other.lo));
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Axis-aligned rectangle, closed-open in both axes: [xlo,xhi) x [ylo,yhi).
struct Rect {
  Coord xlo = 0;
  Coord ylo = 0;
  Coord xhi = 0;
  Coord yhi = 0;

  static Rect fromPoints(const Point& a, const Point& b) {
    return Rect{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y)};
  }

  Coord width() const { return xhi - xlo; }
  Coord height() const { return yhi - ylo; }
  Coord area() const { return width() * height(); }
  Coord halfPerimeter() const { return width() + height(); }
  bool empty() const { return xhi <= xlo || yhi <= ylo; }

  Point center() const { return Point{(xlo + xhi) / 2, (ylo + yhi) / 2}; }
  Interval xInterval() const { return Interval{xlo, xhi}; }
  Interval yInterval() const { return Interval{ylo, yhi}; }

  bool contains(const Point& p) const {
    return p.x >= xlo && p.x < xhi && p.y >= ylo && p.y < yhi;
  }
  /// Containment that also accepts points on the closed upper edges;
  /// useful for degenerate (zero-area) rects such as track endpoints.
  bool containsClosed(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }
  bool contains(const Rect& other) const {
    return other.xlo >= xlo && other.xhi <= xhi && other.ylo >= ylo &&
           other.yhi <= yhi;
  }
  bool overlaps(const Rect& other) const {
    return xlo < other.xhi && other.xlo < xhi && ylo < other.yhi &&
           other.ylo < yhi;
  }

  /// Intersection; empty Rect when disjoint.
  Rect intersect(const Rect& other) const {
    Rect r{std::max(xlo, other.xlo), std::max(ylo, other.ylo),
           std::min(xhi, other.xhi), std::min(yhi, other.yhi)};
    if (r.empty()) return Rect{};
    return r;
  }

  /// Smallest rectangle containing both.
  Rect unionWith(const Rect& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return Rect{std::min(xlo, other.xlo), std::min(ylo, other.ylo),
                std::max(xhi, other.xhi), std::max(yhi, other.yhi)};
  }

  /// Grows the rect by `margin` on all four sides (may be negative).
  Rect inflated(Coord margin) const {
    return Rect{xlo - margin, ylo - margin, xhi + margin, yhi + margin};
  }

  /// Translates by (dx, dy).
  Rect shifted(Coord dx, Coord dy) const {
    return Rect{xlo + dx, ylo + dy, xhi + dx, yhi + dy};
  }

  /// Euclidean-free Manhattan gap between two rects (0 when touching or
  /// overlapping); used by the spacing checker.
  Coord manhattanGap(const Rect& other) const {
    const Coord dx = std::max<Coord>(
        0, std::max(other.xlo - xhi, xlo - other.xhi));
    const Coord dy = std::max<Coord>(
        0, std::max(other.ylo - yhi, ylo - other.yhi));
    return std::max(dx, dy);
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// DEF cell orientations (subset used by standard-cell rows).
enum class Orientation : std::uint8_t { kN, kS, kFN, kFS };

std::string orientationName(Orientation o);

/// Transforms a rect given in a macro's local frame (origin at the
/// macro's lower-left, size w x h) into the die frame for an instance
/// placed at `origin` with orientation `orient`.
Rect transformRect(const Rect& local, const Point& origin, Coord w, Coord h,
                   Orientation orient);

/// Same transform for a point.
Point transformPoint(const Point& local, const Point& origin, Coord w, Coord h,
                     Orientation orient);

/// Snaps `v` down to the closest multiple of `step` offset by `origin`.
inline Coord snapDown(Coord v, Coord origin, Coord step) {
  Coord rel = v - origin;
  Coord snapped = (rel >= 0) ? (rel / step) * step
                             : -(((-rel) + step - 1) / step) * step;
  return origin + snapped;
}

/// Snaps `v` to the nearest multiple of `step` offset by `origin`.
inline Coord snapNearest(Coord v, Coord origin, Coord step) {
  const Coord down = snapDown(v, origin, step);
  const Coord up = down + step;
  return (v - down <= up - v) ? down : up;
}

}  // namespace crp::geom
