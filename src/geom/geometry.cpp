#include "geom/geometry.hpp"

namespace crp::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ", " << r.ylo << " .. " << r.xhi << ", "
            << r.yhi << ']';
}

std::string orientationName(Orientation o) {
  switch (o) {
    case Orientation::kN:
      return "N";
    case Orientation::kS:
      return "S";
    case Orientation::kFN:
      return "FN";
    case Orientation::kFS:
      return "FS";
  }
  return "N";
}

Point transformPoint(const Point& local, const Point& origin, Coord w, Coord h,
                     Orientation orient) {
  Point p;
  switch (orient) {
    case Orientation::kN:
      p = local;
      break;
    case Orientation::kS:  // rotate 180
      p = Point{w - local.x, h - local.y};
      break;
    case Orientation::kFN:  // flip about the y axis
      p = Point{w - local.x, local.y};
      break;
    case Orientation::kFS:  // flip about the x axis
      p = Point{local.x, h - local.y};
      break;
  }
  return Point{p.x + origin.x, p.y + origin.y};
}

Rect transformRect(const Rect& local, const Point& origin, Coord w, Coord h,
                   Orientation orient) {
  const Point a = transformPoint(Point{local.xlo, local.ylo}, origin, w, h,
                                 orient);
  const Point b = transformPoint(Point{local.xhi, local.yhi}, origin, w, h,
                                 orient);
  return Rect::fromPoints(a, b);
}

}  // namespace crp::geom
