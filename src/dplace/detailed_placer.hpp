// HPWL-driven detailed placement (paper §II background techniques):
// global swap and local reordering, the classic refinement moves the
// related-work placers (FastPlace, ABCDPlace, ...) apply before
// routing.  CR&P assumes "an initial placement solution is given";
// this module supplies a better one when the input placement is rough,
// and doubles as the non-routing-aware contrast to CR&P in the
// examples (HPWL optimisation vs routing-cost optimisation).
//
// Moves are legality-preserving by construction:
//  * global swap exchanges two equal-width cells, or moves a cell into
//    a free gap large enough for it;
//  * local reordering permutes a window of consecutive same-row cells
//    and repacks them left-aligned inside the window's original span.
#pragma once

#include <cstdint>

#include "db/database.hpp"

namespace crp::dplace {

struct DetailedPlacerOptions {
  int passes = 2;            ///< full sweeps over all cells
  int swapWindowSites = 40;  ///< search radius around the optimal region
  int swapWindowRows = 3;
  int reorderWindow = 3;     ///< cells per local-reordering group (<= 4)
  std::uint64_t seed = 1;
};

struct DetailedPlacerReport {
  geom::Coord hpwlBefore = 0;
  geom::Coord hpwlAfter = 0;
  int swaps = 0;       ///< accepted cell-cell swaps
  int relocations = 0; ///< accepted move-to-gap relocations
  int reorders = 0;    ///< accepted window permutations

  double improvementPercent() const {
    if (hpwlBefore == 0) return 0.0;
    return 100.0 * static_cast<double>(hpwlBefore - hpwlAfter) /
           static_cast<double>(hpwlBefore);
  }
};

class DetailedPlacer {
 public:
  DetailedPlacer(db::Database& db, DetailedPlacerOptions options = {})
      : db_(db), options_(options) {}

  /// Runs the configured passes; every accepted move strictly reduces
  /// total HPWL, so the report's after <= before.
  DetailedPlacerReport run();

 private:
  /// HPWL over the nets touching any of the given cells.
  geom::Coord localHpwl(const std::vector<db::CellId>& cells) const;

  bool tryGlobalSwap(db::CellId cell, DetailedPlacerReport& report);
  bool tryReorder(int rowIdx, std::size_t windowStart,
                  DetailedPlacerReport& report);

  /// Rebuilds the per-row, x-sorted cell lists from the database.
  void buildRowLists();

  db::Database& db_;
  DetailedPlacerOptions options_;
  std::vector<std::vector<db::CellId>> rowCells_;  ///< x-sorted per row
};

}  // namespace crp::dplace
