#include "dplace/detailed_placer.hpp"

#include <algorithm>
#include <array>

namespace crp::dplace {

namespace {

using db::CellId;
using geom::Coord;
using geom::Point;

}  // namespace

void DetailedPlacer::buildRowLists() {
  rowCells_.assign(db_.numRows(), {});
  for (CellId c = 0; c < db_.numCells(); ++c) {
    // Register fixed macros and multi-row cells in every row they
    // cross, so gap scans and overlap checks in those rows see them.
    // Such cells are never moved (see the mover/partner filters), so
    // the single-row incremental list maintenance stays valid.
    const auto rect = db_.cellRect(c);
    for (const int row : db_.rowsInSpan(rect.ylo, rect.yhi)) {
      rowCells_[row].push_back(c);
    }
  }
  for (auto& row : rowCells_) {
    std::sort(row.begin(), row.end(), [&](CellId a, CellId b) {
      return db_.cell(a).pos.x < db_.cell(b).pos.x;
    });
  }
}

geom::Coord DetailedPlacer::localHpwl(
    const std::vector<CellId>& cells) const {
  std::vector<db::NetId> nets;
  for (const CellId c : cells) {
    for (const db::NetId n : db_.netsOfCell(c)) nets.push_back(n);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  Coord sum = 0;
  for (const db::NetId n : nets) sum += db_.netHpwl(n);
  return sum;
}

bool DetailedPlacer::tryGlobalSwap(CellId cell,
                                   DetailedPlacerReport& report) {
  // Multi-row cells sit out: their moves need multi-row gap/overlap
  // reasoning the single-row scan below does not model.
  if (db_.cell(cell).fixed || db_.isMultiRow(cell) ||
      db_.netsOfCell(cell).empty()) {
    return false;
  }
  const auto& macro = db_.macroOf(cell);
  const Point target = db_.medianPosition(cell);
  const Point current = db_.cell(cell).pos;
  if (geom::manhattan(target, current) <= db_.siteWidth()) return false;

  const int targetRow = db_.rowAt(
      std::clamp(target.y, db_.design().dieArea.ylo,
                 db_.design().dieArea.yhi - 1));
  if (targetRow == db::kInvalidId) return false;
  const Coord siteW = db_.siteWidth();
  const Coord radius = static_cast<Coord>(options_.swapWindowSites) * siteW;

  struct Move {
    bool isSwap;
    CellId other;   // swap partner (isSwap)
    Point gapPos;   // relocation target (!isSwap)
    Coord distance; // to the median target, for ordering
  };
  std::vector<Move> moves;

  const int rowLo = std::max(0, targetRow - options_.swapWindowRows / 2);
  const int rowHi = std::min(db_.numRows() - 1,
                             targetRow + options_.swapWindowRows / 2);
  const int homeRow = db_.rowAt(current.y);
  for (int rowIdx = rowLo; rowIdx <= rowHi; ++rowIdx) {
    const auto& cellsInRow = rowCells_[rowIdx];
    const db::Row& row = db_.row(rowIdx);
    // Gap scan: gaps between consecutive cells (and the row ends).
    Coord cursor = row.origin.x;
    for (std::size_t i = 0; i <= cellsInRow.size(); ++i) {
      const Coord gapEnd =
          i < cellsInRow.size()
              ? db_.cell(cellsInRow[i]).pos.x
              : row.origin.x + static_cast<Coord>(row.numSites) * siteW;
      // The moving cell's own slot is a usable gap too.
      Coord gapStart = cursor;
      if (i < cellsInRow.size()) {
        cursor = db_.cellRect(cellsInRow[i]).xhi;
        if (cellsInRow[i] == cell) {
          // Skip the gap bookkeeping around itself; handled by accepting
          // only strictly improving moves.
        }
      }
      if (gapEnd - gapStart < macro.width) continue;
      // Best site-aligned position inside the gap, closest to target.
      Coord x = geom::snapNearest(target.x, row.origin.x, siteW);
      x = std::clamp(x, gapStart, gapEnd - macro.width);
      x = geom::snapDown(x, row.origin.x, siteW);
      if (x < gapStart) x += siteW;
      if (x + macro.width > gapEnd) continue;
      const Point pos{x, row.origin.y};
      if (std::abs(pos.x - target.x) > radius) continue;
      if (pos == current) continue;
      moves.push_back(Move{false, db::kInvalidId, pos,
                           geom::manhattan(pos, target)});
    }
    // Equal-width swap partners near the target.
    for (const CellId other : cellsInRow) {
      if (other == cell || db_.cell(other).fixed || db_.isMultiRow(other)) {
        continue;
      }
      if (db_.macroOf(other).width != macro.width) continue;
      if (rowIdx == homeRow && other == cell) continue;
      const Point otherPos = db_.cell(other).pos;
      if (std::abs(otherPos.x - target.x) > radius) continue;
      moves.push_back(Move{true, other, {},
                           geom::manhattan(otherPos, target)});
    }
  }
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    return a.distance < b.distance;
  });
  if (moves.size() > 8) moves.resize(8);  // bound evaluation work

  // Incremental row-list maintenance (a full rebuild per accepted move
  // makes refinement quadratic on large designs).
  auto removeFromRow = [&](CellId c, Coord y) {
    const int row = db_.rowAt(y);
    auto& list = rowCells_[row];
    list.erase(std::find(list.begin(), list.end(), c));
  };
  auto insertIntoRow = [&](CellId c) {
    const int row = db_.rowAt(db_.cell(c).pos.y);
    auto& list = rowCells_[row];
    const Coord x = db_.cell(c).pos.x;
    auto it = std::lower_bound(list.begin(), list.end(), x,
                               [&](CellId lhs, Coord value) {
                                 return db_.cell(lhs).pos.x < value;
                               });
    list.insert(it, c);
  };

  for (const Move& move : moves) {
    if (move.isSwap) {
      const CellId other = move.other;
      const Coord before = localHpwl({cell, other});
      const Point a = db_.cell(cell).pos;
      const Point b = db_.cell(other).pos;
      db_.moveCell(cell, b);
      db_.moveCell(other, a);
      if (localHpwl({cell, other}) < before) {
        ++report.swaps;
        removeFromRow(cell, a.y);
        removeFromRow(other, b.y);
        insertIntoRow(cell);
        insertIntoRow(other);
        return true;
      }
      db_.moveCell(cell, a);
      db_.moveCell(other, b);
    } else {
      const Coord before = localHpwl({cell});
      const Point a = db_.cell(cell).pos;
      db_.moveCell(cell, move.gapPos);
      // Verify the spot against the target row's neighbours only (the
      // row lists are kept current, so prev/next suffice).
      bool overlap = false;
      const int gapRow = db_.rowAt(move.gapPos.y);
      const auto rect = db_.cellRect(cell);
      for (const CellId other : rowCells_[gapRow]) {
        if (other != cell && rect.overlaps(db_.cellRect(other))) {
          overlap = true;
          break;
        }
      }
      if (!overlap && localHpwl({cell}) < before) {
        ++report.relocations;
        removeFromRow(cell, a.y);
        insertIntoRow(cell);
        return true;
      }
      db_.moveCell(cell, a);
    }
  }
  return false;
}

bool DetailedPlacer::tryReorder(int rowIdx, std::size_t windowStart,
                                DetailedPlacerReport& report) {
  const auto& cellsInRow = rowCells_[rowIdx];
  const std::size_t k =
      std::min<std::size_t>(options_.reorderWindow,
                            cellsInRow.size() - windowStart);
  if (k < 2) return false;
  std::vector<CellId> window(cellsInRow.begin() + windowStart,
                             cellsInRow.begin() + windowStart + k);
  const Coord rowY = db_.row(rowIdx).origin.y;
  for (const CellId c : window) {
    // Skip windows touching fixed cells, multi-row cells, or cells
    // registered here from another base row (a macro crossing this
    // row): re-packing them at single-row height would be illegal.
    if (db_.cell(c).fixed || db_.isMultiRow(c) ||
        db_.cell(c).pos.y != rowY) {
      return false;
    }
  }
  const Coord x0 = db_.cell(window.front()).pos.x;
  const Coord y = db_.cell(window.front()).pos.y;

  // Save originals.
  std::vector<Point> original;
  for (const CellId c : window) original.push_back(db_.cell(c).pos);

  auto place = [&](const std::vector<CellId>& order) {
    Coord x = x0;
    for (const CellId c : order) {
      db_.moveCell(c, Point{x, y});
      x += db_.macroOf(c).width;
    }
  };

  const Coord before = localHpwl(window);
  std::vector<CellId> perm = window;
  std::sort(perm.begin(), perm.end());
  std::vector<CellId> best = window;
  Coord bestHpwl = before;
  do {
    place(perm);
    const Coord hpwl = localHpwl(window);
    if (hpwl < bestHpwl) {
      bestHpwl = hpwl;
      best = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  if (bestHpwl < before && best != window) {
    place(best);
    ++report.reorders;
    // Update the row list order in place.
    for (std::size_t i = 0; i < k; ++i) {
      rowCells_[rowIdx][windowStart + i] = best[i];
    }
    return true;
  }
  // Restore the original arrangement.
  for (std::size_t i = 0; i < k; ++i) {
    db_.moveCell(window[i], original[i]);
  }
  return false;
}

DetailedPlacerReport DetailedPlacer::run() {
  DetailedPlacerReport report;
  report.hpwlBefore = db_.totalHpwl();
  buildRowLists();

  for (int pass = 0; pass < options_.passes; ++pass) {
    int accepted = 0;
    for (CellId c = 0; c < db_.numCells(); ++c) {
      if (tryGlobalSwap(c, report)) ++accepted;
    }
    for (int rowIdx = 0; rowIdx < db_.numRows(); ++rowIdx) {
      for (std::size_t start = 0;
           start + 2 <= rowCells_[rowIdx].size(); ++start) {
        if (tryReorder(rowIdx, start, report)) ++accepted;
      }
    }
    if (accepted == 0) break;  // converged
  }
  report.hpwlAfter = db_.totalHpwl();
  return report;
}

}  // namespace crp::dplace
