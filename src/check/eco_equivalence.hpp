// Paired-run ECO equivalence checking (docs/eco.md §equivalence).
//
// One run derives a base design from a bmgen spec, takes it through the
// full flow (global route + base CR&P iterations), perturbs it into an
// EcoDelta, and then finishes the job twice from identical copies of
// the post-base state:
//
//   eco       CrpFramework::runEco — dirty-region patch + restricted
//             iterations over the persistent pricing cache
//   scratch   applyEcoDelta + a fresh full global route + full CR&P
//             iterations (the ground-truth re-run)
//
// Both sides must come out of DbAuditor::auditAll() clean (legality,
// demand maps, route invariants — including pricing-cache coherence
// when in-flow audits are armed), and their quality metrics must agree
// within the parity bounds below.  Exact state equality is *not*
// required: the two sides legitimately explore different move sequences
// (different RNG consumption, different candidate scope); the claim the
// checker enforces is "incremental is as sound and as good as
// from-scratch, at a fraction of the wall clock".
//
// The fuzz harness runs this as its fifth leg (crp_fuzz --eco 1) and
// bench_eco reuses the timings for BENCH_eco.json.
#pragma once

#include <cstdint>
#include <string>

#include "bmgen/generator.hpp"
#include "check/audit.hpp"

namespace crp::check {

struct EcoPairOptions {
  int baseIterations = 2;  ///< CR&P k of the shared base flow
  int ecoIterations = 1;   ///< k of both the eco patch and the scratch re-run
  /// In-flow audit level armed on the base flow and both sides.
  AuditLevel auditLevel = AuditLevel::kParanoid;
  int routerThreads = 1;
  /// Perturbation (applied to the post-base state).
  std::uint64_t perturbSeed = 1;
  double perturbFrac = 0.01;

  // Parity bounds, relative to the scratch side.
  double maxWirelengthRatio = 1.10;  ///< eco WL <= scratch WL * this
  double maxViaRatio = 1.25;
  /// eco overflow <= scratch * ratio + slack (absolute slack keeps the
  /// bound meaningful when scratch lands at/near zero overflow).
  double maxOverflowRatio = 1.5;
  double overflowSlack = 10.0;
};

/// Outcome of one paired run.
struct EcoPairResult {
  bool ok = false;
  std::string error;  ///< first failure (audit / parity / exception)

  std::size_t deltaEdits = 0;
  int dirtyNets = 0;
  int scopeCells = 0;
  std::size_t cacheEvictions = 0;

  // Quality on each side (post-everything router stats).
  geom::Coord ecoWirelength = 0;
  geom::Coord scratchWirelength = 0;
  long ecoVias = 0;
  long scratchVias = 0;
  double ecoOverflow = 0.0;
  double scratchOverflow = 0.0;

  // Wall clock of the *incremental-vs-rebuild* portion only (the shared
  // base flow is excluded from both): runEco vs route+CR&P re-run.
  double ecoSeconds = 0.0;
  double ecoPatchSeconds = 0.0;  ///< rip-up/reroute share of ecoSeconds
  double scratchSeconds = 0.0;
  double speedup() const {
    return ecoSeconds > 0.0 ? scratchSeconds / ecoSeconds : 0.0;
  }

  std::uint64_t ecoFingerprint = 0;  ///< flowFingerprint of the eco side
};

/// Runs the paired check for one spec.  Deterministic for a given
/// (spec, options).
EcoPairResult runEcoVsScratch(const bmgen::BenchmarkSpec& spec,
                              const EcoPairOptions& options = {});

}  // namespace crp::check
