#include "check/eco_equivalence.hpp"

#include <exception>
#include <sstream>

#include "bmgen/perturb.hpp"
#include "crp/framework.hpp"
#include "db/eco.hpp"
#include "groute/global_router.hpp"
#include "util/timer.hpp"

namespace crp::check {
namespace {

/// Same fixed framework seed the differential fuzz legs use, so the
/// shared base flow is identical across harnesses.
constexpr std::uint64_t kFrameworkSeed = 11;

core::CrpOptions crpOptionsFor(const EcoPairOptions& options, int iterations) {
  core::CrpOptions crp;
  crp.iterations = iterations;
  crp.seed = kFrameworkSeed;
  crp.threads = 1;
  crp.routerThreads = options.routerThreads;
  crp.pricingCache = true;
  crp.deltaPricing = true;
  crp.auditLevel = options.auditLevel;
  return crp;
}

/// auditAll + error prefixing; true when clean.
bool auditSide(const char* side, const db::Database& db,
               const groute::GlobalRouter& router, std::string* error) {
  const DbAuditor auditor(db, &router);
  const AuditReport report = auditor.auditAll();
  if (report.clean()) return true;
  *error = std::string(side) + " audit:\n" + report.summary();
  return false;
}

}  // namespace

EcoPairResult runEcoVsScratch(const bmgen::BenchmarkSpec& spec,
                              const EcoPairOptions& options) {
  EcoPairResult result;
  try {
    // Shared base flow: design -> GR -> base CR&P.
    db::Database db = bmgen::generateBenchmark(spec);
    groute::GlobalRouterOptions routerOptions;
    routerOptions.routerThreads = options.routerThreads;
    groute::GlobalRouter router(db, routerOptions);
    router.run();
    core::CrpFramework framework(db, router,
                                 crpOptionsFor(options, options.baseIterations));
    framework.run();
    if (!auditSide("post-base", db, router, &result.error)) return result;

    // The delta derives from the post-base state — the state it applies
    // to on both sides.
    bmgen::PerturbOptions perturb;
    perturb.frac = options.perturbFrac;
    perturb.seed = options.perturbSeed;
    const db::EcoDelta delta = bmgen::perturbDesign(db, perturb);
    result.deltaEdits = delta.size();
    if (delta.empty()) {
      result.error = "perturbation produced an empty delta";
      return result;
    }

    // Fork the state before either side touches it.  The database is
    // plain data, so a copy is exact; the scratch side rebuilds its
    // routes from zero anyway.
    db::Database scratchDb = db;

    // Eco side: delta application is inside runEco and inside the
    // timed region — it is part of the incremental cost.
    util::Stopwatch ecoTimer;
    core::EcoOptions eco;
    eco.iterations = options.ecoIterations;
    const core::EcoReport ecoReport = framework.runEco(delta, eco);
    result.ecoSeconds = ecoTimer.seconds();
    result.dirtyNets = ecoReport.dirtyNets;
    result.scopeCells = ecoReport.scopeCells;
    result.cacheEvictions = ecoReport.cacheEvictions;
    result.ecoPatchSeconds = ecoReport.patchSeconds;
    if (!auditSide("eco", db, router, &result.error)) return result;

    // Scratch side: same delta, then the full rebuild.
    util::Stopwatch scratchTimer;
    db::applyEcoDelta(scratchDb, delta);
    groute::GlobalRouter scratchRouter(scratchDb, routerOptions);
    scratchRouter.run();
    core::CrpFramework scratchFramework(
        scratchDb, scratchRouter,
        crpOptionsFor(options, options.ecoIterations));
    scratchFramework.run();
    result.scratchSeconds = scratchTimer.seconds();
    if (!auditSide("scratch", scratchDb, scratchRouter, &result.error)) {
      return result;
    }

    const groute::GlobalRouteStats ecoStats = router.stats();
    const groute::GlobalRouteStats scratchStats = scratchRouter.stats();
    result.ecoWirelength = ecoStats.wirelengthDbu;
    result.scratchWirelength = scratchStats.wirelengthDbu;
    result.ecoVias = ecoStats.vias;
    result.scratchVias = scratchStats.vias;
    result.ecoOverflow = ecoStats.totalOverflow;
    result.scratchOverflow = scratchStats.totalOverflow;
    result.ecoFingerprint = flowFingerprint(db, router);

    if (ecoStats.openNets > 0) {
      result.error =
          "eco side left " + std::to_string(ecoStats.openNets) + " open nets";
      return result;
    }
    const auto fail = [&result](const std::string& what) {
      result.error = "parity: " + what;
      return result;
    };
    if (static_cast<double>(result.ecoWirelength) >
        options.maxWirelengthRatio *
            static_cast<double>(result.scratchWirelength)) {
      std::ostringstream os;
      os << "wirelength eco=" << result.ecoWirelength
         << " scratch=" << result.scratchWirelength << " exceeds ratio "
         << options.maxWirelengthRatio;
      return fail(os.str());
    }
    if (static_cast<double>(result.ecoVias) >
        options.maxViaRatio * static_cast<double>(result.scratchVias)) {
      std::ostringstream os;
      os << "vias eco=" << result.ecoVias << " scratch=" << result.scratchVias
         << " exceeds ratio " << options.maxViaRatio;
      return fail(os.str());
    }
    if (result.ecoOverflow > options.maxOverflowRatio * result.scratchOverflow +
                                 options.overflowSlack) {
      std::ostringstream os;
      os << "overflow eco=" << result.ecoOverflow
         << " scratch=" << result.scratchOverflow << " exceeds ratio "
         << options.maxOverflowRatio << " + slack " << options.overflowSlack;
      return fail(os.str());
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = std::string("exception: ") + e.what();
  }
  return result;
}

}  // namespace crp::check
