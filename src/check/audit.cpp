#include "check/audit.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>

#include "db/legality.hpp"
#include "obs/context.hpp"
#include "obs/flight_recorder.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/guide_io.hpp"

namespace crp::check {
namespace {

// Diagnosability beats completeness for a mass failure: a corrupted
// demand map can dirty thousands of edges, and the first few localize
// the bug as well as all of them.  Per-invariant cap with an explicit
// suppression marker so a capped report never reads as exhaustive.
constexpr int kMaxFailuresPerInvariant = 20;

void record(AuditReport& report, AuditFailure failure) {
  const int already = report.countFor(failure.invariant);
  if (already > kMaxFailuresPerInvariant) return;
  if (already == kMaxFailuresPerInvariant) {
    failure.object = "(additional failures suppressed)";
    failure.expected.clear();
    failure.actual.clear();
  }
  report.failures.push_back(std::move(failure));
}

std::string formatDouble(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

std::string wireEdgeName(const groute::WireEdge& e) {
  std::ostringstream os;
  os << "wire edge L" << e.layer << " (" << e.x << "," << e.y << ")";
  return os.str();
}

std::string viaEdgeName(const groute::ViaEdge& e) {
  std::ostringstream os;
  os << "via edge L" << e.layer << "->L" << e.layer + 1 << " (" << e.x << ","
     << e.y << ")";
  return os.str();
}

std::string nodeName(const groute::GPoint& p) {
  std::ostringstream os;
  os << "node L" << p.layer << " (" << p.x << "," << p.y << ")";
  return os.str();
}

std::string segmentName(const groute::RouteSegment& seg) {
  std::ostringstream os;
  os << "segment (" << seg.a.layer << "," << seg.a.x << "," << seg.a.y
     << ")-(" << seg.b.layer << "," << seg.b.x << "," << seg.b.y << ")";
  return os.str();
}

std::string terminalName(const groute::GPoint& p) {
  std::ostringstream os;
  os << "terminal L" << p.layer << " (" << p.x << "," << p.y << ")";
  return os.str();
}

/// First line number + content where two texts diverge, for the
/// round-trip failure records.
std::string firstTextDivergence(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  int lineNo = 0;
  while (true) {
    ++lineNo;
    const bool okA = static_cast<bool>(std::getline(sa, la));
    const bool okB = static_cast<bool>(std::getline(sb, lb));
    if (!okA && !okB) return "texts identical";
    if (la != lb || okA != okB) {
      std::ostringstream os;
      os << "line " << lineNo << ": \"" << (okA ? la : std::string("<eof>"))
         << "\" vs \"" << (okB ? lb : std::string("<eof>")) << "\"";
      return os.str();
    }
  }
}

}  // namespace

// ---- names / parsing --------------------------------------------------------

const char* auditLevelName(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff:
      return "off";
    case AuditLevel::kPhaseBoundary:
      return "phase-boundary";
    case AuditLevel::kParanoid:
      return "paranoid";
  }
  return "unknown";
}

std::optional<AuditLevel> auditLevelFromString(const std::string& text) {
  if (text == "off" || text == "none") return AuditLevel::kOff;
  if (text == "phase" || text == "phase-boundary")
    return AuditLevel::kPhaseBoundary;
  if (text == "paranoid" || text == "full") return AuditLevel::kParanoid;
  return std::nullopt;
}

const char* invariantName(Invariant invariant) {
  switch (invariant) {
    case Invariant::kPlacementLegality:
      return "placement-legality";
    case Invariant::kDemandExactness:
      return "demand-exactness";
    case Invariant::kRouteValidity:
      return "route-validity";
    case Invariant::kPricingCoherence:
      return "pricing-coherence";
    case Invariant::kGuideRoundTrip:
      return "guide-round-trip";
    case Invariant::kDefRoundTrip:
      return "def-round-trip";
    case Invariant::kBlockageDemand:
      return "blockage-demand-exactness";
    case Invariant::kMacroLegality:
      return "macro-overlap-legality";
    case Invariant::kHeightAlignment:
      return "height-row-alignment";
    case Invariant::kTilePartitionExactness:
      return "tile-partition-exactness";
  }
  return "unknown";
}

// ---- AuditFailure / AuditReport ---------------------------------------------

std::string AuditFailure::describe() const {
  std::ostringstream os;
  os << "[" << invariantName(invariant) << "] " << object;
  if (!expected.empty() || !actual.empty()) {
    os << ": expected " << expected << ", actual " << actual;
  }
  return os.str();
}

int AuditReport::countFor(Invariant invariant) const {
  int count = 0;
  for (const AuditFailure& failure : failures) {
    if (failure.invariant == invariant) ++count;
  }
  return count;
}

bool AuditReport::onlyFailure(Invariant invariant) const {
  if (failures.empty()) return false;
  return std::all_of(failures.begin(), failures.end(),
                     [invariant](const AuditFailure& failure) {
                       return failure.invariant == invariant;
                     });
}

std::string AuditReport::summary() const {
  if (clean()) return "";
  std::ostringstream os;
  os << failures.size() << " audit failure(s) across " << invariantsChecked
     << " invariant(s) checked:\n";
  for (const AuditFailure& failure : failures) {
    os << "  " << failure.describe() << "\n";
  }
  return os.str();
}

// ---- standalone building blocks ---------------------------------------------

void auditRoute(const groute::RoutingGraph& graph,
                const groute::NetRoute& route,
                const std::vector<groute::GPoint>& terminals,
                const std::string& object, AuditReport& report) {
  if (terminals.size() < 2) return;  // nothing to route; trivially valid

  if (!route.routed) {
    record(report, {Invariant::kRouteValidity, object,
                    "routed net covering " + std::to_string(terminals.size()) +
                        " terminals",
                    "unrouted (open net)"});
    return;
  }

  // Per-segment geometry: endpoints on the grid, wire runs straight and
  // direction-legal on their layer, via stacks within the layer range.
  bool geometryClean = true;
  for (const groute::RouteSegment& seg : route.segments) {
    if (!graph.validNode(seg.a) || !graph.validNode(seg.b)) {
      record(report, {Invariant::kRouteValidity, object,
                      "segment endpoints inside the gcell grid",
                      segmentName(seg) + " out of bounds"});
      geometryClean = false;
      continue;
    }
    if (seg.isVia()) {
      if (seg.a.x != seg.b.x || seg.a.y != seg.b.y) {
        record(report, {Invariant::kRouteValidity, object,
                        "via stack at a single (x,y) column",
                        segmentName(seg) + " changes both layer and position"});
        geometryClean = false;
      }
      continue;
    }
    if (seg.a.x != seg.b.x && seg.a.y != seg.b.y) {
      record(report, {Invariant::kRouteValidity, object,
                      "axis-aligned wire run",
                      segmentName(seg) + " bends within one layer"});
      geometryClean = false;
      continue;
    }
    const db::LayerDir dir = graph.layerDir(seg.a.layer);
    const bool horizontal = seg.a.y == seg.b.y && seg.a.x != seg.b.x;
    const bool vertical = seg.a.x == seg.b.x && seg.a.y != seg.b.y;
    if ((horizontal && dir != db::LayerDir::kHorizontal) ||
        (vertical && dir != db::LayerDir::kVertical)) {
      record(report, {Invariant::kRouteValidity, object,
                      std::string("wire run along the layer's preferred "
                                  "direction (") +
                          (dir == db::LayerDir::kHorizontal ? "H" : "V") + ")",
                      segmentName(seg) + " runs against it"});
      geometryClean = false;
      continue;
    }
    // Every wire edge the run crosses must exist (guards the grid's
    // upper boundary, which validNode alone does not).
    const groute::RouteSegment n = groute::normalized(seg);
    for (int x = n.a.x, y = n.a.y; x < n.b.x || y < n.b.y;
         horizontal ? ++x : ++y) {
      const groute::WireEdge e{n.a.layer, x, y};
      if (!graph.validWireEdge(e)) {
        record(report, {Invariant::kRouteValidity, object,
                        "wire edges inside the routing graph",
                        segmentName(seg) + " crosses invalid " +
                            wireEdgeName(e)});
        geometryClean = false;
        break;
      }
    }
  }

  // Terminal coverage, per terminal for diagnosability: the strict
  // contract (route.hpp) requires the terminal's (x,y) column to appear
  // in some segment.
  for (const groute::GPoint& t : terminals) {
    const bool covered = std::any_of(
        route.segments.begin(), route.segments.end(),
        [&t](const groute::RouteSegment& seg) {
          if (seg.isVia() || seg.a.x == seg.b.x || seg.a.y == seg.b.y) {
            const groute::RouteSegment n = groute::normalized(seg);
            if (seg.isVia()) return n.a.x == t.x && n.a.y == t.y;
            if (n.a.y == n.b.y)
              return n.a.y == t.y && n.a.x <= t.x && t.x <= n.b.x;
            if (n.a.x == n.b.x)
              return n.a.x == t.x && n.a.y <= t.y && t.y <= n.b.y;
          }
          return false;
        });
    if (!covered) {
      record(report, {Invariant::kRouteValidity, object,
                      terminalName(t) + " covered by a segment column",
                      "no segment touches the terminal's (x,y) column"});
    }
  }

  // Single-component check through the canonical oracle, so the audit's
  // notion of connectedness can never drift from the router's.
  if (geometryClean && !groute::routeConnectsTerminals(route, terminals)) {
    record(report, {Invariant::kRouteValidity, object,
                    "one connected component covering all terminals",
                    "segment graph is disconnected"});
  }
}

void auditDemandAgainstRoutes(
    const db::Database& db, const groute::RoutingGraph& graph,
    const std::vector<const groute::NetRoute*>& routes, AuditReport& report) {
  // From-scratch reference: a fresh graph with the same cost model,
  // charged with exactly the committed routes.  Fixed usage (U_f) is a
  // construction-time snapshot in both graphs and cells may have moved
  // since `graph` was built, so the diff covers only route-induced
  // state; the Eq. 9 demand comparison subtracts each graph's own U_f.
  groute::RoutingGraph fresh(db, graph.config());
  for (const groute::NetRoute* route : routes) {
    if (route != nullptr && route->routed) fresh.applyRoute(*route, +1);
  }

  const db::GCellGrid& grid = graph.grid();
  for (int layer = 0; layer < graph.numLayers(); ++layer) {
    for (int y = 0; y < grid.countY(); ++y) {
      for (int x = 0; x < grid.countX(); ++x) {
        const groute::WireEdge e{layer, x, y};
        if (graph.validWireEdge(e)) {
          if (graph.wireUsage(e) != fresh.wireUsage(e)) {
            record(report, {Invariant::kDemandExactness, wireEdgeName(e),
                            "usage " + formatDouble(fresh.wireUsage(e)),
                            "usage " + formatDouble(graph.wireUsage(e))});
          } else {
            // Eq. 9 demand net of the static fixed term: exposes a via
            // bookkeeping break even when wire usage agrees.
            const double expected = fresh.demand(e) - fresh.fixedUsage(e);
            const double actual = graph.demand(e) - graph.fixedUsage(e);
            if (expected != actual) {
              record(report, {Invariant::kDemandExactness, wireEdgeName(e),
                              "demand-U_f " + formatDouble(expected),
                              "demand-U_f " + formatDouble(actual)});
            }
          }
        }
        const groute::GPoint node{layer, x, y};
        if (graph.viaCount(node) != fresh.viaCount(node)) {
          record(report,
                 {Invariant::kDemandExactness, nodeName(node),
                  "via count " + std::to_string(fresh.viaCount(node)),
                  "via count " + std::to_string(graph.viaCount(node))});
        }
        if (layer + 1 < graph.numLayers()) {
          const groute::ViaEdge v{layer, x, y};
          if (graph.viaUsage(v) != fresh.viaUsage(v)) {
            record(report, {Invariant::kDemandExactness, viaEdgeName(v),
                            "usage " + formatDouble(fresh.viaUsage(v)),
                            "usage " + formatDouble(graph.viaUsage(v))});
          }
        }
      }
    }
  }

  if (graph.totalWireDbu() != fresh.totalWireDbu()) {
    record(report, {Invariant::kDemandExactness, "total wirelength",
                    std::to_string(fresh.totalWireDbu()) + " dbu",
                    std::to_string(graph.totalWireDbu()) + " dbu"});
  }
  if (graph.totalVias() != fresh.totalVias()) {
    record(report, {Invariant::kDemandExactness, "total vias",
                    std::to_string(fresh.totalVias()),
                    std::to_string(graph.totalVias())});
  }
}

void auditCachedPrices(
    const groute::PatternRouter& pattern,
    const std::vector<std::pair<std::vector<groute::GPoint>, double>>& entries,
    AuditReport& report) {
  groute::PatternRouter::Scratch scratch;
  for (const auto& [terminals, cachedPrice] : entries) {
    const double freshPrice = pattern.priceTree(terminals, scratch);
    if (freshPrice != cachedPrice) {
      std::ostringstream object;
      object << "cached price for " << terminals.size() << " terminals {";
      for (std::size_t i = 0; i < terminals.size(); ++i) {
        if (i > 0) object << " ";
        object << "(" << terminals[i].layer << "," << terminals[i].x << ","
               << terminals[i].y << ")";
      }
      object << "}";
      record(report, {Invariant::kPricingCoherence, object.str(),
                      formatDouble(freshPrice), formatDouble(cachedPrice)});
    }
  }
}

// ---- DbAuditor --------------------------------------------------------------

DbAuditor::DbAuditor(const db::Database& db, const groute::GlobalRouter* router)
    : db_(db), router_(router) {}

AuditReport DbAuditor::auditAll() const {
  AuditReport report;
  auditPlacement(report);
  auditDefRoundTrip(report);
  if (router_ != nullptr) {
    auditRoutes(report);
    auditDemand(report);
    auditGuideRoundTrip(report);
    auditBlockages(report);
    auditTilePartition(report);
  }
  return report;
}

void DbAuditor::auditPlacement(AuditReport& report) const {
  // One checkPlacement scan covers three catalog entries; each
  // violation is classified to the invariant it breaks so the mutation
  // tests can pin "caught by exactly the named invariant".
  report.invariantsChecked += 3;
  for (const db::PlacementViolation& v : db::checkPlacement(db_)) {
    const std::string object =
        v.cell != db::kInvalidId ? "cell " + db_.cell(v.cell).name : "die";
    Invariant invariant = Invariant::kPlacementLegality;
    switch (v.kind) {
      case db::ViolationKind::kBadRowSpan:
        invariant = Invariant::kHeightAlignment;
        break;
      case db::ViolationKind::kMacroOverlap:
        invariant = Invariant::kMacroLegality;
        break;
      case db::ViolationKind::kOutsideDie:
        if (v.cell != db::kInvalidId && db_.cell(v.cell).fixed) {
          invariant = Invariant::kMacroLegality;
        }
        break;
      default:
        break;
    }
    record(report, {invariant, object, "legal placement", v.describe(db_)});
  }
}

void DbAuditor::auditBlockages(AuditReport& report) const {
  if (router_ == nullptr) return;
  ++report.invariantsChecked;
  const groute::RoutingGraph& graph = router_->graph();
  // The fixed-usage and hard-blocked maps are construction-time
  // snapshots; rebuilding from the current db must reproduce them
  // exactly (fixed cells never move, so any diff means the snapshot
  // contract was broken or the charge arithmetic diverged).
  groute::RoutingGraph fresh(db_, graph.config());
  for (int layer = 0; layer < graph.numLayers(); ++layer) {
    for (int y = 0; y < graph.wireEdgeCountY(layer); ++y) {
      for (int x = 0; x < graph.wireEdgeCountX(layer); ++x) {
        const groute::WireEdge e{layer, x, y};
        if (graph.fixedUsage(e) != fresh.fixedUsage(e)) {
          record(report, {Invariant::kBlockageDemand, wireEdgeName(e),
                          "U_f " + formatDouble(fresh.fixedUsage(e)),
                          "U_f " + formatDouble(graph.fixedUsage(e))});
        }
        if (graph.blockedFraction(e) != fresh.blockedFraction(e)) {
          record(report,
                 {Invariant::kBlockageDemand, wireEdgeName(e),
                  "blocked fraction " + formatDouble(fresh.blockedFraction(e)),
                  "blocked fraction " +
                      formatDouble(graph.blockedFraction(e))});
        }
      }
    }
  }
  // No committed route may cross a hard-blocked edge: infinite-cost
  // edges are impassable, so a route over one means a router bypassed
  // the cost model (or demand was edited behind the router's back).
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    const groute::NetRoute& route = router_->route(net);
    if (!route.routed) continue;
    const std::string object = "net " + db_.net(net).name;
    for (const groute::RouteSegment& rawSeg : route.segments) {
      const groute::RouteSegment seg = groute::normalized(rawSeg);
      if (seg.isVia()) continue;
      const bool horizontal = seg.a.y == seg.b.y && seg.a.x != seg.b.x;
      for (int x = seg.a.x, y = seg.a.y; x < seg.b.x || y < seg.b.y;
           horizontal ? ++x : ++y) {
        const groute::WireEdge e{seg.a.layer, x, y};
        if (graph.validWireEdge(e) && graph.hardBlocked(e)) {
          record(report, {Invariant::kBlockageDemand, object,
                          "route avoids hard-blocked edges",
                          segmentName(seg) + " crosses blocked " +
                              wireEdgeName(e)});
          break;
        }
      }
    }
  }
}

void DbAuditor::auditTilePartition(AuditReport& report) const {
  if (router_ == nullptr) return;
  const groute::TileGrid* tiles = router_->tileGrid();
  if (tiles == nullptr) return;  // tiling off: skipped, not failed
  ++report.invariantsChecked;

  // Core rects must partition the GCell grid exactly.  The full-grid
  // tileAt scan proves every gcell maps to a tile whose core contains
  // it; the area sum then rules out overlap (a double-covered gcell
  // would push the sum past the grid area).
  long coreArea = 0;
  for (int t = 0; t < tiles->numTiles(); ++t) {
    coreArea += tiles->tileRect(t).area();
  }
  const long gridArea =
      static_cast<long>(tiles->countX()) * tiles->countY();
  if (coreArea != gridArea) {
    record(report, {Invariant::kTilePartitionExactness, "tile core rects",
                    "areas summing to " + std::to_string(gridArea),
                    "sum " + std::to_string(coreArea)});
  }
  for (int y = 0; y < tiles->countY(); ++y) {
    for (int x = 0; x < tiles->countX(); ++x) {
      const int t = tiles->tileAt(x, y);
      if (t < 0 || t >= tiles->numTiles() ||
          !tiles->tileRect(t).contains(x, y)) {
        std::ostringstream object;
        object << "gcell (" << x << "," << y << ")";
        record(report, {Invariant::kTilePartitionExactness, object.str(),
                        "tileAt returns the tile whose core contains it",
                        "tile " + std::to_string(t)});
      }
    }
  }

  // Halo consistency: every haloed rect must be its core expanded by
  // the grid's halo width, clamped to the die — which makes adjacent
  // halos symmetric around each shared core boundary.
  for (int t = 0; t < tiles->numTiles(); ++t) {
    groute::GCellRect expected = tiles->tileRect(t);
    expected.expand(tiles->halo(), tiles->countX() - 1, tiles->countY() - 1);
    const groute::GCellRect actual = tiles->haloedRect(t);
    if (expected.xlo != actual.xlo || expected.ylo != actual.ylo ||
        expected.xhi != actual.xhi || expected.yhi != actual.yhi) {
      record(report,
             {Invariant::kTilePartitionExactness,
              "haloed rect of tile " + std::to_string(t),
              "core expanded by halo " + std::to_string(tiles->halo()),
              "inconsistent rect"});
    }
  }

  // View quiescence: between batches every per-tile view must have
  // merged — zero pending ops and zero delta residue — so the per-tile
  // views sum exactly to the global demand the graph already carries.
  const groute::RoutingGraph& graph = router_->graph();
  for (const groute::TileDemandView* view : router_->tileViews()) {
    const std::string object = "tile " + std::to_string(view->tile());
    if (view->hasPending()) {
      record(report, {Invariant::kTilePartitionExactness, object,
                      "quiescent view (0 pending ops)",
                      std::to_string(view->pendingOps()) + " pending op(s)"});
    }
    const groute::GCellRect& cov = view->coverage();
    bool residue = false;
    for (int layer = 0; layer < graph.numLayers() && !residue; ++layer) {
      for (int y = cov.ylo; y <= cov.yhi && !residue; ++y) {
        for (int x = cov.xlo; x <= cov.xhi && !residue; ++x) {
          if (view->wireDelta({layer, x, y}) != 0.0 ||
              view->viaCountDelta({layer, x, y}) != 0 ||
              (layer + 1 < graph.numLayers() &&
               view->viaDelta({layer, x, y}) != 0.0)) {
            std::ostringstream where;
            where << object << " slot L" << layer << " (" << x << "," << y
                  << ")";
            record(report, {Invariant::kTilePartitionExactness, where.str(),
                            "zero demand-delta residue", "nonzero delta"});
            residue = true;
          }
        }
      }
    }
  }
}

void DbAuditor::auditDemand(AuditReport& report) const {
  if (router_ == nullptr) return;
  ++report.invariantsChecked;
  std::vector<const groute::NetRoute*> routes;
  routes.reserve(static_cast<std::size_t>(db_.numNets()));
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    routes.push_back(&router_->route(net));
  }
  auditDemandAgainstRoutes(db_, router_->graph(), routes, report);
}

void DbAuditor::auditRoutes(AuditReport& report) const {
  if (router_ == nullptr) return;
  ++report.invariantsChecked;
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    const std::vector<groute::GPoint> terminals = router_->netTerminals(net);
    const groute::NetRoute& route = router_->route(net);
    const std::string object = "net " + db_.net(net).name;
    if (route.routed && route.net != net) {
      record(report, {Invariant::kRouteValidity, object,
                      "route tagged with net id " + std::to_string(net),
                      "tagged " + std::to_string(route.net)});
    }
    auditRoute(router_->graph(), route, terminals, object, report);
  }
}

void DbAuditor::auditGuideRoundTrip(AuditReport& report) const {
  if (router_ == nullptr) return;
  ++report.invariantsChecked;
  const std::vector<lefdef::NetGuide> guides = router_->buildGuides();
  std::ostringstream first;
  lefdef::writeGuides(first, db_, guides);
  const std::vector<lefdef::NetGuide> parsed =
      lefdef::parseGuides(first.str(), db_.tech());

  if (parsed.size() != guides.size()) {
    record(report, {Invariant::kGuideRoundTrip, "guide file",
                    std::to_string(guides.size()) + " nets",
                    std::to_string(parsed.size()) + " nets after parse"});
    return;
  }
  for (std::size_t i = 0; i < guides.size(); ++i) {
    const std::string object = "guides of net " + guides[i].net;
    if (parsed[i].net != guides[i].net) {
      record(report, {Invariant::kGuideRoundTrip, object, guides[i].net,
                      parsed[i].net});
      continue;
    }
    if (parsed[i].rects != guides[i].rects) {
      record(report,
             {Invariant::kGuideRoundTrip, object,
              std::to_string(guides[i].rects.size()) + " rects (verbatim)",
              std::to_string(parsed[i].rects.size()) + " rects, content "
                                                       "differs"});
    }
  }
  // Belt and suspenders: write-again must reproduce the bytes, so a
  // writer/parser asymmetry the structural diff misses still fails.
  std::ostringstream second;
  lefdef::writeGuides(second, db_, parsed);
  if (first.str() != second.str()) {
    record(report, {Invariant::kGuideRoundTrip, "guide file text",
                    "write(parse(write)) byte-identical",
                    firstTextDivergence(first.str(), second.str())});
  }
}

void DbAuditor::auditDefRoundTrip(AuditReport& report) const {
  ++report.invariantsChecked;
  std::ostringstream first;
  lefdef::writeDef(first, db_);
  db::Design reparsed;
  try {
    reparsed = lefdef::parseDef(first.str(), db_.tech(), db_.library());
  } catch (const std::exception& e) {
    record(report, {Invariant::kDefRoundTrip, "DEF text",
                    "parseable by def_parser", std::string("throws: ") +
                                                   e.what()});
    return;
  }
  db::Database redb(db_.tech(), db_.library(), std::move(reparsed));
  std::ostringstream second;
  lefdef::writeDef(second, redb);
  if (first.str() != second.str()) {
    record(report, {Invariant::kDefRoundTrip, "DEF text",
                    "write(parse(write)) byte-identical",
                    firstTextDivergence(first.str(), second.str())});
  }
}

// ---- flow fingerprint -------------------------------------------------------

namespace {

struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ull;
  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  void mix(const groute::GPoint& p) {
    mix(static_cast<std::uint64_t>(p.layer));
    mix(static_cast<std::uint64_t>(p.x));
    mix(static_cast<std::uint64_t>(p.y));
  }
};

}  // namespace

obs::Json auditReportToJson(const AuditReport& report) {
  obs::Json doc = obs::Json::object();
  doc.set("invariantsChecked", report.invariantsChecked);
  obs::Json failures = obs::Json::array();
  for (const AuditFailure& failure : report.failures) {
    obs::Json f = obs::Json::object();
    f.set("invariant", invariantName(failure.invariant));
    f.set("object", failure.object);
    f.set("expected", failure.expected);
    f.set("actual", failure.actual);
    failures.append(std::move(f));
  }
  doc.set("failures", std::move(failures));
  return doc;
}

std::string writeFlightRecorderDump(const AuditReport& report,
                                    const std::string& dir,
                                    const std::string& context) {
  std::string slug;
  for (const char c : context) {
    slug += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
             c == '_')
                ? c
                : '-';
  }
  if (slug.empty()) slug = "audit";
  try {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/flight_" + slug + ".json";
    obs::Json trigger = obs::Json::object();
    trigger.set("source", "audit");
    trigger.set("context", context);
    trigger.set("audit", auditReportToJson(report));
    // Ambient context: a session's audit failure dumps that session's
    // ring, not the process-default one.
    if (!obs::currentContext().flightRecorder().dumpToFile(
            path, std::move(trigger))) {
      return {};
    }
    return path;
  } catch (const std::exception&) {
    return {};
  }
}

std::uint64_t flowFingerprint(const db::Database& db,
                              const groute::GlobalRouter& router) {
  Fnv1a fnv;
  fnv.mix(static_cast<std::uint64_t>(db.numCells()));
  for (db::CellId id = 0; id < db.numCells(); ++id) {
    const db::Component& cell = db.cell(id);
    fnv.mix(static_cast<std::uint64_t>(cell.pos.x));
    fnv.mix(static_cast<std::uint64_t>(cell.pos.y));
  }
  fnv.mix(static_cast<std::uint64_t>(db.numNets()));
  for (db::NetId net = 0; net < db.numNets(); ++net) {
    const groute::NetRoute& route = router.route(net);
    fnv.mix(route.routed ? 1u : 0u);
    fnv.mix(static_cast<std::uint64_t>(route.segments.size()));
    for (const groute::RouteSegment& seg : route.segments) {
      const groute::RouteSegment n = groute::normalized(seg);
      fnv.mix(n.a);
      fnv.mix(n.b);
    }
  }
  fnv.mix(static_cast<std::uint64_t>(router.graph().totalWireDbu()));
  fnv.mix(static_cast<std::uint64_t>(router.graph().totalVias()));
  return fnv.hash;
}

}  // namespace crp::check
