// The invariant-audit subsystem: a first-class checking layer for the
// cross-module contracts the CR&P flow relies on implicitly.
//
// The paper assumes (without ever stating them as checkable predicates)
// that placement stays legal after every ILP-legalizer/commit step
// (Alg. 2), that the GCell demand maps stay conserved through rip-up
// and reroute (§IV.B.5), and that every committed net route stays a
// connected, terminal-covering tree — Eq. 9/10 pricing is meaningless
// over a broken route.  DbAuditor audits a whole database (plus an
// optional attached GlobalRouter) against a catalog of named
// invariants and returns structured AuditFailure records instead of
// bare booleans, so a failing audit says *which* object broke *which*
// contract and what the expected/actual values were.
//
// The same catalog serves three consumers:
//   * tests — via the building-block helpers (auditRoute,
//     auditDemandAgainstRoutes, auditCachedPrices) and the
//     EXPECT_CLEAN_AUDIT macro in tests/test_helpers.hpp,
//   * the fuzz harness — FuzzCampaign (fuzz.hpp) audits after every
//     flow phase and diffs run fingerprints across paired configs, and
//   * production runs — CrpOptions::auditLevel arms the framework's
//     phase-boundary audits (off / phase-boundary / paranoid), which
//     publish check.* observability counters and throw AuditError on
//     the first dirty report.
//
// Demand-exactness note: RoutingGraph's fixed usage (U_f) is a
// construction-time snapshot of blockages and macro obstructions, by
// design (the flow never rebuilds it when cells move).  The audit
// therefore recomputes and diffs only the route-induced state — wire
// and via usage, via counts, and the wire/via totals — which is
// exactly what the incremental applyRoute bookkeeping maintains.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "groute/global_router.hpp"
#include "groute/pattern_route.hpp"
#include "groute/route.hpp"
#include "groute/routing_graph.hpp"
#include "obs/json.hpp"

namespace crp::check {

// ---- audit levels (the CrpOptions knob) -------------------------------------

/// How much checking production code performs while the flow runs.
enum class AuditLevel {
  kOff = 0,            ///< no audits (the default; zero overhead)
  kPhaseBoundary = 1,  ///< audit once per iteration, after the UD commit
  kParanoid = 2,       ///< audit after every phase + cache coherence +
                       ///< write/parse round-trips at iteration ends
};

const char* auditLevelName(AuditLevel level);

/// Parses "off" / "phase" / "phase-boundary" / "paranoid" (CLI flags);
/// nullopt on anything else.
std::optional<AuditLevel> auditLevelFromString(const std::string& text);

// ---- the invariant catalog --------------------------------------------------

enum class Invariant {
  kPlacementLegality,  ///< die/row/site alignment, overlaps (db/legality)
  kDemandExactness,    ///< incremental demand maps == from-scratch recompute
  kRouteValidity,      ///< connected segment graph, pins covered, in bounds
  kPricingCoherence,   ///< cached price == from-scratch priceTree
  kGuideRoundTrip,     ///< guide write -> parse reproduces the guides
  kDefRoundTrip,       ///< DEF write -> parse -> write is byte-identical
  kBlockageDemand,     ///< U_f/blocked-map snapshot still matches the db;
                       ///< no route crosses a hard-blocked edge
  kMacroLegality,      ///< no cell overlaps a fixed macro; macros in-die
  kHeightAlignment,    ///< multi-row cells aligned to whole row spans
  kTilePartitionExactness,  ///< tile cores partition the GCell grid,
                            ///< halos match neighbor geometry, views
                            ///< quiescent (no pending ops / residue)
};
inline constexpr int kNumInvariants = 10;

const char* invariantName(Invariant invariant);

// ---- structured failures ----------------------------------------------------

/// One violated invariant instance.  Never a bare bool: the record
/// carries the object that broke the contract and the expected/actual
/// values, so a failing audit (or fuzz seed) is diagnosable from the
/// report alone.
struct AuditFailure {
  Invariant invariant = Invariant::kPlacementLegality;
  std::string object;    ///< e.g. "net net_17", "wire edge L2 (4,1)"
  std::string expected;
  std::string actual;

  /// "[demand-exactness] wire edge L2 (4,1): expected 2, actual 3"
  std::string describe() const;
};

/// Outcome of one audit pass.
struct AuditReport {
  std::vector<AuditFailure> failures;
  int invariantsChecked = 0;  ///< catalog entries actually evaluated

  bool clean() const { return failures.empty(); }
  /// Failures recorded against one invariant.
  int countFor(Invariant invariant) const;
  /// True when every failure belongs to `invariant` and there is at
  /// least one (the mutation tests' "caught by exactly the expected
  /// invariant" predicate).
  bool onlyFailure(Invariant invariant) const;
  /// Multi-line human-readable dump (empty string when clean).
  std::string summary() const;
};

/// Thrown by production audit points (CrpFramework, FuzzCampaign) when
/// a report is dirty; carries the report for programmatic inspection.
class AuditError : public std::runtime_error {
 public:
  AuditError(std::string message, AuditReport report)
      : std::runtime_error(std::move(message)), report_(std::move(report)) {}
  const AuditReport& report() const { return report_; }

 private:
  AuditReport report_;
};

// ---- the auditor ------------------------------------------------------------

class DbAuditor {
 public:
  /// Audits `db` (and, when given, `router`'s routes/demand/guides).
  /// Both must outlive the auditor.  Router-dependent invariants are
  /// skipped — not failed — when no router is attached.
  explicit DbAuditor(const db::Database& db,
                     const groute::GlobalRouter* router = nullptr);

  /// Runs every applicable invariant of the catalog.
  AuditReport auditAll() const;

  // Individual invariants (appended into an existing report so callers
  // can compose a custom pass).
  /// Covers three catalog entries (placement-legality, macro-overlap
  /// legality, height/row alignment) from one db::checkPlacement scan,
  /// classifying each violation to its invariant.
  void auditPlacement(AuditReport& report) const;
  void auditDemand(AuditReport& report) const;         ///< needs router
  void auditRoutes(AuditReport& report) const;         ///< needs router
  void auditGuideRoundTrip(AuditReport& report) const; ///< needs router
  void auditDefRoundTrip(AuditReport& report) const;
  /// Blockage-demand exactness: the router graph's fixed-usage and
  /// hard-blocked maps must equal a from-scratch rebuild (they are
  /// construction-time snapshots, valid only while obstructed cells
  /// stay put — exactly what fixed-only hard blocking guarantees), and
  /// no committed route may cross a hard-blocked edge.  Needs router.
  void auditBlockages(AuditReport& report) const;
  /// Tile-partition exactness (docs/tiling.md): the tile core rects
  /// partition the GCell grid exactly (disjoint, covering), every halo
  /// rect is the core expanded by the grid's halo width clamped to the
  /// die, tileAt is consistent with the core partition, and — at
  /// phase-boundary quiescence — every TileDemandView carries zero
  /// pending ops and zero delta residue, i.e. per-tile views sum
  /// exactly to the global demand the graph already holds.  Skipped
  /// (not failed) when no router is attached or tiling is off.
  void auditTilePartition(AuditReport& report) const;

 private:
  const db::Database& db_;
  const groute::GlobalRouter* router_;
};

// ---- standalone building blocks (shared by tests and the auditor) -----------

/// Route validity of a single route against its terminal set: segments
/// inside the graph and direction-legal, one connected component,
/// every terminal column covered.  `object` labels failures (net name).
void auditRoute(const groute::RoutingGraph& graph,
                const groute::NetRoute& route,
                const std::vector<groute::GPoint>& terminals,
                const std::string& object, AuditReport& report);

/// Demand-map exactness: rebuilds a fresh RoutingGraph from `db` (same
/// cost config as `graph`), applies exactly `routes`, and diffs every
/// route-induced counter — per-edge wire/via usage, per-node via
/// counts, wire/via totals — against `graph`.  Pass an empty list to
/// assert the graph carries no residual demand (conservation).
void auditDemandAgainstRoutes(const db::Database& db,
                              const groute::RoutingGraph& graph,
                              const std::vector<const groute::NetRoute*>& routes,
                              AuditReport& report);

/// Pricing-cache coherence: every (canonical terminal set, cached
/// price) entry must equal a from-scratch PatternRouter::priceTree on
/// the pattern router's current graph state.
void auditCachedPrices(
    const groute::PatternRouter& pattern,
    const std::vector<std::pair<std::vector<groute::GPoint>, double>>& entries,
    AuditReport& report);

// ---- flight-recorder dumps --------------------------------------------------

/// Structured JSON form of an audit report (the failures array plus
/// invariantsChecked) — the trigger payload of flight-recorder dumps.
obs::Json auditReportToJson(const AuditReport& report);

/// Dumps the process-wide obs::FlightRecorder (recent events + latest
/// heatmap) triggered by `report`'s failures into
/// `dir/flight_<context>.json`, creating `dir` on demand.  Returns the
/// written path, or an empty string when the write fails (the caller's
/// failure handling must not die on a diagnostic I/O error).
std::string writeFlightRecorderDump(const AuditReport& report,
                                    const std::string& dir,
                                    const std::string& context);

// ---- run fingerprint --------------------------------------------------------

/// Deterministic 64-bit fingerprint of the flow-visible state: every
/// cell position, every committed route's segments, and the router's
/// wire/via totals.  Unlike RunReport::fingerprint() this reads the
/// database and router directly, so it is identical whether or not
/// observability was enabled — the property the differential fuzz
/// harness needs for its obs-on vs obs-off pairing.
std::uint64_t flowFingerprint(const db::Database& db,
                              const groute::GlobalRouter& router);

}  // namespace crp::check
