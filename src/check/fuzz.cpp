#include "check/fuzz.hpp"

#include <exception>

#include "check/eco_equivalence.hpp"
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "crp/framework.hpp"
#include "db/database.hpp"
#include "groute/global_router.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"

namespace crp::check {
namespace {

/// One paired configuration of the differential harness.
struct LegConfig {
  std::string name;
  int routerThreads = 1;
  bool cache = true;
  bool obsOn = true;
  int tileRows = 1;  ///< > 1 (or cols > 1) arms the tile decomposition
  int tileCols = 1;
};

/// CR&P seed used inside every leg.  Fixed (not the fuzz seed): the
/// design already varies per seed, and a constant framework seed keeps
/// a leg's annealing draws identical across configurations by
/// construction rather than by luck.
constexpr std::uint64_t kFrameworkSeed = 11;

LegResult runLeg(const bmgen::BenchmarkSpec& spec, const LegConfig& config,
                 int iterations, AuditLevel auditLevel) {
  LegResult result;
  result.name = config.name;
  obs::EnabledScope enabled(config.obsOn);
  try {
    db::Database db = bmgen::generateBenchmark(spec);
    groute::GlobalRouterOptions routerOptions;
    routerOptions.routerThreads = config.routerThreads;
    groute::GlobalRouter router(db, routerOptions);
    router.run();
    {
      // The flow's precondition is audited too: a GR bug would
      // otherwise surface as a confusing CR&P divergence.
      const DbAuditor auditor(db, &router);
      const AuditReport postRoute = auditor.auditAll();
      if (!postRoute.clean()) {
        result.error = "post-global-route audit:\n" + postRoute.summary();
        return result;
      }
    }

    core::CrpOptions options;
    options.iterations = iterations;
    options.seed = kFrameworkSeed;
    options.threads = 1;
    options.routerThreads = config.routerThreads;
    options.pricingCache = config.cache;
    options.deltaPricing = config.cache;
    options.tileRows = config.tileRows;
    options.tileCols = config.tileCols;
    options.auditLevel = auditLevel;
    // Spatial tier on: the obs-on legs then exercise snapshot capture
    // and the timeline joins their report fingerprints (value-exact
    // across the paired configs), and a failure's flight-recorder dump
    // carries the last heatmap.  The runtime obs gate keeps this a
    // no-op on the obs-off leg.
    options.snapshots = true;
    core::CrpFramework framework(db, router, options);
    framework.run();  // in-flow audits throw AuditError on violation

    const DbAuditor auditor(db, &router);
    const AuditReport finalReport = auditor.auditAll();
    if (!finalReport.clean()) {
      result.error = "final audit:\n" + finalReport.summary();
      return result;
    }
    result.stateFingerprint = flowFingerprint(db, router);
    if (config.obsOn) {
      result.reportFingerprint = framework.runReport().fingerprint().dump();
    }
    result.ok = true;
  } catch (const AuditError& e) {
    result.error = e.what();
  } catch (const std::exception& e) {
    result.error = std::string("exception: ") + e.what();
  }
  return result;
}

}  // namespace

bmgen::BenchmarkSpec specForSeed(std::uint64_t seed,
                                 const FuzzOptions& options) {
  // All spec parameters derive from the seed through one RNG stream, so
  // a seed fully identifies its design (the replay contract).
  util::Rng rng(seed ^ 0x66757a7a63727026ULL);
  bmgen::BenchmarkSpec spec;
  spec.name = "fuzz_" + std::to_string(seed);
  spec.targetCells = static_cast<int>(
      rng.uniformInt(options.minCells, options.maxCells));
  spec.utilization = rng.uniform(0.70, 0.85);
  spec.netsPerCell = rng.uniform(0.8, 1.2);
  spec.localityBias = rng.uniform(0.6, 0.9);
  spec.hotspots = static_cast<int>(rng.uniformInt(0, 2));
  spec.hotspotStrength = rng.uniform(0.3, 0.7);
  // Scenario-axis draws come AFTER the base draws and are guarded, so a
  // campaign with the axes off consumes the exact RNG stream of older
  // campaigns — seed N keeps meaning the same base design forever.
  if (options.macroCount > 0) {
    spec.macroCount = static_cast<int>(rng.uniformInt(1, options.macroCount));
  }
  if (options.multiRowFrac > 0.0) {
    spec.multiRowFrac = rng.uniform(0.05, options.multiRowFrac);
  }
  spec.seed = seed;
  return spec;
}

std::string CampaignReport::summary() const {
  std::ostringstream os;
  os << seedsRun << " seed(s) run, " << seedsFailed << " failed";
  for (const SeedResult& seed : seeds) {
    if (seed.passed) continue;
    os << "\n  seed " << seed.seed << ": " << seed.failure;
    if (!seed.replayCommand.empty()) os << "\n    replay: " << seed.replayCommand;
    if (!seed.artifactPath.empty()) os << "\n    artifact: " << seed.artifactPath;
    if (!seed.flightRecorderPath.empty()) {
      os << "\n    flight recorder: " << seed.flightRecorderPath;
    }
  }
  return os.str();
}

FuzzCampaign::FuzzCampaign(FuzzOptions options) : options_(std::move(options)) {}

SeedResult FuzzCampaign::runSeedAt(std::uint64_t seed, int targetCells,
                                   int iterations) {
  SeedResult result;
  result.seed = seed;
  bmgen::BenchmarkSpec spec = specForSeed(seed, options_);
  if (targetCells > 0) spec.targetCells = targetCells;
  const int k = iterations > 0 ? iterations : options_.iterations;
  result.minimizedCells = spec.targetCells;
  result.minimizedIterations = k;

  std::vector<LegConfig> legs = {
      {"serial", 1, true, true},
      {"rt-" + std::to_string(options_.routerThreadsVariant),
       options_.routerThreadsVariant, true, true},
      {"cache-off", 1, false, true},
      {"obs-off", 1, true, false},
  };
  if (options_.tileRows > 0 && options_.tileCols > 0) {
    // Tiled leg at the rt-N thread count: concurrent tile workers plus
    // boundary nets, still required to be fingerprint-exact.
    legs.push_back({"tiled-" + std::to_string(options_.tileRows) + "x" +
                        std::to_string(options_.tileCols),
                    options_.routerThreadsVariant, true, true,
                    options_.tileRows, options_.tileCols});
  }
  for (const LegConfig& config : legs) {
    result.legs.push_back(runLeg(spec, config, k, options_.auditLevel));
  }

  const LegResult& reference = result.legs.front();
  for (const LegResult& leg : result.legs) {
    if (!leg.ok) {
      result.failure = "leg " + leg.name + " failed: " + leg.error;
      return result;
    }
  }
  for (const LegResult& leg : result.legs) {
    if (leg.stateFingerprint != reference.stateFingerprint) {
      std::ostringstream os;
      os << "state fingerprint diverges: " << reference.name << "="
         << reference.stateFingerprint << " vs " << leg.name << "="
         << leg.stateFingerprint;
      result.failure = os.str();
      return result;
    }
    if (!leg.reportFingerprint.empty() &&
        leg.reportFingerprint != reference.reportFingerprint) {
      result.failure = "run-report fingerprint diverges between " +
                       reference.name + " and " + leg.name;
      return result;
    }
  }

  if (options_.ecoLeg) {
    // Fifth leg, after the four differential legs agree: the same seed's
    // design goes through the paired eco-vs-scratch check.  Its
    // fingerprint is recorded for the artifact but not compared against
    // the reference — the eco side legitimately diverges in state (the
    // equivalence contract is audits + quality parity, docs/eco.md).
    LegResult leg;
    leg.name = "eco-vs-scratch";
    EcoPairOptions pair;
    pair.baseIterations = k;
    pair.ecoIterations = 1;
    pair.auditLevel = options_.auditLevel;
    pair.routerThreads = 1;
    pair.perturbSeed = seed;
    const EcoPairResult paired = runEcoVsScratch(spec, pair);
    leg.ok = paired.ok;
    leg.error = paired.error;
    leg.stateFingerprint = paired.ecoFingerprint;
    result.legs.push_back(std::move(leg));
    if (!paired.ok) {
      result.failure = "leg eco-vs-scratch failed: " + paired.error;
      return result;
    }
  }

  result.passed = true;
  return result;
}

std::string replayCommandFor(const FuzzOptions& options, std::uint64_t seed,
                             int cells, int iterations) {
  std::ostringstream replay;
  replay << "crp_fuzz --replay " << seed << " --cells " << cells << " --k "
         << iterations << " --router-threads " << options.routerThreadsVariant;
  // The scenario axes change the seed's spec draw, so a replay must
  // carry them to reproduce the same design.
  if (options.macroCount > 0) replay << " --macros " << options.macroCount;
  if (options.multiRowFrac > 0.0) {
    replay << " --multi-row " << options.multiRowFrac;
  }
  // Tiles are flow config (no spec draw), but the tiled leg only runs
  // when the flag is armed, so the repro must carry it.
  if (options.tileRows > 0 && options.tileCols > 0) {
    replay << " --tiles " << options.tileRows << "," << options.tileCols;
  }
  return replay.str();
}

void FuzzCampaign::minimizeAndRecord(SeedResult& result) {
  const std::uint64_t seed = result.seed;
  const int fullCells = result.minimizedCells;
  const int fullK = result.minimizedIterations;

  if (options_.minimize) {
    // Fixed shrink ladder, smallest first; the original configuration
    // is known-failing, so the walk always terminates with a repro.
    const std::pair<int, int> ladder[] = {
        {std::max(40, fullCells / 4), 1},
        {std::max(40, fullCells / 2), 1},
        {fullCells, 1},
        {fullCells, fullK},
    };
    for (const auto& [cells, k] : ladder) {
      if (cells == fullCells && k == fullK) break;  // original; still failing
      SeedResult shrunk = runSeedAt(seed, cells, k);
      if (!shrunk.passed) {
        shrunk.seed = seed;
        result.failure = shrunk.failure;
        result.legs = std::move(shrunk.legs);
        result.minimizedCells = cells;
        result.minimizedIterations = k;
        break;
      }
    }
  }

  result.replayCommand =
      replayCommandFor(options_, seed, result.minimizedCells,
                       result.minimizedIterations);

  if (options_.artifactDir.empty()) return;
  try {
    std::filesystem::create_directories(options_.artifactDir);

    // Flight-recorder dump first: the ring still holds the events of
    // the minimized repro (the last legs run), and the obs-on legs'
    // snapshot capture left the latest heatmap with the recorder.
    {
      obs::Json trigger = obs::Json::object();
      trigger.set("source", "crp_fuzz");
      trigger.set("seed", seed);
      trigger.set("failure", result.failure);
      trigger.set("replay", result.replayCommand);
      const std::string flightPath = options_.artifactDir + "/fuzz_seed_" +
                                     std::to_string(seed) + "_flight.json";
      if (obs::currentContext().flightRecorder().dumpToFile(
              flightPath, std::move(trigger))) {
        result.flightRecorderPath = flightPath;
      } else {
        CRP_LOG_WARN("fuzz: cannot write flight dump {}", flightPath);
      }
    }

    obs::Json doc = obs::Json::object();
    doc.set("schema", 1);
    doc.set("seed", seed);
    doc.set("failure", result.failure);
    doc.set("replay", result.replayCommand);
    if (!result.flightRecorderPath.empty()) {
      doc.set("flightRecorder", result.flightRecorderPath);
    }
    doc.set("cells", result.minimizedCells);
    doc.set("iterations", result.minimizedIterations);
    const bmgen::BenchmarkSpec spec = specForSeed(seed, options_);
    obs::Json specObj = obs::Json::object();
    specObj.set("name", spec.name);
    specObj.set("targetCells", spec.targetCells);
    specObj.set("utilization", spec.utilization);
    specObj.set("netsPerCell", spec.netsPerCell);
    specObj.set("localityBias", spec.localityBias);
    specObj.set("hotspots", spec.hotspots);
    specObj.set("hotspotStrength", spec.hotspotStrength);
    if (spec.macroCount > 0) specObj.set("macroCount", spec.macroCount);
    if (spec.multiRowFrac > 0.0) {
      specObj.set("multiRowFrac", spec.multiRowFrac);
    }
    doc.set("spec", std::move(specObj));
    obs::Json legsArr = obs::Json::array();
    for (const LegResult& leg : result.legs) {
      obs::Json legObj = obs::Json::object();
      legObj.set("name", leg.name);
      legObj.set("ok", leg.ok);
      legObj.set("stateFingerprint", std::to_string(leg.stateFingerprint));
      if (!leg.reportFingerprint.empty()) {
        legObj.set("reportFingerprint",
                   obs::Json::parse(leg.reportFingerprint));
      }
      if (!leg.error.empty()) legObj.set("error", leg.error);
      legsArr.append(std::move(legObj));
    }
    doc.set("legs", std::move(legsArr));

    const std::string path = options_.artifactDir + "/fuzz_seed_" +
                             std::to_string(seed) + ".json";
    std::ofstream out(path);
    if (out) {
      out << doc.dump(2) << "\n";
      result.artifactPath = path;
    } else {
      CRP_LOG_WARN("fuzz: cannot write artifact {}", path);
    }
  } catch (const std::exception& e) {
    CRP_LOG_WARN("fuzz: artifact write failed: {}", e.what());
  }
}

SeedResult FuzzCampaign::replaySeed(std::uint64_t seed, int targetCells,
                                    int iterations) {
  SeedResult result = runSeedAt(seed, targetCells, iterations);
  if (!result.passed) minimizeAndRecord(result);
  return result;
}

CampaignReport FuzzCampaign::run() {
  CampaignReport report;
  for (int i = 0; i < options_.seedCount; ++i) {
    const std::uint64_t seed = options_.seedStart + static_cast<std::uint64_t>(i);
    SeedResult result = runSeedAt(seed, 0, 0);
    ++report.seedsRun;
    if (!result.passed) {
      ++report.seedsFailed;
      CRP_LOG_WARN("fuzz: seed {} FAILED: {}", seed, result.failure);
      minimizeAndRecord(result);
    } else {
      CRP_LOG_INFO("fuzz: seed {} ok ({} cells, fingerprint {})", seed,
                   result.minimizedCells,
                   result.legs.front().stateFingerprint);
    }
    report.seeds.push_back(std::move(result));
  }
  return report;
}

}  // namespace crp::check
