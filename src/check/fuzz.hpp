// Seeded differential fuzzing of the full CR&P pipeline.
//
// Each seed deterministically derives a bmgen benchmark spec, then runs
// the complete flow (generate -> global route -> CR&P iterations) under
// paired configurations that the determinism contract says are
// value-exact:
//
//   serial        router threads 1, pricing cache on,  obs on   (reference)
//   rt-N          router threads N, pricing cache on,  obs on
//   cache-off     router threads 1, cache+delta off,   obs on
//   obs-off       router threads 1, pricing cache on,  obs off
//
// With FuzzOptions::ecoLeg a fifth leg (eco-vs-scratch) follows once
// the four differential legs agree: the seed's design is perturbed into
// an EcoDelta and finished both via CrpFramework::runEco and via a full
// rebuild, requiring clean audits on both sides plus quality parity
// (check/eco_equivalence.hpp) — not state equality.
//
// With FuzzOptions::tileRows/tileCols a sixth differential leg
// (tiled-RxC) joins the paired set: the same flow over an R x C
// chip-tile decomposition (docs/tiling.md) at the rt-N thread count,
// which must reproduce the serial reference's state AND report
// fingerprints exactly — tiling is a scheduling refinement, never a
// result change.
//
// Every leg runs with in-flow audits armed (CrpOptions::auditLevel,
// paranoid by default here: after every phase, pricing-cache coherence
// after ECC, I/O round-trips at iteration ends) plus a final
// DbAuditor::auditAll().  The legs must then agree on the state
// fingerprint (check::flowFingerprint — cell positions, routes, totals;
// obs-independent by construction), and the obs-on legs must agree on
// the RunReport fingerprint as well.
//
// A failing seed is minimized down a fixed ladder of (cells, k)
// shrinks, reported as a one-line replay command for tools/crp_fuzz
// (--replay SEED --cells N --k K), and dumped as a JSON artifact when
// an artifact directory is configured — the seed-replay workflow in
// docs/checking.md.  The obs-on legs run with spatial snapshots armed,
// so a failure's flight-recorder dump (written next to the artifact)
// carries the recent event ring plus the last congestion heatmap of
// the minimized repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bmgen/generator.hpp"
#include "check/audit.hpp"

namespace crp::check {

struct FuzzOptions {
  std::uint64_t seedStart = 1;
  int seedCount = 25;
  int iterations = 2;  ///< CR&P k per leg
  /// Design-size band the per-seed RNG draws from.
  int minCells = 80;
  int maxCells = 220;
  /// In-flow audit level armed on every leg.
  AuditLevel auditLevel = AuditLevel::kParanoid;
  /// Macro/blockage campaign axis: when > 0, every seed's design gets
  /// a per-seed draw of [1, macroCount] fixed macro blocks (full
  /// obstructions on the lower wire layers plus a partial layer-2
  /// routing blockage each — bmgen/generator.hpp).  0 keeps the spec
  /// RNG stream bit-identical to campaigns that predate the axis.
  int macroCount = 0;
  /// Mixed-height campaign axis: when > 0, the per-seed multi-row cell
  /// fraction is drawn from [0.05, multiRowFrac].  0 disables the draw
  /// (stream-compatible, as above).
  double multiRowFrac = 0.0;
  /// N of the rt-N leg.
  int routerThreadsVariant = 4;
  /// Shrink failing seeds down the (cells, k) ladder before reporting.
  bool minimize = true;
  /// When non-empty, failing seeds are written here as
  /// fuzz_seed_<seed>.json artifacts (directory is created on demand).
  std::string artifactDir;
  /// Fifth leg (eco-vs-scratch): perturb the post-base state into an
  /// EcoDelta, finish the job both incrementally (runEco) and from
  /// scratch, and require clean audits on both sides plus quality
  /// parity (check/eco_equivalence.hpp).  Runs after the four
  /// differential legs agree.
  bool ecoLeg = false;
  /// Sixth leg (tiled-RxC): when both are > 0, rerun the flow with the
  /// chip-tile decomposition armed (docs/tiling.md) at the rt-N thread
  /// count and require exact state + report fingerprint agreement with
  /// the serial reference.  Tiles are flow configuration, not a design
  /// axis — the seed's spec RNG stream is untouched.
  int tileRows = 0;
  int tileCols = 0;
};

/// Deterministic spec derivation: same (seed, options) -> same design.
bmgen::BenchmarkSpec specForSeed(std::uint64_t seed,
                                 const FuzzOptions& options);

/// Outcome of one flow leg of one seed.
struct LegResult {
  std::string name;
  bool ok = false;
  std::string error;  ///< audit summary / exception text when !ok
  std::uint64_t stateFingerprint = 0;
  std::string reportFingerprint;  ///< RunReport JSON; empty on obs-off
};

struct SeedResult {
  std::uint64_t seed = 0;
  bool passed = false;
  std::string failure;  ///< first divergence / audit failure
  std::vector<LegResult> legs;
  /// Filled for failures: the smallest reproducing configuration and
  /// the command that replays it.
  int minimizedCells = 0;
  int minimizedIterations = 0;
  std::string replayCommand;
  std::string artifactPath;  ///< written artifact, when configured
  /// Flight-recorder dump (event ring + latest heatmap) written next
  /// to the artifact; empty when no artifact directory is configured.
  std::string flightRecorderPath;
};

struct CampaignReport {
  std::vector<SeedResult> seeds;
  int seedsRun = 0;
  int seedsFailed = 0;
  bool clean() const { return seedsFailed == 0; }
  std::string summary() const;
};

/// The copy-pasteable repro for a (possibly minimized) failing seed.
/// Scenario axes change the seed's spec draw, so the command carries
/// --macros/--multi-row whenever the campaign armed them — a replay
/// without the flags would rebuild the base design instead.
std::string replayCommandFor(const FuzzOptions& options, std::uint64_t seed,
                             int cells, int iterations);

class FuzzCampaign {
 public:
  explicit FuzzCampaign(FuzzOptions options = {});

  /// Runs [seedStart, seedStart + seedCount) and reports per-seed
  /// results; failures are minimized and written as artifacts.
  CampaignReport run();

  /// Replays one seed at an explicit size — the --replay entry point.
  /// Zero/negative cells or iterations fall back to the seed's derived
  /// spec / options default.
  SeedResult replaySeed(std::uint64_t seed, int targetCells = 0,
                        int iterations = 0);

  const FuzzOptions& options() const { return options_; }

 private:
  /// One seed, all four legs, at an explicit (cells, k); no
  /// minimization or artifact output.
  SeedResult runSeedAt(std::uint64_t seed, int targetCells, int iterations);

  /// Shrinks a failing seed down the ladder and fills the replay
  /// fields + artifact.
  void minimizeAndRecord(SeedResult& result);

  FuzzOptions options_;
};

}  // namespace crp::check
