#include "droute/drc.hpp"

#include <algorithm>
#include <map>

namespace crp::droute {

DrvReport checkDrvs(const db::Database& db, const TrackGraph& graph,
                    const std::vector<std::vector<std::vector<DNode>>>& paths,
                    const std::vector<std::uint16_t>& usage,
                    const std::vector<std::int32_t>& fixedOwner) {
  DrvReport report;

  // ---- shorts: node shared by >1 net, or a net crossing a foreign pin.
  for (const std::uint16_t u : usage) {
    if (u > 1) report.shorts += u - 1;
  }
  for (db::NetId net = 0; net < static_cast<db::NetId>(paths.size()); ++net) {
    std::vector<std::size_t> nodes;
    for (const auto& path : paths[net]) {
      for (const DNode& node : path) nodes.push_back(graph.index(node));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (const std::size_t idx : nodes) {
      if (fixedOwner[idx] >= 0 && fixedOwner[idx] != net) ++report.shorts;
    }
  }

  // ---- cut spacing: vias of different nets too close on a cut layer.
  // Collect vias as (cutLayer, xi, yi) -> nets.
  std::map<std::tuple<int, int, int>, std::vector<db::NetId>> vias;
  for (db::NetId net = 0; net < static_cast<db::NetId>(paths.size()); ++net) {
    for (const auto& path : paths[net]) {
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (path[i].layer == path[i - 1].layer) continue;
        const int cut = std::min(path[i].layer, path[i - 1].layer);
        vias[{cut, path[i].xi, path[i].yi}].push_back(net);
      }
    }
  }
  // Spacing requirement per cut layer from the tech.
  auto cutSpacing = [&](int below) -> geom::Coord {
    for (const db::CutLayer& cut : db.tech().cutLayers()) {
      if (cut.below == below) return cut.spacing;
    }
    return 0;
  };
  auto cutHalfWidth = [&](int below) -> geom::Coord {
    const db::ViaDef* via = db.tech().defaultVia(below);
    if (via == nullptr) return 0;
    return via->cutShape.width() / 2;
  };
  for (const auto& [key, nets] : vias) {
    const auto [cut, xi, yi] = key;
    const geom::Coord spacing = cutSpacing(cut);
    const geom::Coord size = 2 * cutHalfWidth(cut);
    // Check the 4-neighbourhood for foreign vias.
    for (const auto& [dx, dy] :
         std::vector<std::pair<int, int>>{{1, 0}, {0, 1}}) {
      const auto it = vias.find({cut, xi + dx, yi + dy});
      if (it == vias.end()) continue;
      const DNode a{cut, xi, yi};
      const DNode b{cut, xi + dx, yi + dy};
      const geom::Coord gap =
          geom::manhattan(graph.position(a), graph.position(b)) - size;
      if (gap >= spacing) continue;
      for (const db::NetId na : nets) {
        for (const db::NetId nb : it->second) {
          if (na != nb) ++report.spacing;
        }
      }
    }
  }

  // ---- min-area: every maximal same-layer run must meet the layer's
  // minimum metal area; short stubs get patched (adds wirelength).
  for (const auto& netPaths : paths) {
    for (const auto& path : netPaths) {
      std::size_t runStart = 0;
      for (std::size_t i = 1; i <= path.size(); ++i) {
        if (i < path.size() && path[i].layer == path[runStart].layer) {
          continue;
        }
        // Run [runStart, i).
        const int layer = path[runStart].layer;
        const auto& tech = db.tech().layer(layer);
        if (tech.minArea > 0 && i > runStart) {
          geom::Coord length = 0;
          for (std::size_t k = runStart + 1; k < i; ++k) {
            length += geom::manhattan(graph.position(path[k - 1]),
                                      graph.position(path[k]));
          }
          const geom::Coord width = std::max<geom::Coord>(1, tech.width);
          const geom::Coord area = width * (length + width);  // end caps
          if (area < tech.minArea) {
            const geom::Coord deficit =
                (tech.minArea - area + width - 1) / width;
            ++report.patches;
            report.patchedWireDbu += deficit;
          }
        }
        runStart = i;
      }
    }
  }

  return report;
}

}  // namespace crp::droute
