#include "droute/detailed_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "droute/drc.hpp"
#include "util/logger.hpp"

namespace crp::droute {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DetailedRouter::DetailedRouter(const db::Database& db,
                               const std::vector<lefdef::NetGuide>& guides,
                               DetailedRouterOptions options)
    : db_(db), options_(options), graph_(db), guides_(guides) {
  for (const lefdef::NetGuide& guide : guides_) {
    guideByName_.emplace(guide.net, &guide);
  }
  const std::size_t n = graph_.numNodes();
  usage_.assign(n, 0);
  fixedOwner_.assign(n, -1);
  history_.assign(n, 0.0f);
  allowedStamp_.assign(n, 0);
  paths_.resize(db.numNets());
  nodesOfNet_.resize(db.numNets());
  open_.assign(db.numNets(), false);

  // Cost scale: average pitch of the grid.
  geom::Coord pitchSum = 0;
  int pitchCount = 0;
  for (std::size_t i = 1; i < graph_.xs().size(); ++i) {
    pitchSum += graph_.xs()[i] - graph_.xs()[i - 1];
    ++pitchCount;
  }
  for (std::size_t i = 1; i < graph_.ys().size(); ++i) {
    pitchSum += graph_.ys()[i] - graph_.ys()[i - 1];
    ++pitchCount;
  }
  const double avgPitch =
      pitchCount > 0 ? static_cast<double>(pitchSum) / pitchCount : 1.0;
  if (options_.viaUnit <= 0.0) {
    // A via is worth 4 wire units in the contest metric; one wire unit
    // corresponds to one pitch of wire here.
    options_.viaUnit = 4.0 * options_.wireUnit * avgPitch;
  }
  avgStepCost_ = options_.wireUnit * avgPitch;

  if (options_.guideInflation < 0) {
    // Two track pitches: tight guide adherence.  The detailed router
    // then inherits the global router's layer/corridor assignment, so
    // GR-level improvements (what CR&P optimizes) survive into the
    // detailed metrics; wide inflation lets the DR wander and washes
    // them out.  Escape (allowGuideEscape) covers the rare boxed-in net.
    options_.guideInflation = static_cast<geom::Coord>(2 * avgPitch);
  }

  assignPinNodes();
  registerFixedShapes();
}

void DetailedRouter::assignPinNodes() {
  // Each pin claims a grid node on its layer, nearest to its access
  // point.  When the nearest node is already claimed by a different
  // net (abutting cells share track columns), nearby alternates inside
  // roughly one pitch are tried — the gridded equivalent of
  // TritonRoute's multiple pin access points.
  pinNodes_.assign(db_.numNets(), {});
  for (db::NetId n = 0; n < db_.numNets(); ++n) {
    for (const db::NetPin& pin : db_.net(n).pins) {
      int layer = 0;
      if (pin.isIo()) {
        layer = db_.design().ioPins[pin.ioPin()].layer;
      } else {
        const auto shapes = db_.pinShapes(pin.compPin());
        if (!shapes.empty()) layer = shapes.front().layer;
      }
      const DNode nearest = graph_.nearestNode(layer, db_.pinPosition(pin));
      DNode chosen = nearest;
      // Candidate order: exact, then the 4-neighbourhood on the grid.
      const int offsets[5][2] = {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const auto& [dx, dy] : offsets) {
        const DNode alt{layer, nearest.xi + dx, nearest.yi + dy};
        if (!graph_.valid(alt)) continue;
        const std::int32_t owner = fixedOwner_[graph_.index(alt)];
        if (owner == -1 || owner == n) {
          chosen = alt;
          break;
        }
      }
      fixedOwner_[graph_.index(chosen)] = n;
      pinNodes_[n].push_back(chosen);
    }
    auto& nodes = pinNodes_[n];
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }
}

void DetailedRouter::registerFixedShapes() {
  auto blockRect = [&](int layer, const geom::Rect& rect) {
    if (layer < 0 || layer >= graph_.numLayers()) return;
    const int xiLo = graph_.nearestXi(rect.xlo);
    const int xiHi = graph_.nearestXi(rect.xhi);
    const int yiLo = graph_.nearestYi(rect.ylo);
    const int yiHi = graph_.nearestYi(rect.yhi);
    for (int yi = yiLo; yi <= yiHi; ++yi) {
      for (int xi = xiLo; xi <= xiHi; ++xi) {
        const DNode node{layer, xi, yi};
        const geom::Point p = graph_.position(node);
        if (!rect.containsClosed(p)) continue;
        fixedOwner_[graph_.index(node)] = -2;
      }
    }
  };
  for (const db::Blockage& blockage : db_.design().blockages) {
    if (blockage.layer != db::kInvalidId) {
      blockRect(blockage.layer, blockage.rect);
    }
  }
  for (db::CellId c = 0; c < db_.numCells(); ++c) {
    const auto& comp = db_.cell(c);
    const auto& macro = db_.macroOf(c);
    for (const db::Obstruction& obs : macro.obstructions) {
      blockRect(obs.layer,
                geom::transformRect(obs.rect, comp.pos, macro.width,
                                    macro.height, comp.orient));
    }
  }
}

void DetailedRouter::buildAllowedRegion(db::NetId net) {
  ++stampValue_;
  const auto it = guideByName_.find(db_.net(net).name);
  if (it == guideByName_.end()) return;  // no guide: empty region
  for (const lefdef::GuideRect& g : it->second->rects) {
    const geom::Rect rect = g.rect.inflated(options_.guideInflation);
    const int xiLo = graph_.nearestXi(rect.xlo);
    const int xiHi = graph_.nearestXi(rect.xhi);
    const int yiLo = graph_.nearestYi(rect.ylo);
    const int yiHi = graph_.nearestYi(rect.yhi);
    for (int yi = yiLo; yi <= yiHi; ++yi) {
      for (int xi = xiLo; xi <= xiHi; ++xi) {
        allowedStamp_[graph_.index(DNode{g.layer, xi, yi})] = stampValue_;
      }
    }
  }
  // Pin nodes (plus the layer above, for access) are always allowed.
  for (const DNode& pinNode : netPinNodes(net)) {
    allowedStamp_[graph_.index(pinNode)] = stampValue_;
    if (pinNode.layer + 1 < graph_.numLayers()) {
      allowedStamp_[graph_.index(
          DNode{pinNode.layer + 1, pinNode.xi, pinNode.yi})] = stampValue_;
    }
  }
}

double DetailedRouter::nodeEntryCost(std::size_t idx, db::NetId net) const {
  const std::int32_t owner = fixedOwner_[idx];
  if (owner == -2) return kInf;
  const bool foreignPin = owner >= 0 && owner != net;
  const int sharing = usage_[idx];
  if (hardExclusion_ && (foreignPin || sharing > 0)) return kInf;
  double cost = history_[idx] * avgStepCost_;
  if (foreignPin) {
    // Another net's pin: strongly discouraged but not absolutely
    // forbidden (a hard wall could make nets unroutable; crossing one
    // becomes a short DRV).
    cost += 50.0 * avgStepCost_;
  }
  if (sharing > 0) {
    cost += presentFactor_ * sharing * avgStepCost_;
  }
  return cost;
}

bool DetailedRouter::routeNet(db::NetId net, bool useGuides) {
  const std::vector<DNode> pins = netPinNodes(net);
  if (pins.size() < 2) {
    open_[net] = false;
    return true;  // nothing to route
  }

  if (useGuides) buildAllowedRegion(net);

  // A* state: flat arrays with generation stamps so resets are O(1).
  if (dist_.size() != graph_.numNodes()) {
    dist_.assign(graph_.numNodes(), 0.0);
    parent_.assign(graph_.numNodes(), SIZE_MAX);
    searchStamp_.assign(graph_.numNodes(), 0);
  }
  // Queue entries carry (f = g + h, g, node); staleness is detected by
  // comparing g against the best-known g for the node.
  using QueueEntry = std::tuple<double, double, std::size_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;

  // Tree grows pin by pin (nearest remaining pin next).
  std::vector<DNode> remaining(pins.begin() + 1, pins.end());
  std::sort(remaining.begin(), remaining.end(),
            [&](const DNode& a, const DNode& b) {
              const auto pa = graph_.position(a);
              const auto pb = graph_.position(b);
              const auto p0 = graph_.position(pins[0]);
              return geom::manhattan(pa, p0) < geom::manhattan(pb, p0);
            });

  std::vector<std::size_t> treeNodes{graph_.index(pins[0])};
  std::vector<std::vector<DNode>> connections;

  auto allowed = [&](std::size_t idx) {
    return !useGuides || allowedStamp_[idx] == stampValue_;
  };

  for (const DNode& sink : remaining) {
    ++searchGen_;
    while (!queue.empty()) queue.pop();
    for (const std::size_t idx : treeNodes) {
      dist_[idx] = 0.0;
      searchStamp_[idx] = searchGen_;
      parent_[idx] = SIZE_MAX;
      queue.push({0.0, 0.0, idx});
    }
    const std::size_t target = graph_.index(sink);
    const geom::Point sinkPos = graph_.position(sink);
    bool reached = false;

    while (!queue.empty()) {
      const auto [f, g, idx] = queue.top();
      queue.pop();
      if (searchStamp_[idx] != searchGen_ || g > dist_[idx] + 1e-12) {
        continue;
      }
      if (idx == target) {
        reached = true;
        break;
      }
      const DNode node = graph_.nodeOf(idx);

      auto relax = [&](const DNode& next, double moveCost) {
        const std::size_t nidx = graph_.index(next);
        if (!allowed(nidx)) return;
        const double entry = nodeEntryCost(nidx, net);
        if (entry == kInf) return;
        const double nd = g + moveCost + entry;
        if (searchStamp_[nidx] == searchGen_ && dist_[nidx] <= nd) return;
        dist_[nidx] = nd;
        searchStamp_[nidx] = searchGen_;
        parent_[nidx] = idx;
        // A* priority: admissible Manhattan heuristic.
        const geom::Point p = graph_.position(next);
        const double h =
            options_.wireUnit * geom::manhattan(p, sinkPos);
        queue.push({nd + h, nd, nidx});
      };

      const bool horizontal =
          graph_.layerDir(node.layer) == db::LayerDir::kHorizontal;
      for (const int sign : {-1, 1}) {
        // Preferred-direction move.
        DNode next = node;
        if (horizontal) {
          next.xi += sign;
        } else {
          next.yi += sign;
        }
        if (graph_.valid(next)) {
          relax(next, options_.wireUnit * graph_.stepLength(node, sign));
        }
        // Wrong-way jog (TritonRoute-style pin-access escape), at a
        // stiff multiplier so it is only taken when boxed in.
        DNode jog = node;
        geom::Coord jogStep;
        if (horizontal) {
          jog.yi += sign;
          jogStep = jog.yi >= 0 && jog.yi < graph_.numY()
                        ? std::abs(graph_.ys()[jog.yi] - graph_.ys()[node.yi])
                        : 0;
        } else {
          jog.xi += sign;
          jogStep = jog.xi >= 0 && jog.xi < graph_.numX()
                        ? std::abs(graph_.xs()[jog.xi] - graph_.xs()[node.xi])
                        : 0;
        }
        if (graph_.valid(jog) && jogStep > 0) {
          relax(jog, options_.wrongWayPenalty * options_.wireUnit * jogStep);
        }
      }
      for (const int sign : {-1, 1}) {
        DNode next = node;
        next.layer += sign;
        if (!graph_.valid(next)) continue;
        relax(next, options_.viaUnit);
      }
    }

    if (!reached) {
      if (useGuides && options_.allowGuideEscape) {
        // Whole-net retry without guide restriction.
        return routeNet(net, false);
      }
      open_[net] = true;
      return false;
    }

    // Backtrack, growing the tree.
    std::vector<DNode> path;
    std::size_t cursor = target;
    path.push_back(graph_.nodeOf(cursor));
    while (parent_[cursor] != SIZE_MAX &&
           searchStamp_[cursor] == searchGen_) {
      cursor = parent_[cursor];
      path.push_back(graph_.nodeOf(cursor));
      treeNodes.push_back(cursor);
    }
    treeNodes.push_back(target);
    connections.push_back(std::move(path));
  }

  // Commit: unique node set of the whole net.
  std::vector<std::size_t> nodes;
  for (const auto& path : connections) {
    for (const DNode& node : path) nodes.push_back(graph_.index(node));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::size_t idx : nodes) ++usage_[idx];

  paths_[net] = std::move(connections);
  nodesOfNet_[net] = std::move(nodes);
  open_[net] = false;
  return true;
}

void DetailedRouter::ripUp(db::NetId net) {
  for (const std::size_t idx : nodesOfNet_[net]) {
    if (usage_[idx] > 0) --usage_[idx];
  }
  nodesOfNet_[net].clear();
  paths_[net].clear();
}

DetailedRouteStats DetailedRouter::run() {
  // Route order: few-pin, short nets first.
  std::vector<db::NetId> order(db_.numNets());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](db::NetId a, db::NetId b) {
    const auto ka = std::make_pair(db_.net(a).pins.size(), db_.netHpwl(a));
    const auto kb = std::make_pair(db_.net(b).pins.size(), db_.netHpwl(b));
    if (ka != kb) return ka < kb;
    return a < b;
  });

  presentFactor_ = options_.presentFactor;
  for (const db::NetId net : order) routeNet(net, true);

  std::size_t previousVictims = std::numeric_limits<std::size_t>::max();
  int stalledRounds = 0;
  for (int round = 1; round < options_.negotiationRounds; ++round) {
    // Find nets crossing overused nodes.  Foreign-pin crossings are
    // not rip-up victims: when a net's only access shares another
    // net's pin node, rerouting cannot fix it and only thrashes.
    std::vector<db::NetId> victims;
    for (const db::NetId net : order) {
      bool conflicted = open_[net];
      for (const std::size_t idx : nodesOfNet_[net]) {
        if (usage_[idx] > 1) {
          conflicted = true;
          break;
        }
      }
      if (conflicted) victims.push_back(net);
    }
    if (victims.empty()) break;
    // Bail out when negotiation has stopped making progress.
    if (victims.size() >= previousVictims) {
      if (++stalledRounds >= 2) break;
    } else {
      stalledRounds = 0;
    }
    previousVictims = victims.size();
    // History update on overused nodes.
    for (std::size_t idx = 0; idx < usage_.size(); ++idx) {
      if (usage_[idx] > 1) {
        history_[idx] += static_cast<float>(options_.historyIncrement *
                                            (usage_[idx] - 1));
      }
    }
    presentFactor_ *= options_.presentGrowth;
    CRP_LOG_DEBUG("droute round {}: {} conflicted nets", round,
                  victims.size());
    for (const db::NetId net : victims) {
      // Re-check: an earlier reroute this round may have resolved the
      // conflict already; ripping the second party too just oscillates
      // the pair between equivalent corridors.
      bool stillConflicted = open_[net];
      for (const std::size_t idx : nodesOfNet_[net]) {
        if (usage_[idx] > 1) {
          stillConflicted = true;
          break;
        }
      }
      if (!stillConflicted) continue;
      ripUp(net);
      routeNet(net, true);
    }
  }

  // DRC-fix cleanup: reroute remaining offenders with hard exclusion.
  for (int round = 0; round < options_.cleanupRounds; ++round) {
    std::vector<db::NetId> offenders;
    for (const db::NetId net : order) {
      for (const std::size_t idx : nodesOfNet_[net]) {
        if (usage_[idx] > 1 ||
            (fixedOwner_[idx] >= 0 && fixedOwner_[idx] != net)) {
          offenders.push_back(net);
          break;
        }
      }
    }
    if (offenders.empty()) break;
    int repaired = 0;
    for (const db::NetId net : offenders) {
      bool stillConflicted = false;
      for (const std::size_t idx : nodesOfNet_[net]) {
        if (usage_[idx] > 1 ||
            (fixedOwner_[idx] >= 0 && fixedOwner_[idx] != net)) {
          stillConflicted = true;
          break;
        }
      }
      if (!stillConflicted) continue;
      const auto savedPaths = paths_[net];
      const auto savedNodes = nodesOfNet_[net];
      ripUp(net);
      hardExclusion_ = true;
      const bool clean = routeNet(net, true);
      hardExclusion_ = false;
      if (clean) {
        ++repaired;
      } else {
        // No conflict-free path: restore the previous (soft) route.
        paths_[net] = savedPaths;
        nodesOfNet_[net] = savedNodes;
        for (const std::size_t idx : nodesOfNet_[net]) ++usage_[idx];
        open_[net] = false;
      }
    }
    CRP_LOG_DEBUG("droute cleanup round {}: {} offenders, {} repaired",
                  round, offenders.size(), repaired);
    if (repaired == 0) break;
  }

  // Final statistics + DRC.
  DetailedRouteStats stats;
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    if (open_[net]) ++stats.openNets;
    for (const auto& path : paths_[net]) {
      for (std::size_t i = 1; i < path.size(); ++i) {
        const DNode& a = path[i - 1];
        const DNode& b = path[i];
        if (a.layer != b.layer) {
          ++stats.viaCount;
        } else {
          stats.wirelengthDbu +=
              geom::manhattan(graph_.position(a), graph_.position(b));
        }
      }
    }
  }
  const DrvReport drvs = checkDrvs(db_, graph_, paths_, usage_, fixedOwner_);
  stats.shortViolations = drvs.shorts;
  stats.spacingViolations = drvs.spacing;
  stats.minAreaViolations = drvs.minArea;
  stats.minAreaPatches = drvs.patches;
  stats.patchedWireDbu = drvs.patchedWireDbu;
  stats.wirelengthDbu += drvs.patchedWireDbu;
  return stats;
}

}  // namespace crp::droute
