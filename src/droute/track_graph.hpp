// Gridded detailed-routing graph (TritonRoute substitute, model layer).
//
// Routing happens on the crossing grid of horizontal and vertical
// tracks: node (layer, xi, yi) sits at (xs[xi], ys[yi]) where xs are
// the vertical-track coordinates and ys the horizontal-track
// coordinates.  Wires run along the layer's preferred direction
// between adjacent grid points; vias connect vertically adjacent
// layers at a grid point.
//
// Modeling note: the grid is shared across layers (coordinates taken
// from the lowest layer of each direction).  The synthetic suites use
// one pitch for the whole stack, so this is exact for them; for mixed
// pitch stacks it is a conservative approximation (documented in
// DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.hpp"

namespace crp::droute {

using geom::Coord;
using geom::Point;

/// A detailed-routing grid node.
struct DNode {
  int layer = 0;
  int xi = 0;
  int yi = 0;

  friend bool operator==(const DNode&, const DNode&) = default;
  friend auto operator<=>(const DNode&, const DNode&) = default;
};

class TrackGraph {
 public:
  explicit TrackGraph(const db::Database& db);

  int numLayers() const { return numLayers_; }
  int numX() const { return static_cast<int>(xs_.size()); }
  int numY() const { return static_cast<int>(ys_.size()); }
  std::size_t numNodes() const {
    return static_cast<std::size_t>(numLayers_) * numX() * numY();
  }

  const std::vector<Coord>& xs() const { return xs_; }
  const std::vector<Coord>& ys() const { return ys_; }

  Point position(const DNode& node) const {
    return Point{xs_[node.xi], ys_[node.yi]};
  }

  bool valid(const DNode& node) const {
    return node.layer >= 0 && node.layer < numLayers_ && node.xi >= 0 &&
           node.xi < numX() && node.yi >= 0 && node.yi < numY();
  }

  std::size_t index(const DNode& node) const {
    return (static_cast<std::size_t>(node.layer) * ys_.size() + node.yi) *
               xs_.size() +
           node.xi;
  }

  DNode nodeOf(std::size_t index) const;

  db::LayerDir layerDir(int layer) const { return dirs_.at(layer); }

  /// Nearest grid indices to a die coordinate (clamped).
  int nearestXi(Coord x) const;
  int nearestYi(Coord y) const;

  /// Nearest grid node to `p` on `layer`.
  DNode nearestNode(int layer, Point p) const;

  /// Wire step length from `node` to the next grid point along the
  /// layer direction (0 when at the boundary).
  Coord stepLength(const DNode& node, int direction) const;

 private:
  int numLayers_ = 0;
  std::vector<db::LayerDir> dirs_;
  std::vector<Coord> xs_;
  std::vector<Coord> ys_;
};

}  // namespace crp::droute
