#include "droute/track_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace crp::droute {

TrackGraph::TrackGraph(const db::Database& db)
    : numLayers_(db.tech().numLayers()) {
  dirs_.reserve(numLayers_);
  for (int l = 0; l < numLayers_; ++l) {
    dirs_.push_back(db.tech().layer(l).dir);
  }
  // Track coordinates: union over all track grids per axis.
  for (const db::TrackGrid& grid : db.design().tracks) {
    auto& coords =
        (grid.dir == db::LayerDir::kVertical) ? xs_ : ys_;
    for (int i = 0; i < grid.count; ++i) {
      coords.push_back(grid.start + static_cast<Coord>(i) * grid.step);
    }
  }
  std::sort(xs_.begin(), xs_.end());
  xs_.erase(std::unique(xs_.begin(), xs_.end()), xs_.end());
  std::sort(ys_.begin(), ys_.end());
  ys_.erase(std::unique(ys_.begin(), ys_.end()), ys_.end());
  if (xs_.empty() || ys_.empty()) {
    throw std::invalid_argument("design has no tracks for detailed routing");
  }
}

DNode TrackGraph::nodeOf(std::size_t index) const {
  const std::size_t perLayer = xs_.size() * ys_.size();
  DNode node;
  node.layer = static_cast<int>(index / perLayer);
  const std::size_t rem = index % perLayer;
  node.yi = static_cast<int>(rem / xs_.size());
  node.xi = static_cast<int>(rem % xs_.size());
  return node;
}

namespace {

int nearestIndex(const std::vector<Coord>& coords, Coord v) {
  const auto it = std::lower_bound(coords.begin(), coords.end(), v);
  if (it == coords.begin()) return 0;
  if (it == coords.end()) return static_cast<int>(coords.size()) - 1;
  const auto prev = it - 1;
  const int idx = static_cast<int>(it - coords.begin());
  return (v - *prev <= *it - v) ? idx - 1 : idx;
}

}  // namespace

int TrackGraph::nearestXi(Coord x) const { return nearestIndex(xs_, x); }
int TrackGraph::nearestYi(Coord y) const { return nearestIndex(ys_, y); }

DNode TrackGraph::nearestNode(int layer, Point p) const {
  return DNode{layer, nearestXi(p.x), nearestYi(p.y)};
}

Coord TrackGraph::stepLength(const DNode& node, int direction) const {
  if (layerDir(node.layer) == db::LayerDir::kHorizontal) {
    const int nxt = node.xi + direction;
    if (nxt < 0 || nxt >= numX()) return 0;
    return std::abs(xs_[nxt] - xs_[node.xi]);
  }
  const int nxt = node.yi + direction;
  if (nxt < 0 || nxt >= numY()) return 0;
  return std::abs(ys_[nxt] - ys_[node.yi]);
}

}  // namespace crp::droute
