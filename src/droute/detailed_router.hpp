// Guide-driven gridded detailed router (TritonRoute substitute).
//
// PathFinder-style negotiated congestion routing on the track-crossing
// grid: every net is A*-routed inside its (inflated) global-route
// guides; nodes used by several nets accrue present + history cost and
// the offenders are ripped up and rerouted until the overlap is gone
// or the round budget is exhausted.  Whatever overlap remains is
// reported as short DRVs by the DRC engine — this mirrors how the
// paper's detailed-routing metrics (Table III) respond to a better
// global-routing/placement handoff: fewer congested handoffs, fewer
// detours and vias, fewer residual DRVs.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.hpp"
#include "droute/track_graph.hpp"
#include "lefdef/guide_io.hpp"

namespace crp::droute {

struct DetailedRouterOptions {
  int negotiationRounds = 10;
  double wireUnit = 0.5;    ///< cost per DBU of wire (contest weight)
  double viaUnit = 0.0;     ///< cost per via; 0 = auto (4 pitches of wire)
  double presentFactor = 2.0;    ///< first-round sharing penalty factor
  double presentGrowth = 1.7;    ///< growth per negotiation round
  double historyIncrement = 2.0;
  /// Cost multiplier for wrong-way (non-preferred-direction) jogs;
  /// they exist mainly so pin-access conflicts can resolve.
  double wrongWayPenalty = 4.0;
  geom::Coord guideInflation = -1;  ///< DBU; -1 = one gcell
  bool allowGuideEscape = true;     ///< retry off-guide when boxed in
  /// Final DRC-fix rounds: conflicted nets are rerouted with foreign
  /// nodes strictly forbidden (falls back to the soft route when no
  /// clean path exists) — the analogue of a production router's
  /// violation-repair loop.
  int cleanupRounds = 3;
};

struct DetailedRouteStats {
  geom::Coord wirelengthDbu = 0;
  long viaCount = 0;
  int openNets = 0;
  int shortViolations = 0;
  int spacingViolations = 0;
  int minAreaViolations = 0;
  long minAreaPatches = 0;      ///< auto-patched pieces (adds wirelength)
  geom::Coord patchedWireDbu = 0;

  int totalDrvs() const {
    return shortViolations + spacingViolations + minAreaViolations;
  }
};

class DetailedRouter {
 public:
  DetailedRouter(const db::Database& db,
                 const std::vector<lefdef::NetGuide>& guides,
                 DetailedRouterOptions options = {});

  /// Routes everything and returns the final metrics.
  DetailedRouteStats run();

  /// Per-net path node sequences (one per routed 2-pin connection).
  const std::vector<std::vector<DNode>>& netPaths(db::NetId net) const {
    return paths_.at(net);
  }

  const TrackGraph& graph() const { return graph_; }
  const db::Database& database() const { return db_; }

 private:
  void assignPinNodes();
  void registerFixedShapes();
  void buildAllowedRegion(db::NetId net);
  bool routeNet(db::NetId net, bool useGuides);
  void ripUp(db::NetId net);
  const std::vector<DNode>& netPinNodes(db::NetId net) const {
    return pinNodes_.at(net);
  }
  double nodeEntryCost(std::size_t idx, db::NetId net) const;

  const db::Database& db_;
  DetailedRouterOptions options_;
  TrackGraph graph_;
  std::vector<lefdef::NetGuide> guides_;  ///< owned copy
  std::unordered_map<std::string, const lefdef::NetGuide*> guideByName_;

  // Node state.
  std::vector<std::uint16_t> usage_;      ///< routed occupancy count
  std::vector<std::int32_t> fixedOwner_;  ///< -1 free, -2 blocked, net id pin
  std::vector<float> history_;
  std::vector<std::uint32_t> allowedStamp_;
  std::uint32_t stampValue_ = 0;
  double presentFactor_ = 1.0;
  double avgStepCost_ = 1.0;

  std::vector<std::vector<DNode>> pinNodes_;  ///< per net, deduplicated
  std::vector<std::vector<std::vector<DNode>>> paths_;  ///< per net
  std::vector<std::vector<std::size_t>> nodesOfNet_;    ///< unique, sorted
  std::vector<bool> open_;

  // A* scratch, reused across waves via generation stamps (O(1) reset).
  std::vector<double> dist_;
  std::vector<std::size_t> parent_;
  std::vector<std::uint32_t> searchStamp_;
  std::uint32_t searchGen_ = 0;
  bool hardExclusion_ = false;  ///< cleanup mode: foreign nodes forbidden
};

}  // namespace crp::droute
