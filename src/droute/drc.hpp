// Design-rule checking on detailed-routing results (the ISPD-2018
// evaluator's DRV taxonomy): shorts, cut-spacing violations and
// min-area handling.  Min-area deficits are auto-patched the way
// production routers do — each patch adds metal (wirelength) instead
// of a violation; unpatchable pieces (none in practice on these grids)
// would be counted.
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.hpp"
#include "droute/track_graph.hpp"

namespace crp::droute {

struct DrvReport {
  int shorts = 0;
  int spacing = 0;
  int minArea = 0;
  long patches = 0;
  geom::Coord patchedWireDbu = 0;
};

/// `paths`: per net, per connection, node sequence.  `usage`: per-node
/// occupancy counts.  `fixedOwner`: -1 free, -2 blocked, else owning
/// net of a pin node.
DrvReport checkDrvs(const db::Database& db, const TrackGraph& graph,
                    const std::vector<std::vector<std::vector<DNode>>>& paths,
                    const std::vector<std::uint16_t>& usage,
                    const std::vector<std::int32_t>& fixedOwner);

}  // namespace crp::droute
