// Deterministic design perturbation: derives a small EcoDelta from an
// existing (placed, legal) design — the paired-benchmark half of the
// ECO story.  bmgen --perturb emits the delta next to the base design,
// the eco-vs-scratch fuzz leg replays it both incrementally and from
// scratch, and bench_eco times the two paths against each other.
//
// The generator only proposes *legal-by-construction* edits so that
// applyEcoDelta's post-apply legality check never fires on generated
// deltas: cell moves are swaps between two movable cells of the same
// macro width (both landing sites are exactly the footprint the partner
// vacated), and pin rewires move a non-driver pin of a >=3-pin net onto
// another existing net (pure netlist edit, no geometry).
#pragma once

#include <cstdint>

#include "db/database.hpp"
#include "db/eco.hpp"

namespace crp::bmgen {

struct PerturbOptions {
  /// Fraction of cells touched by swap moves (>=1 move; capped at half
  /// the movable cells since each swap consumes two).
  double frac = 0.01;
  std::uint64_t seed = 1;
  /// Max partner distance for a swap in DBU; 0 = auto (8 row heights).
  geom::Coord radiusDbu = 0;
  /// ECOs are spatially local: every touched cell lies within this
  /// distance of one randomly-drawn anchor cell (the radius widens
  /// automatically when the cluster holds too few swap candidates).
  /// 0 = auto (16 row heights).
  geom::Coord clusterRadiusDbu = 0;
  /// Also rewire roughly one pin per four swaps.
  bool rewirePins = true;
};

/// Derives a delta from `db` (read-only).  Deterministic for a given
/// (design, options); the delta applies cleanly to `db` in the state it
/// was derived from.  Returns an empty delta only when the design has
/// no swappable movable-cell pair.
db::EcoDelta perturbDesign(const db::Database& db,
                           const PerturbOptions& options = {});

}  // namespace crp::bmgen
