#include "bmgen/suite.hpp"

#include <algorithm>
#include <cmath>

namespace crp::bmgen {

std::vector<SuiteEntry> ispdLikeSuite(double scaleDivisor) {
  struct Row {
    const char* name;
    int nets;   // thousands (Table II)
    int cells;  // thousands
    int node;
    int hotspots;
    double utilization;
    double locality;
  };
  // Hotspot/locality assignments encode the paper's congestion
  // narrative: tests 2-3 are "less congested" (where [18] wins);
  // tests 5-9 are congested (where CR&P wins most).
  const Row rows[] = {
      {"crp_test1", 3, 8, 45, 0, 0.70, 0.85},
      {"crp_test2", 36, 35, 45, 0, 0.72, 0.90},
      {"crp_test3", 36, 35, 45, 0, 0.74, 0.90},
      {"crp_test4", 72, 72, 32, 1, 0.80, 0.82},
      {"crp_test5", 72, 71, 32, 2, 0.84, 0.80},
      {"crp_test6", 107, 107, 32, 2, 0.85, 0.80},
      {"crp_test7", 179, 179, 32, 3, 0.85, 0.78},
      {"crp_test8", 179, 192, 32, 3, 0.85, 0.78},
      {"crp_test9", 178, 192, 32, 3, 0.85, 0.78},
      {"crp_test10", 182, 290, 32, 2, 0.88, 0.80},
  };

  std::vector<SuiteEntry> suite;
  std::uint64_t seed = 101;
  for (const Row& row : rows) {
    SuiteEntry entry;
    entry.name = row.name;
    entry.paperNets = row.nets * 1000;
    entry.paperCells = row.cells * 1000;
    entry.techNode = row.node;
    entry.hotspots = row.hotspots;
    entry.utilization = row.utilization;

    BenchmarkSpec spec;
    spec.name = row.name;
    spec.seed = seed++;
    spec.targetCells = std::max(
        60, static_cast<int>(std::lround(row.cells * 1000 / scaleDivisor)));
    spec.netsPerCell =
        static_cast<double>(row.nets) / static_cast<double>(row.cells);
    spec.utilization = row.utilization;
    spec.techNode = row.node;
    spec.localityBias = row.locality;
    spec.hotspots = row.hotspots;
    spec.hotspotStrength = 0.6;
    spec.refinePlacement = true;
    entry.spec = spec;
    suite.push_back(std::move(entry));
  }
  return suite;
}

}  // namespace crp::bmgen
