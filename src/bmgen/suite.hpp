// The crp_test1..10 suite: a laptop-scale mirror of the ISPD-2018
// contest benchmarks (paper Table II).  Cell/net counts follow the
// contest's size ladder and cells/nets ratios, scaled down by a
// configurable factor (default 1/40); congestion hotspots are placed
// on the designs the paper identifies as congested (tests 5-9), and
// tests 2-3 are generated with weaker locality/congestion so the
// median-move baseline [18] can win there, as in Table III.
#pragma once

#include <vector>

#include "bmgen/generator.hpp"

namespace crp::bmgen {

/// Table II row (paper side), used to derive the scaled spec and to
/// print the bench_table2 reproduction.
struct SuiteEntry {
  std::string name;
  int paperNets;   ///< Table II "# nets"
  int paperCells;  ///< Table II "# cells"
  int techNode;    ///< 45 or 32 (nm)
  int hotspots;    ///< congestion hotspots in the scaled design
  double utilization;
  BenchmarkSpec spec;  ///< fully derived generator spec
};

/// Builds the suite specs.  `scale` divides the paper's cell counts
/// (1.0 = full contest scale; default 40 yields ~200-7000 cells).
std::vector<SuiteEntry> ispdLikeSuite(double scaleDivisor = 40.0);

}  // namespace crp::bmgen
