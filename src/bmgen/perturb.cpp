#include "bmgen/perturb.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.hpp"

namespace crp::bmgen {
namespace {

/// Squared partner distance (fits easily in 64 bits for DBU coords).
long long dist2(const geom::Point& a, const geom::Point& b) {
  const long long dx = a.x - b.x;
  const long long dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

db::EcoDelta perturbDesign(const db::Database& db,
                           const PerturbOptions& options) {
  db::EcoDelta delta;

  std::vector<db::CellId> movable;
  for (db::CellId c = 0; c < db.numCells(); ++c) {
    if (!db.cell(c).fixed) movable.push_back(c);
  }
  if (movable.size() < 2) return delta;

  const int wantSwaps = static_cast<int>(std::min<long long>(
      std::max<long long>(1, std::llround(options.frac * db.numCells())),
      static_cast<long long>(movable.size() / 2)));
  geom::Coord radius =
      options.radiusDbu > 0 ? options.radiusDbu : 8 * db.rowHeight();

  util::Rng rng(options.seed ^ 0x65636f7065727455ULL);

  // Cluster: one anchor cell, candidates restricted to its
  // neighborhood.  This is what makes the delta's dirty region a small
  // fraction of the die — the property the ECO engine's speedup feeds
  // on — and it mirrors how real ECOs edit one functional block.
  const db::CellId anchor = movable[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<long long>(movable.size()) - 1))];
  const geom::Point anchorPos = db.cell(anchor).pos;
  geom::Coord cluster = options.clusterRadiusDbu > 0
                            ? options.clusterRadiusDbu
                            : 16 * db.rowHeight();
  std::vector<db::CellId> pool;
  const std::size_t wantPool =
      std::min(movable.size(), static_cast<std::size_t>(4 * wantSwaps + 4));
  for (;;) {
    pool.clear();
    const long long c2 = static_cast<long long>(cluster) * cluster;
    for (const db::CellId c : movable) {
      if (dist2(anchorPos, db.cell(c).pos) <= c2) pool.push_back(c);
    }
    if (pool.size() >= wantPool || pool.size() == movable.size()) break;
    cluster *= 2;
  }

  std::unordered_set<db::CellId> used;
  std::unordered_set<db::NetId> rewired;
  int swaps = 0;
  int rewires = 0;
  // Each attempt draws one candidate cell; widen the radius whenever a
  // draw finds no partner so dense/sparse designs both converge.
  const int maxAttempts = 20 * wantSwaps + 20;
  for (int attempt = 0; attempt < maxAttempts && swaps < wantSwaps;
       ++attempt) {
    const db::CellId a = pool[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<long long>(pool.size()) - 1))];
    if (used.count(a) > 0) continue;
    const db::Component& compA = db.cell(a);
    const geom::Coord widthA = db.macroOf(a).width;
    const geom::Coord heightA = db.macroOf(a).height;

    // Nearest same-footprint partner within the radius (ties -> lower
    // id), so the swap is legal by construction: each cell lands
    // exactly on the footprint the other vacated.  Height must match
    // too — on mixed-height designs a single-row cell moved onto a
    // double-row slot (or vice versa) would overlap its neighbours.
    db::CellId best = db::kInvalidId;
    long long bestD = static_cast<long long>(radius) * radius;
    for (const db::CellId b : pool) {
      if (b == a || used.count(b) > 0) continue;
      if (db.macroOf(b).width != widthA ||
          db.macroOf(b).height != heightA) {
        continue;
      }
      const long long d = dist2(compA.pos, db.cell(b).pos);
      if (d > 0 && (d < bestD || (d == bestD && (best == db::kInvalidId ||
                                                b < best)))) {
        best = b;
        bestD = d;
      }
    }
    if (best == db::kInvalidId) {
      radius *= 2;  // nothing in range: widen and redraw
      continue;
    }

    delta.moves.push_back({db.cell(a).name, db.cell(best).pos});
    delta.moves.push_back({db.cell(best).name, compA.pos});
    used.insert(a);
    used.insert(best);
    ++swaps;

    // Roughly one netlist edit per four swaps: detach a non-driver pin
    // of a >=3-pin net of the swapped cell and re-attach it to another
    // of the cell's nets, so the rewire stays local to the dirty
    // region.
    if (!options.rewirePins || swaps % 4 != 1) continue;
    const std::vector<db::NetId>& nets = db.netsOfCell(a);
    if (nets.size() < 2) continue;
    for (const db::NetId source : nets) {
      if (rewired.count(source) > 0) continue;
      const db::Net& net = db.net(source);
      if (net.pins.size() < 3) continue;
      // First comp pin is the driver under bmgen's single-driver
      // convention — pick the last non-IO pin instead.
      int pick = -1;
      for (int p = static_cast<int>(net.pins.size()) - 1; p > 0; --p) {
        if (!net.pins[static_cast<std::size_t>(p)].isIo()) {
          pick = p;
          break;
        }
      }
      if (pick <= 0) continue;
      const db::CompPinRef ref =
          net.pins[static_cast<std::size_t>(pick)].compPin();
      db::NetId target = db::kInvalidId;
      for (const db::NetId t : nets) {
        if (t == source || rewired.count(t) > 0) continue;
        bool already = false;
        for (const db::NetPin& pin : db.net(t).pins) {
          if (!pin.isIo() && pin.compPin() == ref) already = true;
        }
        if (!already) {
          target = t;
          break;
        }
      }
      if (target == db::kInvalidId) continue;
      const std::string pinName =
          db.macroOf(ref.cell).pins[static_cast<std::size_t>(ref.pin)].name;
      const std::string cellName = db.cell(ref.cell).name;
      delta.removePins.push_back({db.net(source).name, cellName, pinName});
      delta.addPins.push_back({db.net(target).name, cellName, pinName});
      rewired.insert(source);
      rewired.insert(target);
      ++rewires;
      break;
    }
  }
  (void)rewires;
  return delta;
}

}  // namespace crp::bmgen
