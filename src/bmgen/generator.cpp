#include "bmgen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dplace/detailed_placer.hpp"
#include "util/rng.hpp"

namespace crp::bmgen {

namespace {

using db::Component;
using db::Coord;
using db::Design;
using db::Library;
using db::Macro;
using db::Net;
using db::NetPin;
using db::Row;
using db::Tech;
using geom::Point;
using geom::Rect;

void addTracks(Design& design, const Tech& tech) {
  for (int l = 0; l < tech.numLayers(); ++l) {
    const auto& layer = tech.layer(l);
    db::TrackGrid grid;
    grid.layer = l;
    grid.dir = layer.dir;
    grid.step = layer.pitch;
    if (layer.dir == db::LayerDir::kHorizontal) {
      grid.start = design.dieArea.ylo + layer.offset;
      grid.count = static_cast<int>(
          (design.dieArea.height() - layer.offset) / layer.pitch);
    } else {
      grid.start = design.dieArea.xlo + layer.offset;
      grid.count = static_cast<int>(
          (design.dieArea.width() - layer.offset) / layer.pitch);
    }
    design.tracks.push_back(grid);
  }
}

/// Benchmark cell: like Library::makeDefault's cells but wide enough
/// that every pin gets its own track column (width in sites >= number
/// of pins when pitch == site width), which is how real libraries
/// avoid same-cell pin-access contention in detailed routing.
Macro makeBenchCell(const std::string& name, int widthSites, int nInputs,
                    Coord siteWidth, Coord rowHeight, int pinLayer) {
  Macro macro;
  macro.name = name;
  macro.width = widthSites * siteWidth;
  macro.height = rowHeight;
  const int nPins = nInputs + 1;
  const Coord pinSize = std::max<Coord>(2, siteWidth / 5);
  for (int i = 0; i < nPins; ++i) {
    db::MacroPin pin;
    const bool isOutput = (i == nPins - 1);
    pin.name = isOutput ? "Y" : std::string(1, static_cast<char>('A' + i));
    pin.dir = isOutput ? db::PinDir::kOutput : db::PinDir::kInput;
    const Coord cx = macro.width * (2 * i + 1) / (2 * nPins);
    const Coord cy = rowHeight * (1 + (i % 3)) / 4;
    pin.shapes.push_back(
        db::PinShape{pinLayer, Rect{cx - pinSize / 2, cy - pinSize / 2,
                                    cx + pinSize / 2, cy + pinSize / 2}});
    macro.pins.push_back(std::move(pin));
  }
  return macro;
}

/// Double-height register cell: same pin recipe as makeBenchCell but
/// spanning two rows (the mixed-height axis).
Macro makeDoubleHeightCell(const std::string& name, int widthSites,
                           int nInputs, Coord siteWidth, Coord rowHeight,
                           int pinLayer) {
  Macro macro = makeBenchCell(name, widthSites, nInputs, siteWidth,
                              2 * rowHeight, pinLayer);
  return macro;
}

/// Fixed macro block: full-footprint obstructions on layers 0 and 1
/// (so its interior is impassable on the cell layers while layers >= 2
/// stay open for over-the-block routing), plus boundary pins on layer
/// 2 the netlist builder wires like any other cell's pins.
Macro makeMacroBlock(const std::string& name, int widthSites, int rowSpan,
                     Coord siteWidth, Coord rowHeight, int pinLayer) {
  Macro macro;
  macro.name = name;
  macro.width = widthSites * siteWidth;
  macro.height = rowSpan * rowHeight;
  const Coord ps = std::max<Coord>(2, siteWidth / 2);
  auto addPin = [&](const std::string& pinName, db::PinDir dir, Coord cx,
                    Coord cy) {
    db::MacroPin pin;
    pin.name = pinName;
    pin.dir = dir;
    pin.shapes.push_back(db::PinShape{
        pinLayer, Rect{cx - ps, cy - ps, cx + ps, cy + ps}});
    macro.pins.push_back(std::move(pin));
  };
  addPin("A", db::PinDir::kInput, ps, macro.height / 3);
  addPin("B", db::PinDir::kInput, ps, 2 * macro.height / 3);
  addPin("Y", db::PinDir::kOutput, macro.width - ps, macro.height / 2);
  macro.obstructions.push_back(
      db::Obstruction{0, Rect{0, 0, macro.width, macro.height}});
  macro.obstructions.push_back(
      db::Obstruction{1, Rect{0, 0, macro.width, macro.height}});
  return macro;
}

Library makeBenchLibrary(Coord siteWidth, Coord rowHeight, int pinLayer) {
  Library lib;
  lib.addMacro(makeBenchCell("INV_X1", 2, 1, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeBenchCell("BUF_X2", 2, 1, siteWidth, rowHeight, pinLayer));
  lib.addMacro(
      makeBenchCell("NAND2_X1", 3, 2, siteWidth, rowHeight, pinLayer));
  lib.addMacro(
      makeBenchCell("NOR2_X1", 3, 2, siteWidth, rowHeight, pinLayer));
  lib.addMacro(
      makeBenchCell("AOI21_X1", 4, 3, siteWidth, rowHeight, pinLayer));
  lib.addMacro(
      makeBenchCell("OAI22_X1", 5, 4, siteWidth, rowHeight, pinLayer));
  lib.addMacro(
      makeBenchCell("MUX2_X1", 4, 3, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeBenchCell("DFF_X1", 6, 2, siteWidth, rowHeight, pinLayer));
  lib.addMacro(
      makeBenchCell("DFFR_X2", 8, 3, siteWidth, rowHeight, pinLayer));
  // Mixed-height / macro-block axes (appended so the classic macro ids
  // above stay stable).
  lib.addMacro(makeDoubleHeightCell("DFF2_X2", 4, 2, siteWidth, rowHeight,
                                    pinLayer));
  return lib;
}

}  // namespace

db::Database generateBenchmark(const BenchmarkSpec& spec) {
  util::Rng rng(spec.seed);

  Tech tech = Tech::makeDefault(spec.numLayers, spec.pitch, spec.wireWidth,
                                spec.wireSpacing, spec.minArea,
                                spec.siteWidth, spec.rowHeight);
  Library lib = makeBenchLibrary(spec.siteWidth, spec.rowHeight,
                                 /*pinLayer=*/0);

  // ---- pick macros for every cell -------------------------------------------
  // Weighted toward small cells, like real standard-cell mixes.  The
  // multi-row draw is guarded so the classic single-height spec
  // consumes the exact historical RNG stream.
  std::vector<int> macroOf(spec.targetCells);
  Coord totalCellWidth = 0;  // row-width equivalent: width * row span
  for (int i = 0; i < spec.targetCells; ++i) {
    const double draw = rng.uniform();
    const char* name = draw < 0.30   ? "INV_X1"
                       : draw < 0.50 ? "NAND2_X1"
                       : draw < 0.65 ? "NOR2_X1"
                       : draw < 0.75 ? "BUF_X2"
                       : draw < 0.85 ? "AOI21_X1"
                       : draw < 0.92 ? "MUX2_X1"
                       : draw < 0.97 ? "DFF_X1"
                                     : "DFFR_X2";
    if (spec.multiRowFrac > 0.0 && rng.bernoulli(spec.multiRowFrac)) {
      name = "DFF2_X2";
    }
    macroOf[i] = *lib.findMacro(name);
    const auto& m = lib.macro(macroOf[i]);
    totalCellWidth += m.width * (m.height / spec.rowHeight);
  }

  // ---- floorplan: near-square core at the target utilization ----------------
  const int blockId =
      spec.macroCount > 0
          ? lib.addMacro(makeMacroBlock("MACRO_BLK", spec.macroWidthSites,
                                        spec.macroRowSpan, spec.siteWidth,
                                        spec.rowHeight, /*pinLayer=*/2))
          : -1;
  const double macroArea =
      static_cast<double>(spec.macroCount) *
      (static_cast<double>(spec.macroWidthSites) * spec.siteWidth) *
      (static_cast<double>(spec.macroRowSpan) * spec.rowHeight);
  const double cellArea =
      static_cast<double>(totalCellWidth) * spec.rowHeight;
  const double coreArea =
      cellArea / std::max(0.05, spec.utilization) + macroArea;
  int numRows = std::max(
      2, static_cast<int>(std::lround(std::sqrt(coreArea) / spec.rowHeight)));
  if (spec.macroCount > 0) {
    numRows = std::max(numRows, spec.macroRowSpan + 2);
  }
  Coord rowWidth = static_cast<Coord>(coreArea / numRows / spec.rowHeight);
  rowWidth = ((rowWidth + spec.siteWidth - 1) / spec.siteWidth) *
             spec.siteWidth;
  if (spec.macroCount > 0) {
    rowWidth = std::max<Coord>(
        rowWidth, (spec.macroWidthSites + 4) * spec.siteWidth);
  }
  const int sitesPerRow = static_cast<int>(rowWidth / spec.siteWidth);

  Design design;
  design.name = spec.name;
  design.dieArea = Rect{0, 0, rowWidth, numRows * spec.rowHeight};
  for (int r = 0; r < numRows; ++r) {
    design.rows.push_back(Row{"row_" + std::to_string(r),
                              Point{0, r * spec.rowHeight}, sitesPerRow,
                              geom::Orientation::kN});
  }
  design.gcellCountX = std::max<int>(
      3, static_cast<int>(design.dieArea.width() / spec.gcellSize));
  design.gcellCountY = std::max<int>(
      3, static_cast<int>(design.dieArea.height() / spec.gcellSize));
  addTracks(design, tech);

  // ---- fixed macro blocks ----------------------------------------------------
  // Placed on the row/site grid before the cell fill; every footprint
  // becomes an obstacle span the fill deals around.  Per-row obstacle
  // intervals (sorted, site-aligned) also carry the upper-strip
  // reservations of double-height cells below.
  std::vector<std::vector<std::pair<Coord, Coord>>> rowObstacles(numRows);
  auto addObstacle = [&](int row, Coord lo, Coord hi) {
    auto& spans = rowObstacles[row];
    spans.insert(std::upper_bound(spans.begin(), spans.end(),
                                  std::make_pair(lo, hi)),
                 {lo, hi});
  };
  // Smallest site-aligned x >= pos where [x, x+w) avoids the row's
  // obstacles (assumes spans are disjoint, which macro non-overlap and
  // left-to-right reservation guarantee).
  auto nextFree = [&](int row, Coord pos, Coord w) {
    for (const auto& [lo, hi] : rowObstacles[row]) {
      if (hi <= pos) continue;
      if (lo < pos + w) pos = hi;
    }
    return pos;
  };
  Coord macroRowWidth = 0;  // row-width equivalent consumed by macros
  if (spec.macroCount > 0) {
    const auto& block = lib.macro(blockId);
    std::vector<Rect> placedBlocks;
    const Coord marginX = 2 * spec.siteWidth;
    for (int m = 0; m < spec.macroCount; ++m) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const int row = static_cast<int>(
            rng.uniformInt(0, numRows - spec.macroRowSpan));
        const int site = static_cast<int>(
            rng.uniformInt(0, sitesPerRow - spec.macroWidthSites));
        const Coord mx = static_cast<Coord>(site) * spec.siteWidth;
        const Coord my = static_cast<Coord>(row) * spec.rowHeight;
        const Rect rect{mx, my, mx + block.width, my + block.height};
        const Rect inflated{rect.xlo - marginX, rect.ylo - spec.rowHeight,
                            rect.xhi + marginX, rect.yhi + spec.rowHeight};
        const bool clash =
            std::any_of(placedBlocks.begin(), placedBlocks.end(),
                        [&](const Rect& b) { return inflated.overlaps(b); });
        if (clash) continue;
        placedBlocks.push_back(rect);
        Component comp;
        comp.name = "macro_" + std::to_string(m);
        comp.macro = blockId;
        comp.pos = Point{mx, my};
        comp.fixed = true;
        design.components.push_back(comp);
        for (int s = 0; s < spec.macroRowSpan; ++s) {
          addObstacle(row + s, mx, mx + block.width);
        }
        macroRowWidth += block.width * spec.macroRowSpan;
        // Partial layer-2 routing blockage over the block: capacity
        // above a macro is reduced (power straps, pin shields) but not
        // hard-blocked, so detours over the top stay possible.
        design.blockages.push_back(db::Blockage{
            2, Rect{rect.xlo, rect.ylo, (rect.xlo + rect.xhi) / 2,
                    rect.yhi}});
        break;
      }
    }
  }
  const int placedMacros = static_cast<int>(design.components.size());

  // ---- placement: row-fill with randomized gaps ------------------------------
  // Shuffle the cell order, then deal cells into rows left to right,
  // dealing around macro footprints and reserving the upper strips of
  // double-height cells, inserting gap sites so the total fill matches
  // the utilization.
  std::vector<int> order(spec.targetCells);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniformInt(0, i - 1))]);
  }
  const Coord totalRowWidth = static_cast<Coord>(numRows) * rowWidth;
  const Coord totalGap = std::max<Coord>(
      0, totalRowWidth - totalCellWidth - macroRowWidth);
  const double gapPerCell =
      static_cast<double>(totalGap) / std::max(1, spec.targetCells);

  int rowIdx = 0;
  Coord x = 0;
  double gapCredit = 0.0;
  design.components.reserve(placedMacros + spec.targetCells);
  for (const int cellIdx : order) {
    const auto& macro = lib.macro(macroOf[cellIdx]);
    const int span = static_cast<int>(macro.height / spec.rowHeight);
    // Random gap (exponential-ish around the average).
    gapCredit += gapPerCell * rng.uniform(0.0, 2.0);
    Coord gap = (static_cast<Coord>(gapCredit) / spec.siteWidth) *
                spec.siteWidth;
    gapCredit -= static_cast<double>(gap);
    if (rowIdx + span > numRows) {
      if (span > 1) continue;  // no full span left near the top: skip
      break;
    }
    Coord slot = 0;
    bool found = false;
    while (rowIdx < numRows) {
      if (rowIdx + span > numRows) break;
      // Push the candidate right past obstacles in every spanned row
      // until it stabilizes or overflows the row.
      Coord cand = x + gap;
      bool moved = true;
      while (moved && cand + macro.width <= rowWidth) {
        moved = false;
        for (int s = 0; s < span; ++s) {
          const Coord adv = nextFree(rowIdx + s, cand, macro.width);
          if (adv != cand) {
            cand = adv;
            moved = true;
          }
        }
      }
      if (cand + macro.width <= rowWidth) {
        slot = cand;
        found = true;
        break;
      }
      // Close this row; spill remaining gap.
      ++rowIdx;
      x = 0;
      gap = 0;
    }
    if (!found) {
      if (rowIdx + 1 < numRows || span > 1) continue;
      // Extremely unlikely (rounding): place in the last row flush left
      // is impossible, so grow rows pessimistically instead of failing.
      break;
    }
    Component comp;
    comp.name = "inst_" + std::to_string(cellIdx);
    comp.macro = macroOf[cellIdx];
    comp.pos = Point{slot, static_cast<Coord>(rowIdx) * spec.rowHeight};
    design.components.push_back(comp);
    for (int s = 1; s < span; ++s) {
      addObstacle(rowIdx + s, slot, slot + macro.width);
    }
    x = slot + macro.width;
  }
  const int placedCells = static_cast<int>(design.components.size());

  // ---- netlist: single-driver nets with locality bias ------------------------
  // Free input pins per cell (never reuse an input).
  std::vector<std::vector<int>> freeInputs(placedCells);
  std::vector<int> outputPin(placedCells, -1);
  for (int i = 0; i < placedCells; ++i) {
    const auto& macro = lib.macro(design.components[i].macro);
    for (int p = 0; p < static_cast<int>(macro.pins.size()); ++p) {
      if (macro.pins[p].dir == db::PinDir::kInput) {
        freeInputs[i].push_back(p);
      } else if (outputPin[i] < 0) {
        outputPin[i] = p;
      }
    }
  }
  // Spatial buckets for locality: tiles sized relative to the die so
  // "local" keeps meaning the same die fraction at every scale.
  const Coord tile = std::max<Coord>(
      {spec.rowHeight, spec.gcellSize,
       std::min(design.dieArea.width(), design.dieArea.height()) / 10});
  const int tilesX =
      std::max<int>(1, static_cast<int>(design.dieArea.width() / tile));
  const int tilesY =
      std::max<int>(1, static_cast<int>(design.dieArea.height() / tile));
  std::vector<std::vector<int>> tileCells(
      static_cast<std::size_t>(tilesX) * tilesY);
  auto tileOf = [&](const Point& p) {
    const int tx = std::clamp<int>(static_cast<int>(p.x / tile), 0,
                                   tilesX - 1);
    const int ty = std::clamp<int>(static_cast<int>(p.y / tile), 0,
                                   tilesY - 1);
    return ty * tilesX + tx;
  };
  for (int i = 0; i < placedCells; ++i) {
    tileCells[tileOf(design.components[i].pos)].push_back(i);
  }

  const int targetNets = static_cast<int>(
      std::lround(spec.netsPerCell * placedCells));
  // Drivers in shuffled order; wrap around if more nets than drivers.
  std::vector<int> drivers;
  for (int i = 0; i < placedCells; ++i) {
    if (outputPin[i] >= 0) drivers.push_back(i);
  }
  for (std::size_t i = drivers.size(); i > 1; --i) {
    std::swap(drivers[i - 1],
              drivers[static_cast<std::size_t>(rng.uniformInt(0, i - 1))]);
  }

  const Coord localRadius = 3 * tile / 2;
  auto pickSink = [&](int driver) -> int {
    const Point dp = design.components[driver].pos;
    for (int attempt = 0; attempt < 16; ++attempt) {
      int candidate;
      const bool wantLocal = rng.bernoulli(spec.localityBias);
      if (wantLocal) {
        // Local: a random cell from the driver's tile neighbourhood,
        // accepted only within the local radius.
        const int tx = std::clamp<int>(
            static_cast<int>(dp.x / tile) +
                static_cast<int>(rng.uniformInt(-1, 1)),
            0, tilesX - 1);
        const int ty = std::clamp<int>(
            static_cast<int>(dp.y / tile) +
                static_cast<int>(rng.uniformInt(-1, 1)),
            0, tilesY - 1);
        const auto& bucket = tileCells[ty * tilesX + tx];
        if (bucket.empty()) continue;
        candidate = bucket[static_cast<std::size_t>(
            rng.uniformInt(0, bucket.size() - 1))];
        if (geom::manhattan(design.components[candidate].pos, dp) >
            localRadius) {
          continue;
        }
      } else {
        candidate = static_cast<int>(rng.uniformInt(0, placedCells - 1));
      }
      if (candidate != driver && !freeInputs[candidate].empty()) {
        return candidate;
      }
    }
    return -1;
  };

  int netId = 0;
  for (int d = 0; d < targetNets && d < static_cast<int>(drivers.size());
       ++d) {
    const int driver = drivers[d];
    // Fan-out: mostly 1-3 sinks, occasional larger nets.
    const int fanout = static_cast<int>(rng.geometric(1, 0.45, 12));
    Net net;
    net.name = "net_" + std::to_string(netId);
    net.pins.push_back(NetPin{db::CompPinRef{driver, outputPin[driver]}});
    int sinks = 0;
    for (int s = 0; s < fanout; ++s) {
      const int sink = pickSink(driver);
      if (sink < 0) break;
      const int pin = freeInputs[sink].back();
      freeInputs[sink].pop_back();
      net.pins.push_back(NetPin{db::CompPinRef{sink, pin}});
      ++sinks;
    }
    if (sinks == 0) continue;  // dangling driver: skip the net
    design.nets.push_back(std::move(net));
    ++netId;
  }

  // ---- IO pins: a few boundary pins attached to fresh nets -------------------
  const int numIo = std::max(2, placedCells / 200);
  for (int i = 0; i < numIo; ++i) {
    db::IoPin pin;
    pin.name = "io_" + std::to_string(i);
    const bool onLeft = (i % 2 == 0);
    const Coord y = geom::snapNearest(
        static_cast<Coord>(rng.uniformInt(design.dieArea.ylo,
                                          design.dieArea.yhi - 1)),
        spec.pitch / 2, spec.pitch);
    pin.pos = Point{onLeft ? design.dieArea.xlo : design.dieArea.xhi, y};
    pin.layer = 0;
    pin.shape = Rect{pin.pos.x - 5, pin.pos.y - 5, pin.pos.x + 5,
                     pin.pos.y + 5};
    const db::IoPinId ioId =
        static_cast<db::IoPinId>(design.ioPins.size());
    design.ioPins.push_back(pin);
    // Connect to a random cell with a free input.
    int sink = -1;
    for (int attempt = 0; attempt < 20 && sink < 0; ++attempt) {
      const int candidate =
          static_cast<int>(rng.uniformInt(0, placedCells - 1));
      if (!freeInputs[candidate].empty()) sink = candidate;
    }
    if (sink >= 0) {
      Net net;
      net.name = "io_net_" + std::to_string(i);
      net.pins.push_back(NetPin{ioId});
      const int pinIdx = freeInputs[sink].back();
      freeInputs[sink].pop_back();
      net.pins.push_back(NetPin{db::CompPinRef{sink, pinIdx}});
      design.nets.push_back(std::move(net));
    }
  }

  // ---- congestion hotspots: mid-layer routing blockages ----------------------
  for (int h = 0; h < spec.hotspots; ++h) {
    const Coord w = design.dieArea.width() / 6;
    const Coord hgt = design.dieArea.height() / 6;
    const Coord cx = static_cast<Coord>(rng.uniformInt(
        design.dieArea.xlo + w, design.dieArea.xhi - w));
    const Coord cy = static_cast<Coord>(rng.uniformInt(
        design.dieArea.ylo + hgt, design.dieArea.yhi - hgt));
    const Rect region{cx - w / 2, cy - hgt / 2, cx + w / 2, cy + hgt / 2};
    // Block a strength-fraction of the mid layers over the region: a
    // horizontal and a vertical layer lose capacity there.
    const Coord blockedH =
        static_cast<Coord>(region.height() * spec.hotspotStrength);
    const Coord blockedW =
        static_cast<Coord>(region.width() * spec.hotspotStrength);
    design.blockages.push_back(db::Blockage{
        2, Rect{region.xlo, region.ylo, region.xhi,
                region.ylo + blockedH}});
    design.blockages.push_back(db::Blockage{
        3, Rect{region.xlo, region.ylo, region.xlo + blockedW,
                region.yhi}});
  }

  db::Database db(std::move(tech), std::move(lib), std::move(design));
  if (spec.refinePlacement) {
    dplace::DetailedPlacerOptions options;
    options.passes = 3;
    options.seed = spec.seed;
    dplace::DetailedPlacer placer(db, options);
    placer.run();
  }
  return db;
}

}  // namespace crp::bmgen
