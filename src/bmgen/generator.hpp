// Synthetic benchmark generator — the ISPD-2018 suite substitute.
//
// Generates complete designs (tech + library + placed netlist + tracks
// + gcell grid + optional congestion-hotspot blockages) that mirror the
// structural properties CR&P's behaviour depends on: high row
// utilization, local-with-occasional-global netlist connectivity
// (Rent-style), mostly 2-4-pin nets with a fat tail, and congestion
// hotspots.  Deterministic for a given spec (seeded xoshiro RNG).
#pragma once

#include <cstdint>
#include <string>

#include "db/database.hpp"

namespace crp::bmgen {

struct BenchmarkSpec {
  std::string name = "bench";
  int targetCells = 1000;
  double utilization = 0.85;  ///< row fill fraction (ISPD-2018-like)
  int numLayers = 6;
  int techNode = 32;  ///< cosmetic (Table II column)
  /// Net count as a fraction of cell count (Table II ratios).
  double netsPerCell = 1.0;
  /// Fraction of sinks chosen locally (within ~2 gcells); the rest are
  /// uniform over the die (the Rent-style global tail).
  double localityBias = 0.8;
  /// Number of congestion hotspots (routing blockages on mid layers).
  int hotspots = 0;
  /// Fraction of each hotspot's gcell capacity removed.
  double hotspotStrength = 0.5;
  /// Fixed macro blocks placed before row fill.  Each macro carries
  /// full-footprint obstructions on layers 0-1 (hard-blocking those
  /// layers' interior edges while keeping upper layers free for
  /// detours), boundary pins on layer 2 wired into the netlist, and a
  /// partial layer-2 routing blockage over its footprint.
  int macroCount = 0;
  /// Macro block dimensions (sites wide x rows tall).  At 40x4 with the
  /// default geometry a block spans ~2 gcells per axis; 60x6 spans 3,
  /// which guarantees interior hard-blocked edges at any alignment.
  int macroWidthSites = 40;
  int macroRowSpan = 4;
  /// Fraction of standard cells emitted as the double-height DFF2_X2
  /// variant (mixed-height designs; 0 keeps the classic single-height
  /// mix and the historical RNG stream).
  double multiRowFrac = 0.0;
  /// Run an HPWL refinement pass (global swap + local reordering) on
  /// the generated placement, mirroring the contest benchmarks whose
  /// placements are already optimized — without it, a pure median-move
  /// optimizer ([18]) gets artificial slack that real inputs lack.
  bool refinePlacement = false;
  std::uint64_t seed = 1;

  // Physical parameters (DBU).  The track pitch equals the site width,
  // matching real libraries where M1/M2 pitch tracks the site grid —
  // a coarser pitch makes abutting cells' pins collide on tracks.
  geom::Coord siteWidth = 10;
  geom::Coord rowHeight = 100;
  geom::Coord pitch = 10;
  geom::Coord wireWidth = 4;
  geom::Coord wireSpacing = 6;
  geom::Coord minArea = 60;
  geom::Coord gcellSize = 200;  ///< target gcell edge length
};

/// Generates the full design database for a spec.  The placement is
/// legal by construction and the netlist is single-driver.
db::Database generateBenchmark(const BenchmarkSpec& spec);

}  // namespace crp::bmgen
