// Re-implementation of the paper's state-of-the-art comparator [18]:
// Fontana et al., "ILP-based global routing optimization with cell
// movements" (ISVLSI 2021), as characterized in §II and §V.B:
//
//  * every movable cell is considered, with no criticality priority;
//  * each cell's move target is its median position (cluster median);
//  * the cost model is route length / detours only — no congestion
//    penalty ("the cost function is only modeled by the length and a
//    number of detours in each route");
//  * one ILP selects the moves jointly;
//  * runtime scales poorly, and the original binary failed on
//    ispd18_test10 — reproduced here with a wall-clock budget that
//    aborts the optimizer the way the binary died (reported "Failed").
#pragma once

#include <limits>

#include "db/database.hpp"
#include "groute/global_router.hpp"

namespace crp::baseline {

struct BaselineOptions {
  int searchRadiusSites = 20;  ///< slot search window around the median
  int searchRows = 5;
  double timeBudgetSeconds = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 1;
};

struct BaselineResult {
  bool failed = false;  ///< exceeded the budget (the paper's "Failed")
  int consideredCells = 0;
  int movedCells = 0;
  int reroutedNets = 0;
  double seconds = 0.0;
};

/// Runs the median-move ILP optimization on top of an existing global
/// routing solution; mutates `db` and `router` like CR&P's UD phase.
BaselineResult runMedianIlpOptimizer(db::Database& db,
                                     groute::GlobalRouter& router,
                                     const BaselineOptions& options = {});

}  // namespace crp::baseline
