#include "baseline/median_ilp.hpp"

#include <algorithm>

#include "crp/candidate_generation.hpp"
#include "crp/selection.hpp"
#include "legalizer/ilp_legalizer.hpp"
#include "util/timer.hpp"

namespace crp::baseline {

namespace {

using core::Candidate;
using core::CellCandidates;

/// Per-row occupancy index: sorted (xlo, xhi, cell) per row.
struct RowIndex {
  std::vector<std::vector<std::tuple<geom::Coord, geom::Coord, db::CellId>>>
      rows;

  explicit RowIndex(const db::Database& db) : rows(db.numRows()) {
    for (db::CellId c = 0; c < db.numCells(); ++c) {
      const auto rect = db.cellRect(c);
      const int rowIdx = db.rowAt(rect.ylo);
      if (rowIdx != db::kInvalidId) {
        rows[rowIdx].emplace_back(rect.xlo, rect.xhi, c);
      }
    }
    for (auto& row : rows) std::sort(row.begin(), row.end());
  }

  /// True when [x, x+w) in `rowIdx` is free of cells other than `self`.
  bool spanFree(int rowIdx, geom::Coord x, geom::Coord w,
                db::CellId self) const {
    const auto& row = rows[rowIdx];
    // First interval with xlo >= x + w cannot overlap; walk backwards
    // from there while intervals may still reach into [x, x+w).
    auto it = std::lower_bound(
        row.begin(), row.end(),
        std::make_tuple(x + w, std::numeric_limits<geom::Coord>::min(),
                        db::kInvalidId));
    while (it != row.begin()) {
      --it;
      const auto& [xlo, xhi, id] = *it;
      if (xhi <= x) break;  // sorted by xlo; earlier cells end earlier
      if (id != self && xlo < x + w && xhi > x) return false;
    }
    return true;
  }
};

/// Nearest free legal slot to `target` for `cell`, searched inside a
/// window of the given size; kInvalid position (current) when none.
std::optional<geom::Point> nearestFreeSlot(const db::Database& db,
                                           const RowIndex& index,
                                           db::CellId cell,
                                           const geom::Point& target,
                                           int radiusSites, int radiusRows) {
  const auto& macro = db.macroOf(cell);
  const geom::Coord siteW = db.siteWidth();
  const geom::Coord rowH = db.rowHeight();
  const int centerRow = db.rowAt(
      std::clamp(target.y, db.design().dieArea.ylo,
                 db.design().dieArea.yhi - 1));
  if (centerRow == db::kInvalidId) return std::nullopt;

  std::optional<geom::Point> best;
  geom::Coord bestDist = std::numeric_limits<geom::Coord>::max();
  const int rowLo = std::max(0, centerRow - radiusRows / 2);
  const int rowHi = std::min(db.numRows() - 1, centerRow + radiusRows / 2);
  for (int rowIdx = rowLo; rowIdx <= rowHi; ++rowIdx) {
    const db::Row& row = db.row(rowIdx);
    const geom::Coord xCenter =
        geom::snapNearest(target.x, row.origin.x, siteW);
    for (int offset = -radiusSites / 2; offset <= radiusSites / 2;
         ++offset) {
      const geom::Coord x = xCenter + offset * siteW;
      if (x < row.origin.x ||
          x + macro.width > row.origin.x + row.numSites * siteW) {
        continue;
      }
      const geom::Rect span{x, row.origin.y, x + macro.width,
                            row.origin.y + rowH};
      if (!db.design().dieArea.contains(span)) continue;
      if (!index.spanFree(rowIdx, x, macro.width, cell)) continue;
      const geom::Coord dist =
          geom::manhattan(geom::Point{x, row.origin.y}, target);
      if (dist < bestDist) {
        bestDist = dist;
        best = geom::Point{x, row.origin.y};
      }
    }
  }
  if (best.has_value() && *best == db.cell(cell).pos) return std::nullopt;
  return best;
}

}  // namespace

BaselineResult runMedianIlpOptimizer(db::Database& db,
                                     groute::GlobalRouter& router,
                                     const BaselineOptions& options) {
  util::Stopwatch watch;
  BaselineResult result;

  // [18] prices candidates WITHOUT the congestion penalty: flip the
  // live graph's cost config for the estimation phase, restore after.
  groute::RoutingGraph& graph = router.graph();
  const groute::CostConfig savedConfig = graph.config();
  groute::CostConfig distanceOnly = savedConfig;
  distanceOnly.congestionPenalty = false;
  graph.setConfig(distanceOnly);
  const groute::PatternRouter pattern(graph);
  const RowIndex index(db);

  std::vector<CellCandidates> candidates;
  for (db::CellId cell = 0; cell < db.numCells(); ++cell) {
    if (db.cell(cell).fixed) continue;
    if (db.netsOfCell(cell).empty()) continue;
    if (watch.seconds() > options.timeBudgetSeconds) {
      graph.setConfig(savedConfig);
      result.failed = true;
      result.seconds = watch.seconds();
      return result;
    }
    ++result.consideredCells;

    CellCandidates cc;
    cc.cell = cell;
    Candidate stay;
    stay.position = db.cell(cell).pos;
    stay.isCurrent = true;
    cc.candidates.push_back(stay);

    const geom::Point median = db.medianPosition(cell);
    const auto slot = nearestFreeSlot(db, index, cell, median,
                                      options.searchRadiusSites,
                                      options.searchRows);
    if (slot.has_value()) {
      Candidate move;
      move.position = *slot;
      cc.candidates.push_back(move);
    }
    for (Candidate& candidate : cc.candidates) {
      candidate.routeCost = core::estimateCandidateCost(db, router, pattern,
                                                        cell, candidate);
    }
    candidates.push_back(std::move(cc));
  }
  graph.setConfig(savedConfig);

  if (watch.seconds() > options.timeBudgetSeconds) {
    result.failed = true;
    result.seconds = watch.seconds();
    return result;
  }

  // Joint ILP selection (Eq. 12-shaped model, [18]'s single shot).
  const core::SelectionResult selection =
      core::selectCandidates(db, candidates);

  // Apply + reroute.
  std::vector<db::NetId> affectedNets;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& chosen = candidates[i].candidates[selection.chosen[i]];
    if (chosen.isCurrent) continue;
    db.moveCell(candidates[i].cell, chosen.position);
    ++result.movedCells;
    for (const db::NetId n : db.netsOfCell(candidates[i].cell)) {
      affectedNets.push_back(n);
    }
  }
  std::sort(affectedNets.begin(), affectedNets.end());
  affectedNets.erase(std::unique(affectedNets.begin(), affectedNets.end()),
                     affectedNets.end());
  for (const db::NetId n : affectedNets) router.rerouteNet(n);
  result.reroutedNets = static_cast<int>(affectedNets.size());
  result.seconds = watch.seconds();
  return result;
}

}  // namespace crp::baseline
