#include "ilp/model.hpp"

#include <cmath>
#include <stdexcept>

namespace crp::ilp {

int Model::addVariable(double lower, double upper, double objective,
                       bool integer, std::string name) {
  if (lower > upper) throw std::invalid_argument("variable lower > upper");
  variables_.push_back(Variable{lower, upper, objective, integer,
                                std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

void Model::addConstraint(LinearExpr expr, Sense sense, double rhs) {
  for (const int v : expr.vars) {
    if (v < 0 || v >= numVariables()) {
      throw std::out_of_range("constraint references unknown variable");
    }
  }
  constraints_.push_back(Constraint{std::move(expr), sense, rhs});
}

void Model::addOneHot(const std::vector<int>& vars) {
  LinearExpr expr;
  for (const int v : vars) expr.add(v, 1.0);
  addConstraint(std::move(expr), Sense::kEqual, 1.0);
}

void Model::addPacking(const std::vector<int>& vars) {
  LinearExpr expr;
  for (const int v : vars) expr.add(v, 1.0);
  addConstraint(std::move(expr), Sense::kLessEqual, 1.0);
}

double Model::objectiveValue(const std::vector<double>& x) const {
  double value = 0.0;
  for (int i = 0; i < numVariables(); ++i) {
    value += variables_[i].objective * x.at(i);
  }
  return value;
}

bool Model::isFeasible(const std::vector<double>& x, double tol) const {
  for (int i = 0; i < numVariables(); ++i) {
    const Variable& v = variables_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (v.integer && std::abs(x[i] - std::round(x[i])) > tol) return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t t = 0; t < c.expr.size(); ++t) {
      lhs += c.expr.coeffs[t] * x[c.expr.vars[t]];
    }
    switch (c.sense) {
      case Sense::kLessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEqual:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace crp::ilp
