// Dense two-phase primal simplex for the LP relaxations used by the
// branch-and-bound solver.  Sized for the paper's models (hundreds of
// variables / rows), not for general-purpose LP work.
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace crp::ilp {

enum class LpStatus : int {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  ///< one value per model variable
  int pivots = 0;         ///< simplex pivots across both phases
};

/// Solves the continuous relaxation of `model` (integrality ignored).
/// `fixedLower` / `fixedUpper`, when non-empty, override the model's
/// variable bounds — this is how branch-and-bound fixes variables
/// without copying the model.
LpResult solveLp(const Model& model,
                 const std::vector<double>& lowerOverride = {},
                 const std::vector<double>& upperOverride = {});

}  // namespace crp::ilp
