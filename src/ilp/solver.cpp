#include "ilp/solver.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "obs/obs.hpp"

namespace crp::ilp {

namespace {

/// Publishes one solve's totals to the metrics registry.  Per-pivot
/// counts accumulate in plain ints inside the solve (see LpResult), so
/// the simplex hot loop never touches an atomic; this runs once per
/// solveIlp call.
void publishSolveMetrics([[maybe_unused]] const IlpResult& result) {
  CRP_OBS_COUNT("ilp.solves", 1);
  CRP_OBS_COUNT("ilp.nodes", result.nodesExplored);
  CRP_OBS_COUNT("ilp.lp_calls", result.lpCalls);
  CRP_OBS_COUNT("ilp.pivots", result.lpPivots);
  CRP_OBS_HISTOGRAM("ilp.nodes_per_solve", result.nodesExplored);
}

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Index of the integer variable whose LP value is most fractional;
/// -1 when the point is integral on all integer variables.
int mostFractional(const Model& model, const std::vector<double>& x,
                   double tol) {
  int best = -1;
  double bestDist = tol;
  for (int i = 0; i < model.numVariables(); ++i) {
    if (!model.variable(i).integer) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > bestDist) {
      bestDist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace

IlpResult solveIlp(const Model& model, const IlpOptions& options) {
  IlpResult result;
  double incumbentObj = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent;
  bool hasIncumbent = false;

  std::vector<Node> stack;
  {
    Node root;
    root.lower.resize(model.numVariables());
    root.upper.resize(model.numVariables());
    for (int i = 0; i < model.numVariables(); ++i) {
      root.lower[i] = model.variable(i).lower;
      root.upper[i] = model.variable(i).upper;
    }
    stack.push_back(std::move(root));
  }

  while (!stack.empty() && result.nodesExplored < options.maxNodes) {
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodesExplored;

    const LpResult lp = solveLp(model, node.lower, node.upper);
    ++result.lpCalls;
    result.lpPivots += lp.pivots;
    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kUnbounded) {
      // An unbounded relaxation of a bounded-variable integer model can
      // only mean a continuous variable diverges; treat as no bound and
      // branch anyway is unsafe — report aborted.
      result.status = IlpStatus::kAborted;
      publishSolveMetrics(result);
      return result;
    }
    if (lp.status == LpStatus::kIterationLimit) continue;
    if (lp.objective >= incumbentObj - options.gapTol) continue;  // bound

    const int branchVar = mostFractional(model, lp.x, options.integralityTol);
    if (branchVar < 0) {
      // Integral: new incumbent.
      if (lp.objective < incumbentObj) {
        incumbentObj = lp.objective;
        incumbent = lp.x;
        hasIncumbent = true;
        // Snap integer variables exactly.
        for (int i = 0; i < model.numVariables(); ++i) {
          if (model.variable(i).integer) {
            incumbent[i] = std::round(incumbent[i]);
          }
        }
      }
      continue;
    }

    // Branch floor / ceil; push the branch matching the LP rounding
    // last so DFS explores it first (better incumbents earlier).
    const double value = lp.x[branchVar];
    Node down = node;
    down.upper[branchVar] = std::floor(value);
    Node up = node;
    up.lower[branchVar] = std::ceil(value);
    if (value - std::floor(value) < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  if (!hasIncumbent) {
    result.status = stack.empty() ? IlpStatus::kInfeasible
                                  : IlpStatus::kAborted;
    publishSolveMetrics(result);
    return result;
  }
  result.status = stack.empty() ? IlpStatus::kOptimal : IlpStatus::kFeasible;
  result.objective = incumbentObj;
  result.x = std::move(incumbent);
  publishSolveMetrics(result);
  return result;
}

}  // namespace crp::ilp
