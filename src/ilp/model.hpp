// Linear / integer-linear model description.
//
// This is the CPLEX stand-in's modeling layer.  Both of the paper's
// ILPs — the legalizer (Eq. 11) and the candidate-selection model
// (Eq. 12) — are built on this API: binary variables, one-hot groups
// and packing (<= 1) rows.
#pragma once

#include <string>
#include <vector>

namespace crp::ilp {

enum class Sense : int { kLessEqual, kGreaterEqual, kEqual };

/// Sparse linear expression: sum of coeff * var.
struct LinearExpr {
  std::vector<int> vars;
  std::vector<double> coeffs;

  void add(int var, double coeff) {
    vars.push_back(var);
    coeffs.push_back(coeff);
  }
  std::size_t size() const { return vars.size(); }
};

struct Variable {
  double lower = 0.0;
  double upper = 1.0;
  double objective = 0.0;
  bool integer = false;
  std::string name;
};

struct Constraint {
  LinearExpr expr;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

/// Minimization model (the paper's objectives are all minimizations;
/// negate coefficients to maximize).
class Model {
 public:
  /// Adds a variable; returns its index.
  int addVariable(double lower, double upper, double objective, bool integer,
                  std::string name = {});

  /// Shorthand for a binary decision variable.
  int addBinary(double objective, std::string name = {}) {
    return addVariable(0.0, 1.0, objective, true, std::move(name));
  }

  void addConstraint(LinearExpr expr, Sense sense, double rhs);

  /// sum(vars) == 1 — the "exactly one route / position" rows (Eq. 2/3).
  void addOneHot(const std::vector<int>& vars);

  /// sum(vars) <= 1 — packing rows (site occupancy, conflicts).
  void addPacking(const std::vector<int>& vars);

  int numVariables() const { return static_cast<int>(variables_.size()); }
  int numConstraints() const { return static_cast<int>(constraints_.size()); }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  Variable& variable(int i) { return variables_.at(i); }
  const Variable& variable(int i) const { return variables_.at(i); }

  /// Objective value of an assignment (no feasibility check).
  double objectiveValue(const std::vector<double>& x) const;

  /// True when `x` satisfies every constraint and bound within `tol`.
  bool isFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace crp::ilp
