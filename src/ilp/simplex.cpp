#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace crp::ilp {

namespace {

constexpr double kTol = 1e-9;
constexpr double kFeasTol = 1e-7;
constexpr int kMaxIterations = 20000;

/// One preprocessed row in standard (equality, rhs >= 0) form.
struct StdRow {
  std::vector<double> coeffs;  // dense over free (non-fixed) variables
  double rhs = 0.0;
  Sense sense = Sense::kLessEqual;
};

struct Tableau {
  int rows = 0;
  int cols = 0;  // total columns excluding rhs
  std::vector<double> a;  // (rows) x (cols + 1), row-major; last col = rhs
  std::vector<int> basis;

  double& at(int r, int c) { return a[r * (cols + 1) + c]; }
  double at(int r, int c) const { return a[r * (cols + 1) + c]; }
  double& rhs(int r) { return a[r * (cols + 1) + cols]; }
  double rhsVal(int r) const { return a[r * (cols + 1) + cols]; }

  void pivot(int pr, int pc) {
    const double pivotVal = at(pr, pc);
    const double inv = 1.0 / pivotVal;
    for (int c = 0; c <= cols; ++c) at(pr, c) *= inv;
    for (int r = 0; r < rows; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kTol) continue;
      for (int c = 0; c <= cols; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
      at(r, pc) = 0.0;  // exact zero to stop drift
    }
    basis[pr] = pc;
  }
};

/// Runs simplex minimizing cost^T x over the tableau's current basis.
/// Returns kOptimal or kUnbounded (phase feasibility handled by caller).
/// Pivots executed are added to `pivots` (a plain local in solveLp, so
/// the hot loop never touches an atomic; see obs.hpp).
LpStatus runSimplex(Tableau& t, const std::vector<double>& cost,
                    int& pivots) {
  // Reduced-cost row: z_j = c_B B^-1 A_j - c_j, recomputed incrementally.
  std::vector<double> zrow(t.cols + 1, 0.0);
  auto rebuildZ = [&] {
    std::fill(zrow.begin(), zrow.end(), 0.0);
    for (int r = 0; r < t.rows; ++r) {
      const double cb = cost[t.basis[r]];
      if (cb == 0.0) continue;
      for (int c = 0; c <= t.cols; ++c) zrow[c] += cb * t.at(r, c);
    }
    for (int c = 0; c < t.cols; ++c) zrow[c] -= cost[c];
  };
  rebuildZ();

  for (int iter = 0; iter < kMaxIterations; ++iter) {
    // Entering column: most positive z_j (Dantzig); Bland's rule after a
    // grace period to guarantee termination under degeneracy.
    const bool bland = iter > kMaxIterations / 2;
    int pc = -1;
    double bestZ = kFeasTol;
    for (int c = 0; c < t.cols; ++c) {
      if (zrow[c] > bestZ) {
        pc = c;
        if (bland) break;
        bestZ = zrow[c];
      }
    }
    if (pc < 0) return LpStatus::kOptimal;

    // Ratio test.
    int pr = -1;
    double bestRatio = std::numeric_limits<double>::max();
    for (int r = 0; r < t.rows; ++r) {
      const double arc = t.at(r, pc);
      if (arc > kTol) {
        const double ratio = t.rhsVal(r) / arc;
        if (ratio < bestRatio - kTol ||
            (ratio < bestRatio + kTol && pr >= 0 &&
             t.basis[r] < t.basis[pr])) {
          bestRatio = ratio;
          pr = r;
        }
      }
    }
    if (pr < 0) return LpStatus::kUnbounded;

    t.pivot(pr, pc);
    ++pivots;
    // Update z-row by the same elimination.
    const double factor = zrow[pc];
    if (std::abs(factor) > kTol) {
      for (int c = 0; c <= t.cols; ++c) zrow[c] -= factor * t.at(pr, c);
      zrow[pc] = 0.0;
    }
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpResult solveLp(const Model& model, const std::vector<double>& lowerOverride,
                 const std::vector<double>& upperOverride) {
  const int n = model.numVariables();
  int pivots = 0;
  std::vector<double> lower(n), upper(n);
  for (int i = 0; i < n; ++i) {
    lower[i] =
        lowerOverride.empty() ? model.variable(i).lower : lowerOverride[i];
    upper[i] =
        upperOverride.empty() ? model.variable(i).upper : upperOverride[i];
    if (lower[i] > upper[i] + kFeasTol) {
      return LpResult{LpStatus::kInfeasible, 0.0, {}, pivots};
    }
  }

  // Variable mapping: fixed variables fold into the RHS; free variables
  // are shifted to x' = x - lower >= 0.
  std::vector<int> colOf(n, -1);
  std::vector<int> varOf;
  for (int i = 0; i < n; ++i) {
    if (upper[i] - lower[i] > kFeasTol) {
      colOf[i] = static_cast<int>(varOf.size());
      varOf.push_back(i);
    }
  }
  const int nf = static_cast<int>(varOf.size());

  // Build shifted rows.
  std::vector<StdRow> stdRows;
  stdRows.reserve(model.numConstraints() + nf);
  for (const Constraint& c : model.constraints()) {
    StdRow row;
    row.coeffs.assign(nf, 0.0);
    row.rhs = c.rhs;
    row.sense = c.sense;
    for (std::size_t t = 0; t < c.expr.size(); ++t) {
      const int v = c.expr.vars[t];
      const double coeff = c.expr.coeffs[t];
      row.rhs -= coeff * lower[v];  // shift (fixed vars fold in fully)
      if (colOf[v] >= 0) row.coeffs[colOf[v]] += coeff;
    }
    stdRows.push_back(std::move(row));
  }

  // Upper bounds for free variables: x'_j <= upper - lower.  Skip rows
  // that are implied by an all-nonnegative <=/== row (e.g. one-hot or
  // packing rows), which covers every model in this codebase and keeps
  // the tableau small.
  for (int j = 0; j < nf; ++j) {
    const double ub = upper[varOf[j]] - lower[varOf[j]];
    if (!std::isfinite(ub)) continue;
    bool implied = false;
    for (const StdRow& row : stdRows) {
      if (row.sense == Sense::kGreaterEqual) continue;
      if (row.coeffs[j] < kTol) continue;
      bool nonneg = true;
      for (const double coeff : row.coeffs) {
        if (coeff < -kTol) {
          nonneg = false;
          break;
        }
      }
      if (nonneg && row.rhs / row.coeffs[j] <= ub + kFeasTol) {
        implied = true;
        break;
      }
    }
    if (!implied) {
      StdRow row;
      row.coeffs.assign(nf, 0.0);
      row.coeffs[j] = 1.0;
      row.rhs = ub;
      row.sense = Sense::kLessEqual;
      stdRows.push_back(std::move(row));
    }
  }

  // Normalize rhs >= 0.
  for (StdRow& row : stdRows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (double& coeff : row.coeffs) coeff = -coeff;
      if (row.sense == Sense::kLessEqual) {
        row.sense = Sense::kGreaterEqual;
      } else if (row.sense == Sense::kGreaterEqual) {
        row.sense = Sense::kLessEqual;
      }
    }
  }

  // Column layout: [structural | slack/surplus | artificial].
  const int m = static_cast<int>(stdRows.size());
  int numSlack = 0, numArt = 0;
  for (const StdRow& row : stdRows) {
    if (row.sense != Sense::kEqual) ++numSlack;
    if (row.sense != Sense::kLessEqual) ++numArt;
  }
  Tableau t;
  t.rows = m;
  t.cols = nf + numSlack + numArt;
  t.a.assign(static_cast<std::size_t>(m) * (t.cols + 1), 0.0);
  t.basis.assign(m, -1);

  int slackCol = nf;
  int artCol = nf + numSlack;
  std::vector<bool> isArtificial(t.cols, false);
  for (int r = 0; r < m; ++r) {
    const StdRow& row = stdRows[r];
    for (int j = 0; j < nf; ++j) t.at(r, j) = row.coeffs[j];
    t.rhs(r) = row.rhs;
    switch (row.sense) {
      case Sense::kLessEqual:
        t.at(r, slackCol) = 1.0;
        t.basis[r] = slackCol++;
        break;
      case Sense::kGreaterEqual:
        t.at(r, slackCol++) = -1.0;
        t.at(r, artCol) = 1.0;
        isArtificial[artCol] = true;
        t.basis[r] = artCol++;
        break;
      case Sense::kEqual:
        t.at(r, artCol) = 1.0;
        isArtificial[artCol] = true;
        t.basis[r] = artCol++;
        break;
    }
  }

  // Phase 1: minimize the artificial sum.
  if (numArt > 0) {
    std::vector<double> phase1Cost(t.cols, 0.0);
    for (int c = 0; c < t.cols; ++c) {
      if (isArtificial[c]) phase1Cost[c] = 1.0;
    }
    const LpStatus status = runSimplex(t, phase1Cost, pivots);
    if (status == LpStatus::kIterationLimit) {
      return LpResult{LpStatus::kIterationLimit, 0.0, {}, pivots};
    }
    double artSum = 0.0;
    for (int r = 0; r < m; ++r) {
      if (isArtificial[t.basis[r]]) artSum += t.rhsVal(r);
    }
    if (artSum > 1e-6) {
      return LpResult{LpStatus::kInfeasible, 0.0, {}, pivots};
    }
    // Drive remaining zero-level artificials out of the basis.
    for (int r = 0; r < m; ++r) {
      if (!isArtificial[t.basis[r]]) continue;
      int pc = -1;
      for (int c = 0; c < nf + numSlack; ++c) {
        if (std::abs(t.at(r, c)) > 1e-7) {
          pc = c;
          break;
        }
      }
      if (pc >= 0) {
        t.pivot(r, pc);
        ++pivots;
      }
      // Redundant row otherwise: the artificial stays basic at zero,
      // which is harmless in phase 2 (its cost is zero there).
    }
  }

  // Phase 2: the real objective over shifted variables.
  std::vector<double> phase2Cost(t.cols, 0.0);
  for (int j = 0; j < nf; ++j) {
    phase2Cost[j] = model.variable(varOf[j]).objective;
  }
  // Forbid artificials from re-entering.
  for (int c = 0; c < t.cols; ++c) {
    if (isArtificial[c]) phase2Cost[c] = 1e12;
  }
  const LpStatus status = runSimplex(t, phase2Cost, pivots);
  if (status != LpStatus::kOptimal) return LpResult{status, 0.0, {}, pivots};

  LpResult result;
  result.status = LpStatus::kOptimal;
  result.pivots = pivots;
  result.x.assign(n, 0.0);
  for (int i = 0; i < n; ++i) result.x[i] = lower[i];
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[r];
    if (b < nf) result.x[varOf[b]] += t.rhsVal(r);
  }
  result.objective = model.objectiveValue(result.x);
  return result;
}

}  // namespace crp::ilp
