// Branch-and-bound 0/1 / integer linear solver on top of the simplex
// relaxation — the CPLEX substitute used by the legalizer (Eq. 11) and
// the candidate-selection step (Eq. 12).
//
// Exact for the model sizes in this codebase: depth-first
// branch-and-bound with LP bounding, most-fractional branching and a
// round-and-repair incumbent heuristic at the root.
#pragma once

#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace crp::ilp {

enum class IlpStatus : int {
  kOptimal,     ///< proven optimal
  kFeasible,    ///< stopped at node limit with an incumbent
  kInfeasible,  ///< no integer-feasible point exists
  kAborted,     ///< node limit hit with no incumbent
};

struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  int nodesExplored = 0;
  int lpCalls = 0;   ///< LP relaxations solved across all nodes
  int lpPivots = 0;  ///< simplex pivots summed over those LPs
};

struct IlpOptions {
  int maxNodes = 200000;
  double integralityTol = 1e-6;
  /// Prune nodes whose LP bound is within this of the incumbent
  /// (asymmetric epsilon; 0 keeps full optimality).
  double gapTol = 1e-9;
};

IlpResult solveIlp(const Model& model, const IlpOptions& options = {});

}  // namespace crp::ilp
