// Flow timeline: one structured record per CR&P iteration.
//
// Where RunReport::IterationStat keeps the PR-2 scalar summary, a
// TimelineRecord captures the full per-iteration story the spatial
// observability tier tells: how many cells the LCC phase labeled and
// how many the annealing history damped away, how many candidates GCP
// generated and ECC priced, what SEL selected vs what the UD commit
// actually applied, the displacement the moves cost, and the wire
// overflow before/after the iteration (matching the congestion totals
// of the bracketing HeatmapSnapshots).  All fields are deterministic
// across thread counts, so the records are part of the RunReport
// fingerprint whenever they are present.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace crp::obs {

struct TimelineRecord {
  int iteration = 0;

  // LCC
  int criticalCells = 0;  ///< labeled critical
  int dampedCells = 0;    ///< skipped by the annealing history damp

  // GCP / ECC / SEL
  int candidatesGenerated = 0;
  std::uint64_t netsPriced = 0;
  int movesSelected = 0;  ///< non-current candidates the ILP picked
  double selectedCost = 0.0;

  // UD commit
  int movedCells = 0;      ///< critical cells committed
  int displacedCells = 0;  ///< conflict cells moved alongside
  std::int64_t totalDisplacementDbu = 0;
  std::int64_t maxDisplacementDbu = 0;
  int reroutedNets = 0;

  // Wire overflow bracketing the iteration (congestionStats totals).
  double overflowBefore = 0.0;
  double overflowAfter = 0.0;
  int overflowedEdgesBefore = 0;
  int overflowedEdgesAfter = 0;

  /// True for iterations driven by CrpFramework::runEco (restricted
  /// scope, persistent pricing cache).  Serialized only when set, so
  /// batch-run reports — and their fingerprints — stay byte-identical
  /// to the pre-ECO format.
  bool eco = false;

  /// Chip-tile scheduling outcome of the UD batch reroute
  /// (docs/tiling.md).  These describe HOW the iteration was
  /// scheduled, not WHAT it computed: they depend on the configured
  /// tile grid (and mergeSeconds on the wall clock), so toJson(false)
  /// — the fingerprint form — omits them, keeping fingerprints
  /// bit-identical across tile grids.  Serialized only when tiled, so
  /// untiled reports keep the pre-tiling shape.
  bool tiled = false;
  int tileLocalNets = 0;
  int tileBoundaryNets = 0;
  int tilesUsed = 0;
  double tileMergeSeconds = 0.0;

  /// `includeSchedulingFields` controls the tile block above; the
  /// fingerprint serializer passes false.
  Json toJson(bool includeSchedulingFields = true) const;
  static TimelineRecord fromJson(const Json& json);
};

/// Renders records as an aligned text table (crp_report timeline).
std::string formatTimeline(const std::vector<TimelineRecord>& timeline);

/// One CSV line per record, with a header row.
std::string timelineCsv(const std::vector<TimelineRecord>& timeline);

}  // namespace crp::obs
