#include "obs/run_ledger.hpp"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "util/file_io.hpp"

namespace crp::obs {

namespace {

/// Runs `command`, returning its trimmed stdout ("" on any failure).
/// Used only by the once-per-process provenance probe below.
std::string captureCommand(const char* command) {
  FILE* pipe = ::popen(command, "r");
  if (pipe == nullptr) return "";
  std::string out;
  std::array<char, 256> buffer;
  std::size_t n;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    out.append(buffer.data(), n);
  }
  const int status = ::pclose(pipe);
  if (status != 0) return "";
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

int countLines(const std::string& text) {
  if (text.empty()) return 0;
  int lines = 1;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

Provenance probeProvenance() {
  Provenance p;
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.host = host;
  } else {
    p.host = "unknown";
  }
  p.cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (p.cpus <= 0) p.cpus = 1;

  if (const char* sha = std::getenv("CRP_GIT_SHA")) {
    p.gitSha = sha;
    if (const char* dirtyFiles = std::getenv("CRP_GIT_DIRTY_FILES")) {
      p.dirtyFiles = std::atoi(dirtyFiles);
      p.dirty = p.dirtyFiles > 0;
    }
    return p;
  }
  p.gitSha = captureCommand("git rev-parse HEAD 2>/dev/null");
  if (p.gitSha.empty()) {
    p.gitSha = "unknown";
    return p;
  }
  const std::string status =
      captureCommand("git status --porcelain 2>/dev/null");
  p.dirtyFiles = countLines(status);
  p.dirty = p.dirtyFiles > 0;
  return p;
}

}  // namespace

std::string fnv1a64Hex(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char out[17];
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(out, 16);
}

const Provenance& collectProvenance() {
  static const Provenance provenance = probeProvenance();
  return provenance;
}

Json RunLedgerEntry::toJson() const {
  Json root = Json::object();
  root.set("schemaVersion", kSchemaVersion);
  root.set("kind", kind);
  root.set("design", design);
  root.set("unixTime", unixTime);

  Json prov = Json::object();
  prov.set("gitSha", gitSha);
  prov.set("dirty", dirty);
  prov.set("dirtyFiles", dirtyFiles);
  prov.set("host", host);
  prov.set("cpus", cpus);
  root.set("provenance", std::move(prov));

  if (kind == "bench") {
    root.set("metrics", metrics);
    return root;
  }

  root.set("seed", seed);
  root.set("optionsDigest", optionsDigest);
  root.set("fingerprint", fingerprintDigest);

  Json qorObj = Json::object();
  qorObj.set("wirelengthDbu", qor.wirelengthDbu);
  qorObj.set("vias", qor.vias);
  qorObj.set("totalOverflow", qor.totalOverflow);
  qorObj.set("overflowedEdges", qor.overflowedEdges);
  qorObj.set("openNets", qor.openNets);
  root.set("qor", std::move(qorObj));

  Json phaseObj = Json::object();
  for (const RunReport::PhaseStat& phase : phases) {
    phaseObj.set(phase.name, phase.seconds);
  }
  root.set("phases", std::move(phaseObj));

  root.set("cacheHitRate", cacheHitRate);
  Json tiles = Json::object();
  tiles.set("rows", tileRows);
  tiles.set("cols", tileCols);
  root.set("tiles", std::move(tiles));
  root.set("wallSeconds", wallSeconds);
  return root;
}

RunLedgerEntry RunLedgerEntry::fromJson(const Json& json) {
  const std::int64_t version = json.at("schemaVersion").asInt();
  if (version != kSchemaVersion) {
    throw JsonError("unsupported ledger schemaVersion " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSchemaVersion) + ")",
                    0);
  }
  RunLedgerEntry entry;
  entry.kind = json.at("kind").asString();
  entry.design = json.at("design").asString();
  entry.unixTime = json.at("unixTime").asUint();

  const Json& prov = json.at("provenance");
  entry.gitSha = prov.at("gitSha").asString();
  entry.dirty = prov.at("dirty").asBool();
  entry.dirtyFiles = static_cast<int>(prov.at("dirtyFiles").asInt());
  entry.host = prov.at("host").asString();
  entry.cpus = static_cast<int>(prov.at("cpus").asInt());

  if (entry.kind == "bench") {
    entry.metrics = json.at("metrics");
    return entry;
  }

  entry.seed = json.at("seed").asUint();
  entry.optionsDigest = json.at("optionsDigest").asString();
  entry.fingerprintDigest = json.at("fingerprint").asString();

  const Json& qorObj = json.at("qor");
  entry.qor.wirelengthDbu = qorObj.at("wirelengthDbu").asInt();
  entry.qor.vias = qorObj.at("vias").asInt();
  entry.qor.totalOverflow = qorObj.at("totalOverflow").asDouble();
  entry.qor.overflowedEdges =
      static_cast<int>(qorObj.at("overflowedEdges").asInt());
  entry.qor.openNets = static_cast<int>(qorObj.at("openNets").asInt());

  for (const auto& [name, seconds] : json.at("phases").asObject()) {
    entry.phases.push_back({name, seconds.asDouble()});
  }

  entry.cacheHitRate = json.at("cacheHitRate").asDouble();
  const Json& tiles = json.at("tiles");
  entry.tileRows = static_cast<int>(tiles.at("rows").asInt());
  entry.tileCols = static_cast<int>(tiles.at("cols").asInt());
  entry.wallSeconds = json.at("wallSeconds").asDouble();
  return entry;
}

RunLedgerEntry makeRunLedgerEntry(const RunReport& report) {
  RunLedgerEntry entry;
  const Provenance& prov = collectProvenance();
  entry.gitSha = prov.gitSha;
  entry.dirty = prov.dirty;
  entry.dirtyFiles = prov.dirtyFiles;
  entry.host = prov.host;
  entry.cpus = prov.cpus;
  entry.unixTime = static_cast<std::uint64_t>(std::time(nullptr));

  entry.seed = report.seed;
  entry.fingerprintDigest = fnv1a64Hex(report.fingerprint().dump());
  entry.qor = report.router;
  entry.phases = report.phases;
  entry.cacheHitRate = report.pricing.hitRate();
  entry.wallSeconds = report.totalPhaseSeconds();
  return entry;
}

bool RunLedger::append(const RunLedgerEntry& entry, std::string* error) {
  return util::appendLineAtomic(path_, entry.toJson().dump(), error);
}

RunLedger::LoadResult RunLedger::load(const std::string& path) {
  LoadResult result;
  std::ifstream in(path);
  if (!in) return result;  // absent ledger == empty history
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      result.entries.push_back(RunLedgerEntry::fromJson(Json::parse(line)));
    } catch (const JsonError&) {
      // Torn tail from a crashed append, or a foreign line: skip but
      // surface the count so --check can mention it.
      ++result.skippedLines;
    }
  }
  return result;
}

}  // namespace crp::obs
