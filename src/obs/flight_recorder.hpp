// Flight recorder: a bounded in-memory ring of recent structured flow
// events (phase transitions, UD commits, reroute failures, audit arms)
// plus the most recently captured congestion heatmap.
//
// The ring is cheap enough to leave on for every observed run (a mutex
// push per event, at phase granularity — never inside per-net loops)
// and is only read when something goes wrong: a dirty DbAuditor report
// or a minimized crp_fuzz seed dumps the recorder to a JSON artifact,
// so the events leading up to the failure are diagnosable without a
// rerun.  Appends go through the CRP_OBS_EVENT macro (obs.hpp), which
// compiles away under CRP_OBS_DISABLED and otherwise costs one relaxed
// load while observability is off — the same contract as every other
// instrument.
//
// Determinism note: event *sequence* is schedule-dependent when events
// come from parallel reroute workers.  Dumps are diagnostic artifacts,
// never part of asserted fingerprints.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace crp::obs {

/// One recorded event.  `seq` is the global append index (monotonic,
/// so a dump shows how many older events the ring already evicted).
struct FlightEvent {
  std::uint64_t seq = 0;
  std::string category;  ///< "crp", "gr", "check", ...
  std::string label;     ///< "phase.UD", "commit", "reroute.fail", ...
  std::int64_t value = 0;
};

class FlightRecorder {
 public:
  static constexpr int kSchemaVersion = 1;
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Process-wide recorder (the one CRP_OBS_EVENT appends to).
  static FlightRecorder& instance();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(std::string_view category, std::string_view label,
              std::int64_t value = 0);

  /// Attaches the most recent heatmap (a HeatmapSnapshot JSON) so a
  /// dump carries the spatial state alongside the event trail.
  void setLatestHeatmap(Json heatmap);

  /// Events currently held, oldest first.
  std::vector<FlightEvent> events() const;
  /// Total events ever recorded (>= events().size()).
  std::uint64_t totalRecorded() const;
  std::size_t capacity() const { return capacity_; }

  void clear();

  /// Self-describing dump document: the trigger (caller-provided — an
  /// audit failure, a fuzz seed), the retained events, and the latest
  /// heatmap (null when none was attached).
  Json dump(Json trigger) const;
  /// Writes dump(trigger) to `path` (pretty-printed); false on I/O
  /// failure.
  bool dumpToFile(const std::string& path, Json trigger) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t next_ = 0;         ///< total events recorded
  std::vector<FlightEvent> ring_;  ///< slot = seq % capacity_
  Json latestHeatmap_;             ///< null until setLatestHeatmap
};

}  // namespace crp::obs
