#include "obs/timeline.hpp"

#include <iomanip>
#include <sstream>

namespace crp::obs {

Json TimelineRecord::toJson(bool includeSchedulingFields) const {
  Json record = Json::object();
  record.set("iteration", iteration);
  record.set("criticalCells", criticalCells);
  record.set("dampedCells", dampedCells);
  record.set("candidatesGenerated", candidatesGenerated);
  record.set("netsPriced", netsPriced);
  record.set("movesSelected", movesSelected);
  record.set("selectedCost", selectedCost);
  record.set("movedCells", movedCells);
  record.set("displacedCells", displacedCells);
  record.set("totalDisplacementDbu", totalDisplacementDbu);
  record.set("maxDisplacementDbu", maxDisplacementDbu);
  record.set("reroutedNets", reroutedNets);
  record.set("overflowBefore", overflowBefore);
  record.set("overflowAfter", overflowAfter);
  record.set("overflowedEdgesBefore", overflowedEdgesBefore);
  record.set("overflowedEdgesAfter", overflowedEdgesAfter);
  if (eco) record.set("eco", true);
  if (includeSchedulingFields && tiled) {
    record.set("tiled", true);
    record.set("tileLocalNets", tileLocalNets);
    record.set("tileBoundaryNets", tileBoundaryNets);
    record.set("tilesUsed", tilesUsed);
    record.set("tileMergeSeconds", tileMergeSeconds);
  }
  return record;
}

TimelineRecord TimelineRecord::fromJson(const Json& json) {
  TimelineRecord record;
  record.iteration = static_cast<int>(json.at("iteration").asInt());
  record.criticalCells = static_cast<int>(json.at("criticalCells").asInt());
  record.dampedCells = static_cast<int>(json.at("dampedCells").asInt());
  record.candidatesGenerated =
      static_cast<int>(json.at("candidatesGenerated").asInt());
  record.netsPriced = json.at("netsPriced").asUint();
  record.movesSelected = static_cast<int>(json.at("movesSelected").asInt());
  record.selectedCost = json.at("selectedCost").asDouble();
  record.movedCells = static_cast<int>(json.at("movedCells").asInt());
  record.displacedCells = static_cast<int>(json.at("displacedCells").asInt());
  record.totalDisplacementDbu = json.at("totalDisplacementDbu").asInt();
  record.maxDisplacementDbu = json.at("maxDisplacementDbu").asInt();
  record.reroutedNets = static_cast<int>(json.at("reroutedNets").asInt());
  record.overflowBefore = json.at("overflowBefore").asDouble();
  record.overflowAfter = json.at("overflowAfter").asDouble();
  record.overflowedEdgesBefore =
      static_cast<int>(json.at("overflowedEdgesBefore").asInt());
  record.overflowedEdgesAfter =
      static_cast<int>(json.at("overflowedEdgesAfter").asInt());
  if (const Json* eco = json.find("eco")) record.eco = eco->asBool();
  if (const Json* tiled = json.find("tiled")) {
    record.tiled = tiled->asBool();
    record.tileLocalNets =
        static_cast<int>(json.at("tileLocalNets").asInt());
    record.tileBoundaryNets =
        static_cast<int>(json.at("tileBoundaryNets").asInt());
    record.tilesUsed = static_cast<int>(json.at("tilesUsed").asInt());
    record.tileMergeSeconds = json.at("tileMergeSeconds").asDouble();
  }
  return record;
}

std::string formatTimeline(const std::vector<TimelineRecord>& timeline) {
  std::ostringstream os;
  os << "iter  crit  damp  cand  priced  sel  moved  disp  maxDisp  "
        "reroute  ovfl before -> after (edges)\n";
  for (const TimelineRecord& r : timeline) {
    os << std::setw(4) << r.iteration << "  " << std::setw(4)
       << r.criticalCells << "  " << std::setw(4) << r.dampedCells << "  "
       << std::setw(4) << r.candidatesGenerated << "  " << std::setw(6)
       << r.netsPriced << "  " << std::setw(3) << r.movesSelected << "  "
       << std::setw(5) << r.movedCells << "  " << std::setw(4)
       << r.displacedCells << "  " << std::setw(7) << r.maxDisplacementDbu
       << "  " << std::setw(7) << r.reroutedNets << "  " << std::fixed
       << std::setprecision(2) << r.overflowBefore << " -> "
       << r.overflowAfter << " (" << r.overflowedEdgesBefore << " -> "
       << r.overflowedEdgesAfter << ")" << (r.eco ? "  [eco]" : "") << "\n";
  }
  return os.str();
}

std::string timelineCsv(const std::vector<TimelineRecord>& timeline) {
  std::ostringstream os;
  os << "iteration,criticalCells,dampedCells,candidatesGenerated,netsPriced,"
        "movesSelected,selectedCost,movedCells,displacedCells,"
        "totalDisplacementDbu,maxDisplacementDbu,reroutedNets,"
        "overflowBefore,overflowAfter,overflowedEdgesBefore,"
        "overflowedEdgesAfter,eco\n";
  for (const TimelineRecord& r : timeline) {
    os << r.iteration << ',' << r.criticalCells << ',' << r.dampedCells << ','
       << r.candidatesGenerated << ',' << r.netsPriced << ','
       << r.movesSelected << ',' << r.selectedCost << ',' << r.movedCells
       << ',' << r.displacedCells << ',' << r.totalDisplacementDbu << ','
       << r.maxDisplacementDbu << ',' << r.reroutedNets << ','
       << r.overflowBefore << ',' << r.overflowAfter << ','
       << r.overflowedEdgesBefore << ',' << r.overflowedEdgesAfter << ','
       << (r.eco ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace crp::obs
