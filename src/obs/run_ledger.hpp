// Persistent run ledger: append-only, schema-versioned JSONL history
// of flow runs (docs/observability.md "Operational telemetry").
//
// Every BENCH_*.json used to be overwritten in place, so the repo kept
// no trajectory: nothing could answer "did this commit regress QoR or
// wall time against the last run?".  The ledger closes that gap — one
// JSON document per line, written through util::appendLineAtomic so a
// crash mid-append can only tear the final line (the loader skips torn
// lines and reports how many).  `crp run`/`crp eco` append entries when
// --ledger is given, the serve daemon appends per flow job when booted
// with --ledger, and run_bench.sh folds every BENCH_*.json in via
// `crp_report ledger --add-bench`.  `crp_report ledger --check` then
// gates the newest entry of each series against its predecessor
// (obs/analytics.hpp).
//
// Entry schema v1.  Flow entries (kind run/eco/serve-run/serve-eco)
// carry the QoR block, per-phase wall times, the pricing-cache reuse
// rate, the tile split, and a 64-bit FNV-1a digest of the RunReport
// fingerprint; bench entries (kind bench) instead carry the numeric
// fields of one BENCH_*.json under "metrics".  All entries carry
// provenance: git SHA, dirty flag + dirty-file count, host name, CPU
// count, and a seconds-resolution UTC timestamp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/run_report.hpp"

namespace crp::obs {

/// 64-bit FNV-1a over `text`, rendered as 16 lowercase hex digits.
/// Platform-independent — ledger digests must compare across hosts.
std::string fnv1a64Hex(std::string_view text);

/// Where this process ran: resolved once per process and cached.
/// CRP_GIT_SHA / CRP_GIT_DIRTY_FILES environment variables win (the
/// bench scripts stamp them so every child agrees); otherwise git is
/// asked directly, and a missing git or repo yields "unknown"/clean.
struct Provenance {
  std::string gitSha;  ///< "unknown" outside a git checkout
  bool dirty = false;
  int dirtyFiles = 0;  ///< changed paths per git status --porcelain
  std::string host;
  int cpus = 0;
};
const Provenance& collectProvenance();

struct RunLedgerEntry {
  static constexpr int kSchemaVersion = 1;

  std::string kind;    ///< run | eco | serve-run | serve-eco | bench
  std::string design;  ///< design name, or the bench artifact stem
  std::uint64_t unixTime = 0;  ///< seconds since epoch at append time

  // Provenance (collectProvenance unless the caller overrides).
  std::string gitSha;
  bool dirty = false;
  int dirtyFiles = 0;
  std::string host;
  int cpus = 0;

  // Flow entries.
  std::uint64_t seed = 0;
  std::string optionsDigest;      ///< fnv1a64Hex of the options JSON
  std::string fingerprintDigest;  ///< fnv1a64Hex of RunReport::fingerprint()
  RunReport::RouterStats qor;
  std::vector<RunReport::PhaseStat> phases;  ///< flow order
  double cacheHitRate = 0.0;
  int tileRows = 1;
  int tileCols = 1;
  double wallSeconds = 0.0;  ///< total of the phase wall times

  /// Bench entries: the numeric fields of one BENCH_*.json (object of
  /// name -> number).  Null/absent for flow entries.
  Json metrics;

  Json toJson() const;
  /// Throws JsonError on malformed payloads or schema-version
  /// mismatch (the loader turns that into a skipped line).
  static RunLedgerEntry fromJson(const Json& json);
};

/// Fills a flow entry from a finished run: QoR, phases, cache reuse,
/// fingerprint digest, provenance, and the current wall clock.  The
/// caller sets kind/design/optionsDigest/tile split before appending.
RunLedgerEntry makeRunLedgerEntry(const RunReport& report);

/// The ledger file.  Append-only; loading never mutates.
class RunLedger {
 public:
  explicit RunLedger(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Appends one entry as a single JSONL line (atomic, see
  /// util::appendLineAtomic).  False with *error set on I/O failure.
  bool append(const RunLedgerEntry& entry, std::string* error = nullptr);

  struct LoadResult {
    std::vector<RunLedgerEntry> entries;  ///< file order (oldest first)
    int skippedLines = 0;  ///< torn/malformed lines tolerated
  };
  /// Reads every parseable entry; a missing file is an empty ledger.
  /// Torn or malformed lines (crash artifacts) are counted, not fatal.
  static LoadResult load(const std::string& path);

 private:
  std::string path_;
};

}  // namespace crp::obs
