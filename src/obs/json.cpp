#include "obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace crp::obs {

namespace {

[[noreturn]] void typeError(const char* expected, Json::Type got) {
  static constexpr std::array<const char*, 7> kNames = {
      "null", "bool", "int", "double", "string", "array", "object"};
  throw JsonError(std::string("expected ") + expected + ", got " +
                      kNames[static_cast<int>(got)],
                  0);
}

void writeEscaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void writeDouble(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; null is the conventional substitute.
    os << "null";
    return;
  }
  // Shortest representation that round-trips exactly.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  std::string_view text(buf, result.ptr - buf);
  os << text;
  // Keep a double marker so the parser restores the same type.
  if (text.find('.') == std::string_view::npos &&
      text.find('e') == std::string_view::npos &&
      text.find("inf") == std::string_view::npos &&
      text.find("nan") == std::string_view::npos) {
    os << ".0";
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parseDocument() {
    Json value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parseValue() {
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Json(parseString());
      case 't':
        if (consumeLiteral("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parseNumber();
    }
  }

  Json parseObject() {
    expect('{');
    Json object = Json::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      object.set(std::move(key), parseValue());
      skipWhitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return object;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parseArray() {
    expect('[');
    Json array = Json::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.append(parseValue());
      skipWhitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return array;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
            else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
            else fail("invalid \\u escape digit");
          }
          // UTF-8 encode (no surrogate-pair handling: the writer only
          // emits \u for control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool isDouble = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (!isDouble) {
      std::int64_t value = 0;
      const auto result =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (result.ec == std::errc() &&
          result.ptr == token.data() + token.size()) {
        return Json(static_cast<long long>(value));
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() ||
        result.ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::asBool() const {
  if (type_ != Type::kBool) typeError("bool", type_);
  return bool_;
}

std::int64_t Json::asInt() const {
  if (type_ != Type::kInt) typeError("int", type_);
  return int_;
}

std::uint64_t Json::asUint() const {
  if (type_ != Type::kInt || int_ < 0) typeError("non-negative int", type_);
  return static_cast<std::uint64_t>(int_);
}

double Json::asDouble() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) typeError("number", type_);
  return double_;
}

const std::string& Json::asString() const {
  if (type_ != Type::kString) typeError("string", type_);
  return string_;
}

const Json::Array& Json::asArray() const {
  if (type_ != Type::kArray) typeError("array", type_);
  return array_;
}

const Json::Object& Json::asObject() const {
  if (type_ != Type::kObject) typeError("object", type_);
  return object_;
}

Json& Json::append(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) typeError("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) typeError("object", type_);
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw JsonError("missing key '" + std::string(key) + "'", 0);
  }
  return *value;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray: return array_.size();
    case Type::kObject: return object_.size();
    default: return 0;
  }
}

void Json::writeIndented(std::ostream& os, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kInt: os << int_; break;
    case Type::kDouble: writeDouble(os, double_); break;
    case Type::kString: writeEscaped(os, string_); break;
    case Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        newline(depth + 1);
        array_[i].writeIndented(os, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        newline(depth + 1);
        writeEscaped(os, object_[i].first);
        os << (indent > 0 ? ": " : ":");
        object_[i].second.writeIndented(os, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  writeIndented(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

Json Json::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kInt: return a.int_ == b.int_;
    case Json::Type::kDouble: return a.double_ == b.double_;
    case Json::Type::kString: return a.string_ == b.string_;
    case Json::Type::kArray: return a.array_ == b.array_;
    case Json::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace crp::obs
