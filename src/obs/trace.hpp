// Scoped-span tracer with Chrome trace_event JSON export.
//
// Spans are RAII scopes (phase, iteration, net-level work) recorded
// into per-thread logs: opening a span touches only thread-local
// state, so tracing from every ThreadPool worker is contention-free;
// the tracer mutex is taken once per thread (registration) and on
// export.  Each record carries, besides wall-clock start/duration, a
// per-thread begin/end *sequence number* — nesting well-formedness is
// a statement about those integers (balanced-parenthesis discipline),
// which tests can assert exactly where microsecond timestamps would
// tie.
//
// Export is the Chrome trace_event "X" (complete-event) format:
// chrome://tracing and https://ui.perfetto.dev load the file directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace crp::obs {

/// One finished span, appended at scope exit.
struct SpanRecord {
  std::string name;
  std::string category;
  std::uint64_t startNs = 0;  ///< relative to the tracer epoch
  std::uint64_t durNs = 0;
  std::uint64_t beginSeq = 0;  ///< per-thread event sequence at open
  std::uint64_t endSeq = 0;    ///< per-thread event sequence at close
  int depth = 0;               ///< nesting depth at open (0 = top level)
  std::int64_t arg = -1;       ///< optional numeric payload (< 0 = none)
};

class Tracer {
 public:
  /// Process-wide default tracer (the one CRP_OBS_SPAN uses).
  static Tracer& instance();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Copies out every thread's records, ordered by (thread, end time).
  /// `tid` in the result is the registration index of the thread.
  std::vector<std::pair<int, SpanRecord>> records() const;

  /// Drops all recorded spans (thread logs stay registered).
  void clear();

  /// Writes the Chrome trace_event JSON document.
  void writeChromeTrace(std::ostream& os) const;

  // ---- internal interface used by ScopedSpan --------------------------------

  struct ThreadLog {
    int tid = 0;
    int depth = 0;
    std::uint64_t nextSeq = 0;
    std::vector<SpanRecord> spans;
    std::mutex mutex;  ///< guards `spans` against concurrent export
  };

  /// This thread's log within this tracer (registered on first use).
  ThreadLog& threadLog();

  std::uint64_t nowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t id_ = 0;  ///< unique, never reused (thread-local cache key)
  mutable std::mutex mutex_;  ///< guards `logs_`
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII span.  Records nothing when constructed with a null tracer
/// (how the macros implement the runtime-disable path).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category,
             std::int64_t arg = -1)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    Tracer::ThreadLog& log = tracer_->threadLog();
    record_.name = std::move(name);
    record_.category = std::move(category);
    record_.arg = arg;
    record_.depth = log.depth++;
    record_.beginSeq = log.nextSeq++;
    record_.startNs = tracer_->nowNs();
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    record_.durNs = tracer_->nowNs() - record_.startNs;
    Tracer::ThreadLog& log = tracer_->threadLog();
    record_.endSeq = log.nextSeq++;
    --log.depth;
    std::lock_guard lock(log.mutex);
    log.spans.push_back(std::move(record_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

}  // namespace crp::obs
