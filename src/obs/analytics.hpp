// Run-history analytics over RunReports and the run ledger
// (docs/observability.md "Operational telemetry").
//
// Two consumers:
//
//   diffReports(a, b) — structural comparison of two RunReport
//   documents: fingerprint identity, QoR deltas, per-phase wall-time
//   attribution, and per-iteration attribution (scalar iteration stats
//   always; the timeline's overflow bracket when both runs captured
//   it).  `crp_report --diff A B` renders this and exits 0 only when
//   the fingerprints are identical, so two runs of the same
//   design/seed make a usable determinism gate.
//
//   checkLedger(entries, tolerances) — the regression gate over a
//   loaded ledger: for every (kind, design) series the newest entry is
//   compared against its predecessor under tolerance bands.  Flow
//   entries gate QoR (wirelength/vias within a relative band, overflow
//   within rel+abs slack, open nets never up) and wall time (a loose
//   relative band — wall clock is noisy); bench entries gate the
//   numeric BENCH_*.json metrics by name-derived direction
//   (latency/seconds fields must not grow past the perf band, speedup/
//   throughput/hit-rate fields must not shrink past it).  A series
//   with no predecessor passes with a note — the first run of a fresh
//   ledger gates nothing.
#pragma once

#include <string>
#include <vector>

#include "obs/run_ledger.hpp"
#include "obs/run_report.hpp"

namespace crp::obs {

struct ReportDiff {
  bool fingerprintsIdentical = false;
  bool qorIdentical = false;
  bool configsMatch = false;  ///< iterations + seed agree

  struct Delta {
    std::string name;
    double a = 0.0;
    double b = 0.0;
    double delta() const { return b - a; }
  };
  std::vector<Delta> qor;     ///< wirelength, vias, overflow, ...
  std::vector<Delta> phases;  ///< per-phase wall seconds (flow order)

  /// Per-iteration attribution, index-aligned (missing side = 0).
  struct IterationDelta {
    int iteration = 0;
    int movedCells = 0;      ///< b - a
    int reroutedNets = 0;    ///< b - a
    double selectedCost = 0.0;
    std::int64_t netsPriced = 0;
    /// Timeline overflow bracket (only when both runs captured one).
    bool hasOverflow = false;
    double overflowAfterA = 0.0;
    double overflowAfterB = 0.0;
  };
  std::vector<IterationDelta> iterations;

  Json toJson() const;
};

ReportDiff diffReports(const RunReport& a, const RunReport& b);

/// Human-readable rendering (what `crp_report --diff` prints).
std::string formatReportDiff(const ReportDiff& diff,
                             const std::string& labelA,
                             const std::string& labelB);

/// Tolerance bands for checkLedger.  Relative bands are fractions
/// (0.02 == 2%); a candidate fails when it is *worse* than the
/// baseline by more than the band — improvements never fail.
struct LedgerCheckOptions {
  double tolQorRel = 0.02;       ///< wirelength + via growth band
  double tolOverflowRel = 0.5;   ///< overflow growth band...
  double tolOverflowAbs = 10.0;  ///< ...plus this absolute slack
  double tolPerfRel = 1.0;       ///< wall-clock / bench-metric band
  bool skipDirty = false;        ///< ignore entries from dirty trees
};

struct LedgerCheckResult {
  struct SeriesResult {
    std::string kind;
    std::string design;
    bool checked = false;  ///< false: no predecessor to gate against
    bool ok = true;
    std::vector<std::string> notes;     ///< informational lines
    std::vector<std::string> failures;  ///< band violations
  };
  std::vector<SeriesResult> series;
  int skippedLines = 0;  ///< from RunLedger::load
  bool ok = true;        ///< no series failed

  std::string format() const;
};

LedgerCheckResult checkLedger(const RunLedger::LoadResult& loaded,
                              const LedgerCheckOptions& options = {});

}  // namespace crp::obs
