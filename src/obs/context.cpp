#include "obs/context.hpp"

#include <utility>

#include "util/thread_pool.hpp"

namespace crp::obs {

namespace {

std::uint64_t nextContextId() {
  // Starts at 1: id 0 is the SiteCache "never resolved" sentinel.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Submit-time hook: capture the submitter's ambient context and
// re-install it (context + logger) around the task on the worker.
// Tasks submitted outside any scope are passed through untouched —
// the worker's own ambient resolution already lands on the default
// context.
util::ThreadPool::Task wrapWithAmbientContext(util::ThreadPool::Task task) {
  ObsContext* context = detail::tlsCurrentContext;
  if (context == nullptr) return task;
  return [context, task = std::move(task)] {
    ObsContextScope scope(context);
    task();
  };
}

}  // namespace

void detail::ensureTaskWrapperRegistered() {
  // Meyers-style once flag; no static-init-order hazard because the
  // wrapper slot itself is a constant-initialized atomic.
  static const bool registered = [] {
    util::ThreadPool::setTaskWrapper(&wrapWithAmbientContext);
    return true;
  }();
  (void)registered;
}

ObsContext::ObsContext()
    : ownedLogger_(std::make_unique<util::Logger>()),
      logger_(ownedLogger_.get()) {
  init();
}

ObsContext::ObsContext(DefaultTag) : logger_(&util::Logger::instance()) {
  init();
}

void ObsContext::init() {
  id_ = nextContextId();
  detail::ensureTaskWrapperRegistered();
}

ObsContext& ObsContext::defaultContext() {
  static ObsContext context{DefaultTag{}};
  return context;
}

void ObsContext::reset() {
  metrics_.reset();
  tracer_.clear();
  flightRecorder_.clear();
}

}  // namespace crp::obs
