// Machine-readable per-run report for the CR&P flow.
//
// The framework fills a RunReport as it runs (phase wall times,
// per-iteration stats, pricing-cache and ILP counter deltas, final
// router stats); the CLI serializes it with toJson() and formats the
// human-readable telemetry from the same object, so phase names exist
// in exactly one place (core::kPhases) instead of being re-typed by
// every consumer.
//
// The JSON document is versioned: fromJson() rejects any payload whose
// "schemaVersion" differs from kSchemaVersion, so downstream tooling
// fails loudly instead of misreading renamed fields.
//
// fingerprint() extracts the deterministic subset — values that are
// identical across thread counts and schedules (moves, costs,
// wirelength, schedule-independent event totals) — which is what the
// golden regression test asserts.  Wall-clock fields and racy splits
// (cache hit vs miss) are deliberately excluded; see metrics.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/timeline.hpp"

namespace crp::obs {

struct RunReport {
  /// v2: adds the optional "timeline" array (spatial observability
  /// tier, one TimelineRecord per iteration when snapshots are on).
  static constexpr int kSchemaVersion = 2;
  /// Version stamp inside fingerprint() documents.  Deliberately
  /// decoupled from kSchemaVersion: the fingerprint only changes when
  /// the *deterministic subset* changes shape, so additive schema bumps
  /// do not invalidate checked-in golden fingerprints.
  static constexpr int kFingerprintVersion = 1;

  // ---- flow configuration ---------------------------------------------------
  int iterations = 0;  ///< the paper's k
  int threads = 0;
  std::uint64_t seed = 0;

  // ---- phase wall times (insertion order = flow order) ----------------------
  struct PhaseStat {
    std::string name;
    double seconds = 0.0;
  };
  std::vector<PhaseStat> phases;

  // ---- per-iteration stats --------------------------------------------------
  struct IterationStat {
    int criticalCells = 0;
    int movedCells = 0;
    int displacedCells = 0;
    int reroutedNets = 0;
    double selectedCost = 0.0;
    std::uint64_t netsPriced = 0;  ///< hits + misses + delta skips
  };
  std::vector<IterationStat> iterationStats;

  /// Spatial-tier per-iteration records (timeline.hpp); filled only
  /// when CrpOptions::snapshots is on.  Serialized under "timeline"
  /// when non-empty; absent otherwise (and optional on parse), so
  /// snapshot-off reports are unchanged apart from the version field.
  std::vector<TimelineRecord> timeline;

  // ---- ECC pricing-cache totals (summed over iterations) --------------------
  struct PricingTotals {
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t deltaSkips = 0;
    std::uint64_t netsPriced() const {
      return cacheHits + cacheMisses + deltaSkips;
    }
    double hitRate() const {
      const std::uint64_t reused = cacheHits + deltaSkips;
      const std::uint64_t total = reused + cacheMisses;
      return total == 0 ? 0.0 : static_cast<double>(reused) / total;
    }
  };
  PricingTotals pricing;

  // ---- ILP solver totals (GCP legalizer + SEL selection) --------------------
  struct IlpTotals {
    std::uint64_t solves = 0;
    std::uint64_t nodes = 0;     ///< branch-and-bound nodes explored
    std::uint64_t lpCalls = 0;   ///< LP relaxations solved
    std::uint64_t lpPivots = 0;  ///< simplex pivots across all LPs
  };
  IlpTotals ilp;

  // ---- final router state ---------------------------------------------------
  struct RouterStats {
    std::int64_t wirelengthDbu = 0;
    std::int64_t vias = 0;
    double totalOverflow = 0.0;
    int overflowedEdges = 0;
    int openNets = 0;
    int reroutedNets = 0;
  };
  RouterStats router;

  // ---- flow totals ----------------------------------------------------------
  int totalMoves = 0;
  int totalReroutes = 0;

  /// Raw counter deltas for this run (everything the registry saw),
  /// exported verbatim under "counters" for ad-hoc analysis.
  std::map<std::string, std::uint64_t> counters;

  /// Wall time of the named phase; 0.0 when the phase never ran.
  double phaseSeconds(const std::string& name) const;
  /// Sum of all phase wall times.
  double totalPhaseSeconds() const;

  Json toJson() const;
  /// Throws JsonError on malformed payloads or schema-version mismatch.
  static RunReport fromJson(const Json& json);

  /// Deterministic subset for golden assertions (no wall clock, no
  /// racy counter splits).  Stable across --threads values.
  Json fingerprint() const;
};

/// Human-readable telemetry (what `crp run` prints).  All phase names
/// come from the report itself.
std::string formatRunReport(const RunReport& report);

}  // namespace crp::obs
