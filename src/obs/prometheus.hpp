// Prometheus text exposition (format version 0.0.4) for the metrics
// tier.
//
// The registry's dot-separated instrument names ("gr.tile.local_nets",
// "serve.op.run.latency") are sanitized into the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]* by mapping every illegal character
// to '_' (and prefixing '_' when the first character is a digit).
// Counters render as `# TYPE <name> counter`, gauges as gauges, and
// histograms as the conventional triplet: cumulative `<name>_bucket`
// series with `le` labels (one per bound plus `le="+Inf"`),
// `<name>_sum`, and `<name>_count`.  Output is sorted by instrument
// name within each instrument class (MetricsSnapshot stores maps), so
// the payload is deterministic — the golden fixture test diffs it
// byte-for-byte.
//
// This is a pure renderer over a MetricsSnapshot: no HTTP listener
// lives in-process.  The serve daemon exposes the payload through the
// `metrics` op (docs/serve.md) and the CLI through `crp run
// --metrics-out`; an external scraper bridges either to Prometheus.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace crp::obs {

/// Maps an instrument name into the Prometheus metric-name grammar.
std::string sanitizeMetricName(const std::string& name);

/// Renders every instrument of the snapshot as Prometheus exposition
/// text.  `prefix` (sanitized like the names) is prepended to every
/// metric name separated by '_' when non-empty — the serve daemon uses
/// it to keep server-wide and per-session series distinguishable.
std::string renderPrometheus(const MetricsSnapshot& snapshot,
                             const std::string& prefix = "");

/// snapshot() + render.
std::string renderPrometheus(const MetricsRegistry& registry,
                             const std::string& prefix = "");

}  // namespace crp::obs
