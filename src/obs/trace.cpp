#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

#include "obs/context.hpp"
#include "obs/json.hpp"

namespace crp::obs {

namespace {

/// Tracer identity for the thread-local registration cache.  Ids are
/// never reused, so a cache entry can outlive its tracer without ever
/// matching a new one allocated at the same address.
std::atomic<std::uint64_t> nextTracerId{1};

struct CacheEntry {
  std::uint64_t tracerId = 0;
  Tracer::ThreadLog* log = nullptr;
};

thread_local std::vector<CacheEntry> tlsLogs;

}  // namespace

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      id_(nextTracerId.fetch_add(1, std::memory_order_relaxed)) {
}

Tracer& Tracer::instance() {
  // Deprecated shim: tracers are per-ObsContext now; the "process
  // tracer" is the default context's.
  return ObsContext::defaultContext().tracer();
}

Tracer::ThreadLog& Tracer::threadLog() {
  for (const CacheEntry& entry : tlsLogs) {
    if (entry.tracerId == id_) return *entry.log;
  }
  std::lock_guard lock(mutex_);
  logs_.push_back(std::make_unique<ThreadLog>());
  ThreadLog& log = *logs_.back();
  log.tid = static_cast<int>(logs_.size()) - 1;
  tlsLogs.push_back(CacheEntry{id_, &log});
  return log;
}

std::vector<std::pair<int, SpanRecord>> Tracer::records() const {
  std::vector<std::pair<int, SpanRecord>> out;
  std::lock_guard lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard logLock(log->mutex);
    for (const SpanRecord& span : log->spans) {
      out.emplace_back(log->tid, span);
    }
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& log : logs_) {
    std::lock_guard logLock(log->mutex);
    log->spans.clear();
  }
}

void Tracer::writeChromeTrace(std::ostream& os) const {
  Json events = Json::array();
  for (const auto& [tid, span] : records()) {
    Json event = Json::object();
    event.set("name", span.name);
    event.set("cat", span.category);
    event.set("ph", "X");
    // trace_event timestamps are microseconds (double).
    event.set("ts", static_cast<double>(span.startNs) / 1000.0);
    event.set("dur", static_cast<double>(span.durNs) / 1000.0);
    event.set("pid", 1);
    event.set("tid", tid);
    if (span.arg >= 0) {
      Json args = Json::object();
      args.set("value", static_cast<long long>(span.arg));
      event.set("args", std::move(args));
    }
    events.append(std::move(event));
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  root.write(os, 1);
  os << "\n";
}

}  // namespace crp::obs
