// Flow observability facade: ambient-context gate + no-op-able macros.
//
// Instrumentation in hot paths (ILP solver, pricing, router) goes
// through the CRP_OBS_* macros, which are
//   * compile-time removable: building with -DCRP_OBS_DISABLED (CMake
//     option CRP_OBS=OFF) expands every macro to nothing, and
//   * runtime-gated: when compiled in, each macro first resolves the
//     ambient ObsContext (one thread-local load) and checks its
//     enabled flag (one relaxed atomic load), touching no instrument
//     while observability is off.  This is the
//     "zero-overhead-when-disabled" contract the benches rely on.
//
// Instruments are *per-context* (see obs/context.hpp): outside any
// ObsContextScope the macros hit the process-default context, which is
// the exact pre-daemon behavior; inside a scope (a serve session, a
// framework run with its own context) they hit that session's
// registry/tracer/recorder, so concurrent flows never interleave.
//
// Enabling is opt-in: every context starts disabled; `crp run` and the
// observability tests turn the ambient one on.  Counter macros cache
// the instrument pointer in a per-site thread_local keyed by the
// context id (ids are never reused, so one integer compare
// revalidates the cache), making the steady-state cost of a counter
// hit a TLS load + compare + one atomic add.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/context.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crp::obs {

/// True when the *ambient* context should record (runtime switch).
inline bool enabled() { return currentContext().enabled(); }

inline void setEnabled(bool on) { currentContext().setEnabled(on); }

/// Deprecated shim (pre-ObsContext name): clears the ambient context's
/// registry, tracer and flight recorder.  Other contexts are never
/// touched — a second in-process run can no longer clobber the first
/// run's live instruments.  New code should call
/// currentContext().reset() (or reset the context it owns) directly.
inline void resetAll() { currentContext().reset(); }

/// RAII scope: enables the ambient context's observability for its
/// lifetime, restoring the previous state on exit (used by tests).
class EnabledScope {
 public:
  explicit EnabledScope(bool on = true)
      : context_(&currentContext()), previous_(context_->enabled()) {
    context_->setEnabled(on);
  }
  ~EnabledScope() { context_->setEnabled(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  ObsContext* context_;
  bool previous_;
};

}  // namespace crp::obs

#if defined(CRP_OBS_DISABLED)

#define CRP_OBS_SPAN(category, name) \
  do {                               \
  } while (0)
#define CRP_OBS_SPAN_ARG(category, name, argValue) \
  do {                                             \
  } while (0)
#define CRP_OBS_COUNT(counterName, delta) \
  do {                                    \
  } while (0)
#define CRP_OBS_GAUGE_SET(gaugeName, value) \
  do {                                      \
  } while (0)
#define CRP_OBS_HISTOGRAM(histName, value) \
  do {                                     \
  } while (0)
#define CRP_OBS_EVENT(category, label, value) \
  do {                                        \
  } while (0)

#else  // observability compiled in

#define CRP_OBS_CONCAT_IMPL(a, b) a##b
#define CRP_OBS_CONCAT(a, b) CRP_OBS_CONCAT_IMPL(a, b)

/// Opens a span covering the rest of the enclosing scope (recorded
/// into the ambient context's tracer; no-op while disabled).
#define CRP_OBS_SPAN(category, name)                              \
  ::crp::obs::ScopedSpan CRP_OBS_CONCAT(crpObsSpan, __COUNTER__)( \
      ::crp::obs::detail::enabledTracer(), (name), (category))

/// Span with a numeric payload (iteration index, net id, ...).
#define CRP_OBS_SPAN_ARG(category, name, argValue)                \
  ::crp::obs::ScopedSpan CRP_OBS_CONCAT(crpObsSpan, __COUNTER__)( \
      ::crp::obs::detail::enabledTracer(), (name), (category),    \
      static_cast<std::int64_t>(argValue))

// Instrument macros share one shape: resolve the enabled ambient
// context, revalidate the per-site cache against its id (contexts are
// never reused, so a mismatch can only mean "different context —
// re-look-up"), then do the lock-free update.
#define CRP_OBS_COUNT(counterName, delta)                                    \
  do {                                                                       \
    if (::crp::obs::ObsContext* crpObsCtx = ::crp::obs::enabledContext()) {  \
      static thread_local ::crp::obs::detail::SiteCache<::crp::obs::Counter> \
          crpObsSite;                                                        \
      if (crpObsSite.ctxId != crpObsCtx->id()) {                             \
        crpObsSite.ptr = crpObsCtx->metrics().counter(counterName);          \
        crpObsSite.ctxId = crpObsCtx->id();                                  \
      }                                                                      \
      crpObsSite.ptr->add(static_cast<std::uint64_t>(delta));                \
    }                                                                        \
  } while (0)

#define CRP_OBS_GAUGE_SET(gaugeName, value)                                  \
  do {                                                                       \
    if (::crp::obs::ObsContext* crpObsCtx = ::crp::obs::enabledContext()) {  \
      static thread_local ::crp::obs::detail::SiteCache<::crp::obs::Gauge>   \
          crpObsSite;                                                        \
      if (crpObsSite.ctxId != crpObsCtx->id()) {                             \
        crpObsSite.ptr = crpObsCtx->metrics().gauge(gaugeName);              \
        crpObsSite.ctxId = crpObsCtx->id();                                  \
      }                                                                      \
      crpObsSite.ptr->set(static_cast<double>(value));                       \
    }                                                                        \
  } while (0)

#define CRP_OBS_HISTOGRAM(histName, value)                                   \
  do {                                                                       \
    if (::crp::obs::ObsContext* crpObsCtx = ::crp::obs::enabledContext()) {  \
      static thread_local ::crp::obs::detail::SiteCache<                     \
          ::crp::obs::Histogram>                                             \
          crpObsSite;                                                        \
      if (crpObsSite.ctxId != crpObsCtx->id()) {                             \
        crpObsSite.ptr = crpObsCtx->metrics().histogram(histName);           \
        crpObsSite.ctxId = crpObsCtx->id();                                  \
      }                                                                      \
      crpObsSite.ptr->record(static_cast<std::uint64_t>(value));             \
    }                                                                        \
  } while (0)

/// Appends a structured event to the ambient flight-recorder ring
/// (phase granularity only — never per-net/per-edge loops; record()
/// takes the ring mutex, so no per-site cache is needed).
#define CRP_OBS_EVENT(category, label, value)                               \
  do {                                                                      \
    if (::crp::obs::ObsContext* crpObsCtx = ::crp::obs::enabledContext()) { \
      crpObsCtx->flightRecorder().record((category), (label),               \
                                         static_cast<std::int64_t>(value)); \
    }                                                                       \
  } while (0)

#endif  // CRP_OBS_DISABLED
