// Flow observability facade: global enable switch + no-op-able macros.
//
// Instrumentation in hot paths (ILP solver, pricing, router) goes
// through the CRP_OBS_* macros, which are
//   * compile-time removable: building with -DCRP_OBS_DISABLED (CMake
//     option CRP_OBS=OFF) expands every macro to nothing, and
//   * runtime-gated: when compiled in, each macro first checks the
//     process-wide enabled flag (one relaxed atomic load) and touches
//     no instrument while observability is off.  This is the
//     "zero-overhead-when-disabled" contract the benches rely on.
//
// Enabling is opt-in: the flag starts false; `crp run` and the
// observability tests turn it on.  Counter macros cache the registry
// pointer in a function-local static (instruments are never
// deallocated, see metrics.hpp), so the steady-state cost of a counter
// hit is one atomic load + one atomic add.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crp::obs {

namespace detail {
inline std::atomic<bool> gEnabled{false};
}  // namespace detail

/// True when instruments should record (runtime switch).
inline bool enabled() {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

inline void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

/// Clears the default registry, tracer and flight recorder (test
/// isolation; per-run reports use snapshot deltas instead and never
/// need this).
inline void resetAll() {
  MetricsRegistry::instance().reset();
  Tracer::instance().clear();
  FlightRecorder::instance().clear();
}

/// RAII scope: enables observability for its lifetime, restoring the
/// previous state on exit (used by tests).
class EnabledScope {
 public:
  explicit EnabledScope(bool on = true) : previous_(enabled()) {
    setEnabled(on);
  }
  ~EnabledScope() { setEnabled(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

}  // namespace crp::obs

#if defined(CRP_OBS_DISABLED)

#define CRP_OBS_SPAN(category, name) \
  do {                               \
  } while (0)
#define CRP_OBS_SPAN_ARG(category, name, argValue) \
  do {                                             \
  } while (0)
#define CRP_OBS_COUNT(counterName, delta) \
  do {                                    \
  } while (0)
#define CRP_OBS_GAUGE_SET(gaugeName, value) \
  do {                                      \
  } while (0)
#define CRP_OBS_HISTOGRAM(histName, value) \
  do {                                     \
  } while (0)
#define CRP_OBS_EVENT(category, label, value) \
  do {                                        \
  } while (0)

#else  // observability compiled in

#define CRP_OBS_CONCAT_IMPL(a, b) a##b
#define CRP_OBS_CONCAT(a, b) CRP_OBS_CONCAT_IMPL(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define CRP_OBS_SPAN(category, name)                             \
  ::crp::obs::ScopedSpan CRP_OBS_CONCAT(crpObsSpan, __COUNTER__)( \
      ::crp::obs::enabled() ? &::crp::obs::Tracer::instance() : nullptr, \
      (name), (category))

/// Span with a numeric payload (iteration index, net id, ...).
#define CRP_OBS_SPAN_ARG(category, name, argValue)               \
  ::crp::obs::ScopedSpan CRP_OBS_CONCAT(crpObsSpan, __COUNTER__)( \
      ::crp::obs::enabled() ? &::crp::obs::Tracer::instance() : nullptr, \
      (name), (category), static_cast<std::int64_t>(argValue))

#define CRP_OBS_COUNT(counterName, delta)                                  \
  do {                                                                     \
    if (::crp::obs::enabled()) {                                           \
      static ::crp::obs::Counter* const crpObsCounter =                    \
          ::crp::obs::MetricsRegistry::instance().counter(counterName);    \
      crpObsCounter->add(static_cast<std::uint64_t>(delta));               \
    }                                                                      \
  } while (0)

#define CRP_OBS_GAUGE_SET(gaugeName, value)                                \
  do {                                                                     \
    if (::crp::obs::enabled()) {                                           \
      static ::crp::obs::Gauge* const crpObsGauge =                        \
          ::crp::obs::MetricsRegistry::instance().gauge(gaugeName);        \
      crpObsGauge->set(static_cast<double>(value));                        \
    }                                                                      \
  } while (0)

#define CRP_OBS_HISTOGRAM(histName, value)                                 \
  do {                                                                     \
    if (::crp::obs::enabled()) {                                           \
      static ::crp::obs::Histogram* const crpObsHistogram =                \
          ::crp::obs::MetricsRegistry::instance().histogram(histName);     \
      crpObsHistogram->record(static_cast<std::uint64_t>(value));          \
    }                                                                      \
  } while (0)

/// Appends a structured event to the flight-recorder ring (phase
/// granularity only — never per-net/per-edge loops).
#define CRP_OBS_EVENT(category, label, value)                              \
  do {                                                                     \
    if (::crp::obs::enabled()) {                                           \
      ::crp::obs::FlightRecorder::instance().record(                       \
          (category), (label), static_cast<std::int64_t>(value));          \
    }                                                                      \
  } while (0)

#endif  // CRP_OBS_DISABLED
