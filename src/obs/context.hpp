// Per-session observability context.
//
// Through PR 7 every instrument lived in a process-wide singleton
// (MetricsRegistry/Tracer/FlightRecorder::instance(), the util
// Logger).  That was fine for one CLI invocation, but two flows in one
// process — `runEco` after `run`, or two `crp serve` sessions on the
// shared worker pool — would interleave each other's counters, spans,
// flight events, and log lines, and corrupt each other's
// RunReport counter deltas.  ObsContext bundles one registry, one
// tracer, one flight recorder, and one logger into a unit a session
// owns outright.
//
// Resolution is *ambient*: instrumented code never names a context.
// The CRP_OBS_* macros (obs.hpp) resolve the innermost
// ObsContextScope installed on the current thread, falling back to
// the process-default context — so all pre-daemon code (CLI, tests,
// benches) keeps its exact behavior with zero call-site changes.
// ThreadPool workers inherit the *submitter's* context: ObsContext
// registers a ThreadPool task wrapper that captures the ambient
// context at submit() time and re-installs it around the task, so a
// session's parallelFor bodies record into the session's instruments
// no matter which worker runs them.
//
// Hot-path contract (benches): a disabled-context macro hit costs one
// thread-local load plus one relaxed atomic load.  An enabled counter
// hit adds a per-call-site thread_local {contextId, pointer} cache —
// context ids are monotonically assigned and never reused (the same
// trick Tracer uses for its thread-log cache), so a cached instrument
// pointer is revalidated with a single integer compare and can never
// be dereferenced stale.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logger.hpp"

namespace crp::obs {

class ObsContext {
 public:
  /// A fresh context with its own registry, tracer, flight recorder,
  /// and logger (starts disabled, like the process did before main).
  ObsContext();

  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  /// The process-default context — what ambient resolution falls back
  /// to outside any ObsContextScope.  Its logger *is*
  /// util::Logger::instance(), so legacy setStream/setSink callers
  /// keep steering default-context output.
  static ObsContext& defaultContext();

  /// Monotonic, never reused, never 0 (0 is the site caches' "empty").
  std::uint64_t id() const { return id_; }

  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }
  FlightRecorder& flightRecorder() { return flightRecorder_; }
  util::Logger& logger() { return *logger_; }

  /// Runtime instrument gate for flows under *this* context.
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Clears this context's registry, tracer, and flight recorder
  /// (instrument pointers stay valid; see MetricsRegistry::reset).
  /// Other contexts are untouched — that scoping is the point.
  void reset();

 private:
  // Default context: aliases the process logger instead of owning one.
  struct DefaultTag {};
  explicit ObsContext(DefaultTag);

  void init();

  std::uint64_t id_ = 0;
  std::atomic<bool> enabled_{false};
  MetricsRegistry metrics_;
  Tracer tracer_;
  FlightRecorder flightRecorder_;
  std::unique_ptr<util::Logger> ownedLogger_;
  util::Logger* logger_ = nullptr;
};

namespace detail {

/// Innermost installed context for this thread; null = default.
inline thread_local ObsContext* tlsCurrentContext = nullptr;

/// Registers the ThreadPool task wrapper that propagates the ambient
/// context from submitter to worker (idempotent; every ObsContext
/// constructor calls it, so the hook exists before any scope can be
/// installed).
void ensureTaskWrapperRegistered();

/// Per-call-site instrument cache for the CRP_OBS_* macros.
template <typename Instrument>
struct SiteCache {
  std::uint64_t ctxId = 0;
  Instrument* ptr = nullptr;
};

}  // namespace detail

/// The ambient context: innermost ObsContextScope on this thread,
/// defaultContext() otherwise.
inline ObsContext& currentContext() {
  ObsContext* scoped = detail::tlsCurrentContext;
  return scoped != nullptr ? *scoped : ObsContext::defaultContext();
}

/// The ambient context iff its instrument gate is on, else null — the
/// single check at the top of every enabled-path macro.
inline ObsContext* enabledContext() {
  ObsContext& ctx = currentContext();
  return ctx.enabled() ? &ctx : nullptr;
}

namespace detail {
/// Tracer of the enabled ambient context (null disables ScopedSpan).
inline Tracer* enabledTracer() {
  ObsContext* ctx = enabledContext();
  return ctx != nullptr ? &ctx->tracer() : nullptr;
}
}  // namespace detail

/// RAII ambient-context override for the current thread.  Also routes
/// CRP_LOG_* to the context's logger (util::LoggerScope).  A null
/// context makes the scope a no-op, so call sites can thread an
/// optional context without branching.
class ObsContextScope {
 public:
  explicit ObsContextScope(ObsContext* context)
      : loggerScope_(context != nullptr ? &context->logger() : nullptr) {
    if (context == nullptr) return;
    previous_ = detail::tlsCurrentContext;
    detail::tlsCurrentContext = context;
    installed_ = true;
  }
  explicit ObsContextScope(ObsContext& context)
      : ObsContextScope(&context) {}
  ~ObsContextScope() {
    if (installed_) detail::tlsCurrentContext = previous_;
  }
  ObsContextScope(const ObsContextScope&) = delete;
  ObsContextScope& operator=(const ObsContextScope&) = delete;

 private:
  util::LoggerScope loggerScope_;
  ObsContext* previous_ = nullptr;
  bool installed_ = false;
};

}  // namespace crp::obs
