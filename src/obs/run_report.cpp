#include "obs/run_report.hpp"

#include <iomanip>
#include <sstream>

namespace crp::obs {

namespace {

/// Reads a required integer field, throwing JsonError when absent.
std::int64_t intField(const Json& obj, std::string_view key) {
  return obj.at(key).asInt();
}

std::uint64_t uintField(const Json& obj, std::string_view key) {
  return obj.at(key).asUint();
}

double doubleField(const Json& obj, std::string_view key) {
  return obj.at(key).asDouble();
}

}  // namespace

double RunReport::phaseSeconds(const std::string& name) const {
  for (const PhaseStat& phase : phases) {
    if (phase.name == name) return phase.seconds;
  }
  return 0.0;
}

double RunReport::totalPhaseSeconds() const {
  double total = 0.0;
  for (const PhaseStat& phase : phases) total += phase.seconds;
  return total;
}

Json RunReport::toJson() const {
  Json root = Json::object();
  root.set("schemaVersion", kSchemaVersion);

  Json config = Json::object();
  config.set("iterations", iterations);
  config.set("threads", threads);
  config.set("seed", seed);
  root.set("config", std::move(config));

  Json phaseArr = Json::array();
  for (const PhaseStat& phase : phases) {
    Json p = Json::object();
    p.set("name", phase.name);
    p.set("seconds", phase.seconds);
    phaseArr.append(std::move(p));
  }
  root.set("phases", std::move(phaseArr));

  Json iterArr = Json::array();
  for (const IterationStat& it : iterationStats) {
    Json i = Json::object();
    i.set("criticalCells", it.criticalCells);
    i.set("movedCells", it.movedCells);
    i.set("displacedCells", it.displacedCells);
    i.set("reroutedNets", it.reroutedNets);
    i.set("selectedCost", it.selectedCost);
    i.set("netsPriced", it.netsPriced);
    iterArr.append(std::move(i));
  }
  root.set("iterations_detail", std::move(iterArr));

  if (!timeline.empty()) {
    Json timelineArr = Json::array();
    for (const TimelineRecord& record : timeline) {
      timelineArr.append(record.toJson());
    }
    root.set("timeline", std::move(timelineArr));
  }

  Json pricingObj = Json::object();
  pricingObj.set("cacheHits", pricing.cacheHits);
  pricingObj.set("cacheMisses", pricing.cacheMisses);
  pricingObj.set("deltaSkips", pricing.deltaSkips);
  pricingObj.set("netsPriced", pricing.netsPriced());
  root.set("pricing", std::move(pricingObj));

  Json ilpObj = Json::object();
  ilpObj.set("solves", ilp.solves);
  ilpObj.set("nodes", ilp.nodes);
  ilpObj.set("lpCalls", ilp.lpCalls);
  ilpObj.set("lpPivots", ilp.lpPivots);
  root.set("ilp", std::move(ilpObj));

  Json routerObj = Json::object();
  routerObj.set("wirelengthDbu", router.wirelengthDbu);
  routerObj.set("vias", router.vias);
  routerObj.set("totalOverflow", router.totalOverflow);
  routerObj.set("overflowedEdges", router.overflowedEdges);
  routerObj.set("openNets", router.openNets);
  routerObj.set("reroutedNets", router.reroutedNets);
  root.set("router", std::move(routerObj));

  Json totals = Json::object();
  totals.set("moves", totalMoves);
  totals.set("reroutes", totalReroutes);
  root.set("totals", std::move(totals));

  Json counterObj = Json::object();
  for (const auto& [name, value] : counters) counterObj.set(name, value);
  root.set("counters", std::move(counterObj));

  return root;
}

RunReport RunReport::fromJson(const Json& json) {
  const std::int64_t version = intField(json, "schemaVersion");
  if (version != kSchemaVersion) {
    throw JsonError("unsupported RunReport schemaVersion " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSchemaVersion) + ")",
                    0);
  }

  RunReport report;
  const Json& config = json.at("config");
  report.iterations = static_cast<int>(intField(config, "iterations"));
  report.threads = static_cast<int>(intField(config, "threads"));
  report.seed = uintField(config, "seed");

  for (const Json& p : json.at("phases").asArray()) {
    PhaseStat phase;
    phase.name = p.at("name").asString();
    phase.seconds = doubleField(p, "seconds");
    report.phases.push_back(std::move(phase));
  }

  for (const Json& i : json.at("iterations_detail").asArray()) {
    IterationStat it;
    it.criticalCells = static_cast<int>(intField(i, "criticalCells"));
    it.movedCells = static_cast<int>(intField(i, "movedCells"));
    it.displacedCells = static_cast<int>(intField(i, "displacedCells"));
    it.reroutedNets = static_cast<int>(intField(i, "reroutedNets"));
    it.selectedCost = doubleField(i, "selectedCost");
    it.netsPriced = uintField(i, "netsPriced");
    report.iterationStats.push_back(it);
  }

  if (const Json* timelineArr = json.find("timeline")) {
    for (const Json& record : timelineArr->asArray()) {
      report.timeline.push_back(TimelineRecord::fromJson(record));
    }
  }

  const Json& pricingObj = json.at("pricing");
  report.pricing.cacheHits = uintField(pricingObj, "cacheHits");
  report.pricing.cacheMisses = uintField(pricingObj, "cacheMisses");
  report.pricing.deltaSkips = uintField(pricingObj, "deltaSkips");

  const Json& ilpObj = json.at("ilp");
  report.ilp.solves = uintField(ilpObj, "solves");
  report.ilp.nodes = uintField(ilpObj, "nodes");
  report.ilp.lpCalls = uintField(ilpObj, "lpCalls");
  report.ilp.lpPivots = uintField(ilpObj, "lpPivots");

  const Json& routerObj = json.at("router");
  report.router.wirelengthDbu = intField(routerObj, "wirelengthDbu");
  report.router.vias = intField(routerObj, "vias");
  report.router.totalOverflow = doubleField(routerObj, "totalOverflow");
  report.router.overflowedEdges =
      static_cast<int>(intField(routerObj, "overflowedEdges"));
  report.router.openNets = static_cast<int>(intField(routerObj, "openNets"));
  report.router.reroutedNets =
      static_cast<int>(intField(routerObj, "reroutedNets"));

  const Json& totals = json.at("totals");
  report.totalMoves = static_cast<int>(intField(totals, "moves"));
  report.totalReroutes = static_cast<int>(intField(totals, "reroutes"));

  for (const auto& [name, value] : json.at("counters").asObject()) {
    report.counters[name] = value.asUint();
  }

  return report;
}

Json RunReport::fingerprint() const {
  // Deterministic across thread counts: event-set totals, moves and
  // costs (PR 1's value-exact pricing engine), final router state.
  // Excluded: wall-clock seconds, cache hit/miss split (races),
  // thread count itself (the fingerprint must match across --threads).
  Json fp = Json::object();
  fp.set("schemaVersion", kFingerprintVersion);
  fp.set("iterations", iterations);
  fp.set("seed", seed);

  Json iterArr = Json::array();
  for (const IterationStat& it : iterationStats) {
    Json i = Json::object();
    i.set("criticalCells", it.criticalCells);
    i.set("movedCells", it.movedCells);
    i.set("displacedCells", it.displacedCells);
    i.set("reroutedNets", it.reroutedNets);
    i.set("selectedCost", it.selectedCost);
    i.set("netsPriced", it.netsPriced);
    iterArr.append(std::move(i));
  }
  fp.set("iterations_detail", std::move(iterArr));

  // Timeline records are deterministic end to end (damping draws come
  // from the seeded serial RNG; overflow/displacement are value-exact
  // across thread counts), so they join the fingerprint whenever
  // present.  Absent when snapshots are off, which keeps pre-spatial
  // golden fingerprints byte-identical.  toJson(false) drops the tile
  // scheduling block, whose values depend on the configured grid.
  if (!timeline.empty()) {
    Json timelineArr = Json::array();
    for (const TimelineRecord& record : timeline) {
      timelineArr.append(record.toJson(false));
    }
    fp.set("timeline", std::move(timelineArr));
  }

  fp.set("netsPriced", pricing.netsPriced());
  fp.set("ilpSolves", ilp.solves);
  fp.set("ilpNodes", ilp.nodes);
  fp.set("lpCalls", ilp.lpCalls);
  fp.set("lpPivots", ilp.lpPivots);

  Json routerObj = Json::object();
  routerObj.set("wirelengthDbu", router.wirelengthDbu);
  routerObj.set("vias", router.vias);
  routerObj.set("totalOverflow", router.totalOverflow);
  routerObj.set("overflowedEdges", router.overflowedEdges);
  routerObj.set("openNets", router.openNets);
  fp.set("router", std::move(routerObj));

  fp.set("moves", totalMoves);
  fp.set("reroutes", totalReroutes);
  return fp;
}

std::string formatRunReport(const RunReport& report) {
  std::ostringstream os;
  os << "CR&P telemetry\n";
  os << "  iterations: " << report.iterations
     << "  threads: " << report.threads << "  seed: " << report.seed << "\n";

  os << "  phase wall times:\n";
  const double total = report.totalPhaseSeconds();
  for (const RunReport::PhaseStat& phase : report.phases) {
    const double share = total > 0.0 ? 100.0 * phase.seconds / total : 0.0;
    os << "    " << std::left << std::setw(4) << phase.name << std::right
       << std::fixed << std::setprecision(3) << std::setw(9) << phase.seconds
       << " s  (" << std::setprecision(1) << std::setw(5) << share << "%)\n";
  }
  os << "    total" << std::fixed << std::setprecision(3) << std::setw(8)
     << total << " s\n";

  os << "  moves: " << report.totalMoves
     << "  reroutes: " << report.totalReroutes << "\n";

  os << "  pricing: " << report.pricing.netsPriced() << " nets priced, "
     << report.pricing.cacheHits << " hits, " << report.pricing.cacheMisses
     << " misses, " << report.pricing.deltaSkips << " delta skips ("
     << std::fixed << std::setprecision(1) << 100.0 * report.pricing.hitRate()
     << "% reuse)\n";

  os << "  ilp: " << report.ilp.solves << " solves, " << report.ilp.nodes
     << " nodes, " << report.ilp.lpCalls << " LPs, " << report.ilp.lpPivots
     << " pivots\n";

  os << "  route: wl=" << report.router.wirelengthDbu
     << " dbu, vias=" << report.router.vias << ", overflow=" << std::fixed
     << std::setprecision(2) << report.router.totalOverflow << " ("
     << report.router.overflowedEdges
     << " edges), open=" << report.router.openNets << "\n";
  return os.str();
}

}  // namespace crp::obs
