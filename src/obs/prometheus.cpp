#include "obs/prometheus.hpp"

#include <charconv>
#include <sstream>

namespace crp::obs {

namespace {

bool legalNameChar(char c, bool first) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

/// Shortest-round-trip double formatting, matching the JSON writer so
/// gauge values survive a parse-and-compare without float drift.
std::string formatDouble(double value) {
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

void writeHelp(std::ostream& os, const std::string& name,
               const char* type) {
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

std::string sanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    out.push_back(legalNameChar(c, /*first=*/false) ? c : '_');
  }
  if (out.empty() || !legalNameChar(out.front(), /*first=*/true)) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string renderPrometheus(const MetricsSnapshot& snapshot,
                             const std::string& prefix) {
  const std::string sanitizedPrefix =
      prefix.empty() ? std::string() : sanitizeMetricName(prefix) + "_";
  const auto qualify = [&sanitizedPrefix](const std::string& name) {
    std::string sanitized = sanitizeMetricName(name);
    // Avoid stuttered names like crp_crp_moves when the metric is
    // already namespaced the same way as the requested prefix.
    if (sanitized.compare(0, sanitizedPrefix.size(), sanitizedPrefix) == 0) {
      return sanitized;
    }
    return sanitizedPrefix + sanitized;
  };

  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = qualify(name);
    writeHelp(os, metric, "counter");
    os << metric << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = qualify(name);
    writeHelp(os, metric, "gauge");
    os << metric << ' ' << formatDouble(value) << '\n';
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string metric = qualify(name);
    writeHelp(os, metric, "histogram");
    // Buckets are cumulative in the exposition format; the registry
    // stores them disjoint, so accumulate while emitting.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      if (i < data.buckets.size()) cumulative += data.buckets[i];
      os << metric << "_bucket{le=\"" << data.bounds[i] << "\"} "
         << cumulative << '\n';
    }
    os << metric << "_bucket{le=\"+Inf\"} " << data.count << '\n';
    os << metric << "_sum " << data.sum << '\n';
    os << metric << "_count " << data.count << '\n';
  }
  return os.str();
}

std::string renderPrometheus(const MetricsRegistry& registry,
                             const std::string& prefix) {
  return renderPrometheus(registry.snapshot(), prefix);
}

}  // namespace crp::obs
