#include "obs/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

namespace crp::obs {

namespace {

bool nearlyEqual(double a, double b) {
  return std::abs(a - b) <= 1e-12 * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool endsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Direction of a bench metric, derived from its name.  0 = not gated
/// (counts, configuration echoes), -1 = lower is better (latencies,
/// wall clocks, overhead), +1 = higher is better (speedups,
/// throughput, reuse rates).
int metricDirection(const std::string& name) {
  const std::string lower = lowercase(name);
  if (endsWith(lower, "_ms") || endsWith(lower, "seconds") ||
      lower.find("latency") != std::string::npos ||
      endsWith(lower, "_percent")) {
    return -1;
  }
  if (lower.find("speedup") != std::string::npos ||
      lower.find("jobspersec") != std::string::npos ||
      lower.find("per_sec") != std::string::npos ||
      lower.find("hit_rate") != std::string::npos ||
      lower.find("frac") != std::string::npos) {
    return +1;
  }
  return 0;
}

std::string formatNumber(double value) {
  std::ostringstream os;
  os << std::setprecision(6) << value;
  return os.str();
}

void checkFlowSeries(const RunLedgerEntry& prev, const RunLedgerEntry& last,
                     const LedgerCheckOptions& options,
                     LedgerCheckResult::SeriesResult& out) {
  out.notes.push_back(
      "fingerprint " + std::string(last.fingerprintDigest ==
                                           prev.fingerprintDigest
                                       ? "identical to"
                                       : "differs from") +
      " previous (" + prev.fingerprintDigest + " -> " +
      last.fingerprintDigest + ")");
  if (last.optionsDigest != prev.optionsDigest) {
    out.notes.push_back(
        "options digest changed (" + prev.optionsDigest + " -> " +
        last.optionsDigest + "); QoR bands still apply");
  }

  const auto gateGrowth = [&out](const char* what, double prev_,
                                 double last_, double allowed) {
    if (last_ > allowed) {
      std::ostringstream os;
      os << what << " regressed: " << formatNumber(prev_) << " -> "
         << formatNumber(last_) << " (allowed <= " << formatNumber(allowed)
         << ")";
      out.failures.push_back(os.str());
    }
  };
  gateGrowth("wirelength", static_cast<double>(prev.qor.wirelengthDbu),
             static_cast<double>(last.qor.wirelengthDbu),
             static_cast<double>(prev.qor.wirelengthDbu) *
                 (1.0 + options.tolQorRel));
  gateGrowth("vias", static_cast<double>(prev.qor.vias),
             static_cast<double>(last.qor.vias),
             static_cast<double>(prev.qor.vias) * (1.0 + options.tolQorRel));
  gateGrowth("overflow", prev.qor.totalOverflow, last.qor.totalOverflow,
             prev.qor.totalOverflow * (1.0 + options.tolOverflowRel) +
                 options.tolOverflowAbs);
  if (last.qor.openNets > prev.qor.openNets) {
    out.failures.push_back(
        "open nets regressed: " + std::to_string(prev.qor.openNets) +
        " -> " + std::to_string(last.qor.openNets));
  }
  // Wall clock gates only against meaningful baselines: sub-millisecond
  // totals are pure noise.
  if (prev.wallSeconds > 1e-3) {
    gateGrowth("wall time (s)", prev.wallSeconds, last.wallSeconds,
               prev.wallSeconds * (1.0 + options.tolPerfRel));
  }
}

void checkBenchSeries(const RunLedgerEntry& prev, const RunLedgerEntry& last,
                      const LedgerCheckOptions& options,
                      LedgerCheckResult::SeriesResult& out) {
  if (!prev.metrics.isObject() || !last.metrics.isObject()) {
    out.notes.push_back("bench entry lacks a metrics object; nothing gated");
    return;
  }
  int gated = 0;
  for (const auto& [name, value] : last.metrics.asObject()) {
    if (!value.isNumber()) continue;
    const Json* prevValue = prev.metrics.find(name);
    if (prevValue == nullptr || !prevValue->isNumber()) continue;
    const int direction = metricDirection(name);
    if (direction == 0) continue;
    ++gated;
    const double prev_ = prevValue->asDouble();
    const double last_ = value.asDouble();
    if (direction < 0) {  // lower is better: growth beyond band fails
      const double allowed = prev_ * (1.0 + options.tolPerfRel);
      if (prev_ > 0.0 && last_ > allowed) {
        out.failures.push_back(name + " regressed: " + formatNumber(prev_) +
                               " -> " + formatNumber(last_) +
                               " (allowed <= " + formatNumber(allowed) + ")");
      }
    } else {  // higher is better: shrink beyond band fails
      const double allowed = prev_ / (1.0 + options.tolPerfRel);
      if (prev_ > 0.0 && last_ < allowed) {
        out.failures.push_back(name + " regressed: " + formatNumber(prev_) +
                               " -> " + formatNumber(last_) +
                               " (allowed >= " + formatNumber(allowed) + ")");
      }
    }
  }
  out.notes.push_back(std::to_string(gated) + " metric(s) gated");
}

}  // namespace

Json ReportDiff::toJson() const {
  Json root = Json::object();
  root.set("fingerprintsIdentical", fingerprintsIdentical);
  root.set("qorIdentical", qorIdentical);
  root.set("configsMatch", configsMatch);
  Json qorArr = Json::array();
  for (const Delta& d : qor) {
    Json row = Json::object();
    row.set("name", d.name);
    row.set("a", d.a);
    row.set("b", d.b);
    row.set("delta", d.delta());
    qorArr.append(std::move(row));
  }
  root.set("qor", std::move(qorArr));
  Json phaseArr = Json::array();
  for (const Delta& d : phases) {
    Json row = Json::object();
    row.set("name", d.name);
    row.set("a", d.a);
    row.set("b", d.b);
    row.set("delta", d.delta());
    phaseArr.append(std::move(row));
  }
  root.set("phases", std::move(phaseArr));
  Json iterArr = Json::array();
  for (const IterationDelta& d : iterations) {
    Json row = Json::object();
    row.set("iteration", d.iteration);
    row.set("movedCellsDelta", d.movedCells);
    row.set("reroutedNetsDelta", d.reroutedNets);
    row.set("selectedCostDelta", d.selectedCost);
    row.set("netsPricedDelta", d.netsPriced);
    if (d.hasOverflow) {
      row.set("overflowAfterA", d.overflowAfterA);
      row.set("overflowAfterB", d.overflowAfterB);
    }
    iterArr.append(std::move(row));
  }
  root.set("iterations", std::move(iterArr));
  return root;
}

ReportDiff diffReports(const RunReport& a, const RunReport& b) {
  ReportDiff diff;
  diff.fingerprintsIdentical = a.fingerprint() == b.fingerprint();
  diff.configsMatch = a.iterations == b.iterations && a.seed == b.seed;

  diff.qor = {
      {"wirelengthDbu", static_cast<double>(a.router.wirelengthDbu),
       static_cast<double>(b.router.wirelengthDbu)},
      {"vias", static_cast<double>(a.router.vias),
       static_cast<double>(b.router.vias)},
      {"totalOverflow", a.router.totalOverflow, b.router.totalOverflow},
      {"overflowedEdges", static_cast<double>(a.router.overflowedEdges),
       static_cast<double>(b.router.overflowedEdges)},
      {"openNets", static_cast<double>(a.router.openNets),
       static_cast<double>(b.router.openNets)},
  };
  diff.qorIdentical = true;
  for (const ReportDiff::Delta& d : diff.qor) {
    if (!nearlyEqual(d.a, d.b)) diff.qorIdentical = false;
  }

  // Phase attribution: union of both phase lists, a's flow order first.
  for (const RunReport::PhaseStat& phase : a.phases) {
    diff.phases.push_back(
        {phase.name, phase.seconds, b.phaseSeconds(phase.name)});
  }
  for (const RunReport::PhaseStat& phase : b.phases) {
    if (a.phaseSeconds(phase.name) == 0.0 &&
        std::none_of(diff.phases.begin(), diff.phases.end(),
                     [&phase](const ReportDiff::Delta& d) {
                       return d.name == phase.name;
                     })) {
      diff.phases.push_back({phase.name, 0.0, phase.seconds});
    }
  }

  const std::size_t iterationCount =
      std::max(a.iterationStats.size(), b.iterationStats.size());
  for (std::size_t i = 0; i < iterationCount; ++i) {
    ReportDiff::IterationDelta d;
    d.iteration = static_cast<int>(i);
    const RunReport::IterationStat statA =
        i < a.iterationStats.size() ? a.iterationStats[i]
                                    : RunReport::IterationStat{};
    const RunReport::IterationStat statB =
        i < b.iterationStats.size() ? b.iterationStats[i]
                                    : RunReport::IterationStat{};
    d.movedCells = statB.movedCells - statA.movedCells;
    d.reroutedNets = statB.reroutedNets - statA.reroutedNets;
    d.selectedCost = statB.selectedCost - statA.selectedCost;
    d.netsPriced = static_cast<std::int64_t>(statB.netsPriced) -
                   static_cast<std::int64_t>(statA.netsPriced);
    if (i < a.timeline.size() && i < b.timeline.size()) {
      d.hasOverflow = true;
      d.overflowAfterA = a.timeline[i].overflowAfter;
      d.overflowAfterB = b.timeline[i].overflowAfter;
    }
    diff.iterations.push_back(d);
  }
  return diff;
}

std::string formatReportDiff(const ReportDiff& diff,
                             const std::string& labelA,
                             const std::string& labelB) {
  std::ostringstream os;
  os << "RunReport diff: A=" << labelA << "  B=" << labelB << "\n";
  os << "  fingerprints: "
     << (diff.fingerprintsIdentical ? "identical" : "DIFFER") << "\n";
  if (!diff.configsMatch) {
    os << "  note: configs differ (iterations or seed) — deltas compare "
          "different flows\n";
  }

  os << "  qor (" << (diff.qorIdentical ? "identical" : "deltas") << "):\n";
  for (const ReportDiff::Delta& d : diff.qor) {
    os << "    " << std::left << std::setw(16) << d.name << std::right
       << std::setw(14) << formatNumber(d.a) << " -> " << std::setw(14)
       << formatNumber(d.b) << "  (" << std::showpos << formatNumber(d.delta())
       << std::noshowpos << ")\n";
  }

  os << "  phase wall times (s):\n";
  for (const ReportDiff::Delta& d : diff.phases) {
    os << "    " << std::left << std::setw(6) << d.name << std::right
       << std::fixed << std::setprecision(3) << std::setw(9) << d.a << " -> "
       << std::setw(9) << d.b << "  (" << std::showpos << d.delta()
       << std::noshowpos << ")\n";
    os.unsetf(std::ios::fixed);
  }

  os << "  iterations:\n";
  for (const ReportDiff::IterationDelta& d : diff.iterations) {
    os << "    iter " << std::setw(2) << d.iteration
       << "  moved " << std::showpos << d.movedCells
       << "  rerouted " << d.reroutedNets
       << "  cost " << formatNumber(d.selectedCost)
       << "  priced " << d.netsPriced << std::noshowpos;
    if (d.hasOverflow) {
      os << "  overflowAfter " << formatNumber(d.overflowAfterA) << " -> "
         << formatNumber(d.overflowAfterB);
    }
    os << "\n";
  }
  return os.str();
}

LedgerCheckResult checkLedger(const RunLedger::LoadResult& loaded,
                              const LedgerCheckOptions& options) {
  LedgerCheckResult result;
  result.skippedLines = loaded.skippedLines;

  // Group into (kind, design) series, file order preserved.
  std::map<std::pair<std::string, std::string>,
           std::vector<const RunLedgerEntry*>>
      series;
  for (const RunLedgerEntry& entry : loaded.entries) {
    if (options.skipDirty && entry.dirty) continue;
    series[{entry.kind, entry.design}].push_back(&entry);
  }

  for (const auto& [key, entries] : series) {
    LedgerCheckResult::SeriesResult out;
    out.kind = key.first;
    out.design = key.second;
    if (entries.size() < 2) {
      out.notes.push_back("no previous entry; nothing to gate against");
    } else {
      out.checked = true;
      const RunLedgerEntry& prev = *entries[entries.size() - 2];
      const RunLedgerEntry& last = *entries.back();
      if (prev.dirty || last.dirty) {
        out.notes.push_back("comparing against a dirty-tree entry");
      }
      if (last.kind == "bench") {
        checkBenchSeries(prev, last, options, out);
      } else {
        checkFlowSeries(prev, last, options, out);
      }
      out.ok = out.failures.empty();
      if (!out.ok) result.ok = false;
    }
    result.series.push_back(std::move(out));
  }
  return result;
}

std::string LedgerCheckResult::format() const {
  std::ostringstream os;
  os << "ledger check: " << series.size() << " series";
  if (skippedLines > 0) {
    os << " (" << skippedLines << " unparseable line(s) skipped)";
  }
  os << "\n";
  for (const SeriesResult& s : series) {
    os << "  [" << s.kind << "] " << s.design << ": "
       << (s.checked ? (s.ok ? "OK" : "FAIL") : "SKIP") << "\n";
    for (const std::string& note : s.notes) {
      os << "    note: " << note << "\n";
    }
    for (const std::string& failure : s.failures) {
      os << "    FAIL: " << failure << "\n";
    }
  }
  os << (ok ? "ledger check passed" : "ledger check FAILED") << "\n";
  return os.str();
}

}  // namespace crp::obs
