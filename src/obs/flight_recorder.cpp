#include "obs/flight_recorder.hpp"

#include <fstream>
#include <utility>

#include "obs/context.hpp"
#include "util/file_io.hpp"

namespace crp::obs {

FlightRecorder& FlightRecorder::instance() {
  // Deprecated shim: recorders are per-ObsContext now; the "process
  // recorder" is the default context's.
  return ObsContext::defaultContext().flightRecorder();
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void FlightRecorder::record(std::string_view category, std::string_view label,
                            std::int64_t value) {
  std::lock_guard lock(mutex_);
  FlightEvent& slot = ring_[next_ % capacity_];
  slot.seq = next_;
  slot.category.assign(category);
  slot.label.assign(label);
  slot.value = value;
  ++next_;
}

void FlightRecorder::setLatestHeatmap(Json heatmap) {
  std::lock_guard lock(mutex_);
  latestHeatmap_ = std::move(heatmap);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard lock(mutex_);
  std::vector<FlightEvent> out;
  const std::uint64_t held = next_ < capacity_ ? next_ : capacity_;
  out.reserve(held);
  for (std::uint64_t i = next_ - held; i < next_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::totalRecorded() const {
  std::lock_guard lock(mutex_);
  return next_;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mutex_);
  next_ = 0;
  for (FlightEvent& slot : ring_) slot = FlightEvent{};
  latestHeatmap_ = Json();
}

Json FlightRecorder::dump(Json trigger) const {
  Json root = Json::object();
  root.set("schemaVersion", kSchemaVersion);
  root.set("trigger", std::move(trigger));
  {
    std::lock_guard lock(mutex_);
    root.set("capacity", static_cast<std::int64_t>(capacity_));
    root.set("eventsRecorded", next_);
  }
  Json eventArr = Json::array();
  for (const FlightEvent& event : events()) {
    Json e = Json::object();
    e.set("seq", event.seq);
    e.set("category", event.category);
    e.set("label", event.label);
    e.set("value", event.value);
    eventArr.append(std::move(e));
  }
  root.set("events", std::move(eventArr));
  {
    std::lock_guard lock(mutex_);
    root.set("latestHeatmap", latestHeatmap_);
  }
  return root;
}

bool FlightRecorder::dumpToFile(const std::string& path, Json trigger) const {
  // Atomic write: a crash-dump artifact that is itself truncated by a
  // full disk would be worse than useless.
  return util::writeFileAtomic(path, dump(std::move(trigger)).dump(2) + "\n");
}

}  // namespace crp::obs
