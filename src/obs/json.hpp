// Minimal JSON value tree for the observability subsystem.
//
// The trace exporter and the RunReport serializer need a small,
// dependency-free JSON layer: ordered objects (serialization is
// deterministic and follows insertion order), exact 64-bit integers
// (metric counters must round-trip bit-for-bit), and shortest
// round-trip doubles via std::to_chars.  The parser accepts the full
// JSON grammar the writer emits plus standard escapes; malformed input
// throws JsonError with a byte offset, mirroring lefdef::ParseError.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace crp::obs {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at byte " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

class Json {
 public:
  enum class Type : int {
    kNull,
    kBool,
    kInt,     ///< exact signed 64-bit (counters, ids)
    kDouble,  ///< everything with a fraction or exponent
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  /// Insertion-ordered: serialization order equals build order, which
  /// keeps report diffs and golden files stable.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(long value) : type_(Type::kInt), int_(value) {}
  Json(long long value) : type_(Type::kInt), int_(value) {}
  Json(unsigned value) : type_(Type::kInt), int_(value) {}
  Json(unsigned long value) : Json(static_cast<unsigned long long>(value)) {}
  Json(unsigned long long value)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(std::string_view value) : type_(Type::kString), string_(value) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isNumber() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }
  bool isString() const { return type_ == Type::kString; }

  /// Typed accessors; throw JsonError on a type mismatch so schema
  /// violations surface as parse-style errors, not UB.
  bool asBool() const;
  std::int64_t asInt() const;
  std::uint64_t asUint() const;
  double asDouble() const;  ///< accepts kInt too (widening)
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;

  /// Appends to an array value (converts a null value to an array).
  Json& append(Json value);

  /// Sets `key` in an object value (converts a null value to an
  /// object); replaces an existing key in place, keeping its position.
  Json& set(std::string key, Json value);

  /// Member lookup: nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Member lookup that throws JsonError when the key is missing.
  const Json& at(std::string_view key) const;

  std::size_t size() const;

  /// Serializes; indent > 0 pretty-prints with that many spaces.
  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing junk is an error).
  static Json parse(std::string_view text);

  /// Deep structural equality (exact for ints and doubles).
  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void writeIndented(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace crp::obs
