#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "obs/context.hpp"

namespace crp::obs {

std::vector<std::uint64_t> Histogram::defaultBounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= 32768; b *= 2) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
}

void Histogram::record(std::uint64_t value) {
  // Buckets are sorted; the layouts here are tiny (<= ~17 entries), so
  // a branch-predictable linear scan beats binary search.
  std::size_t bucket = bounds_.size();  // overflow
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> counts(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantileFromBuckets(
    const std::vector<std::uint64_t>& bounds,
    const std::vector<std::uint64_t>& buckets, double q) {
  if (bounds.empty() || buckets.size() != bounds.size() + 1) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Prometheus histogram_quantile semantics: the target rank falls in
  // the first bucket whose cumulative count reaches it; interpolate
  // linearly between the bucket's lower and upper bound.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::uint64_t inBucket = buckets[i];
    if (static_cast<double>(cumulative + inBucket) >= rank && inBucket > 0) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(inBucket);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += inBucket;
  }
  // Rank lands in the overflow bucket: no finite upper bound to
  // interpolate toward, so report the highest finite bound (what
  // histogram_quantile does for +Inf).
  return static_cast<double>(bounds.back());
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsSnapshot::deltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value -= it->second;
  }
  for (auto& [name, data] : delta.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    for (std::size_t i = 0;
         i < data.buckets.size() && i < it->second.buckets.size(); ++i) {
      data.buckets[i] -= it->second.buckets[i];
    }
    data.count -= it->second.count;
    data.sum -= it->second.sum;
  }
  return delta;
}

Json MetricsSnapshot::toJson() const {
  Json root = Json::object();
  Json counterObj = Json::object();
  for (const auto& [name, value] : counters) counterObj.set(name, value);
  root.set("counters", std::move(counterObj));
  Json gaugeObj = Json::object();
  for (const auto& [name, value] : gauges) gaugeObj.set(name, value);
  root.set("gauges", std::move(gaugeObj));
  Json histObj = Json::object();
  for (const auto& [name, data] : histograms) {
    Json h = Json::object();
    Json bounds = Json::array();
    for (const std::uint64_t b : data.bounds) bounds.append(b);
    Json buckets = Json::array();
    for (const std::uint64_t c : data.buckets) buckets.append(c);
    h.set("bounds", std::move(bounds));
    h.set("buckets", std::move(buckets));
    h.set("count", data.count);
    h.set("sum", data.sum);
    histObj.set(name, std::move(h));
  }
  root.set("histograms", std::move(histObj));
  return root;
}

MetricsRegistry& MetricsRegistry::instance() {
  // Deprecated shim: registries are per-ObsContext now; the "process
  // registry" is the default context's.
  return ObsContext::defaultContext().metrics();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::defaultBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (!bounds.empty() && bounds != slot->bounds()) {
    // First registration wins, but two call sites disagreeing on the
    // bucket layout is a bug: make it loud instead of silent.  The
    // counter is touched directly — counter() would re-take mutex_.
    auto& mismatch = counters_[kBoundMismatchCounter];
    if (mismatch == nullptr) mismatch = std::make_unique<Counter>();
    mismatch->add(1);
    assert(false && "Histogram re-registered with different bounds");
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.buckets = histogram->bucketCounts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace crp::obs
