// Thread-safe metrics registry: counters, gauges, histograms.
//
// Updates are lock-free (relaxed atomics); only instrument lookup and
// snapshotting take the registry mutex.  Instruments are never
// deallocated while the registry lives — reset() zeroes values in
// place — so call sites may cache the returned pointers (the
// CRP_OBS_COUNT macro does exactly that with a function-local static).
//
// Determinism note for golden tests: counter totals are sums of
// per-event contributions, so any counter whose *event set* is
// schedule-independent (nets priced, ILP nodes, moves) has a
// deterministic total regardless of thread interleaving.  Counters
// that split one event set by outcome of a race (cache hit vs miss)
// are not deterministic and must stay out of asserted fingerprints.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace crp::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of non-negative integer samples over a fixed bucket
/// layout.  Bucket i counts samples <= bounds[i]; one implicit
/// overflow bucket counts the rest.  The layout is fixed at
/// registration so exported histograms are structurally comparable
/// across runs (the golden tests diff bucket vectors directly).
class Histogram {
 public:
  /// Default layout: powers of two 1, 2, 4, ..., 32768 (16 buckets).
  static std::vector<std::uint64_t> defaultBounds();

  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t value);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> bucketCounts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate from the bucket counts (q in [0, 1]), linearly
  /// interpolated inside the containing bucket — the same estimator
  /// Prometheus' histogram_quantile() applies to the exported _bucket
  /// series, so loadgen, serve and offline exposition all agree on one
  /// implementation.  A quantile landing in the overflow bucket
  /// reports the highest finite bound; an empty histogram reports 0.
  double quantile(double q) const {
    return quantileFromBuckets(bounds_, bucketCounts(), q);
  }
  /// The estimator itself, usable on snapshot data (see
  /// MetricsSnapshot::HistogramData::quantile).  `buckets` holds one
  /// count per bound plus the trailing overflow bucket.
  static double quantileFromBuckets(const std::vector<std::uint64_t>& bounds,
                                    const std::vector<std::uint64_t>& buckets,
                                    double q);

  void reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every instrument, used both for export and
/// for computing per-run deltas (see MetricsRegistry::snapshot).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Histogram::quantileFromBuckets over this snapshot's buckets.
    double quantile(double q) const {
      return Histogram::quantileFromBuckets(bounds, buckets, q);
    }
  };
  std::map<std::string, HistogramData> histograms;

  /// Counter-wise difference (this - earlier); instruments absent in
  /// `earlier` count from zero.  Gauges and histogram data keep their
  /// current values (gauges are not cumulative; histogram deltas are
  /// bucket-wise).
  MetricsSnapshot deltaSince(const MetricsSnapshot& earlier) const;

  Json toJson() const;
};

class MetricsRegistry {
 public:
  /// Process-wide default registry (the one the CRP_OBS_* macros use).
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named instrument, creating it on first use.  The
  /// pointer stays valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` applies only on first registration; later calls return
  /// the existing histogram regardless.  Re-registering with different
  /// non-empty bounds is a call-site bug (the two sites would silently
  /// disagree about the bucket layout): it debug-asserts and bumps the
  /// "obs.registry.bound_mismatch" counter so release builds surface
  /// the divergence in every snapshot.
  Histogram* histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds = {});

  /// Counter bumped by histogram() bound mismatches (see above).
  static constexpr const char* kBoundMismatchCounter =
      "obs.registry.bound_mismatch";

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument in place (pointers stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace crp::obs
