// Spatial observability: compact per-layer GCell congestion grids.
//
// A HeatmapSnapshot is a point-in-time copy of the routing graph's
// congestion state — per-layer wire demand/capacity planes plus
// per-boundary via demand/capacity planes — captured at flow phase
// boundaries (groute/heatmap_capture.hpp reads the live RoutingGraph;
// this header is pure data + JSON + rendering so tools can work from
// artifacts alone).  Snapshot content is schedule-independent: demand
// values are exact sums over committed routes, so grids captured at 1
// and N router threads are bit-identical (the golden test asserts it).
//
// A HeatmapSeries stores a run's snapshots delta-encoded: the first
// snapshot is kept whole, every later one as a sparse list of changed
// cells against its predecessor.  Capacity planes never change and the
// UD phase only touches edges near moved cells, so the per-iteration
// cost is proportional to what actually moved, not the grid size.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace crp::obs {

/// One captured congestion state of the GCell grid.
struct HeatmapSnapshot {
  static constexpr int kSchemaVersion = 1;

  /// Plane kinds (the `kind` strings below).
  static constexpr const char* kWireDemand = "wire.demand";
  static constexpr const char* kWireCapacity = "wire.capacity";
  static constexpr const char* kViaDemand = "via.demand";
  static constexpr const char* kViaCapacity = "via.capacity";

  std::string label;   ///< "post-gr", "iter0", ... (capture point)
  int iteration = -1;  ///< CR&P iteration index; -1 = before iteration 0
  int width = 0;       ///< gcells along x
  int height = 0;      ///< gcells along y
  int numLayers = 0;

  /// One dense width*height grid per metric per layer, row-major
  /// [y * width + x].  Wire planes describe the edge whose *lower*
  /// endpoint is the gcell (RoutingGraph's WireEdge indexing); grid
  /// positions past the last edge of the layer stay 0.  Via planes
  /// (layers 0..numLayers-2) describe the via edge between `layer` and
  /// `layer + 1` at the gcell.
  struct Plane {
    std::string kind;        ///< one of the kind constants above
    int layer = 0;
    bool horizontal = false; ///< wire planes: layer direction
    std::vector<double> values;
  };
  std::vector<Plane> planes;

  // Aggregates over wire edges (RoutingGraph::congestionStats).
  double totalOverflow = 0.0;
  double maxOverflow = 0.0;
  int overflowedEdges = 0;

  /// nullptr when the (kind, layer) plane is absent.
  const Plane* findPlane(std::string_view kind, int layer) const;

  Json toJson() const;
  /// Throws JsonError on malformed payloads or version mismatch.
  static HeatmapSnapshot fromJson(const Json& json);
};

/// Demand / capacity ratio per gcell, aggregated over the wire edges
/// incident to it on one layer (or all layers when layer < 0) — the
/// single source of truth for congestion-map derivation (the groute
/// CongestionMap and the renderers below all build on this).
struct UtilisationGrid {
  int width = 0;
  int height = 0;
  std::vector<double> values;  ///< row-major [y * width + x]

  double at(int x, int y) const { return values[y * width + x]; }
};
UtilisationGrid utilisationGrid(const HeatmapSnapshot& snapshot,
                                int layer = -1);

/// Maps a utilisation ratio to the 8-step ASCII scale ".:-=+*%#"
/// (>= 1.0 saturates at '#') — shared by every text heatmap renderer.
char utilisationGlyph(double utilisation);

/// One character per gcell, top row = highest y (the orientation the
/// groute heatmap always used).
void renderHeatmapAscii(std::ostream& os, const HeatmapSnapshot& snapshot,
                        int layer = -1);

/// Plain-text PPM (P3): green (idle) -> red (full) -> magenta-tinged
/// (overflowed), one pixel per gcell, top row = highest y.
void writeHeatmapPpm(std::ostream& os, const HeatmapSnapshot& snapshot,
                     int layer = -1);

/// Delta-encoded snapshot sequence for one run.  All snapshots added to
/// a series must share one grid/plane structure (one RoutingGraph) —
/// the per-run invariant the framework guarantees.
class HeatmapSeries {
 public:
  static constexpr int kSchemaVersion = 1;

  void add(HeatmapSnapshot snapshot);

  std::size_t size() const { return deltas_.size() + (hasBase_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  /// Reconstructs snapshot i (0 = base) by replaying deltas.
  HeatmapSnapshot snapshot(std::size_t i) const;
  /// The most recently added snapshot (undecoded copy).
  const HeatmapSnapshot& latest() const { return latest_; }

  Json toJson() const;
  static HeatmapSeries fromJson(const Json& json);

  /// JSON of the most recently added entry, in the same shape
  /// toJson() uses: the full "base" snapshot document when only the
  /// base exists, otherwise the newest sparse delta object (label,
  /// iteration, overflow aggregates, [plane, cell, value] changes).
  /// Null when empty.  The serve daemon streams this per iteration
  /// instead of re-serializing the whole series each time.
  Json latestEntryJson() const;

 private:
  struct Delta {
    std::string label;
    int iteration = -1;
    double totalOverflow = 0.0;
    double maxOverflow = 0.0;
    int overflowedEdges = 0;
    struct Change {
      int plane = 0;
      int cell = 0;
      double value = 0.0;
    };
    std::vector<Change> changes;
  };

  static Json deltaToJson(const Delta& delta);

  bool hasBase_ = false;
  HeatmapSnapshot base_;
  std::vector<Delta> deltas_;
  HeatmapSnapshot latest_;  ///< full copy of the last add()
};

}  // namespace crp::obs
