#include "obs/heatmap.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace crp::obs {

namespace {

Json planeToJson(const HeatmapSnapshot::Plane& plane) {
  Json p = Json::object();
  p.set("kind", plane.kind);
  p.set("layer", plane.layer);
  p.set("horizontal", plane.horizontal);
  Json values = Json::array();
  for (const double v : plane.values) values.append(v);
  p.set("values", std::move(values));
  return p;
}

HeatmapSnapshot::Plane planeFromJson(const Json& json) {
  HeatmapSnapshot::Plane plane;
  plane.kind = json.at("kind").asString();
  plane.layer = static_cast<int>(json.at("layer").asInt());
  plane.horizontal = json.at("horizontal").asBool();
  for (const Json& v : json.at("values").asArray()) {
    plane.values.push_back(v.asDouble());
  }
  return plane;
}

/// True when both snapshots carry the same grid/plane structure (the
/// HeatmapSeries delta-encoding precondition).
bool sameStructure(const HeatmapSnapshot& a, const HeatmapSnapshot& b) {
  if (a.width != b.width || a.height != b.height ||
      a.numLayers != b.numLayers || a.planes.size() != b.planes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.planes.size(); ++i) {
    if (a.planes[i].kind != b.planes[i].kind ||
        a.planes[i].layer != b.planes[i].layer ||
        a.planes[i].values.size() != b.planes[i].values.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace

const HeatmapSnapshot::Plane* HeatmapSnapshot::findPlane(std::string_view kind,
                                                         int layer) const {
  for (const Plane& plane : planes) {
    if (plane.kind == kind && plane.layer == layer) return &plane;
  }
  return nullptr;
}

Json HeatmapSnapshot::toJson() const {
  Json root = Json::object();
  root.set("schemaVersion", kSchemaVersion);
  root.set("label", label);
  root.set("iteration", iteration);
  root.set("width", width);
  root.set("height", height);
  root.set("numLayers", numLayers);
  root.set("totalOverflow", totalOverflow);
  root.set("maxOverflow", maxOverflow);
  root.set("overflowedEdges", overflowedEdges);
  Json planeArr = Json::array();
  for (const Plane& plane : planes) planeArr.append(planeToJson(plane));
  root.set("planes", std::move(planeArr));
  return root;
}

HeatmapSnapshot HeatmapSnapshot::fromJson(const Json& json) {
  const std::int64_t version = json.at("schemaVersion").asInt();
  if (version != kSchemaVersion) {
    throw JsonError("unsupported HeatmapSnapshot schemaVersion " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSchemaVersion) + ")",
                    0);
  }
  HeatmapSnapshot snap;
  snap.label = json.at("label").asString();
  snap.iteration = static_cast<int>(json.at("iteration").asInt());
  snap.width = static_cast<int>(json.at("width").asInt());
  snap.height = static_cast<int>(json.at("height").asInt());
  snap.numLayers = static_cast<int>(json.at("numLayers").asInt());
  snap.totalOverflow = json.at("totalOverflow").asDouble();
  snap.maxOverflow = json.at("maxOverflow").asDouble();
  snap.overflowedEdges = static_cast<int>(json.at("overflowedEdges").asInt());
  for (const Json& p : json.at("planes").asArray()) {
    snap.planes.push_back(planeFromJson(p));
  }
  return snap;
}

UtilisationGrid utilisationGrid(const HeatmapSnapshot& snapshot, int layer) {
  UtilisationGrid grid;
  grid.width = snapshot.width;
  grid.height = snapshot.height;
  grid.values.assign(static_cast<std::size_t>(grid.width) * grid.height, 0.0);
  std::vector<int> samples(grid.values.size(), 0);

  for (const HeatmapSnapshot::Plane& demand : snapshot.planes) {
    if (demand.kind != HeatmapSnapshot::kWireDemand) continue;
    if (layer >= 0 && demand.layer != layer) continue;
    const HeatmapSnapshot::Plane* cap =
        snapshot.findPlane(HeatmapSnapshot::kWireCapacity, demand.layer);
    if (cap == nullptr) continue;
    for (int y = 0; y < grid.height; ++y) {
      for (int x = 0; x < grid.width; ++x) {
        const std::size_t e = static_cast<std::size_t>(y) * grid.width + x;
        if (cap->values[e] <= 0.0) continue;  // no edge / no capacity
        const double ratio = demand.values[e] / cap->values[e];
        // Charge both gcells the edge touches.
        const int x2 = demand.horizontal ? x + 1 : x;
        const int y2 = demand.horizontal ? y : y + 1;
        for (const auto& [gx, gy] : {std::pair{x, y}, std::pair{x2, y2}}) {
          const std::size_t idx =
              static_cast<std::size_t>(gy) * grid.width + gx;
          grid.values[idx] += ratio;
          ++samples[idx];
        }
      }
    }
  }
  for (std::size_t i = 0; i < grid.values.size(); ++i) {
    if (samples[i] > 0) grid.values[i] /= samples[i];
  }
  return grid;
}

char utilisationGlyph(double utilisation) {
  static constexpr char kScale[] = ".:-=+*%#";
  const int bucket =
      std::min<int>(7, static_cast<int>(utilisation * 7.0));
  return kScale[std::max(0, bucket)];
}

void renderHeatmapAscii(std::ostream& os, const HeatmapSnapshot& snapshot,
                        int layer) {
  const UtilisationGrid grid = utilisationGrid(snapshot, layer);
  for (int y = grid.height - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width; ++x) {
      os << utilisationGlyph(grid.at(x, y));
    }
    os << '\n';
  }
}

void writeHeatmapPpm(std::ostream& os, const HeatmapSnapshot& snapshot,
                     int layer) {
  const UtilisationGrid grid = utilisationGrid(snapshot, layer);
  os << "P3\n" << grid.width << ' ' << grid.height << "\n255\n";
  for (int y = grid.height - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width; ++x) {
      const double u = grid.at(x, y);
      const double t = std::min(1.0, u);
      const int r = static_cast<int>(std::lround(255.0 * t));
      const int g = static_cast<int>(std::lround(255.0 * (1.0 - t)));
      const int b =
          u > 1.0 ? std::min(255L, std::lround(128.0 * (u - 1.0))) : 0;
      os << r << ' ' << g << ' ' << static_cast<int>(b);
      os << (x + 1 == grid.width ? '\n' : ' ');
    }
  }
}

void HeatmapSeries::add(HeatmapSnapshot snapshot) {
  if (!hasBase_) {
    base_ = snapshot;
    latest_ = std::move(snapshot);
    hasBase_ = true;
    return;
  }
  assert(sameStructure(latest_, snapshot) &&
         "HeatmapSeries: all snapshots must share one grid structure");
  Delta delta;
  delta.label = snapshot.label;
  delta.iteration = snapshot.iteration;
  delta.totalOverflow = snapshot.totalOverflow;
  delta.maxOverflow = snapshot.maxOverflow;
  delta.overflowedEdges = snapshot.overflowedEdges;
  for (std::size_t p = 0; p < snapshot.planes.size(); ++p) {
    const std::vector<double>& now = snapshot.planes[p].values;
    const std::vector<double>& then = latest_.planes[p].values;
    for (std::size_t c = 0; c < now.size(); ++c) {
      if (now[c] != then[c]) {
        delta.changes.push_back(
            {static_cast<int>(p), static_cast<int>(c), now[c]});
      }
    }
  }
  deltas_.push_back(std::move(delta));
  latest_ = std::move(snapshot);
}

HeatmapSnapshot HeatmapSeries::snapshot(std::size_t i) const {
  assert(i < size() && "HeatmapSeries::snapshot: index out of range");
  HeatmapSnapshot snap = base_;
  for (std::size_t d = 0; d < i; ++d) {
    const Delta& delta = deltas_[d];
    snap.label = delta.label;
    snap.iteration = delta.iteration;
    snap.totalOverflow = delta.totalOverflow;
    snap.maxOverflow = delta.maxOverflow;
    snap.overflowedEdges = delta.overflowedEdges;
    for (const Delta::Change& change : delta.changes) {
      snap.planes[static_cast<std::size_t>(change.plane)]
          .values[static_cast<std::size_t>(change.cell)] = change.value;
    }
  }
  return snap;
}

Json HeatmapSeries::toJson() const {
  Json root = Json::object();
  root.set("schemaVersion", kSchemaVersion);
  root.set("count", static_cast<std::int64_t>(size()));
  if (hasBase_) root.set("base", base_.toJson());
  Json deltaArr = Json::array();
  for (const Delta& delta : deltas_) {
    deltaArr.append(deltaToJson(delta));
  }
  root.set("deltas", std::move(deltaArr));
  return root;
}

Json HeatmapSeries::deltaToJson(const Delta& delta) {
  Json d = Json::object();
  d.set("label", delta.label);
  d.set("iteration", delta.iteration);
  d.set("totalOverflow", delta.totalOverflow);
  d.set("maxOverflow", delta.maxOverflow);
  d.set("overflowedEdges", delta.overflowedEdges);
  Json changes = Json::array();
  for (const Delta::Change& change : delta.changes) {
    Json c = Json::array();
    c.append(change.plane);
    c.append(change.cell);
    c.append(change.value);
    changes.append(std::move(c));
  }
  d.set("changes", std::move(changes));
  return d;
}

Json HeatmapSeries::latestEntryJson() const {
  if (!deltas_.empty()) return deltaToJson(deltas_.back());
  if (hasBase_) return base_.toJson();
  return Json();
}

HeatmapSeries HeatmapSeries::fromJson(const Json& json) {
  const std::int64_t version = json.at("schemaVersion").asInt();
  if (version != kSchemaVersion) {
    throw JsonError("unsupported HeatmapSeries schemaVersion " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSchemaVersion) + ")",
                    0);
  }
  HeatmapSeries series;
  if (const Json* base = json.find("base")) {
    series.base_ = HeatmapSnapshot::fromJson(*base);
    series.latest_ = series.base_;
    series.hasBase_ = true;
  }
  for (const Json& d : json.at("deltas").asArray()) {
    Delta delta;
    delta.label = d.at("label").asString();
    delta.iteration = static_cast<int>(d.at("iteration").asInt());
    delta.totalOverflow = d.at("totalOverflow").asDouble();
    delta.maxOverflow = d.at("maxOverflow").asDouble();
    delta.overflowedEdges = static_cast<int>(d.at("overflowedEdges").asInt());
    for (const Json& c : d.at("changes").asArray()) {
      const Json::Array& triple = c.asArray();
      if (triple.size() != 3) {
        throw JsonError("HeatmapSeries delta change is not a triple", 0);
      }
      delta.changes.push_back({static_cast<int>(triple[0].asInt()),
                               static_cast<int>(triple[1].asInt()),
                               triple[2].asDouble()});
    }
    series.deltas_.push_back(std::move(delta));
  }
  // Rebuild the decoded latest_ copy so add() can keep delta-encoding
  // against it after a round-trip.
  if (series.hasBase_ && !series.deltas_.empty()) {
    series.latest_ = series.snapshot(series.size() - 1);
  }
  return series;
}

}  // namespace crp::obs
