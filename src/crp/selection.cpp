#include "crp/selection.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "ilp/solver.hpp"

namespace crp::core {

namespace {

using geom::Rect;

/// Footprint of a candidate: union of the target rects of every cell
/// it moves (empty for "stay" candidates).
struct Footprint {
  Rect bounds;                      ///< union bbox (empty when no moves)
  std::vector<Rect> rects;          ///< exact moved rects
  std::vector<db::CellId> movedIds;  ///< cells it moves (sorted)
};

Footprint footprintOf(const db::Database& db, db::CellId cell,
                      const Candidate& candidate) {
  Footprint fp;
  if (candidate.isCurrent) return fp;
  auto add = [&](db::CellId id, const geom::Point& pos) {
    const auto& macro = db.macroOf(id);
    const Rect rect{pos.x, pos.y, pos.x + macro.width, pos.y + macro.height};
    fp.rects.push_back(rect);
    fp.bounds = fp.bounds.unionWith(rect);
    fp.movedIds.push_back(id);
    // The vacated rect matters too: another candidate must not assume
    // the space this cell leaves is still occupied.  Conservatively
    // include the source rect in the footprint.
    const Rect src = db.cellRect(id);
    fp.rects.push_back(src);
    fp.bounds = fp.bounds.unionWith(src);
  };
  add(cell, candidate.position);
  for (const auto& [id, pos] : candidate.displaced) add(id, pos);
  std::sort(fp.movedIds.begin(), fp.movedIds.end());
  return fp;
}

bool conflicts(const Footprint& a, const Footprint& b) {
  if (a.rects.empty() || b.rects.empty()) return false;
  // Shared moved cell -> conflict.
  for (const db::CellId id : a.movedIds) {
    if (std::binary_search(b.movedIds.begin(), b.movedIds.end(), id)) {
      return true;
    }
  }
  if (!a.bounds.overlaps(b.bounds)) return false;
  for (const Rect& ra : a.rects) {
    for (const Rect& rb : b.rects) {
      if (ra.overlaps(rb)) return true;
    }
  }
  return false;
}

struct DisjointSet {
  explicit DisjointSet(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(int a, int b) { parent[find(a)] = find(b); }
  std::vector<int> parent;
};

}  // namespace

SelectionResult selectCandidates(const db::Database& db,
                                 const std::vector<CellCandidates>& cells,
                                 const SelectionOptions& options) {
  SelectionResult result;
  const int n = static_cast<int>(cells.size());
  result.chosen.assign(n, 0);
  if (n == 0) return result;

  // Precompute footprints.
  std::vector<std::vector<Footprint>> footprints(n);
  for (int i = 0; i < n; ++i) {
    footprints[i].reserve(cells[i].candidates.size());
    for (const Candidate& candidate : cells[i].candidates) {
      footprints[i].push_back(footprintOf(db, cells[i].cell, candidate));
    }
  }

  // Cell-level conflict graph (any candidate pair conflicting links the
  // two cells), built with a bounding-box sweep to avoid O(n^2) pairs.
  struct Entry {
    Rect bounds;
    int cellIdx;
  };
  std::vector<Entry> entries;
  for (int i = 0; i < n; ++i) {
    Rect bounds;
    for (const Footprint& fp : footprints[i]) {
      bounds = bounds.unionWith(fp.bounds);
    }
    if (!bounds.empty()) entries.push_back(Entry{bounds, i});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.bounds.xlo < b.bounds.xlo;
  });

  DisjointSet components(n);
  std::vector<std::pair<int, int>> conflictingCellPairs;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].bounds.xlo >= entries[i].bounds.xhi) break;
      if (!entries[i].bounds.overlaps(entries[j].bounds)) continue;
      const int a = entries[i].cellIdx;
      const int b = entries[j].cellIdx;
      // Verify that at least one candidate pair truly conflicts.
      bool found = false;
      for (const Footprint& fa : footprints[a]) {
        for (const Footprint& fb : footprints[b]) {
          if (conflicts(fa, fb)) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (found) {
        components.unite(a, b);
        conflictingCellPairs.emplace_back(a, b);
      }
    }
  }
  result.conflictPairs = static_cast<int>(conflictingCellPairs.size());

  // Group cells per component.
  std::vector<std::vector<int>> groups;
  {
    std::vector<int> groupOf(n, -1);
    for (int i = 0; i < n; ++i) {
      const int root = components.find(i);
      if (groupOf[root] < 0) {
        groupOf[root] = static_cast<int>(groups.size());
        groups.emplace_back();
      }
      groups[groupOf[root]].push_back(i);
    }
  }

  for (const auto& group : groups) {
    if (group.size() >
        static_cast<std::size_t>(options.maxIlpComponentCells)) {
      // Oversized component: gain-ordered greedy assignment.  Cells
      // with the most to gain pick first; later cells take their best
      // candidate compatible with everything already chosen.
      ++result.greedyComponents;
      std::vector<int> order(group.begin(), group.end());
      auto gainOf = [&](int i) {
        double best = 0.0;
        for (const Candidate& candidate : cells[i].candidates) {
          best = std::max(best, cells[i].candidates.front().routeCost -
                                    candidate.routeCost);
        }
        return best;
      };
      std::sort(order.begin(), order.end(),
                [&](int a, int b) { return gainOf(a) > gainOf(b); });
      std::vector<std::pair<int, int>> chosenSoFar;  // (cellIdx, cand)
      for (const int i : order) {
        int best = 0;  // "stay" is index 0 and never conflicts
        double bestCost = cells[i].candidates[0].routeCost;
        for (int k = 1; k < static_cast<int>(cells[i].candidates.size());
             ++k) {
          if (cells[i].candidates[k].routeCost >= bestCost) continue;
          bool compatible = true;
          for (const auto& [j, kj] : chosenSoFar) {
            if (conflicts(footprints[i][k], footprints[j][kj])) {
              compatible = false;
              break;
            }
          }
          if (compatible) {
            best = k;
            bestCost = cells[i].candidates[k].routeCost;
          }
        }
        result.chosen[i] = best;
        result.totalCost += bestCost;
        chosenSoFar.emplace_back(i, best);
      }
      continue;
    }
    if (group.size() == 1) {
      // Argmin over candidates.
      const int i = group.front();
      int best = 0;
      for (int k = 1; k < static_cast<int>(cells[i].candidates.size());
           ++k) {
        if (cells[i].candidates[k].routeCost <
            cells[i].candidates[best].routeCost) {
          best = k;
        }
      }
      result.chosen[i] = best;
      result.totalCost += cells[i].candidates[best].routeCost;
      continue;
    }

    // Eq. 12 ILP over the component.
    ilp::Model model;
    std::vector<std::vector<int>> varOf(group.size());
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      const int i = group[gi];
      for (const Candidate& candidate : cells[i].candidates) {
        varOf[gi].push_back(model.addBinary(candidate.routeCost));
      }
      model.addOneHot(varOf[gi]);
    }
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      for (std::size_t gj = gi + 1; gj < group.size(); ++gj) {
        const int a = group[gi];
        const int b = group[gj];
        for (std::size_t ka = 0; ka < footprints[a].size(); ++ka) {
          for (std::size_t kb = 0; kb < footprints[b].size(); ++kb) {
            if (conflicts(footprints[a][ka], footprints[b][kb])) {
              model.addPacking({varOf[gi][ka], varOf[gj][kb]});
            }
          }
        }
      }
    }
    ilp::IlpOptions ilpOptions;
    ilpOptions.maxNodes = options.maxIlpNodes;
    const ilp::IlpResult solution = ilp::solveIlp(model, ilpOptions);
    ++result.ilpComponents;
    if (solution.status == ilp::IlpStatus::kOptimal ||
        solution.status == ilp::IlpStatus::kFeasible) {
      for (std::size_t gi = 0; gi < group.size(); ++gi) {
        for (std::size_t k = 0; k < varOf[gi].size(); ++k) {
          if (solution.x[varOf[gi][k]] > 0.5) {
            result.chosen[group[gi]] = static_cast<int>(k);
            result.totalCost +=
                cells[group[gi]].candidates[k].routeCost;
          }
        }
      }
    } else {
      // Infeasible should be impossible ("stay" candidates never
      // conflict); fall back to staying put.
      for (std::size_t gi = 0; gi < group.size(); ++gi) {
        result.chosen[group[gi]] = 0;
        result.totalCost += cells[group[gi]].candidates[0].routeCost;
      }
    }
  }
  return result;
}

}  // namespace crp::core
