#include "crp/framework.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>

#include "groute/heatmap_capture.hpp"
#include "obs/obs.hpp"
#include "util/logger.hpp"

namespace crp::core {

CrpFramework::CrpFramework(db::Database& db, groute::GlobalRouter& router,
                           CrpOptions options)
    : db_(db),
      router_(router),
      options_(options),
      rng_(options.seed),
      obsCtx_(options.obsContext != nullptr ? options.obsContext
                                            : &obs::currentContext()) {
  if (options_.sharedPool != nullptr) {
    pool_ = options_.sharedPool;
  } else {
    ownedPool_ = std::make_unique<util::ThreadPool>(
        options.threads == 0 ? 0
                             : static_cast<std::size_t>(options.threads));
    pool_ = ownedPool_.get();
  }
  // From here on everything this framework does — including the
  // snapshot below, whose delta feeds the RunReport counters — records
  // into obsCtx_, not whatever context the constructing thread had.
  obs::ObsContextScope scope(obsCtx_);
  router_.setRouterThreads(options.routerThreads);
  router_.setTileGrid(options.tileRows, options.tileCols,
                      options.haloGcells);
  baseline_ = obsCtx_->metrics().snapshot();
  for (const char* phase : kPhases) {
    runReport_.phases.push_back(obs::RunReport::PhaseStat{phase, 0.0});
  }
  if (spatialEnabled()) captureSnapshot("post-gr", -1);
}

bool CrpFramework::spatialEnabled() const {
  return options_.snapshots && obsCtx_->enabled();
}

const obs::HeatmapSnapshot& CrpFramework::captureSnapshot(std::string label,
                                                          int iteration) {
  heatmaps_.add(
      groute::captureHeatmap(router_.graph(), std::move(label), iteration));
  const obs::HeatmapSnapshot& snapshot = heatmaps_.latest();
  obsCtx_->flightRecorder().setLatestHeatmap(snapshot.toJson());
  CRP_OBS_COUNT("obs.heatmap_snapshots", 1);
  return snapshot;
}

obs::Json optionsFingerprintJson(const CrpOptions& options) {
  obs::Json json = obs::Json::object();
  json.set("iterations", options.iterations);
  json.set("gamma", options.gamma);
  json.set("temperature", options.temperature);
  json.set("prioritizeByCost", options.prioritizeByCost);
  json.set("historyDamping", options.historyDamping);
  json.set("seed", options.seed);
  json.set("tileRows", options.tileRows);
  json.set("tileCols", options.tileCols);
  json.set("haloGcells", options.haloGcells);
  json.set("pricingCache", options.pricingCache);
  json.set("deltaPricing", options.deltaPricing);
  json.set("maxCriticalCells", options.maxCriticalCells);
  json.set("maxMovesTotal", options.maxMovesTotal);
  json.set("maxCandidates", options.legalizer.maxCandidates);
  return json;
}

CommitPlan planMoveCommits(const std::vector<CellCandidates>& candidates,
                           const std::vector<int>& chosen, int budget) {
  CommitPlan plan;
  std::vector<std::size_t> moveOrder;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].candidates[chosen[i]].isCurrent) moveOrder.push_back(i);
  }
  // The "current" cost is the isCurrent entry's — not necessarily the
  // front of the list (delta pricing and future reorderings make no
  // placement promise about candidate order).
  auto currentCost = [&](const CellCandidates& cc) {
    for (const Candidate& candidate : cc.candidates) {
      if (candidate.isCurrent) return candidate.routeCost;
    }
    return cc.candidates.front().routeCost;
  };
  auto gain = [&](std::size_t i) {
    return currentCost(candidates[i]) -
           candidates[i].candidates[chosen[i]].routeCost;
  };
  std::sort(moveOrder.begin(), moveOrder.end(),
            [&](std::size_t a, std::size_t b) {
              const double ga = gain(a), gb = gain(b);
              if (ga != gb) return ga > gb;
              return a < b;  // deterministic tie-break
            });

  std::unordered_set<db::CellId> claimedCells;
  std::set<std::pair<geom::Coord, geom::Coord>> claimedSites;
  auto site = [](const geom::Point& p) { return std::make_pair(p.x, p.y); };
  for (const std::size_t i : moveOrder) {
    const Candidate& candidate = candidates[i].candidates[chosen[i]];
    bool clash = claimedCells.count(candidates[i].cell) != 0 ||
                 claimedSites.count(site(candidate.position)) != 0;
    for (const auto& [id, pos] : candidate.displaced) {
      if (clash) break;
      clash = claimedCells.count(id) != 0 ||
              claimedSites.count(site(pos)) != 0;
    }
    if (clash) {
      ++plan.conflictSkips;
      continue;
    }
    const int needed = 1 + static_cast<int>(candidate.displaced.size());
    if (needed > budget - plan.movesNeeded) {
      ++plan.budgetSkips;
      continue;
    }
    plan.movesNeeded += needed;
    plan.committed.push_back(i);
    claimedCells.insert(candidates[i].cell);
    claimedSites.insert(site(candidate.position));
    for (const auto& [id, pos] : candidate.displaced) {
      claimedCells.insert(id);
      claimedSites.insert(site(pos));
    }
  }
  return plan;
}

void CrpFramework::maybeAudit(const char* phase, bool iterationEnd,
                              const PricingCacheEntries* cacheEntries) {
  const check::AuditLevel level = options_.auditLevel;
  if (level == check::AuditLevel::kOff) return;
  if (level == check::AuditLevel::kPhaseBoundary && !iterationEnd) return;

  CRP_OBS_SPAN("check", "check.audit");
  CRP_OBS_EVENT("check", std::string("audit.arm/") + phase, iterationEnd);
  check::AuditReport report;
  const check::DbAuditor auditor(db_, &router_);
  auditor.auditPlacement(report);
  auditor.auditRoutes(report);
  auditor.auditDemand(report);
  auditor.auditTilePartition(report);
  if (cacheEntries != nullptr && !cacheEntries->empty()) {
    ++report.invariantsChecked;
    const groute::PatternRouter pattern(router_.graph(),
                                        router_.options().maxZCandidates);
    check::auditCachedPrices(pattern, *cacheEntries, report);
  }
  if (iterationEnd && level == check::AuditLevel::kParanoid) {
    auditor.auditGuideRoundTrip(report);
    auditor.auditDefRoundTrip(report);
  }

  CRP_OBS_COUNT("check.audits", 1);
  CRP_OBS_COUNT("check.invariants_checked", report.invariantsChecked);
  CRP_OBS_COUNT("check.failures", report.failures.size());
  if (!report.clean()) {
    std::string message = "invariant audit failed after phase " +
                          std::string(phase) + " (level " +
                          check::auditLevelName(level) + "):\n" +
                          report.summary();
    // Black-box moment: preserve the recent event trail + latest
    // heatmap next to the failure before the throw unwinds the flow.
    if (!options_.flightRecorderDir.empty()) {
      const std::string dumpPath = check::writeFlightRecorderDump(
          report, options_.flightRecorderDir, phase);
      if (!dumpPath.empty()) {
        message += "\nflight recorder dump: " + dumpPath;
      }
    }
    throw check::AuditError(std::move(message), std::move(report));
  }
}

void CrpFramework::chargePhase(const char* phase, double seconds) {
  for (obs::RunReport::PhaseStat& stat : runReport_.phases) {
    if (stat.name == phase) {
      stat.seconds += seconds;
      return;
    }
  }
}

IterationReport CrpFramework::runIteration() {
  obs::ObsContextScope obsScope(obsCtx_);
  IterationReport report;
  const int iterIndex = static_cast<int>(runReport_.iterationStats.size());
  CRP_OBS_SPAN_ARG("crp", "crp.iteration", iterIndex);

  // Spatial tier: the baseline snapshot normally exists from
  // construction; recapture here if observability was enabled later.
  const bool spatial = spatialEnabled();
  if (spatial && heatmaps_.empty()) captureSnapshot("post-gr", -1);
  obs::TimelineRecord timeline;
  timeline.iteration = iterIndex;
  timeline.eco = ecoMode_;
  if (spatial) {
    timeline.overflowBefore = heatmaps_.latest().totalOverflow;
    timeline.overflowedEdgesBefore = heatmaps_.latest().overflowedEdges;
  }

  // ---- LCC: Alg. 1 -----------------------------------------------------------
  std::vector<db::CellId> criticalSet;
  {
    CRP_OBS_SPAN("crp", "phase.LCC");
    CRP_OBS_EVENT("crp", "phase.LCC", iterIndex);
    util::Stopwatch watch;
    criticalSet = labelCriticalCells(db_, router_, criticalHistory_, moved_,
                                     rng_, options_, &timeline.dampedCells,
                                     ecoScope_);
    chargePhase(kPhaseLcc, watch.seconds());
  }
  report.criticalCells = static_cast<int>(criticalSet.size());
  timeline.criticalCells = report.criticalCells;
  CRP_OBS_COUNT("crp.critical_cells", criticalSet.size());
  if (criticalSet.empty()) {
    maybeAudit(kPhaseLcc, /*iterationEnd=*/true);
    runReport_.iterationStats.push_back(obs::RunReport::IterationStat{});
    if (spatial) {
      // Nothing moved: the capture yields an empty delta, and the
      // timeline keeps its k-entries-per-k-iterations shape.
      const obs::HeatmapSnapshot& after =
          captureSnapshot("iter" + std::to_string(iterIndex), iterIndex);
      timeline.overflowAfter = after.totalOverflow;
      timeline.overflowedEdgesAfter = after.overflowedEdges;
      runReport_.timeline.push_back(timeline);
    }
    if (iterationCallback_) iterationCallback_(iterIndex, report);
    return report;
  }
  maybeAudit(kPhaseLcc, /*iterationEnd=*/false);

  // ---- GCP + ECC: Alg. 2 / Alg. 3 ---------------------------------------------
  std::vector<CellCandidates> candidates;
  {
    // The legalizer snapshot reads current positions; a fresh instance
    // per iteration keeps it consistent after the previous UD phase.
    CRP_OBS_SPAN("crp", "phase.GCP");
    CRP_OBS_EVENT("crp", "phase.GCP", iterIndex);
    util::Stopwatch watch;
    legalizer::LegalizerOptions legalizerOptions = options_.legalizer;
    if (ecoMode_ && ecoMaxCandidates_ > 0) {
      // Restricted iterations explore a narrower, top-ranked candidate
      // set (EcoOptions::maxCandidates).
      legalizerOptions.maxCandidates = ecoMaxCandidates_;
    }
    const legalizer::IlpLegalizer legalizer(db_, legalizerOptions);
    candidates = buildCandidates(db_, legalizer, criticalSet, pool_,
                                 router_.tileGrid());
    chargePhase(kPhaseGcp, watch.seconds());
  }
  for (const CellCandidates& cc : candidates) {
    timeline.candidatesGenerated += static_cast<int>(cc.candidates.size());
  }
  maybeAudit(kPhaseGcp, /*iterationEnd=*/false);
  PricingCacheEntries cacheEntries;
  {
    CRP_OBS_SPAN("crp", "phase.ECC");
    CRP_OBS_EVENT("crp", "phase.ECC", iterIndex);
    util::Stopwatch watch;
    PricingOptions pricing;
    pricing.cacheEnabled = options_.pricingCache;
    pricing.deltaEnabled = options_.deltaPricing;
    pricing.cacheShards = options_.pricingShards;
    // All iterations price through the persistent cache so clean-region
    // entries survive from one iteration (and run()/runEco call) to the
    // next; the UD hook below evicts the dirty ones before demand
    // changes.
    if (pricing.cacheEnabled && ecoCache_) {
      pricing.sharedCache = ecoCache_.get();
    }
    // The coherence replay needs the phase cache's contents, which die
    // with the pricer; snapshot them only when paranoid will look.
    if (options_.auditLevel == check::AuditLevel::kParanoid &&
        pricing.cacheEnabled) {
      pricing.cacheEntriesOut = &cacheEntries;
    }
    priceCandidates(db_, router_, candidates, pool_, pricing,
                    &report.pricing, router_.tileGrid());
    report.eccSeconds = watch.seconds();
    chargePhase(kPhaseEcc, report.eccSeconds);
    // One aggregate publish per ECC phase (the pricing hot path keeps
    // its own atomics in PricingCache; see obs.hpp on hot-path policy).
    CRP_OBS_COUNT("pricing.cache_hits", report.pricing.cacheHits);
    CRP_OBS_COUNT("pricing.cache_misses", report.pricing.cacheMisses);
    CRP_OBS_COUNT("pricing.delta_skips", report.pricing.deltaSkips);
    CRP_OBS_COUNT("pricing.nets_priced", report.pricing.netsPriced());
  }
  // Coherence is only checkable here: the UD phase unfreezes demand,
  // after which recomputed prices legitimately diverge from the cache.
  maybeAudit(kPhaseEcc, /*iterationEnd=*/false, &cacheEntries);

  // ---- SEL: Eq. 12 -----------------------------------------------------------
  SelectionResult selection;
  {
    CRP_OBS_SPAN("crp", "phase.SEL");
    CRP_OBS_EVENT("crp", "phase.SEL", iterIndex);
    util::Stopwatch watch;
    selection = selectCandidates(db_, candidates);
    chargePhase(kPhaseSel, watch.seconds());
  }
  maybeAudit(kPhaseSel, /*iterationEnd=*/false);
  report.selectedCost = selection.totalCost;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].candidates[selection.chosen[i]].isCurrent) {
      ++timeline.movesSelected;
    }
  }

  // ---- UD: §IV.B.5 -----------------------------------------------------------
  {
    CRP_OBS_SPAN("crp", "phase.UD");
    CRP_OBS_EVENT("crp", "phase.UD", iterIndex);
    util::Stopwatch watch;

    // Plan the commit: gain-ranked moves, conflict claims (no
    // double-moved cell, no doubly-claimed site) and the ICCAD-style
    // move budget carried over across iterations.
    const CommitPlan plan = planMoveCommits(
        candidates, selection.chosen, options_.maxMovesTotal - movesUsed_);
    CRP_OBS_COUNT("crp.commit_conflicts", plan.conflictSkips);
    CRP_OBS_EVENT("crp", "commit", plan.movesNeeded);

    auto trackDisplacement = [&timeline](const geom::Point& from,
                                         const geom::Point& to) {
      const std::int64_t dist = std::llabs(to.x - from.x) +
                                std::llabs(to.y - from.y);
      timeline.totalDisplacementDbu += dist;
      timeline.maxDisplacementDbu =
          std::max(timeline.maxDisplacementDbu, dist);
    };
    std::vector<db::NetId> affectedNets;
    for (const std::size_t i : plan.committed) {
      const Candidate& chosen =
          candidates[i].candidates[selection.chosen[i]];
      const db::CellId cell = candidates[i].cell;
      trackDisplacement(db_.cell(cell).pos, chosen.position);
      db_.moveCell(cell, chosen.position);
      moved_.insert(cell);
      ++report.movedCells;
      for (const db::NetId n : db_.netsOfCell(cell)) {
        affectedNets.push_back(n);
      }
      for (const auto& [id, pos] : chosen.displaced) {
        trackDisplacement(db_.cell(id).pos, pos);
        db_.moveCell(id, pos);
        moved_.insert(id);
        ++report.displacedCells;
        for (const db::NetId n : db_.netsOfCell(id)) {
          affectedNets.push_back(n);
        }
      }
    }
    std::sort(affectedNets.begin(), affectedNets.end());
    affectedNets.erase(
        std::unique(affectedNets.begin(), affectedNets.end()),
        affectedNets.end());
    // Persistent-cache coherence: entries covering the about-to-change
    // region go before the demand does (pre-reroute extents).  A moved
    // cell's old-terminal entries sit inside its nets' old extents, so
    // they are evicted here too rather than lingering as orphans.
    invalidateEcoCache(affectedNets);
    const groute::RerouteBatchStats udBatch =
        router_.rerouteNets(affectedNets);
    if (router_.tileGrid() != nullptr) {
      timeline.tiled = true;
      timeline.tileLocalNets = udBatch.tileLocalNets;
      timeline.tileBoundaryNets = udBatch.boundaryNets;
      timeline.tilesUsed = udBatch.tilesUsed;
      timeline.tileMergeSeconds = udBatch.mergeSeconds;
    }
    report.reroutedNets = static_cast<int>(affectedNets.size());
    CRP_OBS_EVENT("crp", "reroute", report.reroutedNets);
    movesUsed_ += report.movedCells + report.displacedCells;
    chargePhase(kPhaseUd, watch.seconds());
  }
  if (spatial) {
    const obs::HeatmapSnapshot& after =
        captureSnapshot("iter" + std::to_string(iterIndex), iterIndex);
    timeline.overflowAfter = after.totalOverflow;
    timeline.overflowedEdgesAfter = after.overflowedEdges;
  }
  maybeAudit(kPhaseUd, /*iterationEnd=*/true);

  for (const db::CellId c : criticalSet) criticalHistory_.insert(c);
  CRP_OBS_COUNT("crp.moves", report.movedCells + report.displacedCells);
  CRP_OBS_COUNT("crp.reroutes", report.reroutedNets);

  // Mirror the iteration into the run report.
  obs::RunReport::IterationStat stat;
  stat.criticalCells = report.criticalCells;
  stat.movedCells = report.movedCells;
  stat.displacedCells = report.displacedCells;
  stat.reroutedNets = report.reroutedNets;
  stat.selectedCost = report.selectedCost;
  stat.netsPriced = report.pricing.netsPriced();
  runReport_.iterationStats.push_back(stat);
  if (spatial) {
    timeline.netsPriced = report.pricing.netsPriced();
    timeline.selectedCost = report.selectedCost;
    timeline.movedCells = report.movedCells;
    timeline.displacedCells = report.displacedCells;
    timeline.reroutedNets = report.reroutedNets;
    runReport_.timeline.push_back(timeline);
  }
  runReport_.pricing.cacheHits += report.pricing.cacheHits;
  runReport_.pricing.cacheMisses += report.pricing.cacheMisses;
  runReport_.pricing.deltaSkips += report.pricing.deltaSkips;
  runReport_.totalMoves += report.movedCells + report.displacedCells;
  runReport_.totalReroutes += report.reroutedNets;

  CRP_LOG_DEBUG(
      "crp iteration: {} critical, {} moved (+{} displaced), {} rerouted",
      report.criticalCells, report.movedCells, report.displacedCells,
      report.reroutedNets);
  if (iterationCallback_) iterationCallback_(iterIndex, report);
  return report;
}

CrpReport CrpFramework::run() {
  obs::ObsContextScope obsScope(obsCtx_);
  CRP_OBS_SPAN("crp", "crp.run");
  // A run starts after a fresh GR, so entries from any earlier run are
  // priced against dead demand — replace the cache wholesale.  The new
  // cache then lives across this run's iterations AND into a later
  // runEco: the UD hook evicts every entry whose bbox overlaps a
  // rerouted net's write region before the demand changes, so the
  // survivors are exact by the containment contract.  That is what
  // lets the first ECO iteration price mostly from cache instead of
  // re-paying ECC for the whole clean region.
  if (options_.pricingCache) {
    ecoCache_ = std::make_unique<PricingCache>(options_.pricingShards);
  } else {
    ecoCache_.reset();
  }
  CrpReport report;
  for (int k = 0; k < options_.iterations; ++k) {
    const IterationReport iteration = runIteration();
    report.totalMoves += iteration.movedCells + iteration.displacedCells;
    report.totalReroutes += iteration.reroutedNets;
    report.pricing += iteration.pricing;
    report.iterations.push_back(iteration);
  }
  return report;
}

void CrpFramework::invalidateEcoCache(const std::vector<db::NetId>& nets) {
  if (!ecoCache_ || ecoCache_->size() == 0 || nets.empty()) return;
  // Each net's rip-up + reroute writes within its current extent (old
  // route + terminals) grown by the maze margin; one extra gcell covers
  // edge-endpoint reads, mirroring planRerouteBatches.  By the
  // pattern-route containment contract an entry only ever reads inside
  // its terminal bbox, so entries whose bbox misses every write region
  // stay exact and survive.
  const int margin = router_.options().mazeMargin + 1;
  const auto& grid = router_.graph().grid();
  const int maxX = grid.countX() - 1;
  const int maxY = grid.countY() - 1;
  std::vector<groute::GCellRect> regions;
  regions.reserve(nets.size());
  for (const db::NetId net : nets) {
    groute::GCellRect rect = router_.netExtent(net);
    if (rect.empty()) continue;
    rect.expand(margin, maxX, maxY);
    regions.push_back(rect);
  }
  if (regions.empty()) return;
  ecoEvictions_ += ecoCache_->invalidateRegions(regions);
}

EcoReport CrpFramework::runEco(const db::EcoDelta& delta,
                               const EcoOptions& eco) {
  obs::ObsContextScope obsScope(obsCtx_);
  CRP_OBS_SPAN("crp", "crp.eco");
  util::Stopwatch total;
  util::Stopwatch patch;
  EcoReport report;
  ecoEvictions_ = 0;

  // 1. Transactional delta application; throws with the database
  //    untouched when the delta is invalid.
  const db::EcoApplyResult applied = db::applyEcoDelta(db_, delta);
  router_.syncNetCount();
  report.movedCells = applied.movedCells;
  report.addedCells = applied.addedCells;
  report.removedCells = applied.removedCells;
  report.addedNets = applied.addedNets;
  report.rewiredPins = applied.rewiredPins;

  // 2. Dirty region: one rect per touched cell (old + new gcell) and
  //    per terminal-changed net (current pins + still-committed old
  //    route), grown by the halo.
  const auto& grid = router_.graph().grid();
  const int maxX = grid.countX() - 1;
  const int maxY = grid.countY() - 1;
  // Three rect granularities, coarsest to finest:
  //   touchedRects   the endpoint gcells a cell left and landed in —
  //                  NOT the old->new spanning bbox.  A cell changes
  //                  the demand under its source and destination (via
  //                  its nets' reroutes), not along the corridor it
  //                  notionally traveled; with clustered deltas the
  //                  spanning bbox of one long swap admits every cell
  //                  in between into the candidate scope and the
  //                  restricted iteration stops scaling with the edit.
  //   deltaFootprint the haloed spanning bboxes — the crossing /
  //                  damage-detection region, where an over-
  //                  approximation is cheap (it only gates which routes
  //                  get *inspected*, not which cells get re-placed).
  //   dirty          deltaFootprint plus rewired-net extents, the
  //                  region reported as invalidated.
  std::vector<groute::GCellRect> touchedRects;    // endpoint gcells only
  std::vector<groute::GCellRect> deltaFootprint;  // haloed spanning bboxes
  std::vector<groute::GCellRect> dirty;           // + rewired-net extents
  for (const db::EcoTouchedCell& touched : applied.cells) {
    const db::GCell oldG = grid.cellAt(touched.oldPos);
    const db::GCell newG = grid.cellAt(db_.cell(touched.cell).pos);
    groute::GCellRect oldPoint;
    oldPoint.cover(oldG.x, oldG.y);
    touchedRects.push_back(oldPoint);
    groute::GCellRect newPoint;
    newPoint.cover(newG.x, newG.y);
    touchedRects.push_back(newPoint);
    groute::GCellRect rect = oldPoint;
    rect.cover(newG.x, newG.y);
    rect.expand(eco.haloGCells, maxX, maxY);
    deltaFootprint.push_back(rect);
    dirty.push_back(rect);
  }
  for (const db::NetId net : applied.nets) {
    groute::GCellRect rect = router_.netExtent(net);
    if (rect.empty()) continue;
    rect.expand(eco.haloGCells, maxX, maxY);
    dirty.push_back(rect);
  }
  report.dirtyRects = static_cast<int>(dirty.size());

  // 3. Region-scoped rip-up, two waves:
  //      must    nets whose terminals changed — rewired nets plus every
  //              net of a touched cell (its pins moved in space even
  //              when the netlist did not change) — their routes may no
  //              longer cover their terminals;
  //      damage  after the must wave landed: routes crossing the haloed
  //              touched-cell footprint that are overflowed *within it*
  //              on an edge that was clean before the patch.  This is
  //              the RRR-style response to congestion the patch itself
  //              caused.  Overflow that predates the delta is
  //              deliberately left alone — cell moves change no demand
  //              until the must wave reroutes, so everything overflowed
  //              at entry is inherited from the base flow, and "rip
  //              every overflowed crosser" degenerates into a full RRR
  //              round on a congested design — exactly the work ECO
  //              exists to avoid (same contract as UD reroutes).
  //    Both waves go through the PR-3 batch planner; before each wave
  //    the persistent cache sheds its entries over that wave's nets,
  //    while the extents still describe the old routes.
  std::vector<db::NetId> ripSet = applied.nets;
  for (const db::EcoTouchedCell& touched : applied.cells) {
    const std::vector<db::NetId>& nets = db_.netsOfCell(touched.cell);
    ripSet.insert(ripSet.end(), nets.begin(), nets.end());
  }
  std::sort(ripSet.begin(), ripSet.end());
  ripSet.erase(std::unique(ripSet.begin(), ripSet.end()), ripSet.end());
  const std::vector<db::NetId> crossers =
      router_.netsTouchingRegion(deltaFootprint);
  std::vector<char> crosserWasOverflowed(crossers.size(), 0);
  for (std::size_t i = 0; i < crossers.size(); ++i) {
    if (std::binary_search(ripSet.begin(), ripSet.end(), crossers[i])) {
      continue;
    }
    crosserWasOverflowed[i] =
        router_.routeOverflowed(crossers[i], &deltaFootprint) ? 1 : 0;
  }
  invalidateEcoCache(ripSet);
  std::vector<db::NetId> pending;
  pending.reserve(ripSet.size());
  for (const db::NetId net : ripSet) {
    if (router_.netTerminals(net).size() < 2) {
      router_.ripUp(net);  // degenerate after a rewire: no route needed
    } else {
      pending.push_back(net);
    }
  }
  const groute::RerouteBatchStats batch = router_.rerouteNets(pending);
  std::vector<db::NetId> damaged;
  for (std::size_t i = 0; i < crossers.size(); ++i) {
    if (crosserWasOverflowed[i] != 0) continue;
    if (std::binary_search(ripSet.begin(), ripSet.end(), crossers[i])) {
      continue;
    }
    if (router_.routeOverflowed(crossers[i], &deltaFootprint)) {
      damaged.push_back(crossers[i]);
    }
  }
  invalidateEcoCache(damaged);
  const groute::RerouteBatchStats damageBatch = router_.rerouteNets(damaged);
  report.dirtyNets = static_cast<int>(ripSet.size() + damaged.size());
  report.failedReroutes = batch.failed + damageBatch.failed;
  report.patchSeconds = patch.seconds();

  // 4. Candidate scope: cells whose cost neighborhood intersects the
  //    *delta* — the touched cells, the cells of netlist-edited nets
  //    (pricing changed structurally), and cells sharing a gcell with a
  //    move endpoint (colocated with a departure or arrival, so the
  //    demand under them changed).  Deliberately NOT every cell of
  //    every ripped net and
  //    NOT every netlist neighbor of a touched cell: a crosser or a
  //    shared net can span the die, and with gamma at 0.6 every cell
  //    admitted here is priced — scope is the knob that keeps the
  //    restricted iteration scaling with the edit instead of the
  //    design.  (Neighbors that sit near the edit are colocated and
  //    enter through the footprint test; far endpoints saw one net
  //    reroute, not a cost neighborhood shift.)
  std::unordered_set<db::CellId> scope;
  for (const db::EcoTouchedCell& touched : applied.cells) {
    scope.insert(touched.cell);
  }
  for (const db::NetId net : applied.nets) {
    for (const db::CellId cell : db_.cellsOfNet(net)) scope.insert(cell);
  }
  for (db::CellId cell = 0; cell < db_.numCells(); ++cell) {
    const db::GCell g = grid.cellAt(db_.cell(cell).pos);
    groute::GCellRect point;
    point.cover(g.x, g.y);
    if (groute::overlapsAny(point, touchedRects)) scope.insert(cell);
  }
  report.scopeCells = static_cast<int>(scope.size());

  // 5. Restricted CR&P iterations with the persistent pricing cache.
  if (!eco.reuseCache) {
    ecoCache_.reset();
  } else if (options_.pricingCache && !ecoCache_) {
    ecoCache_ = std::make_unique<PricingCache>(options_.pricingShards);
  }
  ecoMode_ = true;
  ecoScope_ = &scope;
  ecoMaxCandidates_ = eco.maxCandidates;
  try {
    for (int k = 0; k < eco.iterations; ++k) {
      const IterationReport iteration = runIteration();
      report.crp.totalMoves +=
          iteration.movedCells + iteration.displacedCells;
      report.crp.totalReroutes += iteration.reroutedNets;
      report.crp.pricing += iteration.pricing;
      report.crp.iterations.push_back(iteration);
    }
  } catch (...) {
    ecoMode_ = false;
    ecoScope_ = nullptr;
    ecoMaxCandidates_ = 0;
    throw;
  }
  ecoMode_ = false;
  ecoScope_ = nullptr;
  ecoMaxCandidates_ = 0;

  report.cacheEvictions = ecoEvictions_;
  report.totalSeconds = total.seconds();
  CRP_OBS_COUNT("eco.runs", 1);
  CRP_OBS_COUNT("eco.delta_edits", delta.size());
  CRP_OBS_COUNT("eco.dirty_nets", report.dirtyNets);
  CRP_OBS_COUNT("eco.scope_cells", report.scopeCells);
  CRP_OBS_COUNT("eco.failed_reroutes", report.failedReroutes);
  CRP_OBS_COUNT("eco.moves",
                report.crp.totalMoves);
  CRP_OBS_GAUGE_SET("eco.patch_seconds", report.patchSeconds);
  CRP_OBS_GAUGE_SET("eco.total_seconds", report.totalSeconds);
  CRP_LOG_DEBUG(
      "eco: {} edits -> {} dirty nets, {} scope cells, {} evictions, "
      "{} moves",
      delta.size(), report.dirtyNets, report.scopeCells,
      report.cacheEvictions, report.crp.totalMoves);
  return report;
}

const obs::RunReport& CrpFramework::runReport() {
  runReport_.iterations = static_cast<int>(runReport_.iterationStats.size());
  runReport_.threads = static_cast<int>(pool_->threadCount());
  runReport_.seed = options_.seed;

  const groute::GlobalRouteStats stats = router_.stats();
  runReport_.router.wirelengthDbu = stats.wirelengthDbu;
  runReport_.router.vias = stats.vias;
  runReport_.router.totalOverflow = stats.totalOverflow;
  runReport_.router.overflowedEdges = stats.overflowedEdges;
  runReport_.router.openNets = stats.openNets;
  runReport_.router.reroutedNets = stats.reroutedNets;

  // Deltas against the construction-time snapshot of *this* context's
  // registry: concurrent sessions can no longer perturb each other's
  // ILP counters (the fingerprint-isolation property test_serve
  // asserts).
  const obs::MetricsSnapshot now = obsCtx_->metrics().snapshot();
  const obs::MetricsSnapshot delta = now.deltaSince(baseline_);
  runReport_.counters = delta.counters;
  runReport_.ilp.solves = delta.counters.count("ilp.solves")
                              ? delta.counters.at("ilp.solves")
                              : 0;
  runReport_.ilp.nodes =
      delta.counters.count("ilp.nodes") ? delta.counters.at("ilp.nodes") : 0;
  runReport_.ilp.lpCalls = delta.counters.count("ilp.lp_calls")
                               ? delta.counters.at("ilp.lp_calls")
                               : 0;
  runReport_.ilp.lpPivots = delta.counters.count("ilp.pivots")
                                ? delta.counters.at("ilp.pivots")
                                : 0;
  return runReport_;
}

}  // namespace crp::core
