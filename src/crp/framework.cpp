#include "crp/framework.hpp"

#include <algorithm>

#include "util/logger.hpp"

namespace crp::core {

CrpFramework::CrpFramework(db::Database& db, groute::GlobalRouter& router,
                           CrpOptions options)
    : db_(db),
      router_(router),
      options_(options),
      rng_(options.seed),
      pool_(options.threads == 0 ? 0
                                 : static_cast<std::size_t>(options.threads)) {
}

IterationReport CrpFramework::runIteration() {
  IterationReport report;

  // ---- LCC: Alg. 1 -----------------------------------------------------------
  std::vector<db::CellId> criticalSet;
  {
    util::ScopedTimer timer(timers_, kPhaseLcc);
    criticalSet = labelCriticalCells(db_, router_, criticalHistory_, moved_,
                                     rng_, options_);
  }
  report.criticalCells = static_cast<int>(criticalSet.size());
  if (criticalSet.empty()) return report;

  // ---- GCP + ECC: Alg. 2 / Alg. 3 ---------------------------------------------
  std::vector<CellCandidates> candidates;
  {
    // The legalizer snapshot reads current positions; a fresh instance
    // per iteration keeps it consistent after the previous UD phase.
    util::ScopedTimer timer(timers_, kPhaseGcp);
    const legalizer::IlpLegalizer legalizer(db_, options_.legalizer);
    candidates = buildCandidates(db_, legalizer, criticalSet, &pool_);
  }
  {
    util::ScopedTimer timer(timers_, kPhaseEcc);
    util::Stopwatch watch;
    PricingOptions pricing;
    pricing.cacheEnabled = options_.pricingCache;
    pricing.deltaEnabled = options_.deltaPricing;
    pricing.cacheShards = options_.pricingShards;
    priceCandidates(db_, router_, candidates, &pool_, pricing,
                    &report.pricing);
    report.eccSeconds = watch.seconds();
  }

  // ---- SEL: Eq. 12 -----------------------------------------------------------
  SelectionResult selection;
  {
    util::ScopedTimer timer(timers_, kPhaseSel);
    selection = selectCandidates(db_, candidates);
  }
  report.selectedCost = selection.totalCost;

  // ---- UD: §IV.B.5 -----------------------------------------------------------
  {
    util::ScopedTimer timer(timers_, kPhaseUd);

    // Move-budget enforcement (ICCAD-style contests): rank the selected
    // moves by estimated gain and keep the best that fit.
    std::vector<std::size_t> moveOrder;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!candidates[i].candidates[selection.chosen[i]].isCurrent) {
        moveOrder.push_back(i);
      }
    }
    std::sort(moveOrder.begin(), moveOrder.end(),
              [&](std::size_t a, std::size_t b) {
                auto gain = [&](std::size_t i) {
                  const auto& cc = candidates[i];
                  return cc.candidates.front().routeCost -
                         cc.candidates[selection.chosen[i]].routeCost;
                };
                return gain(a) > gain(b);
              });
    std::unordered_set<std::size_t> committed;
    int budget = options_.maxMovesTotal - movesUsed_;
    for (const std::size_t i : moveOrder) {
      const int needed =
          1 + static_cast<int>(
                  candidates[i].candidates[selection.chosen[i]]
                      .displaced.size());
      if (needed > budget) continue;
      budget -= needed;
      committed.insert(i);
    }

    std::vector<db::NetId> affectedNets;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& chosen =
          candidates[i].candidates[selection.chosen[i]];
      if (chosen.isCurrent) continue;
      if (committed.count(i) == 0) continue;  // over the move budget
      const db::CellId cell = candidates[i].cell;
      db_.moveCell(cell, chosen.position);
      moved_.insert(cell);
      ++report.movedCells;
      for (const db::NetId n : db_.netsOfCell(cell)) {
        affectedNets.push_back(n);
      }
      for (const auto& [id, pos] : chosen.displaced) {
        db_.moveCell(id, pos);
        moved_.insert(id);
        ++report.displacedCells;
        for (const db::NetId n : db_.netsOfCell(id)) {
          affectedNets.push_back(n);
        }
      }
    }
    std::sort(affectedNets.begin(), affectedNets.end());
    affectedNets.erase(
        std::unique(affectedNets.begin(), affectedNets.end()),
        affectedNets.end());
    for (const db::NetId n : affectedNets) {
      router_.rerouteNet(n);
    }
    report.reroutedNets = static_cast<int>(affectedNets.size());
    movesUsed_ += report.movedCells + report.displacedCells;
  }

  for (const db::CellId c : criticalSet) criticalHistory_.insert(c);

  CRP_LOG_DEBUG(
      "crp iteration: {} critical, {} moved (+{} displaced), {} rerouted",
      report.criticalCells, report.movedCells, report.displacedCells,
      report.reroutedNets);
  return report;
}

CrpReport CrpFramework::run() {
  CrpReport report;
  for (int k = 0; k < options_.iterations; ++k) {
    const IterationReport iteration = runIteration();
    report.totalMoves += iteration.movedCells + iteration.displacedCells;
    report.totalReroutes += iteration.reroutedNets;
    report.pricing += iteration.pricing;
    report.iterations.push_back(iteration);
  }
  return report;
}

}  // namespace crp::core
