// Eq. 12: select one candidate per critical cell minimizing the total
// estimated routing cost, subject to spatial compatibility.
//
// Two candidates of different cells conflict when their moved-cell
// footprints overlap or they move the same conflict cell.  The
// selection problem decomposes over connected components of the
// conflict graph: singleton components reduce to an argmin, the rest
// are solved exactly with the branch-and-bound ILP (the paper solves
// one monolithic CPLEX model; the decomposition is equivalent because
// components share no constraints).
#pragma once

#include <vector>

#include "crp/candidate_generation.hpp"

namespace crp::core {

struct SelectionResult {
  /// Chosen candidate index per entry of the input vector.
  std::vector<int> chosen;
  double totalCost = 0.0;
  int ilpComponents = 0;     ///< components solved exactly by B&B
  int greedyComponents = 0;  ///< oversized components solved greedily
  int conflictPairs = 0;
};

struct SelectionOptions {
  /// Components larger than this are solved with a gain-ordered greedy
  /// assignment instead of the exact ILP.  Dense designs can chain
  /// hundreds of cells into one conflict component, where exact B&B is
  /// intractable; the greedy pass preserves feasibility (every cell
  /// keeps a compatible candidate — "stay" never conflicts).
  int maxIlpComponentCells = 12;
  int maxIlpNodes = 20000;  ///< B&B node cap per component
};

SelectionResult selectCandidates(const db::Database& db,
                                 const std::vector<CellCandidates>& cells,
                                 const SelectionOptions& options = {});

}  // namespace crp::core
