#include "crp/candidate_generation.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>

namespace crp::core {

namespace {

/// Core terminal builder: pin positions of `net` with cells in
/// `overrides` (a tiny list, searched linearly) relocated; result is
/// canonical (sorted, deduplicated).  Appends nothing on entry: `out`
/// is cleared.
void terminalsInto(
    const db::Database& db, const groute::RoutingGraph& graph, db::NetId net,
    std::span<const std::pair<db::CellId, geom::Point>> overrides,
    std::vector<groute::GPoint>& out) {
  out.clear();
  for (const db::NetPin& pin : db.net(net).pins) {
    geom::Point pos;
    int layer = 0;
    if (pin.isIo()) {
      pos = db.design().ioPins[pin.ioPin()].pos;
      layer = db.design().ioPins[pin.ioPin()].layer;
    } else {
      const auto& ref = pin.compPin();
      const auto& comp = db.cell(ref.cell);
      const auto& macro = db.macroOf(ref.cell);
      geom::Point origin = comp.pos;
      for (const auto& [id, overridePos] : overrides) {
        if (id == ref.cell) {
          origin = overridePos;
          break;
        }
      }
      pos = geom::transformPoint(macro.pins[ref.pin].accessPoint(), origin,
                                 macro.width, macro.height, comp.orient);
      if (!macro.pins[ref.pin].shapes.empty()) {
        layer = macro.pins[ref.pin].shapes.front().layer;
      }
    }
    const db::GCell g = graph.grid().cellAt(pos);
    out.push_back(groute::GPoint{layer, g.x, g.y});
  }
  canonicalizeTerminals(out);
}

/// Per-thread state of the pricing engine: pattern-route scratch plus
/// the per-cell baseline buffers.  Reused across cells and iterations
/// so the inner loop makes no heap allocations in steady state.
struct PricerScratch {
  groute::PatternRouter::Scratch pattern;
  std::vector<std::pair<db::CellId, geom::Point>> overrides;
  std::vector<groute::GPoint> terminals;
  std::vector<std::pair<int, groute::GPoint>> movedPins;
  std::vector<double> basePrices;
  std::vector<db::NetId> extraNets;
  /// Per base net: moved-pin GCells -> price for the candidates of the
  /// current cell (few distinct entries; linear scan beats the shared
  /// cache's hash + lock for repeat candidates in the same GCell).
  struct NetMemo {
    std::vector<std::pair<std::vector<std::pair<int, groute::GPoint>>, double>>
        entries;
    std::size_t used = 0;  ///< entries beyond this are stale capacity
  };
  std::vector<NetMemo> memo;
  /// The candidate cell's pin GCells at the candidate position,
  /// computed once per candidate (indexed by macro pin).
  std::vector<groute::GPoint> cellPinG;
  /// Per-net baseline prices shared across the cells this thread
  /// prices, valid while the epoch matches (one epoch per ECC phase).
  std::vector<double> basePriceTable;
  std::vector<std::uint32_t> baseEpoch;
  /// Phase tag of pattern.twoPinMemo (cleared on mismatch: the demand
  /// maps the memoized legs priced against are only frozen per phase).
  std::uint32_t patternEpoch = 0;
};

/// Per-net terminal template, precomputed once per ECC phase: every
/// pin's GCell at the current placement, plus which entries belong to
/// which (movable) cell.  Re-building a net's terminals under a
/// candidate override then costs one copy plus a recompute of just the
/// moved pins, instead of walking every pin through the pin-shape and
/// grid lookups again.
struct NetTemplate {
  std::vector<groute::GPoint> pinPoints;  ///< one per pin, db order
  std::vector<groute::GPoint> canonical;  ///< sorted + deduplicated
  struct MovablePin {
    db::CellId cell;
    int termIndex;  ///< into pinPoints
    int macroPin;
  };
  std::vector<MovablePin> movable;
};

/// The ECC incremental cost engine shared by all pricing workers.
class CandidatePricer {
 public:
  CandidatePricer(const db::Database& db, const groute::GlobalRouter& router,
                  const PricingOptions& options)
      : db_(db),
        graph_(router.graph()),
        pattern_(router.graph()),
        options_(options),
        ownedCache_(options.sharedCache != nullptr ? 1 : options.cacheShards),
        cache_(options.sharedCache != nullptr ? options.sharedCache
                                              : &ownedCache_),
        startStats_(cache_->stats()) {
    // Distinguishes this phase's entries in the per-thread baseline
    // tables (scratch outlives the pricer); 0 stays "never valid".
    static std::atomic<std::uint32_t> phaseCounter{0};
    epoch_ = phaseCounter.fetch_add(1, std::memory_order_relaxed) + 1;
    if (epoch_ == 0) epoch_ = phaseCounter.fetch_add(1) + 1;
    // One pass over every net builds the terminal templates for the
    // phase (positions are frozen until UD).  Sequential + read-only.
    templates_.resize(db_.numNets());
    for (db::NetId net = 0; net < db_.numNets(); ++net) {
      NetTemplate& tpl = templates_[net];
      const auto& pins = db_.net(net).pins;
      tpl.pinPoints.reserve(pins.size());
      for (const db::NetPin& pin : pins) {
        if (!pin.isIo()) {
          const auto& ref = pin.compPin();
          tpl.movable.push_back(NetTemplate::MovablePin{
              ref.cell, static_cast<int>(tpl.pinPoints.size()), ref.pin});
        }
        tpl.pinPoints.push_back(pinGPoint(pin, nullptr));
      }
      tpl.canonical = tpl.pinPoints;
      canonicalizeTerminals(tpl.canonical);
    }
  }

  void priceCell(CellCandidates& cc, PricerScratch& ts) {
    const std::vector<db::NetId>& baseNets = db_.netsOfCell(cc.cell);
    const std::size_t numBase = baseNets.size();

    // Arm the per-thread two-pin leg memo for this phase (part of
    // layer 1: distinct terminal sets share most Steiner legs).
    if (ts.patternEpoch != epoch_) {
      ts.pattern.twoPinMemo.clear();
      ts.pattern.useTwoPinMemo = options_.cacheEnabled;
      ts.patternEpoch = epoch_;
    }

    // Baseline: prices of the cell's nets at current positions,
    // computed once per phase per thread (every candidate needs them —
    // the old code rebuilt them once per candidate); the terminal sets
    // come straight from the phase templates.
    if (ts.baseEpoch.size() < static_cast<std::size_t>(db_.numNets())) {
      ts.baseEpoch.resize(db_.numNets(), 0);
      ts.basePriceTable.resize(db_.numNets(), 0.0);
    }
    ts.basePrices.clear();
    for (std::size_t j = 0; j < numBase; ++j) {
      const db::NetId net = baseNets[j];
      if (options_.deltaEnabled && ts.baseEpoch[net] == epoch_) {
        cache_->countDeltaSkip();
      } else {
        ts.basePriceTable[net] =
            priceTerminals(templates_[net].canonical, ts);
        ts.baseEpoch[net] = epoch_;
      }
      ts.basePrices.push_back(ts.basePriceTable[net]);
    }
    if (ts.memo.size() < numBase) ts.memo.resize(numBase);
    for (std::size_t j = 0; j < numBase; ++j) ts.memo[j].used = 0;

    for (Candidate& candidate : cc.candidates) {
      if (candidate.isCurrent) {
        double cost = 0.0;
        for (std::size_t j = 0; j < numBase; ++j) cost += ts.basePrices[j];
        candidate.routeCost = cost;
        continue;
      }

      ts.overrides.clear();
      ts.overrides.emplace_back(cc.cell, candidate.position);
      for (const auto& moved : candidate.displaced) {
        ts.overrides.push_back(moved);
      }

      // The candidate cell's pin GCells at the hypothetical position,
      // computed once and shared by all of its nets below.
      {
        const auto& comp = db_.cell(cc.cell);
        const auto& macro = db_.macroOf(cc.cell);
        ts.cellPinG.clear();
        for (const auto& pin : macro.pins) {
          const geom::Point pos =
              geom::transformPoint(pin.accessPoint(), candidate.position,
                                   macro.width, macro.height, comp.orient);
          const db::GCell g = graph_.grid().cellAt(pos);
          const int layer =
              pin.shapes.empty() ? 0 : pin.shapes.front().layer;
          ts.cellPinG.push_back(groute::GPoint{layer, g.x, g.y});
        }
      }

      double cost = 0.0;
      // Delta pricing over the cell's own nets: a candidate that keeps
      // a net's pins in their GCells contributes the baseline price —
      // detected at the pin level, before any terminal set is built.
      for (std::size_t j = 0; j < numBase; ++j) {
        const NetTemplate& tpl = templates_[baseNets[j]];
        const bool changed = computeMovedPins(tpl, ts.overrides, ts, cc.cell);
        if (options_.deltaEnabled && !changed) {
          cache_->countDeltaSkip();
          cost += ts.basePrices[j];
          continue;
        }
        if (options_.deltaEnabled) {
          // Same moved-pin GCells as an earlier candidate of this
          // cell: identical canonical set, price carries over unprobed.
          auto& memo = ts.memo[j];
          bool found = false;
          for (std::size_t m = 0; m < memo.used; ++m) {
            if (memo.entries[m].first == ts.movedPins) {
              cache_->countDeltaSkip();
              cost += memo.entries[m].second;
              found = true;
              break;
            }
          }
          if (found) continue;
          buildTerminals(tpl, ts);
          const double price = priceTerminals(ts.terminals, ts);
          if (memo.used == memo.entries.size()) memo.entries.emplace_back();
          memo.entries[memo.used].first.assign(ts.movedPins.begin(),
                                               ts.movedPins.end());
          memo.entries[memo.used].second = price;
          ++memo.used;
          cost += price;
        } else {
          buildTerminals(tpl, ts);
          cost += priceTerminals(ts.terminals, ts);
        }
      }
      // Collateral nets of displaced conflict cells (not already among
      // the cell's nets), priced at the hypothetical positions.
      ts.extraNets.clear();
      for (const auto& [id, pos] : candidate.displaced) {
        for (const db::NetId n : db_.netsOfCell(id)) {
          if (std::find(baseNets.begin(), baseNets.end(), n) ==
              baseNets.end()) {
            ts.extraNets.push_back(n);
          }
        }
      }
      std::sort(ts.extraNets.begin(), ts.extraNets.end());
      ts.extraNets.erase(
          std::unique(ts.extraNets.begin(), ts.extraNets.end()),
          ts.extraNets.end());
      for (const db::NetId n : ts.extraNets) {
        computeMovedPins(templates_[n], ts.overrides, ts, cc.cell);
        buildTerminals(templates_[n], ts);
        cost += priceTerminals(ts.terminals, ts);
      }
      candidate.routeCost = cost;
    }
  }

  /// This phase's counters: deltas against the cache state at pricer
  /// construction, so a shared (ECO-persistent) cache reports per-phase
  /// numbers just like a phase-local one.
  PricingStats stats() const {
    const PricingStats now = cache_->stats();
    PricingStats phase;
    phase.cacheHits = now.cacheHits - startStats_.cacheHits;
    phase.cacheMisses = now.cacheMisses - startStats_.cacheMisses;
    phase.deltaSkips = now.deltaSkips - startStats_.deltaSkips;
    return phase;
  }
  auto cacheEntries() const { return cache_->entries(); }

 private:
  /// GCell terminal of one net pin, with its cell optionally relocated.
  groute::GPoint pinGPoint(const db::NetPin& pin,
                           const geom::Point* overridePos) const {
    geom::Point pos;
    int layer = 0;
    if (pin.isIo()) {
      pos = db_.design().ioPins[pin.ioPin()].pos;
      layer = db_.design().ioPins[pin.ioPin()].layer;
    } else {
      const auto& ref = pin.compPin();
      const auto& comp = db_.cell(ref.cell);
      const auto& macro = db_.macroOf(ref.cell);
      const geom::Point origin =
          overridePos != nullptr ? *overridePos : comp.pos;
      pos = geom::transformPoint(macro.pins[ref.pin].accessPoint(), origin,
                                 macro.width, macro.height, comp.orient);
      if (!macro.pins[ref.pin].shapes.empty()) {
        layer = macro.pins[ref.pin].shapes.front().layer;
      }
    }
    const db::GCell g = graph_.grid().cellAt(pos);
    return groute::GPoint{layer, g.x, g.y};
  }

  /// Recomputes the GCells of a templated net's overridden pins into
  /// ts.movedPins and reports whether any of them left its GCell.  An
  /// unchanged net never materializes a terminal set — the delta skip
  /// costs just this recompute.
  bool computeMovedPins(
      const NetTemplate& tpl,
      std::span<const std::pair<db::CellId, geom::Point>> overrides,
      PricerScratch& ts, db::CellId mainCell) const {
    ts.movedPins.clear();
    bool changed = false;
    for (const NetTemplate::MovablePin& mp : tpl.movable) {
      for (const auto& [id, overridePos] : overrides) {
        if (id != mp.cell) continue;
        groute::GPoint moved;
        if (mp.cell == mainCell) {
          // The candidate cell's pins were precomputed per candidate.
          moved = ts.cellPinG[mp.macroPin];
        } else {
          const auto& comp = db_.cell(mp.cell);
          const auto& macro = db_.macroOf(mp.cell);
          const geom::Point pos = geom::transformPoint(
              macro.pins[mp.macroPin].accessPoint(), overridePos,
              macro.width, macro.height, comp.orient);
          const db::GCell g = graph_.grid().cellAt(pos);
          int layer = 0;
          if (!macro.pins[mp.macroPin].shapes.empty()) {
            layer = macro.pins[mp.macroPin].shapes.front().layer;
          }
          moved = groute::GPoint{layer, g.x, g.y};
        }
        if (moved != tpl.pinPoints[mp.termIndex]) changed = true;
        ts.movedPins.emplace_back(mp.termIndex, moved);
        break;
      }
    }
    return changed;
  }

  /// Canonical terminal set of a templated net with ts.movedPins
  /// (from computeMovedPins) substituted in.
  void buildTerminals(const NetTemplate& tpl, PricerScratch& ts) const {
    ts.terminals.assign(tpl.pinPoints.begin(), tpl.pinPoints.end());
    for (const auto& [index, point] : ts.movedPins) {
      ts.terminals[index] = point;
    }
    canonicalizeTerminals(ts.terminals);
  }

  double priceTerminals(const std::vector<groute::GPoint>& terminals,
                        PricerScratch& ts) {
    if (options_.cacheEnabled) {
      return cache_->price(terminals, pattern_, ts.pattern);
    }
    cache_->countBypass();
    return pattern_.priceTree(terminals, ts.pattern);
  }

  const db::Database& db_;
  const groute::RoutingGraph& graph_;
  const groute::PatternRouter pattern_;
  PricingOptions options_;
  /// Phase-local store, used unless options_.sharedCache redirects
  /// cache_ to a caller-owned, longer-lived cache.
  PricingCache ownedCache_;
  PricingCache* cache_;
  PricingStats startStats_;
  std::vector<NetTemplate> templates_;
  std::uint32_t epoch_ = 0;  ///< tags per-thread baseline-table entries
};

}  // namespace

std::vector<groute::GPoint> terminalsWithOverrides(
    const db::Database& db, const groute::RoutingGraph& graph, db::NetId net,
    const std::unordered_map<db::CellId, geom::Point>& overrides) {
  std::vector<std::pair<db::CellId, geom::Point>> list(overrides.begin(),
                                                       overrides.end());
  std::vector<groute::GPoint> terminals;
  terminalsInto(db, graph, net, list, terminals);
  return terminals;
}

double estimateCandidateCost(const db::Database& db,
                             const groute::GlobalRouter& router,
                             const groute::PatternRouter& pattern,
                             db::CellId cell, const Candidate& candidate) {
  std::unordered_map<db::CellId, geom::Point> overrides;
  overrides.emplace(cell, candidate.position);
  for (const auto& [id, pos] : candidate.displaced) {
    overrides.emplace(id, pos);
  }

  // Affected nets: all nets of every moved cell, priced once.
  std::vector<db::NetId> nets;
  for (const auto& [id, pos] : overrides) {
    for (const db::NetId n : db.netsOfCell(id)) nets.push_back(n);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  double total = 0.0;
  for (const db::NetId n : nets) {
    const auto terminals =
        terminalsWithOverrides(db, router.graph(), n, overrides);
    total += pattern.priceTree(terminals);
  }
  return total;
}

namespace {

/// Per-tile task groups over a cell list: bucket i of the result holds
/// the indices (into `cells`, ascending) whose cell sits in the i-th
/// non-empty tile.  Depends only on cell positions — never on
/// schedule — so the grouping is deterministic.
std::vector<std::vector<std::size_t>> groupCellsByTile(
    const db::Database& db, const groute::TileGrid& tiles,
    const std::vector<db::CellId>& cells) {
  const db::GCellGrid grid(db.design().dieArea,
                           std::max(1, db.design().gcellCountX),
                           std::max(1, db.design().gcellCountY));
  std::vector<std::vector<std::size_t>> buckets(tiles.numTiles());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const db::GCell g = grid.cellAt(db.cell(cells[i]).pos);
    buckets[tiles.tileAt(g.x, g.y)].push_back(i);
  }
  std::vector<std::vector<std::size_t>> groups;
  for (auto& bucket : buckets) {
    if (!bucket.empty()) groups.push_back(std::move(bucket));
  }
  return groups;
}

/// Runs `body(i)` for every i in [0, n): per-tile groups as pool units
/// when a tile grid is given, the flat per-index schedule otherwise.
/// Both schedules execute body(i) exactly once per index; the work
/// itself must be (and is, for GCP/ECC) order-independent.
template <typename Body>
void forEachScheduled(std::size_t n, util::ThreadPool* pool,
                      const groute::TileGrid* tiles,
                      const std::vector<std::vector<std::size_t>>& groups,
                      const Body& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (tiles == nullptr) {
    pool->parallelFor(n, body);
    return;
  }
  pool->parallelFor(groups.size(), [&](std::size_t g) {
    for (const std::size_t i : groups[g]) body(i);
  });
}

}  // namespace

std::vector<CellCandidates> buildCandidates(
    const db::Database& db, const legalizer::IlpLegalizer& legalizer,
    const std::vector<db::CellId>& criticalSet, util::ThreadPool* pool,
    const groute::TileGrid* tiles) {
  std::unordered_set<db::CellId> criticalLookup(criticalSet.begin(),
                                                criticalSet.end());
  std::vector<CellCandidates> result(criticalSet.size());

  // Alg. 2 lines 1-6 (parallel): current position + legalizer output.
  auto buildFor = [&](std::size_t i) {
    const db::CellId cell = criticalSet[i];
    CellCandidates& out = result[i];
    out.cell = cell;
    Candidate current;
    current.position = db.cell(cell).pos;
    current.isCurrent = true;
    out.candidates.push_back(current);
    for (const auto& legal : legalizer.generate(cell)) {
      // Never displace another critical cell: the selection model
      // treats critical assignments as independent one-hots.
      bool displacesCritical = false;
      for (const auto& [id, pos] : legal.displaced) {
        if (criticalLookup.count(id) > 0) {
          displacesCritical = true;
          break;
        }
      }
      if (displacesCritical) continue;
      Candidate candidate;
      candidate.position = legal.position;
      candidate.displaced = legal.displaced;
      out.candidates.push_back(std::move(candidate));
    }
  };
  std::vector<std::vector<std::size_t>> groups;
  if (pool != nullptr && tiles != nullptr) {
    groups = groupCellsByTile(db, *tiles, criticalSet);
  }
  forEachScheduled(criticalSet.size(), pool, tiles, groups, buildFor);
  return result;
}

void priceCandidates(const db::Database& db,
                     const groute::GlobalRouter& router,
                     std::vector<CellCandidates>& candidates,
                     util::ThreadPool* pool,
                     const PricingOptions& pricing,
                     PricingStats* stats,
                     const groute::TileGrid* tiles) {
  CandidatePricer pricer(db, router, pricing);
  auto priceFor = [&](std::size_t i) {
    static thread_local PricerScratch scratch;
    pricer.priceCell(candidates[i], scratch);
  };
  std::vector<std::vector<std::size_t>> groups;
  if (pool != nullptr && tiles != nullptr) {
    std::vector<db::CellId> cells;
    cells.reserve(candidates.size());
    for (const CellCandidates& cc : candidates) cells.push_back(cc.cell);
    groups = groupCellsByTile(db, *tiles, cells);
  }
  forEachScheduled(candidates.size(), pool, tiles, groups, priceFor);
  if (stats != nullptr) *stats += pricer.stats();
  if (pricing.cacheEntriesOut != nullptr) {
    *pricing.cacheEntriesOut = pricer.cacheEntries();
  }
}

void priceCandidates(const db::Database& db,
                     const groute::GlobalRouter& router,
                     std::vector<CellCandidates>& candidates,
                     util::ThreadPool* pool) {
  priceCandidates(db, router, candidates, pool, PricingOptions{}, nullptr);
}

std::vector<CellCandidates> generateCandidates(
    const db::Database& db, const groute::GlobalRouter& router,
    const legalizer::IlpLegalizer& legalizer,
    const std::vector<db::CellId>& criticalSet, util::ThreadPool* pool,
    const PricingOptions& pricing, PricingStats* stats) {
  auto result = buildCandidates(db, legalizer, criticalSet, pool);
  priceCandidates(db, router, result, pool, pricing, stats);
  return result;
}

}  // namespace crp::core
