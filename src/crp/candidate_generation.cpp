#include "crp/candidate_generation.hpp"

#include <algorithm>

namespace crp::core {

std::vector<groute::GPoint> terminalsWithOverrides(
    const db::Database& db, const groute::RoutingGraph& graph, db::NetId net,
    const std::unordered_map<db::CellId, geom::Point>& overrides) {
  std::vector<groute::GPoint> terminals;
  for (const db::NetPin& pin : db.net(net).pins) {
    geom::Point pos;
    int layer = 0;
    if (pin.isIo()) {
      pos = db.design().ioPins[pin.ioPin()].pos;
      layer = db.design().ioPins[pin.ioPin()].layer;
    } else {
      const auto& ref = pin.compPin();
      const auto& comp = db.cell(ref.cell);
      const auto& macro = db.macroOf(ref.cell);
      const auto it = overrides.find(ref.cell);
      const geom::Point origin = it != overrides.end() ? it->second
                                                       : comp.pos;
      pos = geom::transformPoint(macro.pins[ref.pin].accessPoint(), origin,
                                 macro.width, macro.height, comp.orient);
      if (!macro.pins[ref.pin].shapes.empty()) {
        layer = macro.pins[ref.pin].shapes.front().layer;
      }
    }
    const db::GCell g = graph.grid().cellAt(pos);
    terminals.push_back(groute::GPoint{layer, g.x, g.y});
  }
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  return terminals;
}

double estimateCandidateCost(const db::Database& db,
                             const groute::GlobalRouter& router,
                             const groute::PatternRouter& pattern,
                             db::CellId cell, const Candidate& candidate) {
  std::unordered_map<db::CellId, geom::Point> overrides;
  overrides.emplace(cell, candidate.position);
  for (const auto& [id, pos] : candidate.displaced) {
    overrides.emplace(id, pos);
  }

  // Affected nets: all nets of every moved cell, priced once.
  std::vector<db::NetId> nets;
  for (const auto& [id, pos] : overrides) {
    for (const db::NetId n : db.netsOfCell(id)) nets.push_back(n);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

  double total = 0.0;
  for (const db::NetId n : nets) {
    const auto terminals =
        terminalsWithOverrides(db, router.graph(), n, overrides);
    total += pattern.priceTree(terminals);
  }
  return total;
}

std::vector<CellCandidates> buildCandidates(
    const db::Database& db, const legalizer::IlpLegalizer& legalizer,
    const std::vector<db::CellId>& criticalSet, util::ThreadPool* pool) {
  std::unordered_set<db::CellId> criticalLookup(criticalSet.begin(),
                                                criticalSet.end());
  std::vector<CellCandidates> result(criticalSet.size());

  // Alg. 2 lines 1-6 (parallel): current position + legalizer output.
  auto buildFor = [&](std::size_t i) {
    const db::CellId cell = criticalSet[i];
    CellCandidates& out = result[i];
    out.cell = cell;
    Candidate current;
    current.position = db.cell(cell).pos;
    current.isCurrent = true;
    out.candidates.push_back(current);
    for (const auto& legal : legalizer.generate(cell)) {
      // Never displace another critical cell: the selection model
      // treats critical assignments as independent one-hots.
      bool displacesCritical = false;
      for (const auto& [id, pos] : legal.displaced) {
        if (criticalLookup.count(id) > 0) {
          displacesCritical = true;
          break;
        }
      }
      if (displacesCritical) continue;
      Candidate candidate;
      candidate.position = legal.position;
      candidate.displaced = legal.displaced;
      out.candidates.push_back(std::move(candidate));
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(criticalSet.size(), buildFor);
  } else {
    for (std::size_t i = 0; i < criticalSet.size(); ++i) buildFor(i);
  }
  return result;
}

void priceCandidates(const db::Database& db,
                     const groute::GlobalRouter& router,
                     std::vector<CellCandidates>& candidates,
                     util::ThreadPool* pool) {
  const groute::PatternRouter pattern(router.graph());
  auto priceFor = [&](std::size_t i) {
    for (Candidate& candidate : candidates[i].candidates) {
      candidate.routeCost = estimateCandidateCost(
          db, router, pattern, candidates[i].cell, candidate);
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(candidates.size(), priceFor);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) priceFor(i);
  }
}

std::vector<CellCandidates> generateCandidates(
    const db::Database& db, const groute::GlobalRouter& router,
    const legalizer::IlpLegalizer& legalizer,
    const std::vector<db::CellId>& criticalSet, util::ThreadPool* pool) {
  auto result = buildCandidates(db, legalizer, criticalSet, pool);
  priceCandidates(db, router, result, pool);
  return result;
}

}  // namespace crp::core
