// Configuration of the CR&P framework.  Defaults are the paper's
// values (§IV.B, §V); the boolean switches exist for the ablation
// benches (DESIGN.md experiments A1-A3).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "check/audit.hpp"
#include "legalizer/ilp_legalizer.hpp"

namespace crp::obs {
class ObsContext;
}
namespace crp::util {
class ThreadPool;
}

namespace crp::core {

struct CrpOptions {
  int iterations = 1;        ///< k in the paper (Table III: 1 and 10)
  double gamma = 0.6;        ///< max fraction of cells labeled critical
  double temperature = 1.0;  ///< T in Alg. 1 line 11

  /// Alg. 1 sorts cells by routing cost (paper) — false = random order
  /// (ablation A2, the [18]-style no-priority selection).
  bool prioritizeByCost = true;
  /// Alg. 1 damps re-selection via exp(-(hist_c + hist_m)/T) — false =
  /// always re-eligible (ablation A3).
  bool historyDamping = true;

  legalizer::LegalizerOptions legalizer;

  std::uint64_t seed = 1;  ///< Alg. 1's annealing draw (reproducible)
  int threads = 0;         ///< worker threads for Alg. 2/3; 0 = hardware

  /// Observability context this run records into (metrics, spans,
  /// flight events, log lines).  Null resolves the ambient context at
  /// framework construction — the process default outside any
  /// ObsContextScope, i.e. the exact pre-daemon behavior.  A serve
  /// session passes its own context here so concurrent runs never
  /// interleave (see docs/serve.md).
  obs::ObsContext* obsContext = nullptr;

  /// Worker pool for Alg. 2/3 (and, via GlobalRouterOptions, the UD
  /// batch reroute).  Null: the framework owns a private pool of
  /// `threads` workers, as before.  Non-null: the framework submits to
  /// this shared pool instead (the serve daemon runs every session on
  /// one pool); `threads` is then ignored.  Safe because parallelFor
  /// is reentrant and waits on per-call state, and workers inherit the
  /// submitter's ObsContext through the submit-time task wrapper.
  util::ThreadPool* sharedPool = nullptr;

  /// Worker threads for the UD phase's conflict-free batch reroute
  /// (applied to the GlobalRouter at framework construction): 1 =
  /// serial, 0 = hardware.  Value-exact: routes, demand maps and the
  /// run fingerprint are bit-identical for every setting (the batch
  /// plan is deterministic and batch members touch disjoint regions).
  int routerThreads = 0;

  /// Chip-tile spatial decomposition (docs/tiling.md), applied to the
  /// GlobalRouter at framework construction and used to schedule the
  /// GCP candidate windows and ECC pricing as per-tile task groups.
  /// 1 x 1 disables tiling.  Value-exact: any tile grid at any thread
  /// count yields bit-identical routes, demand maps, heatmaps and run
  /// fingerprints.
  int tileRows = 1;
  int tileCols = 1;
  /// Tile halo width in gcells; -1 = auto (the batch planner's
  /// conflict margin, mazeMargin + 1).
  int haloGcells = -1;

  /// ECC incremental pricing engine (docs/pricing_cache.md).  All three
  /// knobs are value-exact: toggling them changes the ECC wall time,
  /// never the candidate costs or the selection.
  bool pricingCache = true;  ///< memoize priceTree by terminal set
  bool deltaPricing = true;  ///< re-price only nets whose GCells changed
  int pricingShards = 64;    ///< mutex stripes of the shared cache

  /// In-flow invariant auditing (src/check, docs/checking.md).  Off is
  /// free (a single enum compare per phase); phase-boundary audits
  /// placement/routes/demand once per iteration after the UD commit;
  /// paranoid audits after every phase, replays the ECC pricing cache
  /// against from-scratch prices, and round-trips the guide/DEF
  /// writers at iteration ends.  A dirty audit throws check::AuditError.
  /// Value-exact: no level mutates any flow state, so the run
  /// fingerprint is identical at every setting.
  check::AuditLevel auditLevel = check::AuditLevel::kOff;

  /// Spatial observability tier (docs/observability.md): when true and
  /// the obs runtime gate is on, the framework captures a congestion
  /// HeatmapSnapshot after global routing and after every UD commit
  /// (k+1 snapshots, delta-encoded in CrpFramework::heatmaps()) and
  /// fills RunReport::timeline with one record per iteration.
  /// Value-exact and schedule-independent: captures read committed
  /// state only, so no flow decision changes and the grids are
  /// bit-identical across --threads / --router-threads.
  bool snapshots = false;

  /// When non-empty, a dirty in-flow audit dumps the flight recorder
  /// (recent events + latest heatmap + the audit failures) into this
  /// directory before AuditError propagates (docs/observability.md).
  std::string flightRecorderDir;

  /// Safety cap on critical cells per iteration on top of gamma.
  int maxCriticalCells = std::numeric_limits<int>::max();

  /// Total cell-move budget across all iterations (critical + displaced
  /// conflict cells).  Mirrors the ICCAD-2020/2021 "routing with cell
  /// movement" contest constraint the paper cites ([3], [17]): those
  /// contests allow a bounded number of cell moves.  When the budget
  /// would be exceeded, the UD phase commits only the selected moves
  /// with the best estimated cost gain.  Default: unlimited.
  int maxMovesTotal = std::numeric_limits<int>::max();
};

}  // namespace crp::core
