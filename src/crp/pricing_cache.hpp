// Memoized net pricing for the ECC phase (Alg. 3).
//
// Candidate pricing re-routes the same terminal sets over and over:
// every candidate of a cell that lands in the same GCell column
// produces a byte-identical terminal set, and the baseline (stay)
// price of a net is needed by every candidate that does not move its
// pins.  The cache memoizes PatternRouter::priceTree by the canonical
// (sorted, deduplicated) terminal set, sharded under mutex stripes so
// all ThreadPool workers share hits.
//
// Lifetime/invalidation: demand maps are frozen during Alg. 3 (pattern
// routing is read-only on the RoutingGraph), so a cache is valid for at
// least one ECC phase.  The batch framework constructs a fresh cache
// per iteration (no mid-phase invalidation); the ECO engine instead
// keeps one cache alive across iterations and evicts the entries whose
// terminal bbox the rerouted region touches via invalidateTerminals()
// (docs/pricing_cache.md, docs/eco.md).
//
// Determinism: priceTree is a pure function of the terminal set and
// the frozen graph, and entries compare the full terminal vector (the
// hash only picks the shard/bucket), so a cached value is bit-identical
// to a recomputed one regardless of thread schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "groute/pattern_route.hpp"

namespace crp::groute {
struct GCellRect;  // global_router.hpp (kept out of this header)
}

namespace crp::core {

/// Sorts + deduplicates a terminal set in place (the canonical form
/// terminalsWithOverrides produces; exposed for tests).
void canonicalizeTerminals(std::vector<groute::GPoint>& terminals);

/// 64-bit hash of a canonical terminal set.  Order-sensitive by design:
/// canonicalize first.  Mixes each (layer, x, y) with a splitmix64-style
/// finalizer so distinct small sets do not collide in practice (and a
/// collision is harmless: entries compare the full key).
std::uint64_t terminalSetHash(const std::vector<groute::GPoint>& terminals);

/// Aggregated cache counters (one ECC phase, or summed over a run).
struct PricingStats {
  std::uint64_t cacheHits = 0;    ///< priced from the cache
  std::uint64_t cacheMisses = 0;  ///< pattern routes actually executed
  std::uint64_t deltaSkips = 0;   ///< nets skipped: terminals unchanged

  std::uint64_t netsPriced() const {
    return cacheHits + cacheMisses + deltaSkips;
  }
  double hitRate() const {
    const std::uint64_t reused = cacheHits + deltaSkips;
    const std::uint64_t total = reused + cacheMisses;
    return total == 0 ? 0.0 : static_cast<double>(reused) / total;
  }
  PricingStats& operator+=(const PricingStats& other) {
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
    deltaSkips += other.deltaSkips;
    return *this;
  }
};

/// Snapshot of cache contents: (canonical terminal set, price) pairs in
/// deterministic (sorted) order.  Produced by PricingCache::entries(),
/// carried out of the ECC phase through PricingOptions::cacheEntriesOut
/// and replayed by the pricing-coherence audit.
using PricingCacheEntries =
    std::vector<std::pair<std::vector<groute::GPoint>, double>>;

class PricingCache {
 public:
  /// `shards` mutex stripes (clamped to >= 1, rounded to a power of 2).
  explicit PricingCache(int shards = 64);

  /// Returns priceTree(terminals), memoized.  `terminals` must be
  /// canonical (terminalsWithOverrides output already is).  On a miss
  /// the route runs outside the shard lock using `scratch`.
  double price(const std::vector<groute::GPoint>& terminals,
               const groute::PatternRouter& pattern,
               groute::PatternRouter::Scratch& scratch);

  /// Records nets skipped entirely by delta pricing.
  void countDeltaSkip(std::uint64_t n = 1) {
    deltaSkips_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Records prices computed without consulting the cache (cache-off
  /// mode still reports how much work the ECC phase did).
  void countBypass(std::uint64_t n = 1) {
    misses_.fetch_add(n, std::memory_order_relaxed);
  }

  PricingStats stats() const;
  std::size_t size() const;  ///< resident entries across all shards

  /// Evicts every entry whose canonical terminal set `shouldEvict`
  /// selects and returns the eviction count (also published as the
  /// crp.cache.evictions obs counter).  This is the targeted
  /// invalidation path for caches that outlive one ECC phase (the ECO
  /// engine's persistent cache): after demand changes inside a region,
  /// evict the entries whose terminal bbox the region touches — the
  /// pattern-route containment contract (pattern_route.hpp) guarantees
  /// every other entry priced against state that did not change.
  /// Deterministic: the survivor set depends only on the entry keys and
  /// the predicate, never on shard layout or thread schedule.
  std::size_t invalidateTerminals(
      const std::function<bool(const std::vector<groute::GPoint>&)>&
          shouldEvict);

  /// invalidateTerminals specialized to the bbox-overlap predicate every
  /// caller actually uses: evicts entries whose terminal bbox overlaps
  /// any of `regions`.  A persistent cache holds entries for the whole
  /// die while a delta touches a sliver of it, so the scan
  /// short-circuits on the union bound of `regions` first — entries far
  /// from the dirty region cost four comparisons, not a scan of every
  /// rect.  Same determinism guarantee as invalidateTerminals.
  std::size_t invalidateRegions(
      const std::vector<groute::GCellRect>& regions);

  /// Drops every entry (counters are kept; they describe work done, not
  /// residency).  Equivalent to invalidateTerminals(always-true) minus
  /// the predicate calls.
  void clear();

  /// Snapshot of every (canonical terminal set, cached price) entry, in
  /// a deterministic order (sorted by terminal set).  The cache itself
  /// dies with the ECC phase; the snapshot is what the pricing-coherence
  /// audit (check::auditCachedPrices) replays against a from-scratch
  /// priceTree while the demand maps are still frozen.
  PricingCacheEntries entries() const;

 private:
  struct Key {
    std::vector<groute::GPoint> terminals;
    std::uint64_t hash = 0;
  };
  /// Borrowed key for the hit path: heterogeneous lookup avoids copying
  /// the terminal vector just to probe.
  struct KeyView {
    const std::vector<groute::GPoint>* terminals;
    std::uint64_t hash;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.hash);
    }
    std::size_t operator()(const KeyView& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const {
      return a.hash == b.hash && a.terminals == b.terminals;
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return a.hash == b.hash && a.terminals == *b.terminals;
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return a.hash == b.hash && *a.terminals == b.terminals;
    }
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, double, KeyHash, KeyEq> entries;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shardMask_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> deltaSkips_{0};
};

}  // namespace crp::core
