// Alg. 2 (Generate Candidate Positions) + Alg. 3 (Cost Estimation).
//
// Each critical cell receives its current position plus the ILP
// legalizer's proposals (Alg. 2 lines 1-6, run in parallel).  Every
// candidate is then priced by re-building the Steiner topology of each
// affected net and 3D-pattern-routing it against the live congestion
// state (Alg. 3, run in parallel).  Nets of displaced conflict cells
// are priced too, so a candidate pays for the collateral movement it
// causes.
//
// Pricing runs through the incremental candidate-cost engine
// (docs/pricing_cache.md): each cell's baseline net prices are
// computed once, non-current candidates re-price only the nets whose
// terminal GCell set actually changed (delta pricing), and every
// pattern route is memoized by canonical terminal set in a shared
// PricingCache.  All three layers are value-exact: enabling or
// disabling them changes wall time, never costs.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crp/pricing_cache.hpp"
#include "db/database.hpp"
#include "groute/global_router.hpp"
#include "groute/pattern_route.hpp"
#include "legalizer/ilp_legalizer.hpp"
#include "util/thread_pool.hpp"

namespace crp::core {

/// One placement candidate of a critical cell, with its bundled
/// conflict-cell displacement and the Alg. 3 estimated routing cost.
struct Candidate {
  geom::Point position;
  std::vector<std::pair<db::CellId, geom::Point>> displaced;
  double routeCost = 0.0;
  bool isCurrent = false;
};

struct CellCandidates {
  db::CellId cell = db::kInvalidId;
  std::vector<Candidate> candidates;
};

/// Switches of the incremental pricing engine (CrpOptions mirrors
/// these; the ablation bench toggles them independently).
struct PricingOptions {
  bool cacheEnabled = true;  ///< memoize priceTree by terminal set
  bool deltaEnabled = true;  ///< skip nets whose terminals are unchanged
  int cacheShards = 64;      ///< mutex stripes of the shared cache
  /// When non-null, priceCandidates snapshots the phase cache's
  /// (terminal set, price) entries here before the cache dies with the
  /// pricer.  Consumed by the paranoid-level pricing-coherence audit,
  /// which must replay the entries while demand is still frozen.
  PricingCacheEntries* cacheEntriesOut = nullptr;
  /// When non-null, the pricer memoizes into this caller-owned cache
  /// instead of a phase-local one, so entries survive the phase.  The
  /// caller owns coherence: it must evict (invalidateTerminals) every
  /// entry whose terminal bbox saw a demand change before the next
  /// phase prices against it.  This is how the ECO engine reuses
  /// pricing work across its restricted iterations (docs/eco.md);
  /// cacheShards is ignored when set.  Reported stats stay per-phase
  /// (deltas against the cache's counters at pricer construction).
  PricingCache* sharedCache = nullptr;
};

/// Pin terminals of `net` with some cells hypothetically relocated.
std::vector<groute::GPoint> terminalsWithOverrides(
    const db::Database& db, const groute::RoutingGraph& graph, db::NetId net,
    const std::unordered_map<db::CellId, geom::Point>& overrides);

/// Alg. 3 for one candidate: total pattern-route price of every net
/// touching the moved cells, at the hypothetical positions.  Reference
/// implementation (no cache, no delta); the engine in priceCandidates
/// computes the same per-net prices.
double estimateCandidateCost(
    const db::Database& db, const groute::GlobalRouter& router,
    const groute::PatternRouter& pattern, db::CellId cell,
    const Candidate& candidate);

/// Alg. 2 (GCP phase): builds the candidate lists — current position
/// plus the legalizer's proposals.  Candidates that would displace
/// another critical cell are dropped (the selection ILP treats each
/// critical cell's assignment as independent; see DESIGN.md §6).
/// `pool` may be null for single-threaded execution.  With `tiles`,
/// cells are scheduled as per-tile task groups (one pool unit per tile
/// holding critical cells, cells in criticalSet order within a group)
/// for spatial locality; per-cell results are position-only, so the
/// grouping is value-exact.
std::vector<CellCandidates> buildCandidates(
    const db::Database& db, const legalizer::IlpLegalizer& legalizer,
    const std::vector<db::CellId>& criticalSet, util::ThreadPool* pool,
    const groute::TileGrid* tiles = nullptr);

/// Alg. 3 (ECC phase): prices every candidate in place through the
/// incremental engine.  `stats`, when given, receives the phase's
/// cache/delta counters.  With `tiles`, cells are priced as per-tile
/// task groups (docs/tiling.md); every counted pricing outcome is
/// exactly one event per (cell, net, candidate) regardless of
/// schedule, so netsPriced — and the fingerprint — are unchanged by
/// the grouping (only the hit/skip split, excluded from the
/// fingerprint, can shift).
void priceCandidates(const db::Database& db,
                     const groute::GlobalRouter& router,
                     std::vector<CellCandidates>& candidates,
                     util::ThreadPool* pool,
                     const PricingOptions& pricing,
                     PricingStats* stats = nullptr,
                     const groute::TileGrid* tiles = nullptr);
void priceCandidates(const db::Database& db,
                     const groute::GlobalRouter& router,
                     std::vector<CellCandidates>& candidates,
                     util::ThreadPool* pool);

/// Convenience: buildCandidates + priceCandidates.
std::vector<CellCandidates> generateCandidates(
    const db::Database& db, const groute::GlobalRouter& router,
    const legalizer::IlpLegalizer& legalizer,
    const std::vector<db::CellId>& criticalSet, util::ThreadPool* pool,
    const PricingOptions& pricing = {}, PricingStats* stats = nullptr);

}  // namespace crp::core
