#include "crp/critical_cells.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace crp::core {

std::vector<double> cellRouteCosts(const db::Database& db,
                                   const groute::GlobalRouter& router) {
  // Net costs are shared across cells; price each net once.
  std::vector<double> netCost(db.numNets(), 0.0);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    netCost[n] = router.netRouteCost(n);
  }
  std::vector<double> cellCost(db.numCells(), 0.0);
  for (db::CellId c = 0; c < db.numCells(); ++c) {
    for (const db::NetId n : db.netsOfCell(c)) {
      cellCost[c] += netCost[n];
    }
  }
  return cellCost;
}

std::vector<db::CellId> labelCriticalCells(
    const db::Database& db, const groute::GlobalRouter& router,
    const std::unordered_set<db::CellId>& historyCritical,
    const std::unordered_set<db::CellId>& historyMoved, util::Rng& rng,
    const CrpOptions& options, int* dampedOut,
    const std::unordered_set<db::CellId>* restrictTo) {
  if (dampedOut != nullptr) *dampedOut = 0;
  const std::vector<double> cost = cellRouteCosts(db, router);

  std::vector<db::CellId> order(db.numCells());
  std::iota(order.begin(), order.end(), 0);
  if (options.prioritizeByCost) {
    std::sort(order.begin(), order.end(), [&](db::CellId a, db::CellId b) {
      if (cost[a] != cost[b]) return cost[a] > cost[b];
      return a < b;
    });
  } else {
    // Ablation A2: no criticality priority (the [18] behaviour).
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.uniformInt(0, i - 1))]);
    }
  }

  // Line 15 cap: gamma over the population Alg. 1 actually ranks — the
  // whole circuit, or the ECO scope when restricted (with a floor of
  // one so tiny scopes still move).
  const std::size_t population =
      restrictTo != nullptr
          ? std::max<std::size_t>(1, restrictTo->size())
          : static_cast<std::size_t>(db.numCells());
  const std::size_t cap = std::min<std::size_t>(
      std::max<std::size_t>(restrictTo != nullptr ? 1 : 0,
                            static_cast<std::size_t>(options.gamma *
                                                     population)),
      static_cast<std::size_t>(options.maxCriticalCells));

  std::unordered_set<db::CellId> selected;
  std::vector<db::CellId> criticalSet;
  for (const db::CellId c : order) {
    if (criticalSet.size() >= cap) break;  // line 15
    if (restrictTo != nullptr && restrictTo->count(c) == 0) continue;
    if (db.cell(c).fixed) continue;
    if (cost[c] <= 0.0) continue;  // unconnected / unrouted cell

    // Line 6: skip when any connected cell is already selected.
    bool neighborSelected = false;
    for (const db::CellId other : db.connectedCells(c)) {
      if (selected.count(other) > 0) {
        neighborSelected = true;
        break;
      }
    }
    if (neighborSelected) continue;

    // Lines 9-12: history-damped acceptance.
    if (options.historyDamping) {
      const int histC = historyCritical.count(c) > 0 ? 1 : 0;
      const int histM = historyMoved.count(c) > 0 ? 1 : 0;
      const double acceptance =
          std::exp(-(histC + histM) / options.temperature);
      if (!(acceptance > rng.uniform())) {
        if (dampedOut != nullptr) ++*dampedOut;
        continue;
      }
    }

    selected.insert(c);
    criticalSet.push_back(c);
  }
  return criticalSet;
}

}  // namespace crp::core
