// Alg. 1: Label Critical Cells.
//
// Cells are ranked by the cost of their nets' committed global routes
// (live Eq. 10 prices), then greedily collected subject to:
//   * no two selected cells share a net (line 6),
//   * previously-critical / previously-moved cells are damped with the
//     simulated-annealing probability exp(-(hist_c + hist_m)/T)
//     (lines 9-12),
//   * the selection stops at gamma * |C| cells (line 15).
#pragma once

#include <unordered_set>
#include <vector>

#include "crp/options.hpp"
#include "db/database.hpp"
#include "groute/global_router.hpp"
#include "util/rng.hpp"

namespace crp::core {

/// Per-cell routing criticality: sum of the live route costs of the
/// cell's nets (the sort key of Alg. 1 line 3).
std::vector<double> cellRouteCosts(const db::Database& db,
                                   const groute::GlobalRouter& router);

/// `dampedOut` (optional) receives the number of otherwise-eligible
/// cells the annealing history draw rejected (Alg. 1 lines 9-12) — the
/// flow timeline's labeled/damped split.  Counting never consumes an
/// extra RNG draw, so passing it cannot change the selection.
///
/// `restrictTo` (optional) limits the selection to a cell subset — the
/// ECO engine's "cells whose cost neighborhood intersects the delta".
/// Out-of-scope cells are skipped before any RNG draw, and the line-15
/// cap becomes gamma * |restrictTo| (floored at one), so a restricted
/// run is deterministic given the scope and never starves a small one.
std::vector<db::CellId> labelCriticalCells(
    const db::Database& db, const groute::GlobalRouter& router,
    const std::unordered_set<db::CellId>& historyCritical,
    const std::unordered_set<db::CellId>& historyMoved, util::Rng& rng,
    const CrpOptions& options, int* dampedOut = nullptr,
    const std::unordered_set<db::CellId>* restrictTo = nullptr);

}  // namespace crp::core
