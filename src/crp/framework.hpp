// The CR&P framework driver (paper Fig. 1, step 2).
//
// Each iteration executes the five phases:
//   LCC  Label Critical Cells            (Alg. 1)
//   GCP  Generate Candidate Positions    (Alg. 2, ILP legalizer)
//   ECC  Estimate Candidates Cost        (Alg. 3, 3D pattern route)
//   SEL  Find Best Candidates            (Eq. 12 ILP)
//   UD   Update Database                 (§IV.B.5: move + reroute)
// and records per-phase wall-clock plus pricing/ILP counters into an
// obs::RunReport (Fig. 2 / Fig. 3 and the --report-out JSON).
#pragma once

#include <unordered_set>

#include "crp/candidate_generation.hpp"
#include "crp/critical_cells.hpp"
#include "crp/options.hpp"
#include "crp/selection.hpp"
#include "db/database.hpp"
#include "groute/global_router.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace crp::core {

/// Phase names (Fig. 3 buckets GCP / ECC / UD; LCC and SEL fall into
/// the figure's "Misc").
inline constexpr const char* kPhaseLcc = "LCC";
inline constexpr const char* kPhaseGcp = "GCP";
inline constexpr const char* kPhaseEcc = "ECC";
inline constexpr const char* kPhaseSel = "SEL";
inline constexpr const char* kPhaseUd = "UD";

/// The five phases in flow order — the single source of phase names.
/// RunReport phases, telemetry output, and the schema test all iterate
/// this array instead of re-typing the literals.
inline constexpr const char* kPhases[] = {kPhaseLcc, kPhaseGcp, kPhaseEcc,
                                          kPhaseSel, kPhaseUd};
inline constexpr int kNumPhases = 5;

struct IterationReport {
  int criticalCells = 0;
  int movedCells = 0;
  int displacedCells = 0;  ///< conflict cells moved alongside
  int reroutedNets = 0;
  double selectedCost = 0.0;  ///< Eq. 12 objective of the selection
  PricingStats pricing;       ///< ECC engine counters for this iteration
  double eccSeconds = 0.0;    ///< wall time of the ECC phase
};

struct CrpReport {
  std::vector<IterationReport> iterations;
  int totalMoves = 0;
  int totalReroutes = 0;
  PricingStats pricing;  ///< summed over iterations
};

/// The UD phase's move-commit plan: which selected moves to apply.
struct CommitPlan {
  /// Indices into the candidates vector, in commit (gain) order.
  std::vector<std::size_t> committed;
  int movesNeeded = 0;    ///< cells moved by the committed set
  int conflictSkips = 0;  ///< moves dropped: cell or site already claimed
  int budgetSkips = 0;    ///< moves dropped: over the remaining budget
};

/// Plans the UD commit for one iteration (§IV.B.5 plus the ICCAD-style
/// move budget).  Ranks the non-current selected moves by estimated
/// gain — the cost of the cell's *current* candidate (isCurrent entry)
/// minus the chosen one — then walks them in rank order, skipping any
/// move that (a) moves a cell another committed move already moves or
/// displaces, (b) lands a cell on a site another committed move already
/// claims, or (c) does not fit the remaining move budget.  Without the
/// claim tracking two selected moves could double-move a shared
/// displaced cell or stack two cells on one site.
CommitPlan planMoveCommits(const std::vector<CellCandidates>& candidates,
                           const std::vector<int>& chosen, int budget);

class CrpFramework {
 public:
  /// The framework mutates `db` (cell positions) and `router` (routes
  /// and demand maps); both must outlive it.
  CrpFramework(db::Database& db, groute::GlobalRouter& router,
               CrpOptions options = {});

  /// Runs options.iterations iterations (the paper's k).
  CrpReport run();

  /// Runs a single iteration (exposed for tests and custom loops).
  IterationReport runIteration();

  /// The observability run report.  Phase wall times and per-iteration
  /// stats accumulate as iterations execute; config, final router
  /// stats, and metric-counter deltas (relative to the registry
  /// snapshot taken at construction) are refreshed on each call.
  const obs::RunReport& runReport();

  const std::unordered_set<db::CellId>& movedSet() const { return moved_; }
  const std::unordered_set<db::CellId>& criticalHistory() const {
    return criticalHistory_;
  }

  /// Delta-encoded congestion snapshots captured this run (empty
  /// unless options.snapshots and the obs gate are on): one "post-gr"
  /// baseline plus one per iteration — the k+1 heatmaps bracketing the
  /// RunReport timeline.
  const obs::HeatmapSeries& heatmaps() const { return heatmaps_; }

 private:
  /// Adds `seconds` to the named phase's RunReport bucket.
  void chargePhase(const char* phase, double seconds);

  /// True when the spatial tier records this run (options.snapshots
  /// and the runtime obs gate both on).
  bool spatialEnabled() const;

  /// Captures a heatmap into heatmaps_ and hands a copy to the flight
  /// recorder as "latest"; returns the series' newest snapshot.
  const obs::HeatmapSnapshot& captureSnapshot(std::string label,
                                              int iteration);

  /// The options.auditLevel hook, called at the end of each phase.
  /// `iterationEnd` marks the post-UD boundary (the only point the
  /// phase-boundary level audits; paranoid adds the I/O round-trips
  /// there).  `cacheEntries` carries the ECC cache snapshot for the
  /// pricing-coherence replay — meaningful only right after ECC, while
  /// the demand maps are still frozen.  Read-only on all flow state;
  /// throws check::AuditError when a report comes back dirty.
  void maybeAudit(const char* phase, bool iterationEnd,
                  const PricingCacheEntries* cacheEntries = nullptr);

  db::Database& db_;
  groute::GlobalRouter& router_;
  CrpOptions options_;
  util::Rng rng_;
  util::ThreadPool pool_;
  obs::RunReport runReport_;
  obs::MetricsSnapshot baseline_;  ///< registry state at construction
  obs::HeatmapSeries heatmaps_;    ///< spatial tier (options.snapshots)
  std::unordered_set<db::CellId> criticalHistory_;  ///< db.critical_hist
  std::unordered_set<db::CellId> moved_;            ///< db.moved_set
  int movesUsed_ = 0;  ///< against options.maxMovesTotal
};

}  // namespace crp::core
