// The CR&P framework driver (paper Fig. 1, step 2).
//
// Each iteration executes the five phases:
//   LCC  Label Critical Cells            (Alg. 1)
//   GCP  Generate Candidate Positions    (Alg. 2, ILP legalizer)
//   ECC  Estimate Candidates Cost        (Alg. 3, 3D pattern route)
//   SEL  Find Best Candidates            (Eq. 12 ILP)
//   UD   Update Database                 (§IV.B.5: move + reroute)
// and records per-phase wall-clock plus pricing/ILP counters into an
// obs::RunReport (Fig. 2 / Fig. 3 and the --report-out JSON).
#pragma once

#include <memory>
#include <unordered_set>

#include "crp/candidate_generation.hpp"
#include "crp/critical_cells.hpp"
#include "crp/options.hpp"
#include "crp/selection.hpp"
#include "db/database.hpp"
#include "db/eco.hpp"
#include "groute/global_router.hpp"
#include "obs/context.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace crp::core {

/// Phase names (Fig. 3 buckets GCP / ECC / UD; LCC and SEL fall into
/// the figure's "Misc").
inline constexpr const char* kPhaseLcc = "LCC";
inline constexpr const char* kPhaseGcp = "GCP";
inline constexpr const char* kPhaseEcc = "ECC";
inline constexpr const char* kPhaseSel = "SEL";
inline constexpr const char* kPhaseUd = "UD";

/// The five phases in flow order — the single source of phase names.
/// RunReport phases, telemetry output, and the schema test all iterate
/// this array instead of re-typing the literals.
inline constexpr const char* kPhases[] = {kPhaseLcc, kPhaseGcp, kPhaseEcc,
                                          kPhaseSel, kPhaseUd};
inline constexpr int kNumPhases = 5;

struct IterationReport {
  int criticalCells = 0;
  int movedCells = 0;
  int displacedCells = 0;  ///< conflict cells moved alongside
  int reroutedNets = 0;
  double selectedCost = 0.0;  ///< Eq. 12 objective of the selection
  PricingStats pricing;       ///< ECC engine counters for this iteration
  double eccSeconds = 0.0;    ///< wall time of the ECC phase
};

struct CrpReport {
  std::vector<IterationReport> iterations;
  int totalMoves = 0;
  int totalReroutes = 0;
  PricingStats pricing;  ///< summed over iterations
};

/// Knobs of one runEco call (CrpOptions still governs pricing, audit
/// level, threads and the RNG stream).
struct EcoOptions {
  int iterations = 1;  ///< restricted CR&P iterations after the patch
  /// Dirty-region halo in gcells: rip-up and the candidate scope use
  /// the delta's footprint grown by this much, so cost neighborhoods
  /// that merely border the change still participate.
  int haloGCells = 2;
  /// Keep the persistent pricing cache across runEco calls (entries in
  /// clean regions carry over; dirty ones are evicted).  Off forces a
  /// cold cache per call — the ablation/debug switch.
  bool reuseCache = true;
  /// Candidates proposed per critical cell during the restricted
  /// iterations (full runs use LegalizerOptions::maxCandidates).  The
  /// base placement already converged and the delta is small, so the
  /// top-ranked Eq. 11 slots carry the gain; narrowing the exploration
  /// cuts the dominant GCP/ECC per-cell cost on the eco side while the
  /// eco-vs-scratch parity bounds guard the quality.  <= 0 keeps the
  /// full-run width.
  int maxCandidates = 4;
};

/// What one runEco call did (eco.* obs counters mirror this).
struct EcoReport {
  // Delta application (EcoApplyResult counts).
  int movedCells = 0;
  int addedCells = 0;
  int removedCells = 0;
  int addedNets = 0;
  int rewiredPins = 0;

  // Dirty-region patch.
  int dirtyRects = 0;       ///< rects in the dirty region
  int dirtyNets = 0;        ///< nets ripped up / rerouted by the patch
  int failedReroutes = 0;   ///< patch reroutes that restored old routes
  int scopeCells = 0;       ///< cells eligible for restricted iterations
  std::size_t cacheEvictions = 0;  ///< pricing entries evicted this call

  double patchSeconds = 0.0;  ///< apply + dirty tracking + patch reroute
  double totalSeconds = 0.0;  ///< whole runEco call

  CrpReport crp;  ///< the restricted iterations' report
};

/// The UD phase's move-commit plan: which selected moves to apply.
struct CommitPlan {
  /// Indices into the candidates vector, in commit (gain) order.
  std::vector<std::size_t> committed;
  int movesNeeded = 0;    ///< cells moved by the committed set
  int conflictSkips = 0;  ///< moves dropped: cell or site already claimed
  int budgetSkips = 0;    ///< moves dropped: over the remaining budget
};

/// The deterministic configuration surface of a run as an ordered JSON
/// object: every CrpOptions knob that can change flow decisions or
/// QoR (iterations, gamma, seed, tiling, pricing switches, budgets) —
/// not the engine-placement knobs (threads, pools, contexts) that are
/// value-exact by contract.  The run ledger digests this document
/// (obs::fnv1a64Hex) so "same options" is checkable across runs and
/// hosts without storing the whole option set.
obs::Json optionsFingerprintJson(const CrpOptions& options);

/// Plans the UD commit for one iteration (§IV.B.5 plus the ICCAD-style
/// move budget).  Ranks the non-current selected moves by estimated
/// gain — the cost of the cell's *current* candidate (isCurrent entry)
/// minus the chosen one — then walks them in rank order, skipping any
/// move that (a) moves a cell another committed move already moves or
/// displaces, (b) lands a cell on a site another committed move already
/// claims, or (c) does not fit the remaining move budget.  Without the
/// claim tracking two selected moves could double-move a shared
/// displaced cell or stack two cells on one site.
CommitPlan planMoveCommits(const std::vector<CellCandidates>& candidates,
                           const std::vector<int>& chosen, int budget);

class CrpFramework {
 public:
  /// The framework mutates `db` (cell positions) and `router` (routes
  /// and demand maps); both must outlive it, as must
  /// options.obsContext and options.sharedPool when set.
  CrpFramework(db::Database& db, groute::GlobalRouter& router,
               CrpOptions options = {});

  /// Runs options.iterations iterations (the paper's k).  Also drops
  /// the persistent ECO pricing cache: a full run changes demand
  /// everywhere, so nothing in it could survive.
  CrpReport run();

  /// Runs a single iteration (exposed for tests and custom loops).
  IterationReport runIteration();

  /// The incremental entry point (docs/eco.md): applies `delta`
  /// transactionally, invalidates only the dirty gcell region — routes
  /// crossing it are ripped up and rerouted through the batch planner,
  /// pricing-cache entries whose terminal bbox it touches are evicted —
  /// and then runs eco.iterations CR&P iterations restricted to cells
  /// whose nets intersect the region.  Throws db::EcoError (database
  /// untouched) for an invalid delta; audit behavior and determinism
  /// contracts match run().  Wall clock scales with the delta, not the
  /// design: that is the ≥10x win BENCH_eco.json records.
  EcoReport runEco(const db::EcoDelta& delta, const EcoOptions& eco = {});

  /// The observability run report.  Phase wall times and per-iteration
  /// stats accumulate as iterations execute; config, final router
  /// stats, and metric-counter deltas (relative to the registry
  /// snapshot taken at construction) are refreshed on each call.
  const obs::RunReport& runReport();

  /// Called after every completed iteration (run, runEco, or a manual
  /// runIteration) with the iteration index and its report — while the
  /// framework's ObsContext is still installed, so the callback can
  /// read runReport().timeline / heatmaps() to stream progress (the
  /// serve daemon's per-iteration events).  Keep it cheap; it runs on
  /// the flow thread.
  void setIterationCallback(
      std::function<void(int, const IterationReport&)> callback) {
    iterationCallback_ = std::move(callback);
  }

  /// The context this framework records into (never null after
  /// construction; the ambient/default one unless options.obsContext
  /// was set).
  obs::ObsContext& obsContext() { return *obsCtx_; }

  const std::unordered_set<db::CellId>& movedSet() const { return moved_; }
  const std::unordered_set<db::CellId>& criticalHistory() const {
    return criticalHistory_;
  }

  /// Delta-encoded congestion snapshots captured this run (empty
  /// unless options.snapshots and the obs gate are on): one "post-gr"
  /// baseline plus one per iteration — the k+1 heatmaps bracketing the
  /// RunReport timeline.
  const obs::HeatmapSeries& heatmaps() const { return heatmaps_; }

 private:
  /// Adds `seconds` to the named phase's RunReport bucket.
  void chargePhase(const char* phase, double seconds);

  /// True when the spatial tier records this run (options.snapshots
  /// and the runtime obs gate both on).
  bool spatialEnabled() const;

  /// Captures a heatmap into heatmaps_ and hands a copy to the flight
  /// recorder as "latest"; returns the series' newest snapshot.
  const obs::HeatmapSnapshot& captureSnapshot(std::string label,
                                              int iteration);

  /// The options.auditLevel hook, called at the end of each phase.
  /// `iterationEnd` marks the post-UD boundary (the only point the
  /// phase-boundary level audits; paranoid adds the I/O round-trips
  /// there).  `cacheEntries` carries the ECC cache snapshot for the
  /// pricing-coherence replay — meaningful only right after ECC, while
  /// the demand maps are still frozen.  Read-only on all flow state;
  /// throws check::AuditError when a report comes back dirty.
  void maybeAudit(const char* phase, bool iterationEnd,
                  const PricingCacheEntries* cacheEntries = nullptr);

  /// Evicts persistent-cache entries whose terminal bbox overlaps the
  /// about-to-change region of `nets` (each net's current extent plus
  /// the maze margin and one halo gcell — the same write-region bound
  /// the batch planner uses).  Call *before* the rip-up/reroute so the
  /// extents still cover the old routes.  No-op without an ECO cache.
  void invalidateEcoCache(const std::vector<db::NetId>& nets);

  db::Database& db_;
  groute::GlobalRouter& router_;
  CrpOptions options_;
  util::Rng rng_;
  /// Resolved at construction: options.obsContext, else the ambient
  /// context of the constructing thread.  Every entry point installs
  /// it, so metrics/spans/events/log lines land per-session.
  obs::ObsContext* obsCtx_ = nullptr;
  std::unique_ptr<util::ThreadPool> ownedPool_;  ///< null on sharedPool
  util::ThreadPool* pool_ = nullptr;
  std::function<void(int, const IterationReport&)> iterationCallback_;
  obs::RunReport runReport_;
  obs::MetricsSnapshot baseline_;  ///< context registry at construction
  obs::HeatmapSeries heatmaps_;    ///< spatial tier (options.snapshots)
  std::unordered_set<db::CellId> criticalHistory_;  ///< db.critical_hist
  std::unordered_set<db::CellId> moved_;            ///< db.moved_set
  int movesUsed_ = 0;  ///< against options.maxMovesTotal

  // ---- ECO mode (set for the span of runEco's iterations) ----------------
  bool ecoMode_ = false;
  /// Candidate scope of the current runEco call (null = unrestricted).
  const std::unordered_set<db::CellId>* ecoScope_ = nullptr;
  /// EcoOptions::maxCandidates for the current runEco call (<= 0 keeps
  /// the full-run legalizer width).
  int ecoMaxCandidates_ = 0;
  /// Pricing cache that outlives individual ECC phases.  run() replaces
  /// it wholesale (fresh GR invalidates everything) and then keeps it
  /// across its iterations; runEco inherits the warm cache.  Cached
  /// values are bit-identical to recomputed ones (pricing_cache.hpp),
  /// so goldens are untouched.
  std::unique_ptr<PricingCache> ecoCache_;
  std::size_t ecoEvictions_ = 0;  ///< evictions within the current runEco
};

}  // namespace crp::core
