#include "crp/pricing_cache.hpp"

#include <algorithm>
#include <bit>

#include "groute/global_router.hpp"
#include "obs/obs.hpp"

namespace crp::core {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void canonicalizeTerminals(std::vector<groute::GPoint>& terminals) {
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
}

std::uint64_t terminalSetHash(const std::vector<groute::GPoint>& terminals) {
  // Seed with the size so {} and {origin} differ; chain mixes so the
  // hash depends on position (canonical order makes that well-defined).
  std::uint64_t h = mix64(0x7275746552435026ULL ^ terminals.size());
  for (const groute::GPoint& t : terminals) {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.x)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.y));
    h = mix64(h ^ packed);
    h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      t.layer)));
  }
  return h;
}

PricingCache::PricingCache(int shards) {
  const auto count = std::bit_ceil(
      static_cast<std::size_t>(std::max(1, shards)));
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shardMask_ = count - 1;
}

double PricingCache::price(const std::vector<groute::GPoint>& terminals,
                           const groute::PatternRouter& pattern,
                           groute::PatternRouter::Scratch& scratch) {
  const std::uint64_t hash = terminalSetHash(terminals);
  // The top bits pick the shard; unordered_map buckets use the low ones.
  Shard& shard = *shards_[(hash >> 48) & shardMask_];
  {
    std::lock_guard lock(shard.mutex);
    // Heterogeneous probe: no terminal-vector copy on the hit path.
    const auto it = shard.entries.find(KeyView{&terminals, hash});
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Miss: route outside the lock so shard contention never serializes
  // pattern routing.  A concurrent duplicate computes the same value
  // (priceTree is deterministic), so try_emplace keeps the first.
  const double price = pattern.priceTree(terminals, scratch);
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(shard.mutex);
    shard.entries.try_emplace(Key{terminals, hash}, price);
  }
  return price;
}

PricingStats PricingCache::stats() const {
  PricingStats stats;
  stats.cacheHits = hits_.load(std::memory_order_relaxed);
  stats.cacheMisses = misses_.load(std::memory_order_relaxed);
  stats.deltaSkips = deltaSkips_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t PricingCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::size_t PricingCache::invalidateTerminals(
    const std::function<bool(const std::vector<groute::GPoint>&)>&
        shouldEvict) {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (shouldEvict(it->first.terminals)) {
        it = shard->entries.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  CRP_OBS_COUNT("crp.cache.evictions", evicted);
  return evicted;
}

std::size_t PricingCache::invalidateRegions(
    const std::vector<groute::GCellRect>& regions) {
  if (regions.empty()) return 0;
  groute::GCellRect bound;
  for (const groute::GCellRect& region : regions) bound.cover(region);
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      groute::GCellRect bbox;
      for (const groute::GPoint& t : it->first.terminals) {
        bbox.cover(t.x, t.y);
      }
      if (bbox.overlaps(bound) && overlapsAny(bbox, regions)) {
        it = shard->entries.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  CRP_OBS_COUNT("crp.cache.evictions", evicted);
  return evicted;
}

void PricingCache::clear() {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    evicted += shard->entries.size();
    shard->entries.clear();
  }
  CRP_OBS_COUNT("crp.cache.evictions", evicted);
}

PricingCacheEntries PricingCache::entries() const {
  PricingCacheEntries out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const auto& [key, price] : shard.get()->entries) {
      out.emplace_back(key.terminals, price);
    }
  }
  // Hash-map iteration order is schedule-dependent; sorting keeps audit
  // reports and artifacts deterministic.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace crp::core
