// LEF reader covering the ISPD-2018 subset: UNITS, SITE, routing/cut
// LAYERs, fixed VIAs and MACROs (SIZE / PIN / PORT / OBS).
#pragma once

#include <string>
#include <utility>

#include "db/library.hpp"
#include "db/tech.hpp"

namespace crp::lefdef {

/// Parses LEF text into a technology + cell library.
/// Throws ParseError on malformed input.
std::pair<db::Tech, db::Library> parseLef(const std::string& text);

/// Convenience: reads a file and parses it.
std::pair<db::Tech, db::Library> parseLefFile(const std::string& path);

}  // namespace crp::lefdef
