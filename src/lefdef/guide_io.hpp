// Route-guide file I/O in the ISPD-2018 / TritonRoute format:
//
//   netname
//   (
//   xlo ylo xhi yhi LayerName
//   ...
//   )
//
// Guides are the contract between the global router (which emits them)
// and the detailed router (which must stay inside them).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "geom/geometry.hpp"

namespace crp::lefdef {

/// One guide rectangle on one routing layer.
struct GuideRect {
  geom::Rect rect;
  int layer = 0;

  friend bool operator==(const GuideRect&, const GuideRect&) = default;
};

/// All guides of one net.
struct NetGuide {
  std::string net;
  std::vector<GuideRect> rects;
};

void writeGuides(std::ostream& os, const db::Database& db,
                 const std::vector<NetGuide>& guides);

void writeGuidesFile(const std::string& path, const db::Database& db,
                     const std::vector<NetGuide>& guides);

std::vector<NetGuide> parseGuides(const std::string& text,
                                  const db::Tech& tech);

std::vector<NetGuide> parseGuidesFile(const std::string& path,
                                      const db::Tech& tech);

}  // namespace crp::lefdef
