// Token stream shared by the LEF and DEF parsers.
//
// LEF/DEF are whitespace/semicolon-delimited keyword languages with
// '#' end-of-line comments and quoted strings.  The tokenizer exposes
// a cursor with peek/next/expect plus typed readers (numbers in
// microns or DBU).  Parse errors throw ParseError with the 1-based
// line number of the offending token.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace crp::lefdef {

struct ParseError : std::runtime_error {
  ParseError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line(line) {}
  int line;
};

struct Token {
  std::string text;
  int line = 0;
};

class Tokenizer {
 public:
  /// Tokenizes the full input.  '#' comments are stripped; '(' ')' ';'
  /// are standalone tokens; quoted strings become single tokens without
  /// the quotes.
  explicit Tokenizer(std::string_view input);

  bool atEnd() const { return pos_ >= tokens_.size(); }
  const Token& peek() const;
  /// Lookahead by `offset` tokens (0 == peek()).
  const Token& peek(std::size_t offset) const;
  Token next();

  /// Consumes a token and checks it equals `expected`.
  void expect(std::string_view expected);

  /// Consumes tokens until (and including) the next ';'.
  void skipStatement();

  /// True and consumes when the next token equals `text`.
  bool accept(std::string_view text);

  /// Reads a token as double (LEF micron values).
  double nextDouble();
  /// Reads a token as int64 (DEF DBU values).
  long long nextInt();

  int currentLine() const;

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace crp::lefdef
