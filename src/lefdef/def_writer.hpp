// DEF writer: the framework's primary output (paper Fig. 1 — "the
// output is a DEF file").  Emits the subset the parser reads back.
#pragma once

#include <ostream>
#include <string>

#include "db/database.hpp"

namespace crp::lefdef {

void writeDef(std::ostream& os, const db::Database& db);

void writeDefFile(const std::string& path, const db::Database& db);

}  // namespace crp::lefdef
