#include "lefdef/tokenizer.hpp"

#include <cctype>
#include <cstdlib>

namespace crp::lefdef {

Tokenizer::Tokenizer(std::string_view input) {
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == ';') {
      tokens_.push_back(Token{std::string(1, c), line});
      ++i;
      continue;
    }
    if (c == '"') {
      std::size_t begin = ++i;
      while (i < n && input[i] != '"') ++i;
      tokens_.push_back(Token{std::string(input.substr(begin, i - begin)),
                              line});
      if (i < n) ++i;  // closing quote
      continue;
    }
    std::size_t begin = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(input[i])) &&
           input[i] != '(' && input[i] != ')' && input[i] != ';' &&
           input[i] != '#') {
      ++i;
    }
    tokens_.push_back(Token{std::string(input.substr(begin, i - begin)),
                            line});
  }
}

const Token& Tokenizer::peek() const { return peek(0); }

const Token& Tokenizer::peek(std::size_t offset) const {
  if (pos_ + offset >= tokens_.size()) {
    static const Token kEof{"<eof>", -1};
    return kEof;
  }
  return tokens_[pos_ + offset];
}

Token Tokenizer::next() {
  if (atEnd()) throw ParseError("unexpected end of input", currentLine());
  return tokens_[pos_++];
}

void Tokenizer::expect(std::string_view expected) {
  const Token token = next();
  if (token.text != expected) {
    throw ParseError("expected '" + std::string(expected) + "', got '" +
                         token.text + "'",
                     token.line);
  }
}

void Tokenizer::skipStatement() {
  while (!atEnd()) {
    if (next().text == ";") return;
  }
}

bool Tokenizer::accept(std::string_view text) {
  if (!atEnd() && peek().text == text) {
    ++pos_;
    return true;
  }
  return false;
}

double Tokenizer::nextDouble() {
  const Token token = next();
  char* end = nullptr;
  const double value = std::strtod(token.text.c_str(), &end);
  if (end == token.text.c_str() || *end != '\0') {
    throw ParseError("expected number, got '" + token.text + "'", token.line);
  }
  return value;
}

long long Tokenizer::nextInt() {
  const Token token = next();
  char* end = nullptr;
  const long long value = std::strtoll(token.text.c_str(), &end, 10);
  if (end == token.text.c_str() || *end != '\0') {
    throw ParseError("expected integer, got '" + token.text + "'",
                     token.line);
  }
  return value;
}

int Tokenizer::currentLine() const {
  if (tokens_.empty()) return 0;
  if (pos_ >= tokens_.size()) return tokens_.back().line;
  return tokens_[pos_].line;
}

}  // namespace crp::lefdef
