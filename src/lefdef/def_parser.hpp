// DEF reader covering the ISPD-2018 subset: DIEAREA, ROW, TRACKS,
// GCELLGRID, COMPONENTS, PINS, NETS, BLOCKAGES.  Macro and pin names
// are resolved against a previously parsed technology/library.
#pragma once

#include <string>

#include "db/design.hpp"
#include "db/library.hpp"
#include "db/tech.hpp"

namespace crp::lefdef {

db::Design parseDef(const std::string& text, const db::Tech& tech,
                    const db::Library& lib);

db::Design parseDefFile(const std::string& path, const db::Tech& tech,
                        const db::Library& lib);

}  // namespace crp::lefdef
