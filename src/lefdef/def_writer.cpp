#include "lefdef/def_writer.hpp"

#include <fstream>
#include <stdexcept>

namespace crp::lefdef {

namespace {

using db::Database;

void writePoint(std::ostream& os, const geom::Point& p) {
  os << "( " << p.x << ' ' << p.y << " )";
}

}  // namespace

void writeDef(std::ostream& os, const Database& db) {
  const auto& design = db.design();
  const auto& tech = db.tech();

  os << "VERSION 5.8 ;\n";
  os << "DIVIDERCHAR \"/\" ;\n";
  os << "BUSBITCHARS \"[]\" ;\n";
  os << "DESIGN " << design.name << " ;\n";
  os << "UNITS DISTANCE MICRONS " << tech.dbuPerMicron << " ;\n\n";

  os << "DIEAREA ";
  writePoint(os, {design.dieArea.xlo, design.dieArea.ylo});
  os << ' ';
  writePoint(os, {design.dieArea.xhi, design.dieArea.yhi});
  os << " ;\n\n";

  for (const auto& row : design.rows) {
    os << "ROW " << row.name << ' ' << tech.site.name << ' ' << row.origin.x
       << ' ' << row.origin.y << ' ' << geom::orientationName(row.orient)
       << " DO " << row.numSites << " BY 1 STEP " << tech.site.width
       << " 0 ;\n";
  }
  os << '\n';

  for (const auto& grid : design.tracks) {
    os << "TRACKS " << (grid.dir == db::LayerDir::kVertical ? 'X' : 'Y') << ' '
       << grid.start << " DO " << grid.count << " STEP " << grid.step
       << " LAYER " << tech.layer(grid.layer).name << " ;\n";
  }
  os << '\n';

  if (design.gcellCountX > 0 && design.gcellCountY > 0) {
    // DEF records grid *lines* (cells + 1) with an average step; the
    // parser recomputes exact boundaries from the die area.
    os << "GCELLGRID X " << design.dieArea.xlo << " DO "
       << design.gcellCountX + 1 << " STEP "
       << design.dieArea.width() / design.gcellCountX << " ;\n";
    os << "GCELLGRID Y " << design.dieArea.ylo << " DO "
       << design.gcellCountY + 1 << " STEP "
       << design.dieArea.height() / design.gcellCountY << " ;\n\n";
  }

  os << "COMPONENTS " << design.components.size() << " ;\n";
  for (const auto& comp : design.components) {
    os << "  - " << comp.name << ' '
       << db.library().macro(comp.macro).name << " + "
       << (comp.fixed ? "FIXED" : "PLACED") << ' ';
    writePoint(os, comp.pos);
    os << ' ' << geom::orientationName(comp.orient) << " ;\n";
  }
  os << "END COMPONENTS\n\n";

  os << "PINS " << design.ioPins.size() << " ;\n";
  for (std::size_t i = 0; i < design.ioPins.size(); ++i) {
    const auto& pin = design.ioPins[i];
    // Find the net this pin belongs to (for the + NET clause).
    std::string netName;
    for (const auto& net : design.nets) {
      for (const auto& netPin : net.pins) {
        if (netPin.isIo() &&
            netPin.ioPin() == static_cast<db::IoPinId>(i)) {
          netName = net.name;
        }
      }
    }
    const geom::Rect local = pin.shape.shifted(-pin.pos.x, -pin.pos.y);
    os << "  - " << pin.name;
    if (!netName.empty()) os << " + NET " << netName;
    os << " + DIRECTION INPUT + USE SIGNAL\n";
    os << "    + LAYER " << tech.layer(pin.layer).name << ' ';
    writePoint(os, {local.xlo, local.ylo});
    os << ' ';
    writePoint(os, {local.xhi, local.yhi});
    os << " + PLACED ";
    writePoint(os, pin.pos);
    os << " N ;\n";
  }
  os << "END PINS\n\n";

  os << "NETS " << design.nets.size() << " ;\n";
  for (const auto& net : design.nets) {
    os << "  - " << net.name;
    for (const auto& pin : net.pins) {
      if (pin.isIo()) {
        os << " ( PIN " << design.ioPins[pin.ioPin()].name << " )";
      } else {
        const auto& ref = pin.compPin();
        const auto& comp = design.components[ref.cell];
        os << " ( " << comp.name << ' '
           << db.library().macro(comp.macro).pins[ref.pin].name << " )";
      }
    }
    os << " + USE SIGNAL ;\n";
  }
  os << "END NETS\n\n";

  if (!design.blockages.empty()) {
    os << "BLOCKAGES " << design.blockages.size() << " ;\n";
    for (const auto& blockage : design.blockages) {
      os << "  - ";
      if (blockage.layer == db::kInvalidId) {
        os << "PLACEMENT";
      } else {
        os << "LAYER " << tech.layer(blockage.layer).name;
      }
      os << " RECT ";
      writePoint(os, {blockage.rect.xlo, blockage.rect.ylo});
      os << ' ';
      writePoint(os, {blockage.rect.xhi, blockage.rect.yhi});
      os << " ;\n";
    }
    os << "END BLOCKAGES\n\n";
  }

  os << "END DESIGN\n";
}

void writeDefFile(const std::string& path, const Database& db) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write DEF file: " + path);
  writeDef(out, db);
}

}  // namespace crp::lefdef
