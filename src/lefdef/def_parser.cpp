#include "lefdef/def_parser.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "lefdef/tokenizer.hpp"

namespace crp::lefdef {

namespace {

using db::Coord;
using db::Design;
using db::Library;
using db::Tech;
using geom::Orientation;
using geom::Point;

Orientation parseOrient(const std::string& text, int line) {
  if (text == "N") return Orientation::kN;
  if (text == "S") return Orientation::kS;
  if (text == "FN") return Orientation::kFN;
  if (text == "FS") return Orientation::kFS;
  throw ParseError("unsupported orientation '" + text + "'", line);
}

class DefParser {
 public:
  DefParser(const std::string& text, const Tech& tech, const Library& lib)
      : tok_(text), tech_(tech), lib_(lib) {}

  Design run() {
    while (!tok_.atEnd()) {
      const Token token = tok_.next();
      const std::string& kw = token.text;
      if (kw == "VERSION" || kw == "DIVIDERCHAR" || kw == "BUSBITCHARS" ||
          kw == "UNITS" || kw == "TECHNOLOGY" || kw == "HISTORY") {
        tok_.skipStatement();
      } else if (kw == "DESIGN") {
        design_.name = tok_.next().text;
        tok_.expect(";");
      } else if (kw == "DIEAREA") {
        design_.dieArea = geom::Rect::fromPoints(nextPoint(), nextPoint());
        tok_.expect(";");
      } else if (kw == "ROW") {
        parseRow();
      } else if (kw == "TRACKS") {
        parseTracks();
      } else if (kw == "GCELLGRID") {
        parseGcellGrid();
      } else if (kw == "COMPONENTS") {
        parseComponents();
      } else if (kw == "PINS") {
        parsePins();
      } else if (kw == "NETS") {
        parseNets();
      } else if (kw == "SPECIALNETS") {
        skipSection("SPECIALNETS");
      } else if (kw == "BLOCKAGES") {
        parseBlockages();
      } else if (kw == "VIAS") {
        skipSection("VIAS");
      } else if (kw == "END") {
        if (tok_.accept("DESIGN")) break;
        if (!tok_.atEnd()) tok_.next();
      } else {
        throw ParseError("unknown DEF keyword '" + kw + "'", token.line);
      }
    }
    resolveNetPins();
    return std::move(design_);
  }

 private:
  Point nextPoint() {
    tok_.expect("(");
    const Coord x = tok_.nextInt();
    const Coord y = tok_.nextInt();
    tok_.expect(")");
    return Point{x, y};
  }

  void parseRow() {
    db::Row row;
    row.name = tok_.next().text;
    tok_.next();  // site name (single-site designs)
    row.origin.x = tok_.nextInt();
    row.origin.y = tok_.nextInt();
    row.orient = parseOrient(tok_.next().text, tok_.currentLine());
    tok_.expect("DO");
    row.numSites = static_cast<int>(tok_.nextInt());
    tok_.expect("BY");
    tok_.nextInt();  // always 1 for std-cell rows
    if (tok_.accept("STEP")) {
      tok_.nextInt();
      tok_.nextInt();
    }
    tok_.expect(";");
    design_.rows.push_back(std::move(row));
  }

  void parseTracks() {
    db::TrackGrid grid;
    const std::string axis = tok_.next().text;  // X or Y
    // DEF TRACKS X => vertical track lines (wires run vertically).
    grid.dir = (axis == "X") ? db::LayerDir::kVertical
                             : db::LayerDir::kHorizontal;
    grid.start = tok_.nextInt();
    tok_.expect("DO");
    grid.count = static_cast<int>(tok_.nextInt());
    tok_.expect("STEP");
    grid.step = tok_.nextInt();
    if (tok_.accept("LAYER")) {
      const std::string layerName = tok_.next().text;
      const auto idx = tech_.findLayer(layerName);
      if (!idx.has_value()) {
        throw ParseError("TRACKS references unknown layer " + layerName,
                         tok_.currentLine());
      }
      grid.layer = *idx;
    }
    tok_.expect(";");
    design_.tracks.push_back(grid);
  }

  void parseGcellGrid() {
    const std::string axis = tok_.next().text;
    tok_.nextInt();  // start
    tok_.expect("DO");
    const int count = static_cast<int>(tok_.nextInt());
    tok_.expect("STEP");
    tok_.nextInt();
    tok_.expect(";");
    // DEF counts grid *lines*; cells = lines - 1.
    if (axis == "X") {
      design_.gcellCountX = count - 1;
    } else {
      design_.gcellCountY = count - 1;
    }
  }

  void parseComponents() {
    tok_.nextInt();
    tok_.expect(";");
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect("COMPONENTS");
        return;
      }
      tok_.expect("-");
      db::Component comp;
      comp.name = tok_.next().text;
      const std::string macroName = tok_.next().text;
      const auto macroId = lib_.findMacro(macroName);
      if (!macroId.has_value()) {
        throw ParseError("component references unknown macro " + macroName,
                         tok_.currentLine());
      }
      comp.macro = *macroId;
      while (tok_.accept("+")) {
        const std::string attr = tok_.next().text;
        if (attr == "PLACED" || attr == "FIXED") {
          comp.fixed = (attr == "FIXED");
          comp.pos = nextPoint();
          comp.orient = parseOrient(tok_.next().text, tok_.currentLine());
        } else if (attr == "SOURCE" || attr == "WEIGHT") {
          tok_.next();
        }
      }
      tok_.expect(";");
      design_.components.push_back(std::move(comp));
    }
  }

  void parsePins() {
    tok_.nextInt();
    tok_.expect(";");
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect("PINS");
        return;
      }
      tok_.expect("-");
      db::IoPin pin;
      pin.name = tok_.next().text;
      geom::Rect localShape;
      Point placed;
      while (tok_.accept("+")) {
        const std::string attr = tok_.next().text;
        if (attr == "NET") {
          pinNet_[pin.name] = tok_.next().text;
        } else if (attr == "DIRECTION" || attr == "USE") {
          tok_.next();
        } else if (attr == "LAYER") {
          const std::string layerName = tok_.next().text;
          const auto idx = tech_.findLayer(layerName);
          if (!idx.has_value()) {
            throw ParseError("pin references unknown layer " + layerName,
                             tok_.currentLine());
          }
          pin.layer = *idx;
          localShape = geom::Rect::fromPoints(nextPoint(), nextPoint());
        } else if (attr == "PLACED" || attr == "FIXED") {
          placed = nextPoint();
          tok_.next();  // orientation
        }
      }
      tok_.expect(";");
      pin.pos = placed;
      pin.shape = localShape.shifted(placed.x, placed.y);
      design_.ioPins.push_back(std::move(pin));
    }
  }

  void parseNets() {
    tok_.nextInt();
    tok_.expect(";");
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect("NETS");
        return;
      }
      tok_.expect("-");
      db::Net net;
      net.name = tok_.next().text;
      while (!tok_.atEnd() && tok_.peek().text == "(") {
        tok_.expect("(");
        const std::string first = tok_.next().text;
        const std::string second = tok_.next().text;
        tok_.expect(")");
        rawPins_.push_back(
            RawPin{static_cast<int>(design_.nets.size()), first, second});
      }
      while (tok_.accept("+")) {
        tok_.next();  // USE SIGNAL etc.
        if (tok_.peek().text != ";" && tok_.peek().text != "+") tok_.next();
      }
      tok_.expect(";");
      design_.nets.push_back(std::move(net));
    }
  }

  void parseBlockages() {
    tok_.nextInt();
    tok_.expect(";");
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect("BLOCKAGES");
        return;
      }
      tok_.expect("-");
      db::Blockage blockage;
      if (tok_.accept("LAYER")) {
        const std::string layerName = tok_.next().text;
        blockage.layer = tech_.findLayer(layerName).value_or(db::kInvalidId);
      } else if (tok_.accept("PLACEMENT")) {
        blockage.layer = db::kInvalidId;
      }
      tok_.expect("RECT");
      blockage.rect = geom::Rect::fromPoints(nextPoint(), nextPoint());
      tok_.expect(";");
      design_.blockages.push_back(blockage);
    }
  }

  void skipSection(const std::string& name) {
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        if (tok_.accept(name)) return;
      } else {
        tok_.next();
      }
    }
  }

  /// Net pins are recorded raw during parsing because components may be
  /// declared after nets in hand-written files; resolve at the end.
  void resolveNetPins() {
    std::unordered_map<std::string, int> compByName;
    for (int i = 0; i < static_cast<int>(design_.components.size()); ++i) {
      compByName.emplace(design_.components[i].name, i);
    }
    std::unordered_map<std::string, int> ioByName;
    for (int i = 0; i < static_cast<int>(design_.ioPins.size()); ++i) {
      ioByName.emplace(design_.ioPins[i].name, i);
    }
    for (const RawPin& raw : rawPins_) {
      db::Net& net = design_.nets[raw.net];
      if (raw.first == "PIN") {
        const auto it = ioByName.find(raw.second);
        if (it == ioByName.end()) {
          throw ParseError("net references unknown IO pin " + raw.second, 0);
        }
        net.pins.push_back(db::NetPin{db::IoPinId{it->second}});
      } else {
        const auto it = compByName.find(raw.first);
        if (it == compByName.end()) {
          throw ParseError("net references unknown component " + raw.first, 0);
        }
        const db::Component& comp = design_.components[it->second];
        const auto pinIdx = lib_.macro(comp.macro).findPin(raw.second);
        if (!pinIdx.has_value()) {
          throw ParseError("net references unknown pin " + raw.first + "/" +
                               raw.second,
                           0);
        }
        net.pins.push_back(
            db::NetPin{db::CompPinRef{it->second, *pinIdx}});
      }
    }
  }

  struct RawPin {
    int net;
    std::string first;   // component name or "PIN"
    std::string second;  // pin name
  };

  Tokenizer tok_;
  const Tech& tech_;
  const Library& lib_;
  Design design_;
  std::vector<RawPin> rawPins_;
  std::unordered_map<std::string, std::string> pinNet_;
};

}  // namespace

Design parseDef(const std::string& text, const Tech& tech,
                const Library& lib) {
  return DefParser(text, tech, lib).run();
}

Design parseDefFile(const std::string& path, const Tech& tech,
                    const Library& lib) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open DEF file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseDef(buffer.str(), tech, lib);
}

}  // namespace crp::lefdef
