#include "lefdef/lef_writer.hpp"

#include <fstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace crp::lefdef {

namespace {

using db::Coord;

/// DBU -> micron text with enough digits to round-trip exactly.
std::string um(Coord dbu, int dbuPerMicron) {
  return util::formatDouble(static_cast<double>(dbu) / dbuPerMicron, 6);
}

std::string umArea(Coord dbuSq, int dbuPerMicron) {
  return util::formatDouble(
      static_cast<double>(dbuSq) / dbuPerMicron / dbuPerMicron, 9);
}

void writeRect(std::ostream& os, const geom::Rect& r, int dbu,
               const char* indent) {
  os << indent << "RECT " << um(r.xlo, dbu) << ' ' << um(r.ylo, dbu) << ' '
     << um(r.xhi, dbu) << ' ' << um(r.yhi, dbu) << " ;\n";
}

}  // namespace

void writeLef(std::ostream& os, const db::Tech& tech, const db::Library& lib) {
  const int dbu = tech.dbuPerMicron;
  os << "VERSION 5.8 ;\n";
  os << "BUSBITCHARS \"[]\" ;\n";
  os << "DIVIDERCHAR \"/\" ;\n";
  os << "UNITS\n  DATABASE MICRONS " << dbu << " ;\nEND UNITS\n\n";

  os << "SITE " << tech.site.name << "\n";
  os << "  CLASS CORE ;\n";
  os << "  SIZE " << um(tech.site.width, dbu) << " BY "
     << um(tech.site.height, dbu) << " ;\n";
  os << "END " << tech.site.name << "\n\n";

  // Routing and cut layers interleaved bottom-up, as real LEF does.
  for (int i = 0; i < tech.numLayers(); ++i) {
    const auto& layer = tech.layer(i);
    os << "LAYER " << layer.name << "\n";
    os << "  TYPE ROUTING ;\n";
    os << "  DIRECTION "
       << (layer.dir == db::LayerDir::kHorizontal ? "HORIZONTAL" : "VERTICAL")
       << " ;\n";
    os << "  PITCH " << um(layer.pitch, dbu) << " ;\n";
    os << "  WIDTH " << um(layer.width, dbu) << " ;\n";
    os << "  SPACING " << um(layer.spacing, dbu) << " ;\n";
    if (layer.minArea > 0) {
      os << "  AREA " << umArea(layer.minArea, dbu) << " ;\n";
    }
    os << "  OFFSET " << um(layer.offset, dbu) << " ;\n";
    os << "END " << layer.name << "\n\n";
    for (const auto& cut : tech.cutLayers()) {
      if (cut.below == i) {
        os << "LAYER " << cut.name << "\n";
        os << "  TYPE CUT ;\n";
        os << "  SPACING " << um(cut.spacing, dbu) << " ;\n";
        os << "END " << cut.name << "\n\n";
      }
    }
  }

  for (const auto& via : tech.vias()) {
    const auto& below = tech.layer(via.below);
    const auto& above = tech.layer(via.below + 1);
    // Find the cut layer between them for the middle shape name.
    std::string cutName = "Cut" + std::to_string(via.below + 1);
    for (const auto& cut : tech.cutLayers()) {
      if (cut.below == via.below) cutName = cut.name;
    }
    os << "VIA " << via.name << " DEFAULT\n";
    os << "  LAYER " << below.name << " ;\n";
    writeRect(os, via.bottomShape, dbu, "    ");
    os << "  LAYER " << cutName << " ;\n";
    writeRect(os, via.cutShape, dbu, "    ");
    os << "  LAYER " << above.name << " ;\n";
    writeRect(os, via.topShape, dbu, "    ");
    os << "END " << via.name << "\n\n";
  }

  for (const auto& macro : lib.macros()) {
    os << "MACRO " << macro.name << "\n";
    os << "  CLASS CORE ;\n";
    os << "  ORIGIN 0 0 ;\n";
    os << "  SIZE " << um(macro.width, dbu) << " BY " << um(macro.height, dbu)
       << " ;\n";
    os << "  SYMMETRY X Y ;\n";
    os << "  SITE " << tech.site.name << " ;\n";
    for (const auto& pin : macro.pins) {
      os << "  PIN " << pin.name << "\n";
      os << "    DIRECTION "
         << (pin.dir == db::PinDir::kOutput
                 ? "OUTPUT"
                 : pin.dir == db::PinDir::kInout ? "INOUT" : "INPUT")
         << " ;\n";
      os << "    PORT\n";
      int lastLayer = -1;
      for (const auto& shape : pin.shapes) {
        if (shape.layer != lastLayer) {
          os << "      LAYER " << tech.layer(shape.layer).name << " ;\n";
          lastLayer = shape.layer;
        }
        writeRect(os, shape.rect, dbu, "        ");
      }
      os << "    END\n";
      os << "  END " << pin.name << "\n";
    }
    if (!macro.obstructions.empty()) {
      os << "  OBS\n";
      int lastLayer = -1;
      for (const auto& obs : macro.obstructions) {
        if (obs.layer != lastLayer) {
          os << "    LAYER " << tech.layer(obs.layer).name << " ;\n";
          lastLayer = obs.layer;
        }
        writeRect(os, obs.rect, dbu, "      ");
      }
      os << "  END\n";
    }
    os << "END " << macro.name << "\n\n";
  }

  os << "END LIBRARY\n";
}

void writeLefFile(const std::string& path, const db::Tech& tech,
                  const db::Library& lib) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write LEF file: " + path);
  writeLef(out, tech, lib);
}

}  // namespace crp::lefdef
