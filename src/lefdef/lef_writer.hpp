// LEF writer: emits a technology + library in the subset the parser
// reads back (round-trip tested).  Used by the benchmark generator to
// materialize synthetic suites as real LEF files.
#pragma once

#include <ostream>
#include <string>

#include "db/library.hpp"
#include "db/tech.hpp"

namespace crp::lefdef {

void writeLef(std::ostream& os, const db::Tech& tech, const db::Library& lib);

void writeLefFile(const std::string& path, const db::Tech& tech,
                  const db::Library& lib);

}  // namespace crp::lefdef
