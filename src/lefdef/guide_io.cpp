#include "lefdef/guide_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace crp::lefdef {

void writeGuides(std::ostream& os, const db::Database& db,
                 const std::vector<NetGuide>& guides) {
  for (const NetGuide& guide : guides) {
    os << guide.net << "\n(\n";
    for (const GuideRect& g : guide.rects) {
      os << g.rect.xlo << ' ' << g.rect.ylo << ' ' << g.rect.xhi << ' '
         << g.rect.yhi << ' ' << db.tech().layer(g.layer).name << '\n';
    }
    os << ")\n";
  }
}

void writeGuidesFile(const std::string& path, const db::Database& db,
                     const std::vector<NetGuide>& guides) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write guide file: " + path);
  writeGuides(out, db, guides);
}

std::vector<NetGuide> parseGuides(const std::string& text,
                                  const db::Tech& tech) {
  std::vector<NetGuide> guides;
  std::istringstream in(text);
  std::string line;
  NetGuide current;
  bool inBlock = false;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "(") {
      inBlock = true;
      continue;
    }
    if (trimmed == ")") {
      inBlock = false;
      guides.push_back(std::move(current));
      current = NetGuide{};
      continue;
    }
    if (!inBlock) {
      current.net = std::string(trimmed);
      continue;
    }
    const auto tokens = util::splitWhitespace(trimmed);
    if (tokens.size() != 5) {
      throw std::runtime_error("malformed guide line: " + line);
    }
    GuideRect rect;
    rect.rect = geom::Rect{std::stoll(tokens[0]), std::stoll(tokens[1]),
                           std::stoll(tokens[2]), std::stoll(tokens[3])};
    const auto layer = tech.findLayer(tokens[4]);
    if (!layer.has_value()) {
      throw std::runtime_error("guide references unknown layer " + tokens[4]);
    }
    rect.layer = *layer;
    current.rects.push_back(rect);
  }
  return guides;
}

std::vector<NetGuide> parseGuidesFile(const std::string& path,
                                      const db::Tech& tech) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open guide file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseGuides(buffer.str(), tech);
}

}  // namespace crp::lefdef
