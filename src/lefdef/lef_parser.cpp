#include "lefdef/lef_parser.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "lefdef/tokenizer.hpp"

namespace crp::lefdef {

namespace {

using db::Coord;
using db::Library;
using db::Macro;
using db::MacroPin;
using db::PinDir;
using db::Tech;
using geom::Rect;

class LefParser {
 public:
  explicit LefParser(const std::string& text) : tok_(text) {}

  std::pair<Tech, Library> run() {
    while (!tok_.atEnd()) {
      const Token token = tok_.next();
      const std::string& kw = token.text;
      if (kw == "VERSION" || kw == "BUSBITCHARS" || kw == "DIVIDERCHAR" ||
          kw == "MANUFACTURINGGRID" || kw == "CLEARANCEMEASURE" ||
          kw == "USEMINSPACING" || kw == "PROPERTYDEFINITIONS") {
        tok_.skipStatement();
      } else if (kw == "UNITS") {
        parseUnits();
      } else if (kw == "SITE") {
        parseSite();
      } else if (kw == "LAYER") {
        parseLayer();
      } else if (kw == "VIA") {
        parseVia();
      } else if (kw == "MACRO") {
        parseMacro();
      } else if (kw == "END") {
        if (tok_.accept("LIBRARY")) break;
        // Stray END of an unknown block; skip its name.
        if (!tok_.atEnd()) tok_.next();
      } else {
        throw ParseError("unknown LEF keyword '" + kw + "'", token.line);
      }
    }
    return {std::move(tech_), std::move(lib_)};
  }

 private:
  Coord toDbu(double microns) const {
    return static_cast<Coord>(std::llround(microns * tech_.dbuPerMicron));
  }
  Coord toDbuArea(double squareMicrons) const {
    return static_cast<Coord>(std::llround(
        squareMicrons * tech_.dbuPerMicron * tech_.dbuPerMicron));
  }

  Rect nextRect() {
    const double x0 = tok_.nextDouble();
    const double y0 = tok_.nextDouble();
    const double x1 = tok_.nextDouble();
    const double y1 = tok_.nextDouble();
    return Rect::fromPoints({toDbu(x0), toDbu(y0)}, {toDbu(x1), toDbu(y1)});
  }

  void parseUnits() {
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect("UNITS");
        return;
      }
      if (tok_.accept("DATABASE")) {
        tok_.expect("MICRONS");
        tech_.dbuPerMicron = static_cast<int>(tok_.nextInt());
        tok_.expect(";");
      } else {
        tok_.skipStatement();
      }
    }
  }

  void parseSite() {
    const std::string name = tok_.next().text;
    db::Site site;
    site.name = name;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect(name);
        break;
      }
      if (tok_.accept("SIZE")) {
        site.width = toDbu(tok_.nextDouble());
        tok_.expect("BY");
        site.height = toDbu(tok_.nextDouble());
        tok_.expect(";");
      } else {
        tok_.skipStatement();
      }
    }
    tech_.site = site;
  }

  void parseLayer() {
    const std::string name = tok_.next().text;
    std::string type;
    db::RoutingLayer layer;
    db::CutLayer cut;
    layer.name = name;
    cut.name = name;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect(name);
        break;
      }
      if (tok_.accept("TYPE")) {
        type = tok_.next().text;
        tok_.expect(";");
      } else if (tok_.accept("DIRECTION")) {
        const std::string dir = tok_.next().text;
        layer.dir = (dir == "VERTICAL") ? db::LayerDir::kVertical
                                        : db::LayerDir::kHorizontal;
        tok_.expect(";");
      } else if (tok_.accept("PITCH")) {
        layer.pitch = toDbu(tok_.nextDouble());
        tok_.expect(";");
      } else if (tok_.accept("WIDTH")) {
        layer.width = toDbu(tok_.nextDouble());
        tok_.expect(";");
      } else if (tok_.accept("SPACING")) {
        const Coord spacing = toDbu(tok_.nextDouble());
        layer.spacing = spacing;
        cut.spacing = spacing;
        tok_.expect(";");
      } else if (tok_.accept("AREA")) {
        layer.minArea = toDbuArea(tok_.nextDouble());
        tok_.expect(";");
      } else if (tok_.accept("OFFSET")) {
        layer.offset = toDbu(tok_.nextDouble());
        tok_.expect(";");
      } else {
        tok_.skipStatement();
      }
    }
    if (type == "ROUTING") {
      tech_.addLayer(layer);
    } else if (type == "CUT") {
      cut.below = tech_.numLayers() - 1;
      if (cut.below >= 0 && cut.below + 1 < tech_.numLayers() + 8) {
        // Cut layers appear between routing layers in stack order; the
        // routing layer above is added right after, so defer validation
        // until the full stack exists.
        pendingCuts_.push_back(cut);
      }
    }
    flushPendingCuts();
  }

  void flushPendingCuts() {
    // Register any pending cut whose upper routing layer now exists.
    auto it = pendingCuts_.begin();
    while (it != pendingCuts_.end()) {
      if (it->below + 1 < tech_.numLayers()) {
        tech_.addCutLayer(*it);
        it = pendingCuts_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void parseVia() {
    const std::string name = tok_.next().text;
    tok_.accept("DEFAULT");
    db::ViaDef via;
    via.name = name;
    int shapesSeen = 0;
    int firstLayer = -1;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect(name);
        break;
      }
      if (tok_.accept("LAYER")) {
        const std::string layerName = tok_.next().text;
        tok_.expect(";");
        tok_.expect("RECT");
        const Rect rect = nextRect();
        tok_.expect(";");
        const auto idx = tech_.findLayer(layerName);
        if (idx.has_value()) {
          if (firstLayer < 0) firstLayer = *idx;
          if (shapesSeen == 0) {
            via.bottomShape = rect;
          } else {
            via.topShape = rect;
          }
        } else {
          via.cutShape = rect;  // cut layer shape
        }
        ++shapesSeen;
      } else {
        tok_.skipStatement();
      }
    }
    if (firstLayer >= 0) {
      via.below = firstLayer;
      tech_.addVia(via);
    }
  }

  void parseMacro() {
    const std::string name = tok_.next().text;
    Macro macro;
    macro.name = name;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect(name);
        break;
      }
      if (tok_.accept("SIZE")) {
        macro.width = toDbu(tok_.nextDouble());
        tok_.expect("BY");
        macro.height = toDbu(tok_.nextDouble());
        tok_.expect(";");
      } else if (tok_.accept("PIN")) {
        macro.pins.push_back(parsePin());
      } else if (tok_.accept("OBS")) {
        parseObs(macro);
      } else if (tok_.accept("CLASS") || tok_.accept("ORIGIN") ||
                 tok_.accept("SYMMETRY") || tok_.accept("SITE") ||
                 tok_.accept("FOREIGN")) {
        tok_.skipStatement();
      } else {
        tok_.skipStatement();
      }
    }
    lib_.addMacro(std::move(macro));
  }

  MacroPin parsePin() {
    const std::string name = tok_.next().text;
    MacroPin pin;
    pin.name = name;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) {
        tok_.expect(name);
        break;
      }
      if (tok_.accept("DIRECTION")) {
        const std::string dir = tok_.next().text;
        if (dir == "OUTPUT") {
          pin.dir = PinDir::kOutput;
        } else if (dir == "INOUT") {
          pin.dir = PinDir::kInout;
        } else {
          pin.dir = PinDir::kInput;
        }
        tok_.skipStatement();  // swallow optional TRISTATE etc. + ';'
      } else if (tok_.accept("PORT")) {
        parsePort(pin);
      } else {
        tok_.skipStatement();
      }
    }
    return pin;
  }

  void parsePort(MacroPin& pin) {
    int currentLayer = -1;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) return;  // PORT blocks end with bare END
      if (tok_.accept("LAYER")) {
        const std::string layerName = tok_.next().text;
        tok_.expect(";");
        const auto idx = tech_.findLayer(layerName);
        currentLayer = idx.value_or(-1);
      } else if (tok_.accept("RECT")) {
        const Rect rect = nextRect();
        tok_.expect(";");
        if (currentLayer >= 0) {
          pin.shapes.push_back(db::PinShape{currentLayer, rect});
        }
      } else {
        tok_.skipStatement();
      }
    }
  }

  void parseObs(Macro& macro) {
    int currentLayer = -1;
    while (!tok_.atEnd()) {
      if (tok_.accept("END")) return;
      if (tok_.accept("LAYER")) {
        const std::string layerName = tok_.next().text;
        tok_.expect(";");
        currentLayer = tech_.findLayer(layerName).value_or(-1);
      } else if (tok_.accept("RECT")) {
        const Rect rect = nextRect();
        tok_.expect(";");
        if (currentLayer >= 0) {
          macro.obstructions.push_back(db::Obstruction{currentLayer, rect});
        }
      } else {
        tok_.skipStatement();
      }
    }
  }

  Tokenizer tok_;
  Tech tech_;
  Library lib_;
  std::vector<db::CutLayer> pendingCuts_;
};

}  // namespace

std::pair<Tech, Library> parseLef(const std::string& text) {
  return LefParser(text).run();
}

std::pair<Tech, Library> parseLefFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open LEF file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseLef(buffer.str());
}

}  // namespace crp::lefdef
