// SVG visualisation of placements, global routes and congestion maps.
// Produces self-contained .svg files for design inspection — the
// quickest way to see what CR&P moved and which corridors it relieved.
#pragma once

#include <ostream>
#include <string>

#include "db/database.hpp"
#include "groute/congestion_report.hpp"
#include "groute/global_router.hpp"

namespace crp::viz {

struct SvgOptions {
  double pixelsPerDbu = 0.0;  ///< 0 = auto (fit ~1200 px width)
  bool drawCells = true;
  bool drawPins = false;      ///< pin dots (dense; off by default)
  bool drawRoutes = true;     ///< global-route wire segments per layer
  bool drawCongestion = false;  ///< gcell congestion underlay
  /// Highlight these cells (e.g. the cells CR&P moved).
  std::vector<db::CellId> highlight;
};

/// Writes the design (and, when provided, its routes / congestion) as
/// a standalone SVG document.
void writeSvg(std::ostream& os, const db::Database& db,
              const groute::GlobalRouter* router = nullptr,
              const SvgOptions& options = {});

void writeSvgFile(const std::string& path, const db::Database& db,
                  const groute::GlobalRouter* router = nullptr,
                  const SvgOptions& options = {});

/// Layer display colour (stable palette, cycling above 8 layers).
std::string layerColor(int layer);

}  // namespace crp::viz
