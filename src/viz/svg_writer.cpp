#include "viz/svg_writer.hpp"

#include <algorithm>
#include <fstream>
#include <unordered_set>

#include "util/string_util.hpp"

namespace crp::viz {

namespace {

using geom::Coord;

/// Emits one SVG rect; y is flipped so the die origin is bottom-left.
void rect(std::ostream& os, double x, double y, double w, double h,
          const std::string& fill, double opacity,
          const std::string& stroke = {}) {
  os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
     << "\" height=\"" << h << "\" fill=\"" << fill << "\" fill-opacity=\""
     << opacity << "\"";
  if (!stroke.empty()) {
    os << " stroke=\"" << stroke << "\" stroke-width=\"0.5\"";
  }
  os << "/>\n";
}

}  // namespace

std::string layerColor(int layer) {
  static const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c",
                                   "#d62728", "#9467bd", "#8c564b",
                                   "#e377c2", "#7f7f7f"};
  return kPalette[layer % 8];
}

void writeSvg(std::ostream& os, const db::Database& db,
              const groute::GlobalRouter* router,
              const SvgOptions& options) {
  const auto& die = db.design().dieArea;
  double scale = options.pixelsPerDbu;
  if (scale <= 0.0) {
    scale = 1200.0 / std::max<Coord>(1, die.width());
  }
  const double width = die.width() * scale;
  const double height = die.height() * scale;
  auto px = [&](Coord x) { return (x - die.xlo) * scale; };
  auto py = [&](Coord y) { return height - (y - die.ylo) * scale; };

  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\">\n";
  os << "<!-- design: " << db.design().name << ", " << db.numCells()
     << " cells, " << db.numNets() << " nets -->\n";
  rect(os, 0, 0, width, height, "#ffffff", 1.0, "#000000");

  // Congestion underlay.
  if (options.drawCongestion && router != nullptr) {
    const auto map = groute::buildCongestionMap(router->graph());
    const auto& grid = router->graph().grid();
    for (int y = 0; y < map.height; ++y) {
      for (int x = 0; x < map.width; ++x) {
        const double u = std::min(1.5, map.at(x, y));
        if (u <= 0.3) continue;
        const auto cell = grid.cellRect(db::GCell{x, y});
        rect(os, px(cell.xlo), py(cell.yhi), cell.width() * scale,
             cell.height() * scale, u > 1.0 ? "#ff0000" : "#ffaa00",
             0.15 + 0.4 * std::min(1.0, u));
      }
    }
  }

  // Rows (light background stripes).
  for (const auto& row : db.design().rows) {
    rect(os, px(row.origin.x), py(row.origin.y + db.rowHeight()),
         static_cast<double>(row.numSites) * db.siteWidth() * scale,
         db.rowHeight() * scale, "#f0f0f0", 0.5);
  }

  // Cells.
  if (options.drawCells) {
    std::unordered_set<db::CellId> highlighted(options.highlight.begin(),
                                               options.highlight.end());
    for (db::CellId c = 0; c < db.numCells(); ++c) {
      const auto r = db.cellRect(c);
      const bool hot = highlighted.count(c) > 0;
      rect(os, px(r.xlo), py(r.yhi), r.width() * scale, r.height() * scale,
           hot ? "#d62728" : "#9ecae1", hot ? 0.9 : 0.7, "#3182bd");
    }
  }

  // Pins.
  if (options.drawPins) {
    for (db::NetId n = 0; n < db.numNets(); ++n) {
      for (const auto& pin : db.net(n).pins) {
        const auto p = db.pinPosition(pin);
        os << "<circle cx=\"" << px(p.x) << "\" cy=\"" << py(p.y)
           << "\" r=\"1.2\" fill=\"#333333\"/>\n";
      }
    }
  }

  // Global-route segments, one polyline per wire segment.
  if (options.drawRoutes && router != nullptr) {
    const auto& grid = router->graph().grid();
    for (db::NetId n = 0; n < db.numNets(); ++n) {
      for (const auto& seg : router->route(n).segments) {
        if (seg.isVia()) continue;
        const auto a = grid.cellCenter(db::GCell{seg.a.x, seg.a.y});
        const auto b = grid.cellCenter(db::GCell{seg.b.x, seg.b.y});
        os << "<line x1=\"" << px(a.x) << "\" y1=\"" << py(a.y)
           << "\" x2=\"" << px(b.x) << "\" y2=\"" << py(b.y)
           << "\" stroke=\"" << layerColor(seg.a.layer)
           << "\" stroke-width=\"1\" stroke-opacity=\"0.6\"/>\n";
      }
    }
  }

  os << "</svg>\n";
}

void writeSvgFile(const std::string& path, const db::Database& db,
                  const groute::GlobalRouter* router,
                  const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SVG file: " + path);
  writeSvg(out, db, router, options);
}

}  // namespace crp::viz
