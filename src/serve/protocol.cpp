#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crp::serve {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw ProtocolError(std::string(what) + ": " + std::strerror(errno));
}

/// Reads exactly `size` bytes.  Returns false on EOF before the first
/// byte when `eofOk`; throws on EOF mid-buffer or error.
bool readExact(int fd, char* data, std::size_t size, bool eofOk) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0 && eofOk) return false;
      throw ProtocolError("connection closed mid-frame (got " +
                          std::to_string(got) + " of " +
                          std::to_string(size) + " bytes)");
    }
    if (errno == EINTR) continue;
    throwErrno("read");
  }
  return true;
}

void writeExact(int fd, const char* data, std::size_t size) {
  std::size_t put = 0;
  while (put < size) {
    const ssize_t n = ::write(fd, data + put, size - put);
    if (n >= 0) {
      put += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throwErrno("write");
  }
}

}  // namespace

bool readFrame(int fd, std::string& payload) {
  unsigned char header[4];
  if (!readExact(fd, reinterpret_cast<char*>(header), 4, /*eofOk=*/true)) {
    return false;
  }
  const std::uint32_t length =
      (static_cast<std::uint32_t>(header[0]) << 24) |
      (static_cast<std::uint32_t>(header[1]) << 16) |
      (static_cast<std::uint32_t>(header[2]) << 8) |
      static_cast<std::uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  payload.resize(length);
  readExact(fd, payload.data(), length, /*eofOk=*/false);
  return true;
}

void writeFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame length " + std::to_string(payload.size()) +
                        " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>((length >> 24) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>(length & 0xff)};
  writeExact(fd, reinterpret_cast<const char*>(header), 4);
  writeExact(fd, payload.data(), payload.size());
}

bool readMessage(int fd, obs::Json& message, std::size_t* wireBytes) {
  std::string payload;
  if (!readFrame(fd, payload)) return false;
  if (wireBytes != nullptr) *wireBytes = payload.size() + 4;
  try {
    message = obs::Json::parse(payload);
  } catch (const obs::JsonError& e) {
    throw ProtocolError(std::string("malformed JSON frame: ") + e.what());
  }
  return true;
}

void writeMessage(int fd, const obs::Json& message, std::size_t* wireBytes) {
  const std::string payload = message.dump();
  if (wireBytes != nullptr) *wireBytes = payload.size() + 4;
  writeFrame(fd, payload);
}

Client::Client(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    throw ProtocolError("socket path too long: " + socketPath);
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throwErrno("socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int savedErrno = errno;
    ::close(fd_);
    fd_ = -1;
    errno = savedErrno;
    throwErrno(("connect " + socketPath).c_str());
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send(const obs::Json& request) { writeMessage(fd_, request); }

bool Client::receive(obs::Json& response) {
  return readMessage(fd_, response);
}

std::vector<obs::Json> Client::call(const obs::Json& request) {
  send(request);
  std::vector<obs::Json> frames;
  for (;;) {
    obs::Json frame;
    if (!receive(frame)) {
      throw ProtocolError("server closed the connection mid-response");
    }
    const obs::Json* done = frame.find("done");
    const bool isLast = done != nullptr && done->asBool();
    frames.push_back(std::move(frame));
    if (isLast) return frames;
  }
}

}  // namespace crp::serve
