// The crp serve daemon (docs/serve.md).
//
// One process, one AF_UNIX listening socket, one shared compute
// ThreadPool.  Each accepted connection gets a handler thread that
// reads request frames and executes jobs inline (session-level
// parallelism comes from concurrent connections; intra-job
// parallelism from the shared pool).  Per-session state — database,
// router, framework, ObsContext — lives in the SessionManager and
// survives across requests and connections until close_session.
//
// Shutdown is async-signal-safe: requestStop() only stores a flag and
// writes one byte to a self-pipe, so the CLI's SIGTERM/SIGINT handler
// can call it directly.  serve() then stops accepting, unlinks the
// socket, shuts down live connections, and joins every handler.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.hpp"
#include "obs/json.hpp"
#include "serve/session.hpp"
#include "util/thread_pool.hpp"

namespace crp::serve {

struct ServeOptions {
  /// AF_UNIX socket path (sun_path-limited, ~100 bytes).  An existing
  /// socket file is replaced.
  std::string socketPath;
  /// Shared compute pool width; 0 = hardware concurrency.
  int workers = 0;
  std::size_t maxSessions = 64;
  /// Log connection/job lifecycle to stderr.
  bool verbose = false;
  /// Run-ledger JSONL path; every completed run/eco job appends one
  /// entry (kind serve-run / serve-eco).  Empty = no ledger.
  std::string ledgerPath;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  /// Joins outstanding handlers if serve() already returned; the
  /// caller must not destroy a Server while serve() runs.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates the socket and the wake pipe, binds, listens.  Throws
  /// std::runtime_error on failure.  Call once, before serve().
  void start();

  /// The accept loop.  Blocks until requestStop(); on return the
  /// socket is unlinked and every connection handler has been joined.
  void serve();

  /// Async-signal-safe stop request (atomic store + pipe write).
  /// Callable from any thread or from a signal handler.
  void requestStop();

  const std::string& socketPath() const { return options_.socketPath; }
  SessionManager& sessions() { return sessions_; }
  util::ThreadPool& pool() { return pool_; }
  std::uint64_t jobsCompleted() const {
    return jobsCompleted_.load(std::memory_order_relaxed);
  }

  /// Server-owned instruments: per-op request counters and latency
  /// histograms (serve.op.<name>.requests / .latency), traffic and
  /// error counters, active-session/connection gauges.  Deliberately
  /// separate from every session's ObsContext so self-instrumentation
  /// can never perturb a session's RunReport counter deltas (and
  /// therefore its fingerprint).  The `stats` and `metrics` ops read
  /// from here.
  obs::ObsContext& serverObs() { return obs_; }

  /// Seconds since start(); 0 before start().
  double uptimeSeconds() const;

 private:
  void handleConnection(int fd);
  /// Executes one request; writes all response frames.  Returns false
  /// when the connection should close (shutdown op).
  bool dispatch(int fd, const obs::Json& request);
  /// The per-op body of dispatch (instrumentation lives in dispatch).
  bool dispatchOp(int fd, const obs::Json& request, const std::string& op);
  std::shared_ptr<Session> requireSession(const obs::Json& request);
  /// writeMessage + bytes-out/error accounting in one place.
  void send(int fd, const obs::Json& frame);
  /// Appends a serve-run/serve-eco ledger entry for a finished flow
  /// job (no-op unless options_.ledgerPath is set; append failures are
  /// logged, never fatal to the job).
  void appendLedgerEntry(const std::string& op, Session& session,
                         const obs::Json& request);

  ServeOptions options_;
  util::ThreadPool pool_;
  SessionManager sessions_;
  obs::ObsContext obs_;
  std::chrono::steady_clock::time_point startTime_{};

  std::atomic<bool> stop_{false};
  int listenFd_ = -1;
  int wakeFds_[2] = {-1, -1};

  std::atomic<std::uint64_t> jobsCompleted_{0};
  std::atomic<std::uint64_t> connectionsAccepted_{0};

  std::mutex connMutex_;
  std::vector<int> liveFds_;          ///< open client fds (for teardown)
  std::vector<std::thread> handlers_; ///< joined at end of serve()
};

}  // namespace crp::serve
