// Resident daemon sessions (docs/serve.md).
//
// A Session owns everything one client's design work touches: its own
// obs::ObsContext (metrics registry, tracer, flight recorder, logger),
// the generated db::Database, the GlobalRouter built over it, and the
// CrpFramework driving iterations.  Jobs from different sessions run
// concurrently on the daemon's one shared ThreadPool, yet never share
// mutable state — the ObsContext is installed around every job and
// propagates to pool workers through the submit-time task wrapper, so
// a session's RunReport counter deltas (and therefore its fingerprint)
// are bit-identical whether the session runs alone or interleaved with
// others.  The interleaved-fingerprint test in tests/test_serve.cpp
// holds the daemon to exactly that.
//
// The job functions below are the daemon's whole execution model; the
// Server only parses frames and calls them.  Tests drive them directly
// (no sockets) to prove session isolation independently of transport.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "db/database.hpp"
#include "groute/global_router.hpp"
#include "obs/context.hpp"
#include "obs/json.hpp"
#include "util/thread_pool.hpp"

namespace crp::serve {

/// One resident client context.  jobMutex serializes jobs within the
/// session (two requests on one session queue behind each other); jobs
/// on *different* sessions proceed in parallel.
struct Session {
  std::uint64_t id = 0;
  std::string name;
  /// Per-session instruments; enabled at creation so counters, spans,
  /// and heatmaps record without a process-global gate flip.
  obs::ObsContext context;
  /// The daemon's shared compute pool (never null once opened).
  util::ThreadPool* pool = nullptr;

  // Design state, built up by jobs.  Teardown order matters: framework
  // references router and db, router references db.
  std::unique_ptr<db::Database> db;
  std::unique_ptr<groute::GlobalRouter> router;
  std::unique_ptr<core::CrpFramework> framework;
  bool routed = false;

  std::uint64_t jobsExecuted = 0;
  std::mutex jobMutex;
};

/// Receives progress frames during a streaming job (one JSON document
/// per completed iteration).  Called on the job's thread, inside the
/// session's jobMutex; keep it cheap.  Null-ok: pass {} to skip
/// streaming.
using EventSink = std::function<void(const obs::Json&)>;

/// Jobs.  Each takes the session's jobMutex, installs its ObsContext,
/// and throws std::runtime_error (or a library error) on invalid
/// parameters / missing prerequisites — the server turns that into an
/// ok:false response.
///
/// bmgen: generate a synthetic design from spec parameters (cells,
/// util, seed, netsPerCell, hotspots, layers, macros, multiRowFrac,
/// refine).  Replaces any previous design in the session.  An optional
/// "perturb" object {seed, frac} additionally derives an EcoDelta and
/// returns it under "ecoDelta" — the paired input for a later eco job.
obs::Json runBmgenJob(Session& session, const obs::Json& params);

/// run: global-route (once per design) and execute k CR&P iterations
/// on a fresh framework.  Streams one "iteration" event per iteration
/// (timeline record + heatmap delta when snapshots are on), then
/// returns the "result" document with the RunReport and its
/// fingerprint.  An optional "perturb" object {seed, frac} derives an
/// EcoDelta from the *post-run* placement (valid input for the next
/// eco job, unlike a pre-run delta the iterations would invalidate).
obs::Json runRunJob(Session& session, const obs::Json& params,
                    const EventSink& emit);

/// eco: apply an EcoDelta ("delta", required) incrementally and run k
/// restricted iterations, streaming like run.  Reuses the session's
/// framework (warm pricing cache) when one exists.
obs::Json runEcoJob(Session& session, const obs::Json& params,
                    const EventSink& emit);

/// report: the current framework's RunReport + fingerprint, no
/// mutation.
obs::Json runReportJob(Session& session);

/// Session registry.  Thread-safe; sessions are handed out as
/// shared_ptr so a job can keep running on a session that a concurrent
/// close_session already unlinked.
class SessionManager {
 public:
  explicit SessionManager(std::size_t maxSessions = 64);

  /// Null when the registry is at maxSessions.
  std::shared_ptr<Session> open(std::string name, util::ThreadPool& pool);
  std::shared_ptr<Session> find(std::uint64_t id) const;
  bool close(std::uint64_t id);
  std::size_t count() const;
  std::vector<std::shared_ptr<Session>> all() const;

 private:
  mutable std::mutex mutex_;
  std::size_t maxSessions_;
  std::uint64_t nextId_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace crp::serve
