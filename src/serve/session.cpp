#include "serve/session.hpp"

#include <stdexcept>
#include <utility>

#include "bmgen/perturb.hpp"
#include "db/eco.hpp"
#include "obs/run_report.hpp"

namespace crp::serve {

namespace {

double numberOr(const obs::Json& params, std::string_view key,
                double fallback) {
  const obs::Json* value = params.find(key);
  return value != nullptr ? value->asDouble() : fallback;
}

std::string stringOr(const obs::Json& params, std::string_view key,
                     std::string fallback) {
  const obs::Json* value = params.find(key);
  return value != nullptr ? value->asString() : std::move(fallback);
}

/// Builds the benchmark spec a bmgen job describes.  Unknown keys are
/// ignored; absent keys keep BenchmarkSpec defaults (small designs by
/// default — the daemon is a job server, not a batch bench).
bmgen::BenchmarkSpec specFromParams(const Session& session,
                                    const obs::Json& params) {
  bmgen::BenchmarkSpec spec;
  spec.name = stringOr(params, "name",
                       session.name.empty() ? "serve" : session.name);
  spec.targetCells = static_cast<int>(numberOr(params, "cells", 400));
  spec.utilization = numberOr(params, "util", spec.utilization);
  spec.netsPerCell = numberOr(params, "netsPerCell", spec.netsPerCell);
  spec.localityBias = numberOr(params, "localityBias", spec.localityBias);
  spec.numLayers = static_cast<int>(numberOr(params, "layers", spec.numLayers));
  spec.hotspots = static_cast<int>(numberOr(params, "hotspots", 0));
  spec.hotspotStrength =
      numberOr(params, "hotspotStrength", spec.hotspotStrength);
  spec.macroCount = static_cast<int>(numberOr(params, "macros", 0));
  spec.multiRowFrac = numberOr(params, "multiRowFrac", 0.0);
  spec.refinePlacement = numberOr(params, "refine", 0) > 0;
  spec.seed = static_cast<std::uint64_t>(numberOr(params, "seed", 1));
  return spec;
}

/// Routes the session's design once (idempotent).  The router records
/// into the session context and batches on the shared pool.
void ensureRouted(Session& session) {
  if (session.db == nullptr) {
    throw std::runtime_error(
        "session has no design (run a bmgen job first)");
  }
  if (session.routed && session.router != nullptr) return;
  session.framework.reset();
  groute::GlobalRouterOptions routerOptions;
  routerOptions.obsContext = &session.context;
  routerOptions.sharedPool = session.pool;
  session.router =
      std::make_unique<groute::GlobalRouter>(*session.db, routerOptions);
  session.router->run();
  session.routed = true;
}

core::CrpOptions crpOptionsFromParams(Session& session,
                                      const obs::Json& params) {
  core::CrpOptions options;
  options.iterations = static_cast<int>(numberOr(params, "k", 2));
  options.gamma = numberOr(params, "gamma", options.gamma);
  options.seed = static_cast<std::uint64_t>(numberOr(params, "seed", 1));
  options.snapshots = numberOr(params, "snapshots", 1) > 0;
  options.tileRows = static_cast<int>(numberOr(params, "tileRows", 1));
  options.tileCols = static_cast<int>(numberOr(params, "tileCols", 1));
  options.haloGcells = static_cast<int>(numberOr(params, "haloGcells", -1));
  options.obsContext = &session.context;
  options.sharedPool = session.pool;
  return options;
}

/// Installs the per-iteration streaming callback: a compact event with
/// the iteration's headline numbers plus — when the spatial tier is on
/// — the full TimelineRecord and the newest heatmap delta.  Captures
/// by value (the callback outlives the installing job's stack).
void installStreaming(Session& session, EventSink emit) {
  core::CrpFramework* framework = session.framework.get();
  if (!emit) {
    framework->setIterationCallback(nullptr);
    return;
  }
  framework->setIterationCallback(
      [framework, emit = std::move(emit)](
          int iteration, const core::IterationReport& report) {
        obs::Json event = obs::Json::object();
        event.set("event", "iteration");
        event.set("iteration", iteration);
        event.set("criticalCells", report.criticalCells);
        event.set("movedCells", report.movedCells);
        event.set("reroutedNets", report.reroutedNets);
        event.set("selectedCost", report.selectedCost);
        const obs::RunReport& runReport = framework->runReport();
        if (!runReport.timeline.empty()) {
          event.set("timeline", runReport.timeline.back().toJson());
        }
        if (!framework->heatmaps().empty()) {
          event.set("heatmapDelta", framework->heatmaps().latestEntryJson());
        }
        emit(event);
      });
}

/// The result fields every flow job ends with.
void stampReport(Session& session, const obs::Json& params,
                 obs::Json& result) {
  const obs::RunReport& runReport = session.framework->runReport();
  result.set("fingerprint", runReport.fingerprint());
  if (numberOr(params, "report", 1) > 0) {
    result.set("report", runReport.toJson());
  }
}

}  // namespace

obs::Json runBmgenJob(Session& session, const obs::Json& params) {
  std::lock_guard<std::mutex> lock(session.jobMutex);
  obs::ObsContextScope scope(session.context);
  const bmgen::BenchmarkSpec spec = specFromParams(session, params);
  // Teardown in dependency order before the new design replaces the
  // old one.
  session.framework.reset();
  session.router.reset();
  session.routed = false;
  session.db =
      std::make_unique<db::Database>(bmgen::generateBenchmark(spec));

  obs::Json result = obs::Json::object();
  result.set("event", "result");
  result.set("design", spec.name);
  result.set("cells", session.db->numCells());
  result.set("nets", session.db->numNets());
  if (const obs::Json* perturb = params.find("perturb")) {
    bmgen::PerturbOptions perturbOptions;
    perturbOptions.seed =
        static_cast<std::uint64_t>(numberOr(*perturb, "seed", 1));
    perturbOptions.frac = numberOr(*perturb, "frac", perturbOptions.frac);
    const db::EcoDelta delta =
        bmgen::perturbDesign(*session.db, perturbOptions);
    result.set("ecoEdits", static_cast<std::int64_t>(delta.size()));
    result.set("ecoDelta", db::ecoDeltaToJson(delta));
  }
  ++session.jobsExecuted;
  return result;
}

obs::Json runRunJob(Session& session, const obs::Json& params,
                    const EventSink& emit) {
  std::lock_guard<std::mutex> lock(session.jobMutex);
  obs::ObsContextScope scope(session.context);
  ensureRouted(session);
  const core::CrpOptions options = crpOptionsFromParams(session, params);
  // A fresh framework per run: its construction-time metrics baseline
  // makes the RunReport counter deltas (and the fingerprint) describe
  // exactly this run.
  session.framework = std::make_unique<core::CrpFramework>(
      *session.db, *session.router, options);
  installStreaming(session, emit);
  const core::CrpReport crp = session.framework->run();

  obs::Json result = obs::Json::object();
  result.set("event", "result");
  result.set("iterations", options.iterations);
  result.set("totalMoves", crp.totalMoves);
  result.set("totalReroutes", crp.totalReroutes);
  if (const obs::Json* perturb = params.find("perturb")) {
    // Derive the ECO delta from the *post-run* placement — a delta
    // drawn before the run would reference positions the iterations
    // just moved and fail the apply-time legality check.
    bmgen::PerturbOptions perturbOptions;
    perturbOptions.seed =
        static_cast<std::uint64_t>(numberOr(*perturb, "seed", 1));
    perturbOptions.frac = numberOr(*perturb, "frac", perturbOptions.frac);
    const db::EcoDelta delta =
        bmgen::perturbDesign(*session.db, perturbOptions);
    result.set("ecoEdits", static_cast<std::int64_t>(delta.size()));
    result.set("ecoDelta", db::ecoDeltaToJson(delta));
  }
  stampReport(session, params, result);
  ++session.jobsExecuted;
  return result;
}

obs::Json runEcoJob(Session& session, const obs::Json& params,
                    const EventSink& emit) {
  std::lock_guard<std::mutex> lock(session.jobMutex);
  obs::ObsContextScope scope(session.context);
  const obs::Json* deltaJson = params.find("delta");
  if (deltaJson == nullptr) {
    throw std::runtime_error("eco job requires a 'delta' document");
  }
  const db::EcoDelta delta = db::ecoDeltaFromJson(*deltaJson);
  ensureRouted(session);
  if (session.framework == nullptr) {
    // No prior run in this session: wrap the routed design so runEco
    // has a framework (mirrors `crp eco --base-k 0`).
    session.framework = std::make_unique<core::CrpFramework>(
        *session.db, *session.router, crpOptionsFromParams(session, params));
  }
  installStreaming(session, emit);
  core::EcoOptions eco;
  eco.iterations = static_cast<int>(numberOr(params, "k", 1));
  eco.haloGCells = static_cast<int>(numberOr(params, "halo", eco.haloGCells));
  const core::EcoReport report = session.framework->runEco(delta, eco);

  obs::Json result = obs::Json::object();
  result.set("event", "result");
  obs::Json ecoJson = obs::Json::object();
  ecoJson.set("edits", static_cast<std::int64_t>(delta.size()));
  ecoJson.set("movedCells", report.movedCells);
  ecoJson.set("rewiredPins", report.rewiredPins);
  ecoJson.set("dirtyNets", report.dirtyNets);
  ecoJson.set("scopeCells", report.scopeCells);
  ecoJson.set("cacheEvictions",
              static_cast<std::int64_t>(report.cacheEvictions));
  ecoJson.set("totalMoves", report.crp.totalMoves);
  ecoJson.set("totalReroutes", report.crp.totalReroutes);
  ecoJson.set("patchSeconds", report.patchSeconds);
  ecoJson.set("totalSeconds", report.totalSeconds);
  result.set("eco", std::move(ecoJson));
  stampReport(session, params, result);
  ++session.jobsExecuted;
  return result;
}

obs::Json runReportJob(Session& session) {
  std::lock_guard<std::mutex> lock(session.jobMutex);
  obs::ObsContextScope scope(session.context);
  if (session.framework == nullptr) {
    throw std::runtime_error("session has no run to report on");
  }
  obs::Json result = obs::Json::object();
  result.set("event", "result");
  const obs::RunReport& runReport = session.framework->runReport();
  result.set("fingerprint", runReport.fingerprint());
  result.set("report", runReport.toJson());
  ++session.jobsExecuted;
  return result;
}

SessionManager::SessionManager(std::size_t maxSessions)
    : maxSessions_(maxSessions) {}

std::shared_ptr<Session> SessionManager::open(std::string name,
                                              util::ThreadPool& pool) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= maxSessions_) return nullptr;
  auto session = std::make_shared<Session>();
  session->id = nextId_++;
  session->name = std::move(name);
  session->pool = &pool;
  session->context.setEnabled(true);
  sessions_.emplace(session->id, session);
  return session;
}

std::shared_ptr<Session> SessionManager::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second : nullptr;
}

bool SessionManager::close(std::uint64_t id) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // Destroy outside the registry lock; wait for a job in flight so the
  // design state never dies under it.
  std::lock_guard<std::mutex> jobLock(victim->jobMutex);
  return true;
}

std::size_t SessionManager::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> SessionManager::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

}  // namespace crp::serve
