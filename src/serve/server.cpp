#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "serve/protocol.hpp"

namespace crp::serve {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Copies the request's correlation tag (if any) into a response
/// frame, so pipelined clients can match streams to requests.
void stampTag(const obs::Json& request, obs::Json& response) {
  if (const obs::Json* tag = request.find("tag")) {
    response.set("tag", *tag);
  }
}

obs::Json okFrame(const obs::Json& request, bool done) {
  obs::Json frame = obs::Json::object();
  frame.set("ok", true);
  stampTag(request, frame);
  if (done) frame.set("done", true);
  return frame;
}

obs::Json errorFrame(const obs::Json& request, const std::string& message) {
  obs::Json frame = obs::Json::object();
  frame.set("ok", false);
  frame.set("error", message);
  stampTag(request, frame);
  frame.set("done", true);
  return frame;
}

/// Merges a job result document into an ok frame (keeps "ok"/"tag"
/// first, "done" last — purely cosmetic, the protocol is key-based).
obs::Json resultFrame(const obs::Json& request, const obs::Json& result) {
  obs::Json frame = okFrame(request, /*done=*/false);
  for (const auto& [key, value] : result.asObject()) {
    if (key == "event") continue;  // implied by the done flag
    frame.set(key, value);
  }
  frame.set("done", true);
  return frame;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      pool_(static_cast<std::size_t>(std::max(0, options_.workers))),
      sessions_(options_.maxSessions) {}

Server::~Server() {
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeFds_[0] >= 0) ::close(wakeFds_[0]);
  if (wakeFds_[1] >= 0) ::close(wakeFds_[1]);
}

void Server::start() {
  if (options_.socketPath.empty()) {
    throw std::runtime_error("serve: socket path is empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             options_.socketPath);
  }
  std::memcpy(addr.sun_path, options_.socketPath.c_str(),
              options_.socketPath.size() + 1);

  if (::pipe2(wakeFds_, O_CLOEXEC | O_NONBLOCK) != 0) throwErrno("pipe2");
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) throwErrno("socket");
  ::unlink(options_.socketPath.c_str());  // stale socket from a crash
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throwErrno("bind " + options_.socketPath);
  }
  if (::listen(listenFd_, 64) != 0) throwErrno("listen");
  if (options_.verbose) {
    std::cerr << "crp serve: listening on " << options_.socketPath << " ("
              << pool_.threadCount() << " workers)\n";
  }
}

void Server::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakeFds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // requestStop woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connMutex_);
    liveFds_.push_back(client);
    handlers_.emplace_back(&Server::handleConnection, this, client);
  }

  // Teardown: stop accepting, wake blocked readers, join handlers.
  ::close(listenFd_);
  listenFd_ = -1;
  ::unlink(options_.socketPath.c_str());
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (const int fd : liveFds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
  }
  for (std::thread& handler : handlers) handler.join();
  if (options_.verbose) {
    std::cerr << "crp serve: stopped ("
              << connectionsAccepted_.load(std::memory_order_relaxed)
              << " connections, " << jobsCompleted() << " jobs)\n";
  }
}

void Server::requestStop() {
  stop_.store(true, std::memory_order_release);
  if (wakeFds_[1] >= 0) {
    const char byte = 'x';
    // Best-effort; the pipe is non-blocking and one pending byte is
    // enough to wake poll().
    [[maybe_unused]] const ssize_t n = ::write(wakeFds_[1], &byte, 1);
  }
}

void Server::handleConnection(int fd) {
  for (;;) {
    obs::Json request;
    try {
      if (!readMessage(fd, request)) break;  // clean EOF
    } catch (const ProtocolError&) {
      break;  // framing broken; nothing sane to reply with
    }
    try {
      if (!dispatch(fd, request)) break;
    } catch (const ProtocolError&) {
      break;  // peer went away mid-response
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(connMutex_);
  liveFds_.erase(std::remove(liveFds_.begin(), liveFds_.end(), fd),
                 liveFds_.end());
}

std::shared_ptr<Session> Server::requireSession(const obs::Json& request) {
  const obs::Json* id = request.find("session");
  if (id == nullptr) {
    throw std::runtime_error("request is missing 'session'");
  }
  std::shared_ptr<Session> session =
      sessions_.find(static_cast<std::uint64_t>(id->asInt()));
  if (session == nullptr) {
    throw std::runtime_error("unknown session " + std::to_string(id->asInt()));
  }
  return session;
}

bool Server::dispatch(int fd, const obs::Json& request) {
  std::string op;
  try {
    op = request.at("op").asString();
  } catch (const std::exception&) {
    writeMessage(fd, errorFrame(request, "request is missing 'op'"));
    return true;
  }
  if (options_.verbose) std::cerr << "crp serve: op " << op << "\n";

  try {
    if (op == "hello") {
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("server", "crp-serve");
      frame.set("protocol", kProtocolVersion);
      frame.set("pid", static_cast<std::int64_t>(::getpid()));
      frame.set("workers",
                static_cast<std::int64_t>(pool_.threadCount()));
      frame.set("sessions", static_cast<std::int64_t>(sessions_.count()));
      frame.set("done", true);
      writeMessage(fd, frame);
      return true;
    }
    if (op == "open_session") {
      const std::shared_ptr<Session> session = sessions_.open(
          request.find("name") != nullptr ? request.at("name").asString()
                                          : std::string(),
          pool_);
      if (session == nullptr) {
        writeMessage(fd, errorFrame(request, "session limit reached"));
        return true;
      }
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("session", session->id);
      frame.set("done", true);
      writeMessage(fd, frame);
      return true;
    }
    if (op == "close_session") {
      const obs::Json* id = request.find("session");
      const bool closed =
          id != nullptr &&
          sessions_.close(static_cast<std::uint64_t>(id->asInt()));
      if (!closed) {
        writeMessage(fd, errorFrame(request, "unknown session"));
        return true;
      }
      writeMessage(fd, okFrame(request, /*done=*/true));
      return true;
    }
    if (op == "stats") {
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("sessions", static_cast<std::int64_t>(sessions_.count()));
      frame.set("connections",
                static_cast<std::int64_t>(
                    connectionsAccepted_.load(std::memory_order_relaxed)));
      frame.set("jobsCompleted", static_cast<std::int64_t>(jobsCompleted()));
      frame.set("workers", static_cast<std::int64_t>(pool_.threadCount()));
      frame.set("done", true);
      writeMessage(fd, frame);
      return true;
    }
    if (op == "shutdown") {
      writeMessage(fd, okFrame(request, /*done=*/true));
      requestStop();
      return false;
    }

    // Job ops below need a session.
    const std::shared_ptr<Session> session = requireSession(request);
    if (op == "bmgen") {
      const obs::Json result = runBmgenJob(*session, request);
      jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
      writeMessage(fd, resultFrame(request, result));
      return true;
    }
    if (op == "run" || op == "eco") {
      const EventSink emit = [fd, &request](const obs::Json& event) {
        obs::Json frame = event;
        frame.set("ok", true);
        stampTag(request, frame);
        writeMessage(fd, frame);
      };
      const obs::Json result =
          op == "run" ? runRunJob(*session, request, emit)
                      : runEcoJob(*session, request, emit);
      jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
      writeMessage(fd, resultFrame(request, result));
      return true;
    }
    if (op == "report") {
      const obs::Json result = runReportJob(*session);
      jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
      writeMessage(fd, resultFrame(request, result));
      return true;
    }
    writeMessage(fd, errorFrame(request, "unknown op '" + op + "'"));
    return true;
  } catch (const ProtocolError&) {
    throw;  // socket-level failure: close the connection
  } catch (const std::exception& e) {
    writeMessage(fd, errorFrame(request, e.what()));
    return true;
  }
}

}  // namespace crp::serve
