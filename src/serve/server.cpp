#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "obs/prometheus.hpp"
#include "obs/run_ledger.hpp"
#include "serve/protocol.hpp"

namespace crp::serve {

namespace {

/// Microsecond latency buckets for the per-op histograms: powers of
/// two from 1 us to ~16.8 s.  Wide enough that a full run job lands in
/// a finite bucket, fine enough that p50/p99 of cheap ops (hello,
/// stats) stay meaningful.
std::vector<std::uint64_t> latencyBoundsMicros() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= (1ull << 24); b <<= 1) bounds.push_back(b);
  return bounds;
}

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Copies the request's correlation tag (if any) into a response
/// frame, so pipelined clients can match streams to requests.
void stampTag(const obs::Json& request, obs::Json& response) {
  if (const obs::Json* tag = request.find("tag")) {
    response.set("tag", *tag);
  }
}

obs::Json okFrame(const obs::Json& request, bool done) {
  obs::Json frame = obs::Json::object();
  frame.set("ok", true);
  stampTag(request, frame);
  if (done) frame.set("done", true);
  return frame;
}

obs::Json errorFrame(const obs::Json& request, const std::string& message) {
  obs::Json frame = obs::Json::object();
  frame.set("ok", false);
  frame.set("error", message);
  stampTag(request, frame);
  frame.set("done", true);
  return frame;
}

/// Merges a job result document into an ok frame (keeps "ok"/"tag"
/// first, "done" last — purely cosmetic, the protocol is key-based).
obs::Json resultFrame(const obs::Json& request, const obs::Json& result) {
  obs::Json frame = okFrame(request, /*done=*/false);
  for (const auto& [key, value] : result.asObject()) {
    if (key == "event") continue;  // implied by the done flag
    frame.set(key, value);
  }
  frame.set("done", true);
  return frame;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      pool_(static_cast<std::size_t>(std::max(0, options_.workers))),
      sessions_(options_.maxSessions) {}

Server::~Server() {
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeFds_[0] >= 0) ::close(wakeFds_[0]);
  if (wakeFds_[1] >= 0) ::close(wakeFds_[1]);
}

void Server::start() {
  if (options_.socketPath.empty()) {
    throw std::runtime_error("serve: socket path is empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             options_.socketPath);
  }
  std::memcpy(addr.sun_path, options_.socketPath.c_str(),
              options_.socketPath.size() + 1);

  if (::pipe2(wakeFds_, O_CLOEXEC | O_NONBLOCK) != 0) throwErrno("pipe2");
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) throwErrno("socket");
  ::unlink(options_.socketPath.c_str());  // stale socket from a crash
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throwErrno("bind " + options_.socketPath);
  }
  if (::listen(listenFd_, 64) != 0) throwErrno("listen");
  startTime_ = std::chrono::steady_clock::now();
  if (options_.verbose) {
    std::cerr << "crp serve: listening on " << options_.socketPath << " ("
              << pool_.threadCount() << " workers)\n";
  }
}

void Server::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakeFds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // requestStop woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connMutex_);
    liveFds_.push_back(client);
    obs_.metrics().gauge("serve.connections.active")
        ->set(static_cast<double>(liveFds_.size()));
    handlers_.emplace_back(&Server::handleConnection, this, client);
  }

  // Teardown: stop accepting, wake blocked readers, join handlers.
  ::close(listenFd_);
  listenFd_ = -1;
  ::unlink(options_.socketPath.c_str());
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (const int fd : liveFds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
  }
  for (std::thread& handler : handlers) handler.join();
  if (options_.verbose) {
    std::cerr << "crp serve: stopped ("
              << connectionsAccepted_.load(std::memory_order_relaxed)
              << " connections, " << jobsCompleted() << " jobs)\n";
  }
}

void Server::requestStop() {
  stop_.store(true, std::memory_order_release);
  if (wakeFds_[1] >= 0) {
    const char byte = 'x';
    // Best-effort; the pipe is non-blocking and one pending byte is
    // enough to wake poll().
    [[maybe_unused]] const ssize_t n = ::write(wakeFds_[1], &byte, 1);
  }
}

void Server::handleConnection(int fd) {
  for (;;) {
    obs::Json request;
    std::size_t wireBytes = 0;
    try {
      if (!readMessage(fd, request, &wireBytes)) break;  // clean EOF
    } catch (const ProtocolError&) {
      obs_.metrics().counter("serve.errors.protocol")->add(1);
      break;  // framing broken; nothing sane to reply with
    }
    obs_.metrics().counter("serve.bytes.in")->add(wireBytes);
    try {
      if (!dispatch(fd, request)) break;
    } catch (const ProtocolError&) {
      obs_.metrics().counter("serve.errors.protocol")->add(1);
      break;  // peer went away mid-response
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(connMutex_);
  liveFds_.erase(std::remove(liveFds_.begin(), liveFds_.end(), fd),
                 liveFds_.end());
  obs_.metrics().gauge("serve.connections.active")
      ->set(static_cast<double>(liveFds_.size()));
}

double Server::uptimeSeconds() const {
  if (startTime_ == std::chrono::steady_clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       startTime_)
      .count();
}

void Server::send(int fd, const obs::Json& frame) {
  std::size_t wireBytes = 0;
  writeMessage(fd, frame, &wireBytes);
  obs_.metrics().counter("serve.bytes.out")->add(wireBytes);
  const obs::Json* ok = frame.find("ok");
  if (ok != nullptr && !ok->asBool()) {
    obs_.metrics().counter("serve.errors.request")->add(1);
  }
}

void Server::appendLedgerEntry(const std::string& op, Session& session,
                               const obs::Json& request) {
  if (options_.ledgerPath.empty()) return;
  obs::RunLedgerEntry entry;
  {
    // The job released jobMutex when it returned; retake it so the
    // report cannot change shape under us if another connection races
    // a new job onto this session.
    std::lock_guard<std::mutex> lock(session.jobMutex);
    if (session.framework == nullptr) return;
    entry = obs::makeRunLedgerEntry(session.framework->runReport());
    entry.design = session.db != nullptr ? session.db->design().name
                                         : session.name;
  }
  entry.kind = "serve-" + op;
  // Digest of the request's configuration surface: everything except
  // transport plumbing and bulk payloads.  Stable across sessions and
  // connections for identical job parameters.
  obs::Json optionsJson = obs::Json::object();
  for (const auto& [key, value] : request.asObject()) {
    if (key == "op" || key == "tag" || key == "session" || key == "delta") {
      continue;
    }
    optionsJson.set(key, value);
  }
  entry.optionsDigest = obs::fnv1a64Hex(optionsJson.dump());
  if (const obs::Json* tileRows = request.find("tileRows")) {
    entry.tileRows = static_cast<int>(tileRows->asInt());
  }
  if (const obs::Json* tileCols = request.find("tileCols")) {
    entry.tileCols = static_cast<int>(tileCols->asInt());
  }
  std::string error;
  obs::RunLedger ledger(options_.ledgerPath);
  if (!ledger.append(entry, &error) && options_.verbose) {
    std::cerr << "crp serve: ledger append failed: " << error << "\n";
  }
}

std::shared_ptr<Session> Server::requireSession(const obs::Json& request) {
  const obs::Json* id = request.find("session");
  if (id == nullptr) {
    throw std::runtime_error("request is missing 'session'");
  }
  std::shared_ptr<Session> session =
      sessions_.find(static_cast<std::uint64_t>(id->asInt()));
  if (session == nullptr) {
    throw std::runtime_error("unknown session " + std::to_string(id->asInt()));
  }
  return session;
}

bool Server::dispatch(int fd, const obs::Json& request) {
  std::string op;
  try {
    op = request.at("op").asString();
  } catch (const std::exception&) {
    send(fd, errorFrame(request, "request is missing 'op'"));
    return true;
  }
  if (options_.verbose) std::cerr << "crp serve: op " << op << "\n";

  // Self-instrumentation: request count + wall latency per op, into
  // the server-owned context (never a session's).
  obs_.metrics().counter("serve.op." + op + ".requests")->add(1);
  const auto started = std::chrono::steady_clock::now();
  const bool keepOpen = dispatchOp(fd, request, op);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  obs_.metrics()
      .histogram("serve.op." + op + ".latency", latencyBoundsMicros())
      ->record(static_cast<std::uint64_t>(micros));
  return keepOpen;
}

bool Server::dispatchOp(int fd, const obs::Json& request,
                        const std::string& op) {
  try {
    if (op == "hello") {
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("server", "crp-serve");
      frame.set("protocol", kProtocolVersion);
      frame.set("pid", static_cast<std::int64_t>(::getpid()));
      frame.set("workers",
                static_cast<std::int64_t>(pool_.threadCount()));
      frame.set("sessions", static_cast<std::int64_t>(sessions_.count()));
      frame.set("done", true);
      send(fd, frame);
      return true;
    }
    if (op == "open_session") {
      const std::shared_ptr<Session> session = sessions_.open(
          request.find("name") != nullptr ? request.at("name").asString()
                                          : std::string(),
          pool_);
      if (session == nullptr) {
        send(fd, errorFrame(request, "session limit reached"));
        return true;
      }
      obs_.metrics().gauge("serve.sessions.active")
          ->set(static_cast<double>(sessions_.count()));
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("session", session->id);
      frame.set("done", true);
      send(fd, frame);
      return true;
    }
    if (op == "close_session") {
      const obs::Json* id = request.find("session");
      const bool closed =
          id != nullptr &&
          sessions_.close(static_cast<std::uint64_t>(id->asInt()));
      if (!closed) {
        send(fd, errorFrame(request, "unknown session"));
        return true;
      }
      obs_.metrics().gauge("serve.sessions.active")
          ->set(static_cast<double>(sessions_.count()));
      send(fd, okFrame(request, /*done=*/true));
      return true;
    }
    if (op == "stats") {
      const obs::MetricsSnapshot snapshot = obs_.metrics().snapshot();
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("sessions", static_cast<std::int64_t>(sessions_.count()));
      frame.set("connections",
                static_cast<std::int64_t>(
                    connectionsAccepted_.load(std::memory_order_relaxed)));
      frame.set("jobsCompleted", static_cast<std::int64_t>(jobsCompleted()));
      frame.set("workers", static_cast<std::int64_t>(pool_.threadCount()));
      frame.set("uptimeSeconds", uptimeSeconds());
      const auto counterOr = [&snapshot](const char* name) -> std::int64_t {
        const auto it = snapshot.counters.find(name);
        return it != snapshot.counters.end()
                   ? static_cast<std::int64_t>(it->second)
                   : 0;
      };
      frame.set("bytesIn", counterOr("serve.bytes.in"));
      frame.set("bytesOut", counterOr("serve.bytes.out"));
      frame.set("requestErrors", counterOr("serve.errors.request"));
      frame.set("protocolErrors", counterOr("serve.errors.protocol"));
      // Per-op breakdown: request count plus p50/p99 latency (micros)
      // from the server's own histograms.
      obs::Json ops = obs::Json::object();
      for (const auto& [name, value] : snapshot.counters) {
        constexpr std::string_view prefix = "serve.op.";
        constexpr std::string_view suffix = ".requests";
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
          continue;
        }
        const std::string opName = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        obs::Json entry = obs::Json::object();
        entry.set("requests", value);
        const auto hist = snapshot.histograms.find(
            std::string(prefix) + opName + ".latency");
        if (hist != snapshot.histograms.end()) {
          entry.set("latencyP50Micros", hist->second.quantile(0.50));
          entry.set("latencyP99Micros", hist->second.quantile(0.99));
        }
        ops.set(opName, std::move(entry));
      }
      frame.set("ops", std::move(ops));
      frame.set("done", true);
      send(fd, frame);
      return true;
    }
    if (op == "metrics") {
      // Prometheus exposition.  Server-wide by default; with a
      // "session" id, that session's instruments instead (the design's
      // counters/heatmaps, not the daemon's).
      std::string text;
      if (request.find("session") != nullptr) {
        const std::shared_ptr<Session> session = requireSession(request);
        text = obs::renderPrometheus(session->context.metrics(), "crp");
      } else {
        text = obs::renderPrometheus(obs_.metrics(), "crp");
      }
      obs::Json frame = okFrame(request, /*done=*/false);
      frame.set("contentType", "text/plain; version=0.0.4");
      frame.set("metrics", text);
      frame.set("done", true);
      send(fd, frame);
      return true;
    }
    if (op == "shutdown") {
      send(fd, okFrame(request, /*done=*/true));
      requestStop();
      return false;
    }

    // Job ops below need a session.
    const std::shared_ptr<Session> session = requireSession(request);
    if (op == "bmgen") {
      const obs::Json result = runBmgenJob(*session, request);
      jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
      send(fd, resultFrame(request, result));
      return true;
    }
    if (op == "run" || op == "eco") {
      const EventSink emit = [this, fd, &request](const obs::Json& event) {
        obs::Json frame = event;
        frame.set("ok", true);
        stampTag(request, frame);
        send(fd, frame);
      };
      const obs::Json result =
          op == "run" ? runRunJob(*session, request, emit)
                      : runEcoJob(*session, request, emit);
      jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
      appendLedgerEntry(op, *session, request);
      send(fd, resultFrame(request, result));
      return true;
    }
    if (op == "report") {
      const obs::Json result = runReportJob(*session);
      jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
      send(fd, resultFrame(request, result));
      return true;
    }
    send(fd, errorFrame(request, "unknown op '" + op + "'"));
    return true;
  } catch (const ProtocolError&) {
    throw;  // socket-level failure: close the connection
  } catch (const std::exception& e) {
    send(fd, errorFrame(request, e.what()));
    return true;
  }
}

}  // namespace crp::serve
