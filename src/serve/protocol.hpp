// Wire protocol of the crp serve daemon (docs/serve.md).
//
// Transport: a local stream socket carrying *frames*.  Each frame is a
// 4-byte big-endian payload length followed by that many bytes of
// UTF-8 JSON.  Requests are single frames; a request's response is a
// stream of one or more frames on the same connection, in order, the
// last of which carries `"done": true`.  Intermediate frames are
// progress events (per-iteration timeline records, heatmap deltas).
// The length prefix makes framing independent of JSON content, and the
// kMaxFrameBytes guard bounds what a malformed or hostile peer can
// make the daemon buffer.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace crp::serve {

/// Protocol schema version, echoed by the hello op.  Bump when frame
/// layout or the response contract (done-flag, error shape) changes.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on a single frame's payload.  Generous: a full
/// RunReport with timeline for the bench designs is well under 8 MiB.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Framing violation: truncated header/payload, oversized length, or
/// an I/O error on the socket.  Clean EOF at a frame boundary is NOT
/// an error (readFrame returns false for it).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads one frame into `payload`.  Returns false on clean EOF (peer
/// closed between frames); throws ProtocolError on a short read inside
/// a frame, a length above kMaxFrameBytes, or a socket error.
bool readFrame(int fd, std::string& payload);

/// Writes one frame (header + payload, handling short writes).
/// Throws ProtocolError on error or an over-long payload.
void writeFrame(int fd, std::string_view payload);

/// readFrame + Json::parse.  A frame that is not valid JSON throws
/// ProtocolError (framing survives, but the stream is unusable).
/// `wireBytes`, when non-null, receives the on-wire size of the frame
/// (payload + 4-byte header) so the server can meter traffic without
/// re-serializing.
bool readMessage(int fd, obs::Json& message, std::size_t* wireBytes = nullptr);

/// Serializes compactly (no indent) and writes one frame.  `wireBytes`
/// as for readMessage.
void writeMessage(int fd, const obs::Json& message,
                  std::size_t* wireBytes = nullptr);

/// Minimal client: connect to the daemon's unix socket, exchange
/// messages.  Used by crp_loadgen, the serve smoke leg, and the
/// protocol tests; real clients in other languages only need the
/// 4-byte framing above.
class Client {
 public:
  /// Connects; throws ProtocolError when the socket is absent or
  /// refuses.
  explicit Client(const std::string& socketPath);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send(const obs::Json& request);
  /// One response frame; false on clean EOF.
  bool receive(obs::Json& response);

  /// send() + receive() until a frame with `"done": true` arrives.
  /// Returns all frames (events first, final frame last).  Throws
  /// ProtocolError if the server closes mid-stream.
  std::vector<obs::Json> call(const obs::Json& request);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace crp::serve
