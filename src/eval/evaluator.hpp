// ISPD-2018-style evaluation (the contest's official-evaluator
// substitute).  Metrics follow §V.A of the paper: detailed-routing
// wirelength and via count, DRV counts, and the contest weighting of
// 0.5 per wire unit and 2 per via ("via insertion is 4 times as
// expensive as wire insertion").
#pragma once

#include <string>

#include "db/database.hpp"
#include "droute/detailed_router.hpp"

namespace crp::eval {

struct Metrics {
  geom::Coord wirelengthDbu = 0;
  long viaCount = 0;
  int shorts = 0;
  int spacing = 0;
  int minArea = 0;
  int openNets = 0;

  int totalDrvs() const { return shorts + spacing + minArea; }
};

/// Contest weights.
struct ScoreWeights {
  double wireUnit = 0.5;  ///< per wire unit (one M2 pitch of wire)
  double viaUnit = 2.0;   ///< per via
  double drvPenalty = 500.0;
  double openPenalty = 500.0;
};

/// Collapses detailed-route stats into evaluation metrics.
Metrics collectMetrics(const droute::DetailedRouteStats& stats);

/// Weighted contest score (lower is better).  Wirelength is expressed
/// in M2-pitch units so the wire/via weights have the contest meaning.
double score(const Metrics& metrics, const db::Database& db,
             const ScoreWeights& weights = {});

/// Improvement of `candidate` over `baseline` in percent (positive =
/// candidate better), the quantity reported in Table III.
double improvementPercent(double baseline, double candidate);

/// One row of a Table III-style comparison.
struct ComparisonRow {
  std::string benchmark;
  Metrics baseline;
  Metrics candidate;
  double wirelengthImprovePct = 0.0;
  double viaImprovePct = 0.0;
  int drvDelta = 0;  ///< candidate DRVs - baseline DRVs (0 = "no new DRVs")
};

ComparisonRow compareRuns(const std::string& benchmark,
                          const Metrics& baseline, const Metrics& candidate);

}  // namespace crp::eval
