#include "eval/evaluator.hpp"

namespace crp::eval {

Metrics collectMetrics(const droute::DetailedRouteStats& stats) {
  Metrics metrics;
  metrics.wirelengthDbu = stats.wirelengthDbu;
  metrics.viaCount = stats.viaCount;
  metrics.shorts = stats.shortViolations;
  metrics.spacing = stats.spacingViolations;
  metrics.minArea = stats.minAreaViolations;
  metrics.openNets = stats.openNets;
  return metrics;
}

double score(const Metrics& metrics, const db::Database& db,
             const ScoreWeights& weights) {
  // Wire unit: one pitch of the second routing layer (or the first when
  // the stack is single-layer).
  const int pitchLayer = db.tech().numLayers() > 1 ? 1 : 0;
  const double pitch =
      static_cast<double>(db.tech().layer(pitchLayer).pitch);
  const double wireUnits =
      pitch > 0 ? static_cast<double>(metrics.wirelengthDbu) / pitch : 0.0;
  return weights.wireUnit * wireUnits +
         weights.viaUnit * static_cast<double>(metrics.viaCount) +
         weights.drvPenalty * metrics.totalDrvs() +
         weights.openPenalty * metrics.openNets;
}

double improvementPercent(double baseline, double candidate) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - candidate) / baseline;
}

ComparisonRow compareRuns(const std::string& benchmark,
                          const Metrics& baseline, const Metrics& candidate) {
  ComparisonRow row;
  row.benchmark = benchmark;
  row.baseline = baseline;
  row.candidate = candidate;
  row.wirelengthImprovePct =
      improvementPercent(static_cast<double>(baseline.wirelengthDbu),
                         static_cast<double>(candidate.wirelengthDbu));
  row.viaImprovePct =
      improvementPercent(static_cast<double>(baseline.viaCount),
                         static_cast<double>(candidate.viaCount));
  row.drvDelta = candidate.totalDrvs() - baseline.totalDrvs();
  return row;
}

}  // namespace crp::eval
