// Chip-tile spatial domain decomposition (docs/tiling.md).
//
// The GCell grid is cut into an R x C grid of tiles, each with a halo
// of surrounding gcells.  A batch-reroute work item whose conflict
// bbox fits inside one tile's haloed rect is "tile-local": it executes
// on that tile's worker with its demand writes captured in a
// region-local TileDemandView instead of the shared RoutingGraph, and
// the views are merged back in fixed tile-index order at each batch
// boundary.  Items spanning tiles fall back to the global path.
//
// Determinism contract: tiling is a scheduling/locality refinement of
// the conflict-free batch plan, never a change to it.  Within a batch
// every edge is touched by at most one net (the planner guarantees
// pairwise-disjoint conflict bboxes), so the per-edge demand update
// sequences — and therefore routes, demand maps and fingerprints — are
// bit-identical for every tile grid at every thread count, including
// the untiled 1x1 configuration.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "groute/route.hpp"
#include "groute/routing_graph.hpp"

namespace crp::groute {

/// Inclusive gcell rectangle (layer-agnostic).  The currency of the
/// conflict-free batch planner, the tile decomposition and the ECO
/// engine's dirty-region bookkeeping: a net's extent, a tile's haloed
/// footprint, a delta's dirty region and a cache entry's terminal bbox
/// are all GCellRects, and "does this need attention" is an overlap or
/// containment test.
struct GCellRect {
  int xlo = 0, ylo = 0, xhi = -1, yhi = -1;  // empty by default

  bool empty() const { return xhi < xlo || yhi < ylo; }

  void cover(int x, int y) {
    if (empty()) {
      xlo = xhi = x;
      ylo = yhi = y;
      return;
    }
    xlo = std::min(xlo, x);
    ylo = std::min(ylo, y);
    xhi = std::max(xhi, x);
    yhi = std::max(yhi, y);
  }

  void cover(const GCellRect& o) {
    if (o.empty()) return;
    cover(o.xlo, o.ylo);
    cover(o.xhi, o.yhi);
  }

  bool overlaps(const GCellRect& o) const {
    if (empty() || o.empty()) return false;
    return xlo <= o.xhi && o.xlo <= xhi && ylo <= o.yhi && o.ylo <= yhi;
  }

  /// True when `o` lies entirely inside this rect.
  bool contains(const GCellRect& o) const {
    if (o.empty()) return false;
    return xlo <= o.xlo && o.xhi <= xhi && ylo <= o.ylo && o.yhi <= yhi;
  }

  bool contains(int x, int y) const {
    return !empty() && xlo <= x && x <= xhi && ylo <= y && y <= yhi;
  }

  /// Grows by `margin` gcells on every side, clamped to [0, max].
  void expand(int margin, int maxX, int maxY) {
    if (empty()) return;
    xlo = std::max(0, xlo - margin);
    ylo = std::max(0, ylo - margin);
    xhi = std::min(maxX, xhi + margin);
    yhi = std::min(maxY, yhi + margin);
  }

  long area() const {
    if (empty()) return 0;
    return static_cast<long>(xhi - xlo + 1) * (yhi - ylo + 1);
  }

  int width() const { return empty() ? 0 : xhi - xlo + 1; }
  int height() const { return empty() ? 0 : yhi - ylo + 1; }
};

/// True when `rect` overlaps any rect of `regions` (the dirty-region
/// membership test of the ECO engine).
bool overlapsAny(const GCellRect& rect, const std::vector<GCellRect>& regions);

/// Tile decomposition knobs, threaded through GlobalRouterOptions and
/// CrpOptions.  rows == cols == 1 disables tiling entirely (the legacy
/// single-domain path).
struct TileGridSpec {
  int rows = 1;
  int cols = 1;
  /// Halo width in gcells around each tile's core rect.  -1 picks the
  /// conflict margin of the batch planner (maze margin + 1 cost-read
  /// gcell), the smallest halo that admits every net whose search box
  /// stays inside the tile.  Any value >= 0 is also correct — smaller
  /// halos only classify more nets as boundary.
  int haloGcells = -1;

  bool enabled() const { return rows > 1 || cols > 1; }
};

/// The R x C integer partition of a countX x countY GCell grid, plus
/// the deterministic net-to-tile assignment used by the batch engine.
/// Tiles are indexed row-major: tile = row * cols + col.  When rows or
/// cols exceed the grid dimensions some tiles are empty — they own no
/// gcells and never receive work.
class TileGrid {
 public:
  /// `conflictMargin` is the batch planner's conflict-bbox margin; it
  /// resolves spec.haloGcells == -1 (see TileGridSpec).
  TileGrid(int countX, int countY, const TileGridSpec& spec,
           int conflictMargin);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int numTiles() const { return rows_ * cols_; }
  int halo() const { return halo_; }
  int countX() const { return countX_; }
  int countY() const { return countY_; }

  /// The tile's core rect (empty when the partition is degenerate —
  /// more rows/cols than gcells).  Core rects partition the grid
  /// exactly: no gaps, no overlaps.
  GCellRect tileRect(int tile) const;

  /// Core rect grown by the halo, clamped to the grid.  This is the
  /// coverage of the tile's demand view and the containment target of
  /// assign(); neighboring haloed rects overlap by construction, which
  /// is safe because a batch never routes two nets into one overlap.
  GCellRect haloedRect(int tile) const;

  /// The (never empty) tile whose core rect contains gcell (x, y).
  /// x/y are clamped to the grid.
  int tileAt(int x, int y) const;

  /// Deterministic work-to-tile assignment: the tile whose core rect
  /// contains the conflict rect's center gcell, provided its haloed
  /// rect contains the whole conflict rect; -1 ("boundary" — run on
  /// the global path) otherwise.  Depends only on geometry, never on
  /// schedule.
  int assign(const GCellRect& conflictRect) const;

 private:
  int rows_ = 1;
  int cols_ = 1;
  int halo_ = 0;
  int countX_ = 1;
  int countY_ = 1;
  std::vector<int> colLo_;  ///< cols_+1 column boundaries (x of col c)
  std::vector<int> rowLo_;  ///< rows_+1 row boundaries
};

/// Region-local demand delta of one tile: the write sink for rip-up
/// (sign -1) and commit (sign +1) while a tile group executes.  Reads
/// during the group go through the RoutingGraph overlay (global state
/// plus this view's deltas — exactly what the untiled path would
/// read); at the batch boundary mergeInto() replays the recorded ops
/// into the shared graph and resets the view.
///
/// The dense delta arrays cover the tile's haloed rect only, addressed
/// by the same lower-endpoint convention as RoutingGraph (one wire
/// slot per (layer, x, y), one via slot per (layer, x, y) between
/// layer and layer+1, one via-count slot per node).
class TileDemandView {
 public:
  TileDemandView(int numLayers, int tile, const GCellRect& coverage);

  int tile() const { return tile_; }
  const GCellRect& coverage() const { return coverage_; }

  /// Records a route's demand delta locally (the view-side mirror of
  /// RoutingGraph::applyRoute).  Segments outside the coverage rect
  /// are skipped in the local arrays — they cannot be read through the
  /// overlay — but the full route is kept in the pending op list, so
  /// the merge replay is always exact.
  void applyRouteLocal(const NetRoute& route, int sign);

  /// Overlay read hooks: the local delta for an edge / node, 0.0 when
  /// outside coverage or untouched.
  double wireDelta(const WireEdge& e) const;
  double viaDelta(const ViaEdge& e) const;
  int viaCountDelta(const GPoint& p) const;

  /// Replays the pending ops into the shared graph (in recorded order)
  /// and zeroes the touched local slots.  Called at batch boundaries
  /// in fixed tile-index order; because batch members are disjoint the
  /// merged state is independent of that order — the fixed order is
  /// belt and braces, not load-bearing.
  void mergeInto(RoutingGraph& graph);

  bool hasPending() const { return !pending_.empty(); }
  std::size_t pendingOps() const { return pending_.size(); }

 private:
  struct PendingOp {
    NetRoute route;
    int sign = 0;
  };

  void ensureStorage();
  std::size_t slot(int layer, int x, int y) const {
    return (static_cast<std::size_t>(layer) * coverage_.height() +
            (y - coverage_.ylo)) *
               coverage_.width() +
           (x - coverage_.xlo);
  }

  int numLayers_ = 0;
  int tile_ = 0;
  GCellRect coverage_;
  std::vector<double> wireDelta_;     ///< numLayers * w * h
  std::vector<double> viaDelta_;      ///< (numLayers-1) * w * h
  std::vector<int> viaCountDelta_;    ///< numLayers * w * h
  std::vector<PendingOp> pending_;
};

}  // namespace crp::groute
