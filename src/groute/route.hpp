// Global-route geometry: 3D gcell points and per-net route trees.
#pragma once

#include <vector>

#include "db/design.hpp"
#include "db/gcell_grid.hpp"

namespace crp::groute {

/// A node of the 3D GCell graph: (routing layer, gcell x, gcell y).
struct GPoint {
  int layer = 0;
  int x = 0;
  int y = 0;

  friend bool operator==(const GPoint&, const GPoint&) = default;
  friend auto operator<=>(const GPoint&, const GPoint&) = default;
};

/// One straight piece of a route: either a wire run within one layer
/// (a.layer == b.layer, aligned with that layer's direction) or a via
/// stack (same x/y, a.layer != b.layer).
struct RouteSegment {
  GPoint a;
  GPoint b;

  bool isVia() const { return a.layer != b.layer; }

  friend bool operator==(const RouteSegment&, const RouteSegment&) = default;
};

/// A net's committed global route.
struct NetRoute {
  db::NetId net = db::kInvalidId;
  std::vector<RouteSegment> segments;
  bool routed = false;

  void clear() {
    segments.clear();
    routed = false;
  }
};

/// Normalizes a segment so a <= b (lexicographic), making route
/// comparison and demand bookkeeping order-independent.
RouteSegment normalized(const RouteSegment& seg);

/// True when the segments form a single connected component that
/// covers every point of `terminals` (pin gcells at their pin layers
/// count as connected if the route touches the same (x, y) column at
/// any layer >= the terminal's layer reachable through segments; the
/// strict check used here requires the exact terminal column (x,y) to
/// appear in some segment).
bool routeConnectsTerminals(const NetRoute& route,
                            const std::vector<GPoint>& terminals);

/// Sum of wire-edge hops (gcell-to-gcell steps within layers).
int routeWireHops(const NetRoute& route);

/// Number of via-edge hops (adjacent-layer steps).
int routeViaHops(const NetRoute& route);

}  // namespace crp::groute
