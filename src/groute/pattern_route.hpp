// Fast 3D pattern routing (paper §IV.A / Alg. 3's getPatternRoute3D).
//
// For a 2-pin connection the router enumerates straight, L-shaped and
// Z-shaped 2D paths, then assigns each straight run to a routing layer
// of matching preferred direction with a dynamic program whose costs
// are the live Eq. 10 edge costs (wire runs) and via-stack costs
// (bends and pin access).  Multi-pin nets are decomposed through the
// RSMT topology and stitched with via stacks at Steiner nodes.
//
// Pattern routing is read-only on the RoutingGraph: CR&P prices many
// hypothetical cell positions against the same demand state (Alg. 3)
// and only the winning candidate is committed.
#pragma once

#include <vector>

#include "groute/routing_graph.hpp"

namespace crp::groute {

struct PatternResult {
  bool ok = false;
  double cost = 0.0;
  std::vector<RouteSegment> segments;
};

class PatternRouter {
 public:
  explicit PatternRouter(const RoutingGraph& graph,
                         int maxZCandidates = 8)
      : graph_(graph), maxZCandidates_(maxZCandidates) {}

  /// Routes between two gcell columns; `a.layer` / `b.layer` are the
  /// access (pin) layers charged for via stacks at the endpoints.
  PatternResult routeTwoPin(const GPoint& a, const GPoint& b) const;

  /// Routes a whole net given its terminals (pin layer + gcell): builds
  /// the Steiner topology, pattern-routes every tree edge and adds the
  /// via stacks that make the 3D route a single connected component.
  PatternResult routeTree(const std::vector<GPoint>& terminals) const;

  /// Price of routeTree without building segments (same value, cheaper
  /// call used in hot loops).
  double priceTree(const std::vector<GPoint>& terminals) const;

 private:
  struct Run {
    // 2D straight run from (x0,y0) to (x1,y1); horizontal when y0==y1.
    int x0, y0, x1, y1;
    bool horizontal() const { return y0 == y1; }
  };

  /// Enumerates candidate 2D paths (lists of runs) between two gcells.
  std::vector<std::vector<Run>> candidatePaths(int ax, int ay, int bx,
                                               int by) const;

  /// Wire cost of a run on a specific layer (infinity when the layer
  /// direction does not match).
  double runCost(const Run& run, int layer) const;

  /// Cost of a via stack at (x, y) spanning [lo, hi] layers.
  double viaStackCost(int x, int y, int lo, int hi) const;

  /// Layer-assignment DP over a candidate path; returns total cost and
  /// chosen layers (empty on failure).
  bool assignLayers(const std::vector<Run>& runs, int startLayer,
                    int endLayer, double& cost,
                    std::vector<int>& layers) const;

  const RoutingGraph& graph_;
  int maxZCandidates_;
};

}  // namespace crp::groute
