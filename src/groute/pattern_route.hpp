// Fast 3D pattern routing (paper §IV.A / Alg. 3's getPatternRoute3D).
//
// For a 2-pin connection the router enumerates straight, L-shaped and
// Z-shaped 2D paths, then assigns each straight run to a routing layer
// of matching preferred direction with a dynamic program whose costs
// are the live Eq. 10 edge costs (wire runs) and via-stack costs
// (bends and pin access).  Multi-pin nets are decomposed through the
// RSMT topology and stitched with via stacks at Steiner nodes.
//
// Pattern routing is read-only on the RoutingGraph: CR&P prices many
// hypothetical cell positions against the same demand state (Alg. 3)
// and only the winning candidate is committed.  The Scratch overloads
// exist for that hot loop: one Scratch per thread keeps path
// enumeration, the layer-assignment DP tables and the Steiner build
// free of heap allocations in steady state.
//
// Containment contract (relied on by the conflict-free parallel batch
// reroute, DESIGN.md §6): straight, L and Z candidate paths, the RSMT
// topology (Hanan grid) and all Steiner/pin via stacks lie within the
// bounding box of the terminals, so a pattern route never reads or
// produces an edge outside the terminal bbox.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "groute/routing_graph.hpp"
#include "rsmt/steiner.hpp"

namespace crp::groute {

struct PatternResult {
  bool ok = false;
  double cost = 0.0;
  std::vector<RouteSegment> segments;
};

class PatternRouter {
 public:
  struct Run {
    // 2D straight run from (x0,y0) to (x1,y1); horizontal when y0==y1.
    int x0, y0, x1, y1;
    bool horizontal() const { return y0 == y1; }
  };

  /// Reusable work buffers.  Not thread-safe: use one per thread.
  struct Scratch {
    // candidate path enumeration (first numPaths entries are live)
    std::vector<std::vector<Run>> paths;
    std::size_t numPaths = 0;
    std::vector<int> picks;
    // layer-assignment DP, flattened numRuns x numLayers
    std::vector<double> dp;
    std::vector<int> parent;
    std::vector<int> layers;
    std::vector<int> bestLayers;
    std::vector<Run> bestRuns;
    // tree decomposition
    std::vector<geom::Point> pins;
    rsmt::SteinerTree tree;
    rsmt::Scratch rsmt;
    std::vector<std::pair<std::pair<int, int>, int>> pinLayer;
    struct ColumnTouch {
      int x, y, lo, hi;
    };
    std::vector<ColumnTouch> touches;
    std::vector<RouteSegment> segments;
    // Optional per-phase two-pin memo.  Terminal sets priced in one ECC
    // phase share most Steiner legs (delta candidates move one pin), so
    // each distinct (a, b) leg is routed once and its cost + segments
    // replayed verbatim — the via-merge pass still sees the same
    // segment stream, so tree costs stay bit-identical.  Valid only
    // while the graph's demand maps are frozen: callers enable it per
    // pricing phase and clear it when demand changes.  Off by default
    // so routeTwoPin/routeTree stay memo-free.
    bool useTwoPinMemo = false;
    struct TwoPinLeg {
      GPoint a, b;
      bool operator==(const TwoPinLeg&) const = default;
    };
    struct TwoPinLegHash {
      std::size_t operator()(const TwoPinLeg& leg) const;
    };
    struct TwoPinRoute {
      double cost = 0.0;
      bool ok = false;
      std::vector<RouteSegment> segments;
    };
    std::unordered_map<TwoPinLeg, TwoPinRoute, TwoPinLegHash> twoPinMemo;
    std::vector<RouteSegment> legSegments;  // single-leg staging buffer
  };

  explicit PatternRouter(const RoutingGraph& graph,
                         int maxZCandidates = 8)
      : graph_(graph), maxZCandidates_(maxZCandidates) {}

  /// Routes between two gcell columns; `a.layer` / `b.layer` are the
  /// access (pin) layers charged for via stacks at the endpoints.
  PatternResult routeTwoPin(const GPoint& a, const GPoint& b) const;

  /// Routes a whole net given its terminals (pin layer + gcell): builds
  /// the Steiner topology, pattern-routes every tree edge and adds the
  /// via stacks that make the 3D route a single connected component.
  PatternResult routeTree(const std::vector<GPoint>& terminals) const;
  PatternResult routeTree(const std::vector<GPoint>& terminals,
                          Scratch& scratch) const;

  /// Price returned by priceTree when no pattern route exists (every
  /// candidate path crosses a hard-blocked edge).  Huge but finite:
  /// selection-ILP objective coefficients must stay finite, and any
  /// candidate priced at this level loses to every routable one.
  static constexpr double kUnroutablePrice = 1e12;

  /// Price of routeTree without building a result (same value, cheaper
  /// call used in hot loops).  The Scratch overload is allocation-free
  /// in steady state.  Returns kUnroutablePrice when the tree cannot
  /// be pattern-routed.
  double priceTree(const std::vector<GPoint>& terminals) const;
  double priceTree(const std::vector<GPoint>& terminals,
                   Scratch& scratch) const;

 private:
  /// Enumerates candidate 2D paths between two gcells into
  /// scratch.paths[0..scratch.numPaths).
  void buildCandidatePaths(int ax, int ay, int bx, int by,
                           Scratch& scratch) const;

  /// Wire cost of a run on a specific layer (infinity when the layer
  /// direction does not match).
  double runCost(const Run& run, int layer) const;

  /// Cost of a via stack at (x, y) spanning [lo, hi] layers.
  double viaStackCost(int x, int y, int lo, int hi) const;

  /// Layer-assignment DP over a candidate path; returns total cost and
  /// chosen layers (empty on failure).
  bool assignLayers(const std::vector<Run>& runs, int startLayer,
                    int endLayer, double& cost, std::vector<int>& layers,
                    Scratch& scratch) const;

  /// Core two-pin route: appends segments to `out`, returns the cost;
  /// `ok` is false when no path exists.
  double routeTwoPinInto(const GPoint& a, const GPoint& b, Scratch& scratch,
                         std::vector<RouteSegment>& out, bool& ok) const;

  /// Core tree route: fills scratch.segments, accumulates `cost`.
  bool routeTreeInto(const std::vector<GPoint>& terminals, Scratch& scratch,
                     double& cost) const;

  const RoutingGraph& graph_;
  int maxZCandidates_;
};

}  // namespace crp::groute
