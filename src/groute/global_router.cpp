#include "groute/global_router.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "obs/obs.hpp"
#include "util/logger.hpp"

namespace crp::groute {

GlobalRouter::GlobalRouter(const db::Database& db,
                           GlobalRouterOptions options)
    : db_(db),
      options_(options),
      graph_(db, options.cost),
      pattern_(graph_, options.maxZCandidates),
      maze_(graph_, options.mazeMargin),
      routes_(db.numNets()) {
  for (db::NetId n = 0; n < db.numNets(); ++n) routes_[n].net = n;
}

std::vector<GPoint> GlobalRouter::netTerminals(db::NetId net) const {
  std::vector<GPoint> terminals;
  for (const db::NetPin& pin : db_.net(net).pins) {
    const geom::Point pos = db_.pinPosition(pin);
    const db::GCell g = graph_.grid().cellAt(pos);
    int layer = 0;
    if (pin.isIo()) {
      layer = db_.design().ioPins[pin.ioPin()].layer;
    } else {
      const auto shapes = db_.pinShapes(pin.compPin());
      if (!shapes.empty()) layer = shapes.front().layer;
    }
    terminals.push_back(GPoint{layer, g.x, g.y});
  }
  // Deduplicate identical terminals (multiple pins in one gcell column
  // at the same layer).
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  return terminals;
}

void GlobalRouter::ripUp(db::NetId net) {
  NetRoute& route = routes_.at(net);
  if (!route.routed) return;
  graph_.applyRoute(route, -1);
  route.clear();
}

bool GlobalRouter::rerouteNet(db::NetId net, bool mazeFirst) {
  CRP_OBS_COUNT("gr.reroutes", 1);
  ripUp(net);
  const auto terminals = netTerminals(net);
  NetRoute& route = routes_.at(net);
  PatternResult result = mazeFirst ? maze_.routeTree(terminals)
                                   : pattern_.routeTree(terminals);
  if (!result.ok) {
    result = mazeFirst ? pattern_.routeTree(terminals)
                       : maze_.routeTree(terminals);
  }
  if (!result.ok) return false;
  route.segments = std::move(result.segments);
  route.routed = true;
  graph_.applyRoute(route, +1);
  return true;
}

double GlobalRouter::netRouteCost(db::NetId net) const {
  const NetRoute& route = routes_.at(net);
  if (!route.routed) return 0.0;
  double cost = 0.0;
  for (const RouteSegment& rawSeg : route.segments) {
    const RouteSegment seg = normalized(rawSeg);
    if (seg.isVia()) {
      for (int l = seg.a.layer; l < seg.b.layer; ++l) {
        cost += graph_.viaEdgeCost(ViaEdge{l, seg.a.x, seg.a.y});
      }
    } else if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        cost += graph_.wireEdgeCost(WireEdge{seg.a.layer, x, seg.a.y});
      }
    } else {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        cost += graph_.wireEdgeCost(WireEdge{seg.a.layer, seg.a.x, y});
      }
    }
  }
  return cost;
}

GlobalRouteStats GlobalRouter::run() {
  // Initial routing order: cheapest (smallest HPWL) nets first, so
  // large nets see the congestion the small ones created and detour.
  std::vector<db::NetId> order(db_.numNets());
  std::iota(order.begin(), order.end(), 0);
  std::vector<geom::Coord> hpwl(db_.numNets());
  for (db::NetId n = 0; n < db_.numNets(); ++n) hpwl[n] = db_.netHpwl(n);
  std::sort(order.begin(), order.end(), [&](db::NetId a, db::NetId b) {
    if (hpwl[a] != hpwl[b]) return hpwl[a] < hpwl[b];
    return a < b;
  });

  {
    CRP_OBS_SPAN("groute", "gr.initial");
    for (const db::NetId net : order) {
      rerouteNet(net, /*mazeFirst=*/false);  // pattern first: bulk speed
    }
    CRP_OBS_COUNT("gr.initial_nets", order.size());
  }

  // Negotiated rip-up-and-reroute of overflowed nets.
  for (int round = 0; round < options_.rrrRounds; ++round) {
    CRP_OBS_SPAN_ARG("groute", "gr.rrr_round", round);
    std::vector<db::NetId> victims;
    for (db::NetId net = 0; net < db_.numNets(); ++net) {
      const NetRoute& route = routes_[net];
      if (!route.routed) {
        victims.push_back(net);
        continue;
      }
      bool overflowed = false;
      for (const RouteSegment& rawSeg : route.segments) {
        const RouteSegment seg = normalized(rawSeg);
        if (seg.isVia()) continue;
        if (seg.a.x != seg.b.x) {
          for (int x = seg.a.x; x < seg.b.x && !overflowed; ++x) {
            overflowed =
                graph_.overflow(WireEdge{seg.a.layer, x, seg.a.y}) > 0.0;
          }
        } else {
          for (int y = seg.a.y; y < seg.b.y && !overflowed; ++y) {
            overflowed =
                graph_.overflow(WireEdge{seg.a.layer, seg.a.x, y}) > 0.0;
          }
        }
        if (overflowed) break;
      }
      if (overflowed) victims.push_back(net);
    }
    if (victims.empty()) break;
    CRP_LOG_DEBUG("groute RRR round {}: {} overflowed nets", round,
                  victims.size());
    CRP_OBS_COUNT("gr.rrr_victims", victims.size());
    for (const db::NetId net : victims) {
      ripUp(net);
      const auto terminals = netTerminals(net);
      PatternResult result = maze_.routeTree(terminals);
      if (!result.ok) result = pattern_.routeTree(terminals);
      if (result.ok) {
        routes_[net].segments = std::move(result.segments);
        routes_[net].routed = true;
        graph_.applyRoute(routes_[net], +1);
      }
      ++reroutedNets_;
    }
  }
  const GlobalRouteStats result = stats();
  CRP_OBS_GAUGE_SET("gr.total_overflow", result.totalOverflow);
  return result;
}

GlobalRouteStats GlobalRouter::stats() const {
  GlobalRouteStats stats;
  stats.wirelengthDbu = graph_.totalWireDbu();
  stats.vias = graph_.totalVias();
  const auto congestion = graph_.congestionStats();
  stats.totalOverflow = congestion.totalOverflow;
  stats.overflowedEdges = congestion.overflowedEdges;
  stats.reroutedNets = reroutedNets_;
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    const auto terminals = netTerminals(net);
    if (terminals.size() >= 2 && !routes_[net].routed) ++stats.openNets;
  }
  return stats;
}

std::vector<lefdef::NetGuide> GlobalRouter::buildGuides() const {
  std::vector<lefdef::NetGuide> guides;
  guides.reserve(routes_.size());
  const auto& grid = graph_.grid();
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    const NetRoute& route = routes_[net];
    lefdef::NetGuide guide;
    guide.net = db_.net(net).name;
    // One rect per (layer, gcell) covered; merged per segment span.
    std::vector<lefdef::GuideRect> rects;
    auto addSpan = [&](int layer, int x0, int y0, int x1, int y1) {
      const auto lo = grid.cellRect(db::GCell{x0, y0});
      const auto hi = grid.cellRect(db::GCell{x1, y1});
      rects.push_back(lefdef::GuideRect{lo.unionWith(hi), layer});
    };
    for (const RouteSegment& rawSeg : route.segments) {
      const RouteSegment seg = normalized(rawSeg);
      if (seg.isVia()) {
        for (int l = seg.a.layer; l <= seg.b.layer; ++l) {
          addSpan(l, seg.a.x, seg.a.y, seg.a.x, seg.a.y);
        }
      } else {
        addSpan(seg.a.layer, seg.a.x, seg.a.y, seg.b.x, seg.b.y);
      }
    }
    // Always cover pin gcells on their access layers (TritonRoute
    // requires pin coverage even for single-gcell nets).
    for (const GPoint& t : netTerminals(net)) {
      addSpan(t.layer, t.x, t.y, t.x, t.y);
      if (t.layer + 1 < graph_.numLayers()) {
        addSpan(t.layer + 1, t.x, t.y, t.x, t.y);
      }
    }
    std::sort(rects.begin(), rects.end(),
              [](const lefdef::GuideRect& a, const lefdef::GuideRect& b) {
                if (a.layer != b.layer) return a.layer < b.layer;
                if (a.rect.xlo != b.rect.xlo) return a.rect.xlo < b.rect.xlo;
                if (a.rect.ylo != b.rect.ylo) return a.rect.ylo < b.rect.ylo;
                if (a.rect.xhi != b.rect.xhi) return a.rect.xhi < b.rect.xhi;
                return a.rect.yhi < b.rect.yhi;
              });
    rects.erase(std::unique(rects.begin(), rects.end()), rects.end());
    guide.rects = std::move(rects);
    guides.push_back(std::move(guide));
  }
  return guides;
}

}  // namespace crp::groute
