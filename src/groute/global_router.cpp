#include "groute/global_router.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>

#include "obs/obs.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace crp::groute {

GlobalRouter::GlobalRouter(const db::Database& db,
                           GlobalRouterOptions options)
    : db_(db),
      options_(options),
      graph_(db, options.cost),
      pattern_(graph_, options.maxZCandidates),
      maze_(graph_, options.mazeMargin),
      routes_(db.numNets()) {
  for (db::NetId n = 0; n < db.numNets(); ++n) routes_[n].net = n;
  rebuildTiles();
}

void GlobalRouter::rebuildTiles() {
  tiles_.reset();
  tileViews_.clear();
  TileGridSpec spec;
  spec.rows = options_.tileRows;
  spec.cols = options_.tileCols;
  spec.haloGcells = options_.haloGcells;
  if (!spec.enabled()) return;
  tiles_ = std::make_unique<TileGrid>(graph_.grid().countX(),
                                      graph_.grid().countY(), spec,
                                      maze_.boxMargin() + 1);
  tileViews_.reserve(tiles_->numTiles());
  for (int t = 0; t < tiles_->numTiles(); ++t) {
    tileViews_.push_back(std::make_unique<TileDemandView>(
        graph_.numLayers(), t, tiles_->haloedRect(t)));
  }
}

void GlobalRouter::setTileGrid(int rows, int cols, int haloGcells) {
  options_.tileRows = rows;
  options_.tileCols = cols;
  options_.haloGcells = haloGcells;
  rebuildTiles();
}

std::vector<const TileDemandView*> GlobalRouter::tileViews() const {
  std::vector<const TileDemandView*> views;
  views.reserve(tileViews_.size());
  for (const auto& view : tileViews_) views.push_back(view.get());
  return views;
}

std::vector<GPoint> GlobalRouter::netTerminals(db::NetId net) const {
  std::vector<GPoint> terminals;
  for (const db::NetPin& pin : db_.net(net).pins) {
    const geom::Point pos = db_.pinPosition(pin);
    const db::GCell g = graph_.grid().cellAt(pos);
    int layer = 0;
    if (pin.isIo()) {
      layer = db_.design().ioPins[pin.ioPin()].layer;
    } else {
      const auto shapes = db_.pinShapes(pin.compPin());
      if (!shapes.empty()) layer = shapes.front().layer;
    }
    terminals.push_back(GPoint{layer, g.x, g.y});
  }
  // Deduplicate identical terminals (multiple pins in one gcell column
  // at the same layer).
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  return terminals;
}

GCellRect GlobalRouter::netExtent(db::NetId net) const {
  GCellRect rect;
  for (const GPoint& t : netTerminals(net)) rect.cover(t.x, t.y);
  for (const RouteSegment& seg : routes_.at(net).segments) {
    rect.cover(seg.a.x, seg.a.y);
    rect.cover(seg.b.x, seg.b.y);
  }
  return rect;
}

std::vector<db::NetId> GlobalRouter::netsTouchingRegion(
    const std::vector<GCellRect>& regions) const {
  std::vector<db::NetId> nets;
  if (regions.empty()) return nets;
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    if (overlapsAny(netExtent(net), regions)) nets.push_back(net);
  }
  return nets;
}

void GlobalRouter::syncNetCount() {
  while (routes_.size() < static_cast<std::size_t>(db_.numNets())) {
    NetRoute route;
    route.net = static_cast<db::NetId>(routes_.size());
    routes_.push_back(std::move(route));
  }
}

bool GlobalRouter::routeOverflowed(
    db::NetId net, const std::vector<GCellRect>* within) const {
  const NetRoute& route = routes_.at(net);
  if (!route.routed) return false;
  const auto counts = [&](int x, int y) {
    if (within == nullptr) return true;
    GCellRect point;
    point.cover(x, y);
    return overlapsAny(point, *within);
  };
  for (const RouteSegment& rawSeg : route.segments) {
    const RouteSegment seg = normalized(rawSeg);
    if (seg.isVia()) continue;
    if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        if (counts(x, seg.a.y) &&
            graph_.overflow(WireEdge{seg.a.layer, x, seg.a.y}) > 0.0) {
          return true;
        }
      }
    } else {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        if (counts(seg.a.x, y) &&
            graph_.overflow(WireEdge{seg.a.layer, seg.a.x, y}) > 0.0) {
          return true;
        }
      }
    }
  }
  return false;
}

void GlobalRouter::ripUp(db::NetId net) {
  NetRoute& route = routes_.at(net);
  if (!route.routed) return;
  graph_.applyRoute(route, -1);
  route.clear();
}

bool GlobalRouter::rerouteNet(db::NetId net, bool mazeFirst) {
  return rerouteNetImpl(net, mazeFirst, nullptr);
}

bool GlobalRouter::rerouteNetImpl(db::NetId net, bool mazeFirst,
                                  TileDemandView* view) {
  CRP_OBS_COUNT("gr.reroutes", 1);
  // With a tile view the demand writes land in the view instead of the
  // shared graph (merged at the batch boundary); the maze/pattern cost
  // reads see them through the caller-installed OverlayScope, so the
  // search observes exactly the state the untiled path would.
  const auto apply = [&](const NetRoute& r, int sign) {
    if (view != nullptr) {
      view->applyRouteLocal(r, sign);
    } else {
      graph_.applyRoute(r, sign);
    }
  };
  NetRoute& route = routes_.at(net);
  // Rip up, keeping the old segments so a double routing failure can
  // restore the previous route instead of silently dropping its demand.
  NetRoute previous;
  previous.net = net;
  if (route.routed) {
    apply(route, -1);
    previous.segments = std::move(route.segments);
    previous.routed = true;
    route.clear();
  }
  const auto terminals = netTerminals(net);
  PatternResult result = mazeFirst ? maze_.routeTree(terminals)
                                   : pattern_.routeTree(terminals);
  if (!result.ok) {
    result = mazeFirst ? pattern_.routeTree(terminals)
                       : maze_.routeTree(terminals);
  }
  if (!result.ok) {
    if (previous.routed) {
      // The restored route may be stale relative to moved pins, but it
      // keeps the demand maps exact and the net accounted for; the
      // caller decides how to handle the failure.
      route.segments = std::move(previous.segments);
      route.routed = true;
      apply(route, +1);
    }
    CRP_OBS_COUNT("gr.reroute_failures", 1);
    CRP_OBS_EVENT("gr", "reroute.fail", net);
    return false;
  }
  route.segments = std::move(result.segments);
  route.routed = true;
  apply(route, +1);
  return true;
}

util::ThreadPool* GlobalRouter::pool() {
  if (options_.routerThreads == 1) return nullptr;
  if (options_.sharedPool != nullptr) return options_.sharedPool;
  const std::size_t want =
      options_.routerThreads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : static_cast<std::size_t>(options_.routerThreads);
  if (want <= 1) return nullptr;
  if (!pool_ || pool_->threadCount() != want) {
    pool_ = std::make_unique<util::ThreadPool>(want);
  }
  return pool_.get();
}

void GlobalRouter::setRouterThreads(int threads) {
  if (threads == options_.routerThreads) return;
  options_.routerThreads = threads;
  pool_.reset();  // lazily rebuilt at the next rerouteNets call
}

std::vector<std::vector<db::NetId>> GlobalRouter::planRerouteBatches(
    const std::vector<db::NetId>& nets, int* conflicts) const {
  // Conflict bbox per net: everything its rip-up + reroute can read or
  // write.  Writes stay within the old route extent and the new search
  // region (terminal bbox + maze margin); cost reads additionally
  // touch the via counts of edge endpoints, covered by one extra halo
  // gcell.  First-fit coloring over the rects — largest first, so the
  // few die-spanning nets claim batches before the many local nets
  // pack around them — yields batches whose members are pairwise
  // disjoint.  The plan depends only on the input order and the
  // current routes/positions, so it is identical for every thread
  // count.
  const int margin = maze_.boxMargin() + 1;
  const int maxX = graph_.grid().countX() - 1;
  const int maxY = graph_.grid().countY() - 1;
  int rejections = 0;

  std::vector<GCellRect> rects(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    rects[i] = netExtent(nets[i]);
    rects[i].expand(margin, maxX, maxY);
  }
  std::vector<std::size_t> order(nets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&rects](std::size_t a, std::size_t b) {
                     return rects[a].area() > rects[b].area();
                   });

  std::vector<std::vector<db::NetId>> batches;
  std::vector<std::vector<GCellRect>> batchRects;
  for (const std::size_t i : order) {
    const GCellRect& rect = rects[i];
    std::size_t color = 0;
    for (; color < batches.size(); ++color) {
      bool clash = false;
      for (const GCellRect& other : batchRects[color]) {
        if (rect.overlaps(other)) {
          clash = true;
          break;
        }
      }
      if (!clash) break;
      ++rejections;
    }
    if (color == batches.size()) {
      batches.emplace_back();
      batchRects.emplace_back();
    }
    batches[color].push_back(nets[i]);
    batchRects[color].push_back(rect);
  }
  if (conflicts != nullptr) *conflicts = rejections;
  return batches;
}

RerouteBatchStats GlobalRouter::rerouteNets(const std::vector<db::NetId>& nets,
                                            bool mazeFirst) {
  obs::ObsContextScope obsScope(options_.obsContext);
  RerouteBatchStats stats;
  stats.nets = static_cast<int>(nets.size());
  if (nets.empty()) return stats;
  CRP_OBS_SPAN_ARG("groute", "gr.reroute_batch", nets.size());

  const auto batches = planRerouteBatches(nets, &stats.conflicts);
  stats.batches = static_cast<int>(batches.size());
  util::ThreadPool* workers = pool();
  std::atomic<int> failed{0};
  std::vector<char> touched(tiles_ != nullptr ? tiles_->numTiles() : 0, 0);
  for (const auto& batch : batches) {
    CRP_OBS_HISTOGRAM("gr.par.batch_nets", batch.size());
    if (tiles_ != nullptr) {
      runTiledBatch(batch, mazeFirst, workers, failed, stats, touched);
    } else if (workers == nullptr || batch.size() == 1) {
      for (const db::NetId net : batch) {
        if (!rerouteNet(net, mazeFirst)) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } else {
      workers->parallelFor(batch.size(), [&](std::size_t i) {
        if (!rerouteNet(batch[i], mazeFirst)) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  stats.failed = failed.load(std::memory_order_relaxed);

  CRP_OBS_COUNT("gr.par.calls", 1);
  CRP_OBS_COUNT("gr.par.nets", stats.nets);
  CRP_OBS_COUNT("gr.par.batches", stats.batches);
  CRP_OBS_COUNT("gr.par.conflicts", stats.conflicts);
  // Parallel efficiency: fraction of batch thread-slots filled (1.0 =
  // every worker busy in every batch, assuming uniform net cost).
  const double slots = static_cast<double>(stats.batches) *
                       static_cast<double>(
                           workers != nullptr ? workers->threadCount() : 1);
  CRP_OBS_GAUGE_SET("gr.par.efficiency",
                    slots > 0.0 ? std::min(1.0, stats.nets / slots) : 1.0);
  if (tiles_ != nullptr) {
    for (const char t : touched) stats.tilesUsed += t != 0 ? 1 : 0;
    CRP_OBS_COUNT("gr.tile.local_nets", stats.tileLocalNets);
    CRP_OBS_COUNT("gr.tile.boundary_nets", stats.boundaryNets);
    CRP_OBS_GAUGE_SET("gr.tile.merge_seconds", stats.mergeSeconds);
    CRP_OBS_GAUGE_SET(
        "gr.tile.local_frac",
        stats.nets > 0
            ? static_cast<double>(stats.tileLocalNets) / stats.nets
            : 1.0);
  }
  return stats;
}

void GlobalRouter::runTiledBatch(const std::vector<db::NetId>& batch,
                                 bool mazeFirst, util::ThreadPool* workers,
                                 std::atomic<int>& failed,
                                 RerouteBatchStats& stats,
                                 std::vector<char>& touched) {
  // Deterministic tile grouping: recompute each member's conflict rect
  // exactly as planRerouteBatches did and ask the grid for a haloed
  // tile that contains it.  Grouping depends only on geometry — never
  // on schedule — so every thread count produces the same groups.
  const int margin = maze_.boxMargin() + 1;
  const int maxX = graph_.grid().countX() - 1;
  const int maxY = graph_.grid().countY() - 1;
  std::vector<std::vector<db::NetId>> groups(tiles_->numTiles());
  std::vector<db::NetId> boundary;
  for (const db::NetId net : batch) {
    GCellRect rect = netExtent(net);
    rect.expand(margin, maxX, maxY);
    const int tile = tiles_->assign(rect);
    if (tile >= 0) {
      groups[tile].push_back(net);
    } else {
      boundary.push_back(net);
    }
  }
  std::vector<int> usedTiles;
  for (int t = 0; t < tiles_->numTiles(); ++t) {
    if (!groups[t].empty()) usedTiles.push_back(t);
  }
  stats.tileLocalNets +=
      static_cast<int>(batch.size()) - static_cast<int>(boundary.size());
  stats.boundaryNets += static_cast<int>(boundary.size());

  // Work units: one per tile group (runs under that tile's demand view
  // + read overlay) plus one per boundary net (the global path).  The
  // mix is safe at any schedule because batch members touch pairwise
  // disjoint graph regions.
  const std::size_t units = usedTiles.size() + boundary.size();
  const auto runUnit = [&](std::size_t u) {
    if (u < usedTiles.size()) {
      const int tile = usedTiles[u];
      TileDemandView& view = *tileViews_[tile];
      RoutingGraph::OverlayScope overlay(graph_, view);
      for (const db::NetId net : groups[tile]) {
        if (!rerouteNetImpl(net, mazeFirst, &view)) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } else if (!rerouteNet(boundary[u - usedTiles.size()], mazeFirst)) {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (workers == nullptr || units <= 1) {
    for (std::size_t u = 0; u < units; ++u) runUnit(u);
  } else {
    workers->parallelFor(units, runUnit);
  }

  // Batch-boundary merge, fixed tile-index order on the calling
  // thread.  Disjointness makes the merged values order-independent;
  // the fixed order keeps even the floating-point operation sequence
  // identical across schedules.
  util::Stopwatch mergeWatch;
  for (const int tile : usedTiles) {
    tileViews_[tile]->mergeInto(graph_);
    touched[tile] = 1;
  }
  stats.mergeSeconds += mergeWatch.seconds();
  CRP_OBS_COUNT("gr.tile.merges", usedTiles.size());
}

double GlobalRouter::netRouteCost(db::NetId net) const {
  const NetRoute& route = routes_.at(net);
  if (!route.routed) return 0.0;
  double cost = 0.0;
  for (const RouteSegment& rawSeg : route.segments) {
    const RouteSegment seg = normalized(rawSeg);
    if (seg.isVia()) {
      for (int l = seg.a.layer; l < seg.b.layer; ++l) {
        cost += graph_.viaEdgeCost(ViaEdge{l, seg.a.x, seg.a.y});
      }
    } else if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        cost += graph_.wireEdgeCost(WireEdge{seg.a.layer, x, seg.a.y});
      }
    } else {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        cost += graph_.wireEdgeCost(WireEdge{seg.a.layer, seg.a.x, y});
      }
    }
  }
  return cost;
}

GlobalRouteStats GlobalRouter::run() {
  obs::ObsContextScope obsScope(options_.obsContext);
  // Initial routing order: cheapest (smallest HPWL) nets first, so
  // large nets see the congestion the small ones created and detour.
  std::vector<db::NetId> order(db_.numNets());
  std::iota(order.begin(), order.end(), 0);
  std::vector<geom::Coord> hpwl(db_.numNets());
  for (db::NetId n = 0; n < db_.numNets(); ++n) hpwl[n] = db_.netHpwl(n);
  std::sort(order.begin(), order.end(), [&](db::NetId a, db::NetId b) {
    if (hpwl[a] != hpwl[b]) return hpwl[a] < hpwl[b];
    return a < b;
  });

  {
    CRP_OBS_SPAN("groute", "gr.initial");
    for (const db::NetId net : order) {
      rerouteNet(net, /*mazeFirst=*/false);  // pattern first: bulk speed
    }
    CRP_OBS_COUNT("gr.initial_nets", order.size());
  }

  // Negotiated rip-up-and-reroute of overflowed nets.
  for (int round = 0; round < options_.rrrRounds; ++round) {
    CRP_OBS_SPAN_ARG("groute", "gr.rrr_round", round);
    std::vector<db::NetId> victims;
    for (db::NetId net = 0; net < db_.numNets(); ++net) {
      const NetRoute& route = routes_[net];
      if (!route.routed) {
        victims.push_back(net);
        continue;
      }
      if (routeOverflowed(net)) victims.push_back(net);
    }
    if (victims.empty()) break;
    CRP_LOG_DEBUG("groute RRR round {}: {} overflowed nets", round,
                  victims.size());
    CRP_OBS_COUNT("gr.rrr_victims", victims.size());
    rerouteNets(victims, /*mazeFirst=*/true);
    reroutedNets_ += static_cast<int>(victims.size());
  }
  const GlobalRouteStats result = stats();
  CRP_OBS_GAUGE_SET("gr.total_overflow", result.totalOverflow);
  return result;
}

GlobalRouteStats GlobalRouter::stats() const {
  GlobalRouteStats stats;
  stats.wirelengthDbu = graph_.totalWireDbu();
  stats.vias = graph_.totalVias();
  const auto congestion = graph_.congestionStats();
  stats.totalOverflow = congestion.totalOverflow;
  stats.overflowedEdges = congestion.overflowedEdges;
  stats.reroutedNets = reroutedNets_;
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    const auto terminals = netTerminals(net);
    if (terminals.size() >= 2 && !routes_[net].routed) ++stats.openNets;
  }
  return stats;
}

std::vector<lefdef::NetGuide> GlobalRouter::buildGuides() const {
  std::vector<lefdef::NetGuide> guides;
  guides.reserve(routes_.size());
  const auto& grid = graph_.grid();
  for (db::NetId net = 0; net < db_.numNets(); ++net) {
    const NetRoute& route = routes_[net];
    lefdef::NetGuide guide;
    guide.net = db_.net(net).name;
    // One rect per (layer, gcell) covered; merged per segment span.
    std::vector<lefdef::GuideRect> rects;
    auto addSpan = [&](int layer, int x0, int y0, int x1, int y1) {
      const auto lo = grid.cellRect(db::GCell{x0, y0});
      const auto hi = grid.cellRect(db::GCell{x1, y1});
      rects.push_back(lefdef::GuideRect{lo.unionWith(hi), layer});
    };
    for (const RouteSegment& rawSeg : route.segments) {
      const RouteSegment seg = normalized(rawSeg);
      if (seg.isVia()) {
        for (int l = seg.a.layer; l <= seg.b.layer; ++l) {
          addSpan(l, seg.a.x, seg.a.y, seg.a.x, seg.a.y);
        }
      } else {
        addSpan(seg.a.layer, seg.a.x, seg.a.y, seg.b.x, seg.b.y);
      }
    }
    // Always cover pin gcells on their access layers (TritonRoute
    // requires pin coverage even for single-gcell nets).
    for (const GPoint& t : netTerminals(net)) {
      addSpan(t.layer, t.x, t.y, t.x, t.y);
      if (t.layer + 1 < graph_.numLayers()) {
        addSpan(t.layer + 1, t.x, t.y, t.x, t.y);
      }
    }
    std::sort(rects.begin(), rects.end(),
              [](const lefdef::GuideRect& a, const lefdef::GuideRect& b) {
                if (a.layer != b.layer) return a.layer < b.layer;
                if (a.rect.xlo != b.rect.xlo) return a.rect.xlo < b.rect.xlo;
                if (a.rect.ylo != b.rect.ylo) return a.rect.ylo < b.rect.ylo;
                if (a.rect.xhi != b.rect.xhi) return a.rect.xhi < b.rect.xhi;
                return a.rect.yhi < b.rect.yhi;
              });
    rects.erase(std::unique(rects.begin(), rects.end()), rects.end());
    guide.rects = std::move(rects);
    guides.push_back(std::move(guide));
  }
  return guides;
}

}  // namespace crp::groute
