// Congestion reporting utilities: per-layer utilisation maps and a
// text heatmap of the GCell grid.  Used by the examples for flow
// introspection and by CR&P users to locate the hotspots the framework
// is expected to relieve.
//
// Since the spatial observability tier landed, these are thin views
// over obs::HeatmapSnapshot: buildCongestionMap captures a snapshot
// (heatmap_capture.hpp) and derives the per-gcell utilisation through
// obs::utilisationGrid — one congestion source of truth shared with
// the snapshot artifacts and the crp_report renderers.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "groute/routing_graph.hpp"
#include "obs/heatmap.hpp"

namespace crp::groute {

/// Demand / capacity ratio per gcell, aggregated over the edges
/// incident to it on one layer (or all layers when layer < 0).
struct CongestionMap {
  int width = 0;
  int height = 0;
  std::vector<double> utilisation;  ///< row-major [y * width + x]

  double at(int x, int y) const { return utilisation[y * width + x]; }

  /// Gcells whose utilisation exceeds `threshold`.
  int hotspotCount(double threshold = 1.0) const;

  /// Highest utilisation in the map.
  double peak() const;

  /// Mean utilisation.
  double mean() const;
};

/// Builds the congestion map from the live demand state (captures a
/// HeatmapSnapshot internally).
CongestionMap buildCongestionMap(const RoutingGraph& graph, int layer = -1);

/// Builds the congestion map from an already-captured snapshot (e.g. a
/// heatmap artifact loaded from disk).
CongestionMap buildCongestionMap(const obs::HeatmapSnapshot& snapshot,
                                 int layer = -1);

/// Renders the map as an ASCII heatmap ('.' empty .. '#' overflowed);
/// one character per gcell, top row = highest y.
void printHeatmap(std::ostream& os, const CongestionMap& map);

}  // namespace crp::groute
