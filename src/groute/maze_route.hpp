// 3D maze (Dijkstra) routing on the GCell graph — the fallback that
// rips up and reroutes overflowed nets during negotiated global
// routing.  Searches inside a bounding box around the net's terminals
// (expanded by a margin) using the live Eq. 10 edge costs.
#pragma once

#include <vector>

#include "groute/pattern_route.hpp"
#include "groute/routing_graph.hpp"

namespace crp::groute {

class MazeRouter {
 public:
  explicit MazeRouter(const RoutingGraph& graph, int boxMargin = 6)
      : graph_(graph), boxMargin_(boxMargin) {}

  /// Routes a net over its terminals with sequential multi-source
  /// Dijkstra (the growing tree is the source set for the next sink).
  PatternResult routeTree(const std::vector<GPoint>& terminals) const;

 private:
  const RoutingGraph& graph_;
  int boxMargin_;
};

}  // namespace crp::groute
