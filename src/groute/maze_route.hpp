// 3D maze (Dijkstra) routing on the GCell graph — the fallback that
// rips up and reroutes overflowed nets during negotiated global
// routing.  Searches inside a bounding box around the net's terminals
// (expanded by a margin) using the live Eq. 10 edge costs.
//
// Containment contract (relied on by the conflict-free parallel batch
// reroute, DESIGN.md §6): the search relaxes only nodes inside the
// expanded terminal bbox, so every edge read or written lies within
// the terminal bbox expanded by boxMargin() gcells.  Edge-cost reads
// additionally touch the via counts of edge endpoints, which is why
// the batch planner adds one extra gcell of halo on top of the margin.
#pragma once

#include <vector>

#include "groute/pattern_route.hpp"
#include "groute/routing_graph.hpp"

namespace crp::groute {

class MazeRouter {
 public:
  explicit MazeRouter(const RoutingGraph& graph, int boxMargin = 6)
      : graph_(graph), boxMargin_(boxMargin) {}

  /// Routes a net over its terminals with sequential multi-source
  /// Dijkstra (the growing tree is the source set for the next sink).
  /// Read-only on the graph and allocation-local: concurrent calls on
  /// one MazeRouter are safe.
  PatternResult routeTree(const std::vector<GPoint>& terminals) const;

  /// GCell margin added around the terminal bbox; the spatial extent
  /// of routeTree (single source of the batch-planner's halo).
  int boxMargin() const { return boxMargin_; }

 private:
  const RoutingGraph& graph_;
  int boxMargin_;
};

}  // namespace crp::groute
