// Captures an obs::HeatmapSnapshot from the live RoutingGraph — the
// bridge between the routing layer (which owns the demand state) and
// the spatial observability tier (pure data + rendering, obs/heatmap).
//
// Captured content is schedule-independent: wire demand is Eq. 9 over
// committed per-edge usage (exact sums — conflict-free reroute batches
// write disjoint edges), so two captures of the same flow state are
// bit-identical regardless of --threads / --router-threads.
#pragma once

#include <string>

#include "groute/routing_graph.hpp"
#include "obs/heatmap.hpp"

namespace crp::groute {

/// Reads every wire demand/capacity plane (full Eq. 9 demand, so the
/// snapshot's overflow totals equal congestionStats()) and every via
/// usage/capacity plane from `graph`.
obs::HeatmapSnapshot captureHeatmap(const RoutingGraph& graph,
                                    std::string label, int iteration);

}  // namespace crp::groute
