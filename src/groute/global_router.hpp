// The CUGR-substitute global router (paper Fig. 1 step 1).
//
// Flow: RSMT + 3D pattern route every net (cheapest first), then
// negotiated rip-up-and-reroute rounds that re-route overflowed nets
// with the 3D maze router.  The live Eq. 9/10 cost model steers both
// phases away from congestion.
//
// The router is also the "Update Database" engine of CR&P (§IV.B.5):
// rerouteNet() rips up and re-routes the nets of moved cells and keeps
// the demand maps consistent.
#pragma once

#include <vector>

#include "db/database.hpp"
#include "groute/maze_route.hpp"
#include "groute/pattern_route.hpp"
#include "groute/routing_graph.hpp"
#include "lefdef/guide_io.hpp"

namespace crp::groute {

struct GlobalRouterOptions {
  CostConfig cost;
  int rrrRounds = 3;      ///< negotiated reroute rounds after initial route
  int mazeMargin = 6;     ///< gcell margin around the net bbox for maze
  int maxZCandidates = 8; ///< Z-shape sampling in pattern routing
};

struct GlobalRouteStats {
  geom::Coord wirelengthDbu = 0;
  long vias = 0;
  double totalOverflow = 0.0;
  int overflowedEdges = 0;
  int openNets = 0;
  int reroutedNets = 0;  ///< nets touched by RRR rounds
};

class GlobalRouter {
 public:
  explicit GlobalRouter(const db::Database& db,
                        GlobalRouterOptions options = {});

  /// Routes every net from scratch: pattern route + RRR.
  GlobalRouteStats run();

  /// Pin terminals of a net at the current cell positions.
  std::vector<GPoint> netTerminals(db::NetId net) const;

  /// Removes a net's route from the demand maps (no-op when unrouted).
  void ripUp(db::NetId net);

  /// Rip up + reroute at current cell positions (maze search against
  /// the live congestion state, pattern fallback — the same quality
  /// class the initial RRR rounds produce, so CR&P's Update-Database
  /// reroutes do not degrade the via discipline of the solution).
  /// Returns false when the net could not be routed (stays open).
  bool rerouteNet(db::NetId net, bool mazeFirst = true);

  /// Cost of a net's committed route at the live edge prices; the
  /// criticality metric of Alg. 1.  Zero for unrouted nets.
  double netRouteCost(db::NetId net) const;

  const NetRoute& route(db::NetId net) const { return routes_.at(net); }
  RoutingGraph& graph() { return graph_; }
  const RoutingGraph& graph() const { return graph_; }
  const db::Database& database() const { return db_; }

  GlobalRouteStats stats() const;

  /// Guides for the detailed router, one entry per routed net.
  std::vector<lefdef::NetGuide> buildGuides() const;

 private:
  const db::Database& db_;
  GlobalRouterOptions options_;
  RoutingGraph graph_;
  PatternRouter pattern_;
  MazeRouter maze_;
  std::vector<NetRoute> routes_;
  int reroutedNets_ = 0;
};

}  // namespace crp::groute
