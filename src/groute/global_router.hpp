// The CUGR-substitute global router (paper Fig. 1 step 1).
//
// Flow: RSMT + 3D pattern route every net (cheapest first), then
// negotiated rip-up-and-reroute rounds that re-route overflowed nets
// with the 3D maze router.  The live Eq. 9/10 cost model steers both
// phases away from congestion.
//
// The router is also the "Update Database" engine of CR&P (§IV.B.5):
// rerouteNet() rips up and re-routes the nets of moved cells and keeps
// the demand maps consistent.
//
// Batch reroutes (the UD affected-net set and each RRR victim round)
// run through rerouteNets(): the pending nets are partitioned into
// conflict-free batches by greedy coloring over their expanded conflict
// bboxes (old route extent + current terminals + maze margin + one
// gcell of cost-read halo) and each batch is rerouted concurrently on
// a thread pool.  Because batch members touch pairwise-disjoint graph
// regions, the result is bit-identical at any thread count; see
// DESIGN.md §6 "Parallel conflict-free RRR batching".
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "db/database.hpp"
#include "groute/maze_route.hpp"
#include "groute/pattern_route.hpp"
#include "groute/routing_graph.hpp"
#include "groute/tile.hpp"
#include "lefdef/guide_io.hpp"
#include "util/thread_pool.hpp"

namespace crp::obs {
class ObsContext;
}

namespace crp::groute {

struct GlobalRouterOptions {
  CostConfig cost;
  int rrrRounds = 3;      ///< negotiated reroute rounds after initial route
  int mazeMargin = 6;     ///< gcell margin around the net bbox for maze
  int maxZCandidates = 8; ///< Z-shape sampling in pattern routing
  /// Worker threads for batch reroutes (rerouteNets): 1 = serial,
  /// 0 = hardware concurrency.  The route fingerprint and demand maps
  /// are bit-identical across all values (determinism contract).
  int routerThreads = 0;
  /// Observability context router entry points (run, rerouteNets)
  /// record into — gr.* counters, spans, reroute.fail events.  Null
  /// resolves ambiently (thread scope, else the process default), the
  /// pre-daemon behavior.  Must outlive the router when set.
  obs::ObsContext* obsContext = nullptr;
  /// Shared worker pool for batch reroutes.  Null: the router builds a
  /// private pool of routerThreads workers on first use, as before.
  /// Non-null: batches run on this pool (the serve daemon's, shared
  /// with the framework phases) — except when routerThreads == 1,
  /// which still forces serial in-place execution.  Must outlive the
  /// router.
  util::ThreadPool* sharedPool = nullptr;
  /// Chip-tile spatial decomposition of batch reroutes
  /// (docs/tiling.md): the GCell grid is cut into tileRows x tileCols
  /// tiles and each batch member whose conflict bbox fits one tile's
  /// haloed rect runs grouped on that tile's worker, writing demand
  /// into a region-local view merged at the batch boundary; members
  /// spanning tiles run on the existing global path.  1 x 1 disables
  /// tiling.  Value-exact: routes, demand maps and fingerprints are
  /// bit-identical for every grid at every thread count.
  int tileRows = 1;
  int tileCols = 1;
  /// Halo width in gcells around each tile (TileGridSpec::haloGcells);
  /// -1 = the planner's conflict margin (mazeMargin + 1).
  int haloGcells = -1;
};

// GCellRect and overlapsAny() live in groute/tile.hpp (included above)
// now that the tile decomposition shares them with the batch planner
// and the ECO engine.

struct GlobalRouteStats {
  geom::Coord wirelengthDbu = 0;
  long vias = 0;
  double totalOverflow = 0.0;
  int overflowedEdges = 0;
  int openNets = 0;
  int reroutedNets = 0;  ///< nets touched by RRR rounds
};

/// Outcome of one rerouteNets() call (also published as gr.par.*
/// observability counters).
struct RerouteBatchStats {
  int nets = 0;       ///< pending nets handed in
  int batches = 0;    ///< conflict-free batches executed
  int conflicts = 0;  ///< bbox-overlap rejections during greedy coloring
  int failed = 0;     ///< nets whose reroute failed (old route restored)
  // Tile decomposition outcome (all zero when tiling is off).
  int tileLocalNets = 0;  ///< nets routed inside a tile's demand view
  int boundaryNets = 0;   ///< tile-spanning nets on the global path
  int tilesUsed = 0;      ///< distinct tiles that received work
  double mergeSeconds = 0.0;  ///< wall time of batch-boundary merges
};

class GlobalRouter {
 public:
  explicit GlobalRouter(const db::Database& db,
                        GlobalRouterOptions options = {});

  /// Routes every net from scratch: pattern route + RRR.
  GlobalRouteStats run();

  /// Pin terminals of a net at the current cell positions.
  std::vector<GPoint> netTerminals(db::NetId net) const;

  /// Inclusive gcell extent of everything a net occupies or can be
  /// asked to rip up: current terminals plus the committed route.
  /// Empty for an unrouted net with fewer than one gcell of pins.
  GCellRect netExtent(db::NetId net) const;

  /// Nets whose extent overlaps any of `regions`, in net-id order
  /// (deterministic).  The ECO engine's "routes crossing the dirty
  /// region" query.
  std::vector<db::NetId> netsTouchingRegion(
      const std::vector<GCellRect>& regions) const;

  /// Grows the route table after nets were appended to the database
  /// (ECO net adds); existing routes are untouched.  The router never
  /// observes net removals — ECO detaches pins instead (docs/eco.md).
  void syncNetCount();

  /// True when any wire edge of the net's committed route is currently
  /// overflowed — the RRR victim test, exposed so the ECO engine can
  /// restrict its congestion response to overflowed crossers instead of
  /// every route near the delta.  With `within`, only overflowed edges
  /// whose gcell lies inside one of those rects count: a crosser that
  /// is congested solely at some far-away hotspot is not the ECO's
  /// problem.  False for unrouted nets.
  bool routeOverflowed(db::NetId net,
                       const std::vector<GCellRect>* within = nullptr) const;

  /// Removes a net's route from the demand maps (no-op when unrouted).
  void ripUp(db::NetId net);

  /// Rip up + reroute at current cell positions (maze search against
  /// the live congestion state, pattern fallback — the same quality
  /// class the initial RRR rounds produce, so CR&P's Update-Database
  /// reroutes do not degrade the via discipline of the solution).
  /// When both maze and pattern fail, the previous route (and its
  /// demand) is restored so no demand ever vanishes silently; returns
  /// false in that case.
  bool rerouteNet(db::NetId net, bool mazeFirst = true);

  /// Rip up + reroute a set of nets through the conflict-free batch
  /// engine: deterministic batch plan (planRerouteBatches), each batch
  /// executed concurrently on options().routerThreads workers.  The
  /// resulting routes and demand maps are bit-identical for every
  /// thread count, including 1.
  RerouteBatchStats rerouteNets(const std::vector<db::NetId>& nets,
                                bool mazeFirst = true);

  /// The deterministic conflict-free partition used by rerouteNets:
  /// greedy coloring in input order over each net's conflict bbox (old
  /// route extent + current terminal bbox, expanded by the maze margin
  /// plus one halo gcell for edge-cost endpoint reads).  Nets within
  /// one batch have pairwise-disjoint conflict bboxes.  Exposed for
  /// tests; `conflicts`, when given, receives the number of overlap
  /// rejections observed while coloring.
  std::vector<std::vector<db::NetId>> planRerouteBatches(
      const std::vector<db::NetId>& nets, int* conflicts = nullptr) const;

  /// Reconfigures the batch-reroute worker count (1 = serial,
  /// 0 = hardware); value-exact per the determinism contract.
  void setRouterThreads(int threads);

  /// Reconfigures the tile decomposition (rows x cols, halo gcells;
  /// halo -1 = auto).  1 x 1 disables tiling.  Value-exact per the
  /// determinism contract — any grid yields bit-identical results.
  void setTileGrid(int rows, int cols, int haloGcells = -1);

  /// The active tile decomposition, or nullptr when tiling is off.
  const TileGrid* tileGrid() const { return tiles_.get(); }

  /// The per-tile demand views (empty when tiling is off).  Outside a
  /// rerouteNets call every view is quiescent: no pending ops, all
  /// delta slots zero — the tile-partition-exactness audit invariant.
  std::vector<const TileDemandView*> tileViews() const;

  /// Cost of a net's committed route at the live edge prices; the
  /// criticality metric of Alg. 1.  Zero for unrouted nets.
  double netRouteCost(db::NetId net) const;

  const NetRoute& route(db::NetId net) const { return routes_.at(net); }
  /// Mutable route access for corruption-injection tests (the audit
  /// mutation tests break one invariant at a time).  Callers editing
  /// segments are responsible for the demand maps (applyRoute) — the
  /// router itself never leaves them inconsistent.
  NetRoute& mutableRoute(db::NetId net) { return routes_.at(net); }
  RoutingGraph& graph() { return graph_; }
  const RoutingGraph& graph() const { return graph_; }
  const db::Database& database() const { return db_; }

  GlobalRouteStats stats() const;

  /// Guides for the detailed router, one entry per routed net.
  std::vector<lefdef::NetGuide> buildGuides() const;

  const GlobalRouterOptions& options() const { return options_; }

 private:
  /// Lazily created pool sized by options_.routerThreads; nullptr when
  /// the configuration is serial.
  util::ThreadPool* pool();

  /// rerouteNet with an optional tile view as the demand write sink
  /// (null: write the shared graph — the untiled path).
  bool rerouteNetImpl(db::NetId net, bool mazeFirst, TileDemandView* view);

  /// Executes one conflict-free batch under the tile decomposition:
  /// deterministic tile grouping, one work unit per tile group plus
  /// one per boundary net, then the fixed-order boundary merge.
  void runTiledBatch(const std::vector<db::NetId>& batch, bool mazeFirst,
                     util::ThreadPool* workers, std::atomic<int>& failed,
                     RerouteBatchStats& stats, std::vector<char>& touched);

  /// (Re)builds tiles_ and the per-tile views from options_.
  void rebuildTiles();

  const db::Database& db_;
  GlobalRouterOptions options_;
  RoutingGraph graph_;
  PatternRouter pattern_;
  MazeRouter maze_;
  std::vector<NetRoute> routes_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<TileGrid> tiles_;  ///< null when tiling is off
  std::vector<std::unique_ptr<TileDemandView>> tileViews_;
  int reroutedNets_ = 0;
};

}  // namespace crp::groute
