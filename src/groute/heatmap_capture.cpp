#include "groute/heatmap_capture.hpp"

#include <utility>

namespace crp::groute {

obs::HeatmapSnapshot captureHeatmap(const RoutingGraph& graph,
                                    std::string label, int iteration) {
  obs::HeatmapSnapshot snap;
  snap.label = std::move(label);
  snap.iteration = iteration;
  snap.width = graph.grid().countX();
  snap.height = graph.grid().countY();
  snap.numLayers = graph.numLayers();
  const std::size_t cells =
      static_cast<std::size_t>(snap.width) * snap.height;

  for (int l = 0; l < graph.numLayers(); ++l) {
    const bool horizontal = graph.layerDir(l) == db::LayerDir::kHorizontal;
    obs::HeatmapSnapshot::Plane demand;
    demand.kind = obs::HeatmapSnapshot::kWireDemand;
    demand.layer = l;
    demand.horizontal = horizontal;
    demand.values.assign(cells, 0.0);
    obs::HeatmapSnapshot::Plane capacity = demand;
    capacity.kind = obs::HeatmapSnapshot::kWireCapacity;
    for (int y = 0; y < graph.wireEdgeCountY(l); ++y) {
      for (int x = 0; x < graph.wireEdgeCountX(l); ++x) {
        const WireEdge e{l, x, y};
        const std::size_t idx =
            static_cast<std::size_t>(y) * snap.width + x;
        demand.values[idx] = graph.demand(e);
        capacity.values[idx] = graph.capacity(e);
      }
    }
    snap.planes.push_back(std::move(demand));
    snap.planes.push_back(std::move(capacity));
  }

  for (int l = 0; l + 1 < graph.numLayers(); ++l) {
    obs::HeatmapSnapshot::Plane demand;
    demand.kind = obs::HeatmapSnapshot::kViaDemand;
    demand.layer = l;
    demand.values.assign(cells, 0.0);
    obs::HeatmapSnapshot::Plane capacity = demand;
    capacity.kind = obs::HeatmapSnapshot::kViaCapacity;
    for (int y = 0; y < snap.height; ++y) {
      for (int x = 0; x < snap.width; ++x) {
        const ViaEdge e{l, x, y};
        const std::size_t idx =
            static_cast<std::size_t>(y) * snap.width + x;
        demand.values[idx] = graph.viaUsage(e);
        capacity.values[idx] = graph.viaCapacity(e);
      }
    }
    snap.planes.push_back(std::move(demand));
    snap.planes.push_back(std::move(capacity));
  }

  const RoutingGraph::CongestionStats stats = graph.congestionStats();
  snap.totalOverflow = stats.totalOverflow;
  snap.maxOverflow = stats.maxOverflow;
  snap.overflowedEdges = stats.overflowedEdges;
  return snap;
}

}  // namespace crp::groute
