#include "groute/routing_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "groute/tile.hpp"

namespace crp::groute {

namespace {

using db::LayerDir;

/// Number of track lines of `grid` whose coordinate lies in [lo, hi).
int tracksInSpan(const db::TrackGrid& grid, geom::Coord lo, geom::Coord hi) {
  if (grid.count <= 0 || grid.step <= 0) return 0;
  // First track index with coordinate >= lo.
  const geom::Coord first = grid.start;
  long long kLo = (lo - first + grid.step - 1);
  kLo = kLo >= 0 ? kLo / grid.step : 0;
  long long kHi = (hi - 1 - first);
  if (kHi < 0) return 0;
  kHi /= grid.step;
  kLo = std::max<long long>(kLo, 0);
  kHi = std::min<long long>(kHi, grid.count - 1);
  return static_cast<int>(std::max<long long>(0, kHi - kLo + 1));
}

}  // namespace

RoutingGraph::RoutingGraph(const db::Database& db, CostConfig config)
    : grid_(db.design().dieArea,
            std::max(1, db.design().gcellCountX),
            std::max(1, db.design().gcellCountY)),
      numLayers_(db.tech().numLayers()),
      config_(config) {
  dirs_.reserve(numLayers_);
  for (int l = 0; l < numLayers_; ++l) dirs_.push_back(db.tech().layer(l).dir);
  const int pitchLayer = numLayers_ > 1 ? 1 : 0;
  pitchUnit_ = std::max<geom::Coord>(1, db.tech().layer(pitchLayer).pitch);
  const int nx = grid_.countX();
  const int ny = grid_.countY();

  // Wire edge array layout: per layer, H layers have (nx-1)*ny edges,
  // V layers have nx*(ny-1).
  wireLayerOffset_.assign(numLayers_ + 1, 0);
  for (int l = 0; l < numLayers_; ++l) {
    const std::size_t count =
        layerDir(l) == LayerDir::kHorizontal
            ? static_cast<std::size_t>(std::max(0, nx - 1)) * ny
            : static_cast<std::size_t>(nx) * std::max(0, ny - 1);
    wireLayerOffset_[l + 1] = wireLayerOffset_[l] + count;
  }
  wireCap_.assign(wireLayerOffset_.back(), 0.0);
  wireUse_.assign(wireLayerOffset_.back(), 0.0);
  wireFixed_.assign(wireLayerOffset_.back(), 0.0);
  wireBlockedFrac_.assign(wireLayerOffset_.back(), 0.0);

  const std::size_t viaEdges =
      static_cast<std::size_t>(std::max(0, numLayers_ - 1)) * nx * ny;
  viaCap_.assign(viaEdges, 0.0);
  viaUse_.assign(viaEdges, 0.0);
  viaCount_.assign(static_cast<std::size_t>(numLayers_) * nx * ny, 0);

  buildCapacities(db);
  chargeFixedUsage(db);
}

db::LayerDir RoutingGraph::layerDir(int layer) const {
  return dirs_.at(layer);
}

std::size_t RoutingGraph::wireIndex(const WireEdge& e) const {
  const int nx = grid_.countX();
  if (layerDir(e.layer) == LayerDir::kHorizontal) {
    return wireLayerOffset_[e.layer] +
           static_cast<std::size_t>(e.y) * (nx - 1) + e.x;
  }
  return wireLayerOffset_[e.layer] + static_cast<std::size_t>(e.y) * nx + e.x;
}

std::size_t RoutingGraph::viaIndex(const ViaEdge& e) const {
  return (static_cast<std::size_t>(e.layer) * grid_.countY() + e.y) *
             grid_.countX() +
         e.x;
}

std::size_t RoutingGraph::nodeIndex(const GPoint& p) const {
  return (static_cast<std::size_t>(p.layer) * grid_.countY() + p.y) *
             grid_.countX() +
         p.x;
}

bool RoutingGraph::validNode(const GPoint& p) const {
  return p.layer >= 0 && p.layer < numLayers_ && p.x >= 0 &&
         p.x < grid_.countX() && p.y >= 0 && p.y < grid_.countY();
}

bool RoutingGraph::validWireEdge(const WireEdge& e) const {
  if (e.layer < 0 || e.layer >= numLayers_) return false;
  if (layerDir(e.layer) == LayerDir::kHorizontal) {
    return e.x >= 0 && e.x < grid_.countX() - 1 && e.y >= 0 &&
           e.y < grid_.countY();
  }
  return e.x >= 0 && e.x < grid_.countX() && e.y >= 0 &&
         e.y < grid_.countY() - 1;
}

int RoutingGraph::wireEdgeCountX(int layer) const {
  return layerDir(layer) == LayerDir::kHorizontal ? grid_.countX() - 1
                                                  : grid_.countX();
}

int RoutingGraph::wireEdgeCountY(int layer) const {
  return layerDir(layer) == LayerDir::kHorizontal ? grid_.countY()
                                                  : grid_.countY() - 1;
}

geom::Coord RoutingGraph::wireEdgeDist(const WireEdge& e) const {
  const db::GCell a{e.x, e.y};
  const db::GCell b = layerDir(e.layer) == LayerDir::kHorizontal
                          ? db::GCell{e.x + 1, e.y}
                          : db::GCell{e.x, e.y + 1};
  return grid_.centerDistance(a, b);
}

void RoutingGraph::buildCapacities(const db::Database& db) {
  // Wire capacity of an edge = number of that layer's tracks running
  // through the gcell span perpendicular to the edge direction.
  for (const db::TrackGrid& tracks : db.design().tracks) {
    const int layer = tracks.layer;
    if (layer < 0 || layer >= numLayers_) continue;
    if (tracks.dir != layerDir(layer)) continue;  // non-preferred: ignore
    if (layerDir(layer) == LayerDir::kHorizontal) {
      // Horizontal wires: tracks are horizontal lines at y = const; the
      // capacity of edge ((x,y),(x+1,y)) is the tracks inside row y.
      for (int gy = 0; gy < grid_.countY(); ++gy) {
        const auto rect = grid_.cellRect(db::GCell{0, gy});
        const int cap = tracksInSpan(tracks, rect.ylo, rect.yhi);
        for (int gx = 0; gx < grid_.countX() - 1; ++gx) {
          wireCap_[wireIndex(WireEdge{layer, gx, gy})] = cap;
        }
      }
    } else {
      for (int gx = 0; gx < grid_.countX(); ++gx) {
        const auto rect = grid_.cellRect(db::GCell{gx, 0});
        const int cap = tracksInSpan(tracks, rect.xlo, rect.xhi);
        for (int gy = 0; gy < grid_.countY() - 1; ++gy) {
          wireCap_[wireIndex(WireEdge{layer, gx, gy})] = cap;
        }
      }
    }
  }

  // Via capacity at (x, y) between l and l+1: bounded by the sparser of
  // the two adjacent layers' per-gcell track counts.
  for (int l = 0; l + 1 < numLayers_; ++l) {
    for (int gy = 0; gy < grid_.countY(); ++gy) {
      for (int gx = 0; gx < grid_.countX(); ++gx) {
        const auto rect = grid_.cellRect(db::GCell{gx, gy});
        double capBelow = 0.0, capAbove = 0.0;
        for (const db::TrackGrid& tracks : db.design().tracks) {
          if (tracks.dir != layerDir(tracks.layer)) continue;
          const bool horizontal =
              layerDir(tracks.layer) == LayerDir::kHorizontal;
          const int inSpan = horizontal
                                 ? tracksInSpan(tracks, rect.ylo, rect.yhi)
                                 : tracksInSpan(tracks, rect.xlo, rect.xhi);
          if (tracks.layer == l) capBelow += inSpan;
          if (tracks.layer == l + 1) capAbove += inSpan;
        }
        viaCap_[viaIndex(ViaEdge{l, gx, gy})] =
            std::max(1.0, std::min(capBelow, capAbove));
      }
    }
  }
}

void RoutingGraph::chargeFixedUsage(const db::Database& db) {
  // Routing blockages consume capacity in proportion to the fraction of
  // the gcell they cover on that layer (U_f of Eq. 9).
  // `hard` marks obstructions of fixed cells (macro blocks): besides
  // the proportional U_f charge, they accumulate a coverage fraction
  // per edge.  An edge whose two adjacent gcells are both fully covered
  // reaches 0.5 + 0.5 = 1.0 and becomes hard-blocked (infinite cost);
  // a boundary edge only collects 0.5 and stays routable, so nets can
  // reach pins on the macro rim but never tunnel through its interior.
  // Only fixed cells contribute: movable cells' obstructions would make
  // the blocked map position-dependent, and the incremental demand
  // audit treats U_f (and this map) as a construction-time snapshot.
  auto chargeRect = [&](int layer, const geom::Rect& rect, bool hard) {
    if (layer < 0 || layer >= numLayers_) return;
    const db::GCell lo = grid_.cellAt({rect.xlo, rect.ylo});
    const db::GCell hi = grid_.cellAt({rect.xhi - 1, rect.yhi - 1});
    for (int gy = lo.y; gy <= hi.y; ++gy) {
      for (int gx = lo.x; gx <= hi.x; ++gx) {
        const geom::Rect cellRect = grid_.cellRect(db::GCell{gx, gy});
        const geom::Rect overlap = cellRect.intersect(rect);
        if (overlap.empty()) continue;
        const double fraction = static_cast<double>(overlap.area()) /
                                static_cast<double>(cellRect.area());
        // Charge both wire edges touching this gcell along the layer
        // direction (half each so a fully covered gcell consumes one
        // gcell worth of capacity).
        if (layerDir(layer) == LayerDir::kHorizontal) {
          for (const int ex : {gx - 1, gx}) {
            const WireEdge e{layer, ex, gy};
            if (validWireEdge(e)) {
              wireFixed_[wireIndex(e)] +=
                  0.5 * fraction * wireCap_[wireIndex(e)];
              if (hard) wireBlockedFrac_[wireIndex(e)] += 0.5 * fraction;
            }
          }
        } else {
          for (const int ey : {gy - 1, gy}) {
            const WireEdge e{layer, gx, ey};
            if (validWireEdge(e)) {
              wireFixed_[wireIndex(e)] +=
                  0.5 * fraction * wireCap_[wireIndex(e)];
              if (hard) wireBlockedFrac_[wireIndex(e)] += 0.5 * fraction;
            }
          }
        }
      }
    }
  };

  for (const db::Blockage& blockage : db.design().blockages) {
    if (blockage.layer != db::kInvalidId) {
      chargeRect(blockage.layer, blockage.rect, /*hard=*/false);
    }
  }
  // Macro obstructions of placed cells.
  for (db::CellId c = 0; c < db.numCells(); ++c) {
    const auto& comp = db.cell(c);
    const auto& macro = db.macroOf(c);
    for (const db::Obstruction& obs : macro.obstructions) {
      chargeRect(obs.layer,
                 geom::transformRect(obs.rect, comp.pos, macro.width,
                                     macro.height, comp.orient),
                 /*hard=*/comp.fixed);
    }
  }
}

double RoutingGraph::demand(const WireEdge& e) const {
  const GPoint src{e.layer, e.x, e.y};
  const GPoint dst = layerDir(e.layer) == LayerDir::kHorizontal
                         ? GPoint{e.layer, e.x + 1, e.y}
                         : GPoint{e.layer, e.x, e.y + 1};
  // Through the accessors, not the raw arrays: a thread routing a tile
  // group reads the shared state plus its view's deltas (OverlayScope).
  const double viaEstimate =
      std::sqrt((viaCount(src) + viaCount(dst)) / 2.0);
  return wireUsage(e) + fixedUsage(e) + config_.beta * viaEstimate;
}

double RoutingGraph::overlayWireDelta(const WireEdge& e) const {
  return tlOverlayView_->wireDelta(e);
}

double RoutingGraph::overlayViaDelta(const ViaEdge& e) const {
  return tlOverlayView_->viaDelta(e);
}

int RoutingGraph::overlayViaCountDelta(const GPoint& p) const {
  return tlOverlayView_->viaCountDelta(p);
}

namespace {

/// Intended Eq. 10 logistic: 0.5 at D == C, -> 1 under overflow.
double logisticPenalty(double demand, double capacity, double slope) {
  return 1.0 / (1.0 + std::exp(-slope * (demand - capacity)));
}

}  // namespace

double RoutingGraph::wireEdgeCost(const WireEdge& e) const {
  // Edges inside a fixed macro's obstruction are impassable, not merely
  // expensive: the pattern DP and the maze router both treat infinity
  // as "no edge" and detour or fail cleanly.
  if (hardBlocked(e)) return std::numeric_limits<double>::infinity();
  // Dist(e) in wire units (pitches), so wireUnit/viaUnit carry the
  // contest's relative weighting.
  const double dist = static_cast<double>(wireEdgeDist(e)) /
                      static_cast<double>(pitchUnit_);
  double penalty = 0.0;
  if (config_.congestionPenalty) {
    penalty = logisticPenalty(demand(e), capacity(e), config_.slope);
  }
  return config_.wireUnit * dist * (1.0 + penalty);
}

double RoutingGraph::viaEdgeCost(const ViaEdge& e) const {
  double penalty = 0.0;
  if (config_.congestionPenalty) {
    penalty = logisticPenalty(viaUsage(e), viaCapacity(e), config_.slope);
  }
  return config_.viaUnit * (1.0 + penalty);
}

double RoutingGraph::overflow(const WireEdge& e) const {
  return std::max(0.0, demand(e) - capacity(e));
}

bool RoutingGraph::routeInBounds(const NetRoute& route) const {
  for (const RouteSegment& seg : route.segments) {
    if (!validNode(seg.a) || !validNode(seg.b)) return false;
    if (!seg.isVia() && seg.a.layer != seg.b.layer) return false;
    if (!seg.isVia()) {
      if (seg.a.x != seg.b.x && seg.a.y != seg.b.y) return false;
      const bool horizontal = seg.a.y == seg.b.y && seg.a.x != seg.b.x;
      const auto dir = layerDir(seg.a.layer);
      if (seg.a.x == seg.b.x && seg.a.y == seg.b.y) continue;  // point
      if (horizontal && dir != LayerDir::kHorizontal) return false;
      if (!horizontal && dir != LayerDir::kVertical) return false;
    } else if (seg.a.x != seg.b.x || seg.a.y != seg.b.y) {
      return false;
    }
  }
  return true;
}

void RoutingGraph::applyRoute(const NetRoute& route, int sign) {
  // The scalar totals are accumulated locally and published with one
  // relaxed fetch_add each: exact integer sums, so concurrent
  // disjoint-route calls commute (see the header's contract).
  geom::Coord wireDelta = 0;
  long viaDelta = 0;
  for (const RouteSegment& rawSeg : route.segments) {
    const RouteSegment seg = normalized(rawSeg);
    if (seg.isVia()) {
      for (int l = seg.a.layer; l < seg.b.layer; ++l) {
        viaUse_[viaIndex(ViaEdge{l, seg.a.x, seg.a.y})] += sign;
        viaDelta += sign;
      }
      for (int l = seg.a.layer; l <= seg.b.layer; ++l) {
        viaCount_[nodeIndex(GPoint{l, seg.a.x, seg.a.y})] += sign;
      }
    } else if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        const WireEdge e{seg.a.layer, x, seg.a.y};
        wireUse_[wireIndex(e)] += sign;
        wireDelta += sign * wireEdgeDist(e);
      }
    } else if (seg.a.y != seg.b.y) {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        const WireEdge e{seg.a.layer, seg.a.x, y};
        wireUse_[wireIndex(e)] += sign;
        wireDelta += sign * wireEdgeDist(e);
      }
    }
  }
  if (wireDelta != 0) {
    totalWireDbu_.fetch_add(wireDelta, std::memory_order_relaxed);
  }
  if (viaDelta != 0) totalVias_.fetch_add(viaDelta, std::memory_order_relaxed);
}

RoutingGraph::CongestionStats RoutingGraph::congestionStats() const {
  CongestionStats stats;
  for (int l = 0; l < numLayers_; ++l) {
    for (int y = 0; y < wireEdgeCountY(l); ++y) {
      for (int x = 0; x < wireEdgeCountX(l); ++x) {
        const WireEdge e{l, x, y};
        const double ov = overflow(e);
        ++stats.totalEdges;
        if (ov > 0.0) {
          ++stats.overflowedEdges;
          stats.totalOverflow += ov;
          stats.maxOverflow = std::max(stats.maxOverflow, ov);
        }
      }
    }
  }
  return stats;
}

}  // namespace crp::groute
