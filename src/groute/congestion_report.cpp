#include "groute/congestion_report.hpp"

#include <algorithm>
#include <utility>

#include "groute/heatmap_capture.hpp"

namespace crp::groute {

int CongestionMap::hotspotCount(double threshold) const {
  int count = 0;
  for (const double u : utilisation) {
    if (u > threshold) ++count;
  }
  return count;
}

double CongestionMap::peak() const {
  double best = 0.0;
  for (const double u : utilisation) best = std::max(best, u);
  return best;
}

double CongestionMap::mean() const {
  if (utilisation.empty()) return 0.0;
  double sum = 0.0;
  for (const double u : utilisation) sum += u;
  return sum / static_cast<double>(utilisation.size());
}

CongestionMap buildCongestionMap(const RoutingGraph& graph, int layer) {
  return buildCongestionMap(captureHeatmap(graph, "adhoc", -1), layer);
}

CongestionMap buildCongestionMap(const obs::HeatmapSnapshot& snapshot,
                                 int layer) {
  obs::UtilisationGrid grid = obs::utilisationGrid(snapshot, layer);
  CongestionMap map;
  map.width = grid.width;
  map.height = grid.height;
  map.utilisation = std::move(grid.values);
  return map;
}

void printHeatmap(std::ostream& os, const CongestionMap& map) {
  for (int y = map.height - 1; y >= 0; --y) {
    for (int x = 0; x < map.width; ++x) {
      os << obs::utilisationGlyph(map.at(x, y));
    }
    os << '\n';
  }
}

}  // namespace crp::groute
