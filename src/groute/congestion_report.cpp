#include "groute/congestion_report.hpp"

#include <algorithm>

namespace crp::groute {

int CongestionMap::hotspotCount(double threshold) const {
  int count = 0;
  for (const double u : utilisation) {
    if (u > threshold) ++count;
  }
  return count;
}

double CongestionMap::peak() const {
  double best = 0.0;
  for (const double u : utilisation) best = std::max(best, u);
  return best;
}

double CongestionMap::mean() const {
  if (utilisation.empty()) return 0.0;
  double sum = 0.0;
  for (const double u : utilisation) sum += u;
  return sum / static_cast<double>(utilisation.size());
}

CongestionMap buildCongestionMap(const RoutingGraph& graph, int layer) {
  CongestionMap map;
  map.width = graph.grid().countX();
  map.height = graph.grid().countY();
  map.utilisation.assign(static_cast<std::size_t>(map.width) * map.height,
                         0.0);
  std::vector<int> samples(map.utilisation.size(), 0);

  const int layerLo = layer >= 0 ? layer : 0;
  const int layerHi = layer >= 0 ? layer : graph.numLayers() - 1;
  for (int l = layerLo; l <= layerHi; ++l) {
    for (int y = 0; y < graph.wireEdgeCountY(l); ++y) {
      for (int x = 0; x < graph.wireEdgeCountX(l); ++x) {
        const WireEdge e{l, x, y};
        const double cap = graph.capacity(e);
        if (cap <= 0.0) continue;
        const double ratio = graph.demand(e) / cap;
        // Charge both touching gcells.
        const bool horizontal =
            graph.layerDir(l) == db::LayerDir::kHorizontal;
        const int x2 = horizontal ? x + 1 : x;
        const int y2 = horizontal ? y : y + 1;
        for (const auto& [gx, gy] : {std::pair{x, y}, std::pair{x2, y2}}) {
          const std::size_t idx =
              static_cast<std::size_t>(gy) * map.width + gx;
          map.utilisation[idx] += ratio;
          ++samples[idx];
        }
      }
    }
  }
  for (std::size_t i = 0; i < map.utilisation.size(); ++i) {
    if (samples[i] > 0) map.utilisation[i] /= samples[i];
  }
  return map;
}

void printHeatmap(std::ostream& os, const CongestionMap& map) {
  static constexpr char kScale[] = ".:-=+*%#";
  for (int y = map.height - 1; y >= 0; --y) {
    for (int x = 0; x < map.width; ++x) {
      const double u = map.at(x, y);
      const int bucket = std::min<int>(
          7, static_cast<int>(u * 7.0));  // >= 1.0 saturates at '#'
      os << kScale[std::max(0, bucket)];
    }
    os << '\n';
  }
}

}  // namespace crp::groute
