#include "groute/tile.hpp"

#include <cassert>

namespace crp::groute {

bool overlapsAny(const GCellRect& rect, const std::vector<GCellRect>& regions) {
  for (const GCellRect& region : regions) {
    if (rect.overlaps(region)) return true;
  }
  return false;
}

TileGrid::TileGrid(int countX, int countY, const TileGridSpec& spec,
                   int conflictMargin)
    : rows_(std::max(1, spec.rows)),
      cols_(std::max(1, spec.cols)),
      halo_(spec.haloGcells >= 0 ? spec.haloGcells
                                 : std::max(0, conflictMargin)),
      countX_(std::max(1, countX)),
      countY_(std::max(1, countY)) {
  // Integer partition: column c spans [c*W/C, (c+1)*W/C).  When C > W
  // some columns are empty (lo == next lo); tileRect reports them as
  // empty rects and tileAt never returns them.
  colLo_.resize(cols_ + 1);
  for (int c = 0; c <= cols_; ++c) {
    colLo_[c] = static_cast<int>(static_cast<long>(c) * countX_ / cols_);
  }
  rowLo_.resize(rows_ + 1);
  for (int r = 0; r <= rows_; ++r) {
    rowLo_[r] = static_cast<int>(static_cast<long>(r) * countY_ / rows_);
  }
}

GCellRect TileGrid::tileRect(int tile) const {
  const int r = tile / cols_;
  const int c = tile % cols_;
  GCellRect rect;
  rect.xlo = colLo_[c];
  rect.xhi = colLo_[c + 1] - 1;
  rect.ylo = rowLo_[r];
  rect.yhi = rowLo_[r + 1] - 1;
  return rect;  // empty when the partition is degenerate
}

GCellRect TileGrid::haloedRect(int tile) const {
  GCellRect rect = tileRect(tile);
  rect.expand(halo_, countX_ - 1, countY_ - 1);
  return rect;
}

int TileGrid::tileAt(int x, int y) const {
  x = std::clamp(x, 0, countX_ - 1);
  y = std::clamp(y, 0, countY_ - 1);
  // Last boundary <= coordinate.  With empty tiles the boundary list
  // has repeated values; picking the *last* match selects the
  // non-empty tile that actually owns the gcell.
  const auto colIt =
      std::upper_bound(colLo_.begin(), colLo_.begin() + cols_, x);
  const auto rowIt =
      std::upper_bound(rowLo_.begin(), rowLo_.begin() + rows_, y);
  const int c = static_cast<int>(colIt - colLo_.begin()) - 1;
  const int r = static_cast<int>(rowIt - rowLo_.begin()) - 1;
  return r * cols_ + c;
}

int TileGrid::assign(const GCellRect& conflictRect) const {
  if (conflictRect.empty()) return -1;
  const int cx = (conflictRect.xlo + conflictRect.xhi) / 2;
  const int cy = (conflictRect.ylo + conflictRect.yhi) / 2;
  const int tile = tileAt(cx, cy);
  return haloedRect(tile).contains(conflictRect) ? tile : -1;
}

TileDemandView::TileDemandView(int numLayers, int tile,
                               const GCellRect& coverage)
    : numLayers_(numLayers), tile_(tile), coverage_(coverage) {}

void TileDemandView::ensureStorage() {
  if (!wireDelta_.empty() || coverage_.empty()) return;
  const std::size_t cells =
      static_cast<std::size_t>(coverage_.width()) * coverage_.height();
  wireDelta_.assign(static_cast<std::size_t>(numLayers_) * cells, 0.0);
  viaDelta_.assign(
      static_cast<std::size_t>(std::max(0, numLayers_ - 1)) * cells, 0.0);
  viaCountDelta_.assign(static_cast<std::size_t>(numLayers_) * cells, 0);
}

void TileDemandView::applyRouteLocal(const NetRoute& route, int sign) {
  ensureStorage();
  // Mirror of RoutingGraph::applyRoute over the local slots.  The
  // wire/via scalar totals are NOT tracked here — mergeInto replays
  // the ops through the graph, which owns them.
  for (const RouteSegment& rawSeg : route.segments) {
    const RouteSegment seg = normalized(rawSeg);
    if (seg.isVia()) {
      if (coverage_.contains(seg.a.x, seg.a.y)) {
        for (int l = seg.a.layer; l < seg.b.layer; ++l) {
          viaDelta_[slot(l, seg.a.x, seg.a.y)] += sign;
        }
        for (int l = seg.a.layer; l <= seg.b.layer; ++l) {
          viaCountDelta_[slot(l, seg.a.x, seg.a.y)] += sign;
        }
      }
    } else if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        if (coverage_.contains(x, seg.a.y)) {
          wireDelta_[slot(seg.a.layer, x, seg.a.y)] += sign;
        }
      }
    } else if (seg.a.y != seg.b.y) {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        if (coverage_.contains(seg.a.x, y)) {
          wireDelta_[slot(seg.a.layer, seg.a.x, y)] += sign;
        }
      }
    }
  }
  PendingOp op;
  op.route.net = route.net;
  op.route.segments = route.segments;
  op.route.routed = true;
  op.sign = sign;
  pending_.push_back(std::move(op));
}

double TileDemandView::wireDelta(const WireEdge& e) const {
  if (wireDelta_.empty() || !coverage_.contains(e.x, e.y)) return 0.0;
  return wireDelta_[slot(e.layer, e.x, e.y)];
}

double TileDemandView::viaDelta(const ViaEdge& e) const {
  if (viaDelta_.empty() || !coverage_.contains(e.x, e.y)) return 0.0;
  return viaDelta_[slot(e.layer, e.x, e.y)];
}

int TileDemandView::viaCountDelta(const GPoint& p) const {
  if (viaCountDelta_.empty() || !coverage_.contains(p.x, p.y)) return 0;
  return viaCountDelta_[slot(p.layer, p.x, p.y)];
}

void TileDemandView::mergeInto(RoutingGraph& graph) {
  for (const PendingOp& op : pending_) {
    graph.applyRoute(op.route, op.sign);
    // Zero the local slots the op touched (assignment, not
    // subtraction: rip-up and commit of one net may share edges and a
    // slot must end at exactly 0 either way).
    for (const RouteSegment& rawSeg : op.route.segments) {
      const RouteSegment seg = normalized(rawSeg);
      if (seg.isVia()) {
        if (!coverage_.contains(seg.a.x, seg.a.y)) continue;
        for (int l = seg.a.layer; l < seg.b.layer; ++l) {
          viaDelta_[slot(l, seg.a.x, seg.a.y)] = 0.0;
        }
        for (int l = seg.a.layer; l <= seg.b.layer; ++l) {
          viaCountDelta_[slot(l, seg.a.x, seg.a.y)] = 0;
        }
      } else if (seg.a.x != seg.b.x) {
        for (int x = seg.a.x; x < seg.b.x; ++x) {
          if (coverage_.contains(x, seg.a.y)) {
            wireDelta_[slot(seg.a.layer, x, seg.a.y)] = 0.0;
          }
        }
      } else if (seg.a.y != seg.b.y) {
        for (int y = seg.a.y; y < seg.b.y; ++y) {
          if (coverage_.contains(seg.a.x, y)) {
            wireDelta_[slot(seg.a.layer, seg.a.x, y)] = 0.0;
          }
        }
      }
    }
  }
  pending_.clear();
}

}  // namespace crp::groute
