#include "groute/route.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace crp::groute {

RouteSegment normalized(const RouteSegment& seg) {
  if (seg.b < seg.a) return RouteSegment{seg.b, seg.a};
  return seg;
}

namespace {

/// Expands a segment into the ordered list of graph nodes it covers.
std::vector<GPoint> segmentPoints(const RouteSegment& seg) {
  std::vector<GPoint> points;
  const RouteSegment s = normalized(seg);
  if (s.isVia()) {
    for (int l = s.a.layer; l <= s.b.layer; ++l) {
      points.push_back(GPoint{l, s.a.x, s.a.y});
    }
  } else if (s.a.x != s.b.x) {
    for (int x = s.a.x; x <= s.b.x; ++x) {
      points.push_back(GPoint{s.a.layer, x, s.a.y});
    }
  } else {
    for (int y = s.a.y; y <= s.b.y; ++y) {
      points.push_back(GPoint{s.a.layer, s.a.x, y});
    }
  }
  return points;
}

}  // namespace

bool routeConnectsTerminals(const NetRoute& route,
                            const std::vector<GPoint>& terminals) {
  if (terminals.empty()) return true;
  if (terminals.size() == 1) return true;
  if (route.segments.empty()) return false;

  // Union-find over every node touched by any segment.
  std::map<GPoint, int> indexOf;
  auto idOf = [&indexOf](const GPoint& p) {
    return indexOf.emplace(p, static_cast<int>(indexOf.size())).first->second;
  };
  std::vector<std::pair<int, int>> links;
  for (const RouteSegment& seg : route.segments) {
    const auto points = segmentPoints(seg);
    for (std::size_t i = 1; i < points.size(); ++i) {
      links.emplace_back(idOf(points[i - 1]), idOf(points[i]));
    }
    if (points.size() == 1) idOf(points[0]);
  }
  std::vector<int> parent(indexOf.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : links) parent[find(a)] = find(b);

  // Terminals connect through their (x, y) column: a terminal is
  // reached when any routed node shares its column.  All terminals
  // must land in one component.
  int rootComponent = -1;
  for (const GPoint& t : terminals) {
    int comp = -1;
    for (const auto& [p, idx] : indexOf) {
      if (p.x == t.x && p.y == t.y) {
        comp = find(idx);
        break;
      }
    }
    if (comp < 0) return false;  // column untouched: open net
    if (rootComponent < 0) {
      rootComponent = comp;
    } else if (comp != rootComponent) {
      return false;
    }
  }
  return true;
}

int routeWireHops(const NetRoute& route) {
  int hops = 0;
  for (const RouteSegment& seg : route.segments) {
    if (!seg.isVia()) {
      hops += std::abs(seg.a.x - seg.b.x) + std::abs(seg.a.y - seg.b.y);
    }
  }
  return hops;
}

int routeViaHops(const NetRoute& route) {
  int hops = 0;
  for (const RouteSegment& seg : route.segments) {
    if (seg.isVia()) hops += std::abs(seg.a.layer - seg.b.layer);
  }
  return hops;
}

}  // namespace crp::groute
