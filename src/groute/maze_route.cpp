#include "groute/maze_route.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace crp::groute {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SearchBox {
  int xlo, ylo, xhi, yhi;  // inclusive gcell bounds
  int width() const { return xhi - xlo + 1; }
  int height() const { return yhi - ylo + 1; }
};

}  // namespace

PatternResult MazeRouter::routeTree(
    const std::vector<GPoint>& terminals) const {
  PatternResult result;
  if (terminals.size() <= 1) {
    result.ok = true;
    return result;
  }

  // Search box around all terminals.
  SearchBox box{terminals[0].x, terminals[0].y, terminals[0].x,
                terminals[0].y};
  for (const GPoint& t : terminals) {
    box.xlo = std::min(box.xlo, t.x);
    box.ylo = std::min(box.ylo, t.y);
    box.xhi = std::max(box.xhi, t.x);
    box.yhi = std::max(box.yhi, t.y);
  }
  box.xlo = std::max(0, box.xlo - boxMargin_);
  box.ylo = std::max(0, box.ylo - boxMargin_);
  box.xhi = std::min(graph_.grid().countX() - 1, box.xhi + boxMargin_);
  box.yhi = std::min(graph_.grid().countY() - 1, box.yhi + boxMargin_);

  const int bw = box.width();
  const int bh = box.height();
  const int numLayers = graph_.numLayers();
  const std::size_t numNodes =
      static_cast<std::size_t>(numLayers) * bw * bh;

  auto indexOf = [&](const GPoint& p) {
    return (static_cast<std::size_t>(p.layer) * bh + (p.y - box.ylo)) * bw +
           (p.x - box.xlo);
  };
  auto inBox = [&](int x, int y) {
    return x >= box.xlo && x <= box.xhi && y >= box.ylo && y <= box.yhi;
  };

  std::vector<double> dist(numNodes, kInf);
  std::vector<int> parent(numNodes, -1);  // packed predecessor index
  std::vector<GPoint> nodeOf(numNodes);
  for (int l = 0; l < numLayers; ++l) {
    for (int y = box.ylo; y <= box.yhi; ++y) {
      for (int x = box.xlo; x <= box.xhi; ++x) {
        nodeOf[indexOf(GPoint{l, x, y})] = GPoint{l, x, y};
      }
    }
  }

  using QueueEntry = std::pair<double, std::size_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<>> queue;

  // Tree node set (source of each wave).
  std::vector<std::size_t> treeNodes;
  auto seed = [&](std::size_t idx, double cost) {
    if (cost < dist[idx]) {
      dist[idx] = cost;
      queue.push({cost, idx});
    }
  };

  // Order sinks by Manhattan proximity to the first terminal to keep
  // waves short.
  std::vector<GPoint> sinks(terminals.begin() + 1, terminals.end());
  std::sort(sinks.begin(), sinks.end(), [&](const GPoint& a, const GPoint& b) {
    const int da = std::abs(a.x - terminals[0].x) +
                   std::abs(a.y - terminals[0].y);
    const int db = std::abs(b.x - terminals[0].x) +
                   std::abs(b.y - terminals[0].y);
    return da < db;
  });

  treeNodes.push_back(indexOf(terminals[0]));

  std::vector<RouteSegment> unitSegments;

  for (const GPoint& sink : sinks) {
    // Reset wave state.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(parent.begin(), parent.end(), -1);
    while (!queue.empty()) queue.pop();
    for (const std::size_t idx : treeNodes) seed(idx, 0.0);

    const std::size_t target = indexOf(sink);
    bool reached = false;
    while (!queue.empty()) {
      const auto [d, idx] = queue.top();
      queue.pop();
      if (d > dist[idx]) continue;
      if (idx == target) {
        reached = true;
        break;
      }
      const GPoint p = nodeOf[idx];
      // Wire moves along the layer's preferred direction.
      const bool horizontal =
          graph_.layerDir(p.layer) == db::LayerDir::kHorizontal;
      const int dx = horizontal ? 1 : 0;
      const int dy = horizontal ? 0 : 1;
      for (const int sign : {-1, 1}) {
        const int nxp = p.x + sign * dx;
        const int nyp = p.y + sign * dy;
        if (!inBox(nxp, nyp)) continue;
        const WireEdge edge = horizontal
                                  ? WireEdge{p.layer, std::min(p.x, nxp), p.y}
                                  : WireEdge{p.layer, p.x, std::min(p.y, nyp)};
        if (!graph_.validWireEdge(edge)) continue;
        const double nd = d + graph_.wireEdgeCost(edge);
        const std::size_t nidx = indexOf(GPoint{p.layer, nxp, nyp});
        if (nd < dist[nidx]) {
          dist[nidx] = nd;
          parent[nidx] = static_cast<int>(idx);
          queue.push({nd, nidx});
        }
      }
      // Via moves.
      for (const int sign : {-1, 1}) {
        const int nl = p.layer + sign;
        if (nl < 0 || nl >= numLayers) continue;
        const ViaEdge edge{std::min(p.layer, nl), p.x, p.y};
        const double nd = d + graph_.viaEdgeCost(edge);
        const std::size_t nidx = indexOf(GPoint{nl, p.x, p.y});
        if (nd < dist[nidx]) {
          dist[nidx] = nd;
          parent[nidx] = static_cast<int>(idx);
          queue.push({nd, nidx});
        }
      }
    }
    if (!reached) return PatternResult{};

    result.cost += dist[target];

    // Backtrack, collecting unit segments and enlarging the tree.
    std::size_t cursor = target;
    while (parent[cursor] >= 0) {
      const std::size_t prev = static_cast<std::size_t>(parent[cursor]);
      unitSegments.push_back(RouteSegment{nodeOf[prev], nodeOf[cursor]});
      treeNodes.push_back(cursor);
      cursor = prev;
    }
    treeNodes.push_back(cursor);
  }

  // Merge collinear unit segments to keep routes compact.
  std::vector<RouteSegment> merged;
  for (RouteSegment seg : unitSegments) {
    seg = normalized(seg);
    bool fused = false;
    if (!merged.empty()) {
      RouteSegment& last = merged.back();
      const bool bothVia = last.isVia() && seg.isVia();
      const bool bothWire = !last.isVia() && !seg.isVia() &&
                            last.a.layer == seg.a.layer;
      if (bothVia && last.a.x == seg.a.x && last.a.y == seg.a.y) {
        if (last.b.layer == seg.a.layer) {
          last.b = seg.b;
          fused = true;
        } else if (seg.b.layer == last.a.layer) {
          last.a = seg.a;
          fused = true;
        }
      } else if (bothWire) {
        const bool sameRow = last.a.y == seg.a.y && last.b.y == seg.b.y &&
                             seg.a.y == seg.b.y && last.a.y == last.b.y;
        const bool sameCol = last.a.x == seg.a.x && last.b.x == seg.b.x &&
                             seg.a.x == seg.b.x && last.a.x == last.b.x;
        if (sameRow && last.b.x == seg.a.x) {
          last.b = seg.b;
          fused = true;
        } else if (sameCol && last.b.y == seg.a.y) {
          last.b = seg.b;
          fused = true;
        }
      }
    }
    if (!fused) merged.push_back(seg);
  }
  result.segments = std::move(merged);
  result.ok = true;
  return result;
}

}  // namespace crp::groute
