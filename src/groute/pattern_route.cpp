#include "groute/pattern_route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>

namespace crp::groute {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t mixLeg(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}
}

std::size_t PatternRouter::Scratch::TwoPinLegHash::operator()(
    const TwoPinLeg& leg) const {
  std::uint64_t h = mixLeg(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(leg.a.x)) << 32) |
      static_cast<std::uint32_t>(leg.a.y));
  h = mixLeg(h ^ static_cast<std::uint32_t>(leg.a.layer));
  h = mixLeg(
      h ^
      ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(leg.b.x)) << 32) |
       static_cast<std::uint32_t>(leg.b.y)));
  h = mixLeg(h ^ static_cast<std::uint32_t>(leg.b.layer));
  return static_cast<std::size_t>(h);
}

void PatternRouter::buildCandidatePaths(int ax, int ay, int bx, int by,
                                        Scratch& s) const {
  s.numPaths = 0;
  auto addPath = [&](std::initializer_list<Run> runs) {
    if (s.numPaths == s.paths.size()) s.paths.emplace_back();
    s.paths[s.numPaths++].assign(runs.begin(), runs.end());
  };
  if (ax == bx && ay == by) {
    return;  // same column; pure via connection
  }
  if (ay == by || ax == bx) {
    addPath({Run{ax, ay, bx, by}});
    return;
  }
  // L-shapes.
  addPath({Run{ax, ay, bx, ay}, Run{bx, ay, bx, by}});  // H then V
  addPath({Run{ax, ay, ax, by}, Run{ax, by, bx, by}});  // V then H
  // Z-shapes: intermediate bend coordinates, sampled evenly when the
  // span is wide to bound enumeration cost.
  auto sampled = [&](int lo, int hi) -> const std::vector<int>& {
    auto& picks = s.picks;
    picks.clear();
    const int span = std::abs(hi - lo) - 1;
    if (span <= 0) return picks;
    const int count = std::min(span, maxZCandidates_);
    for (int i = 1; i <= count; ++i) {
      const int offset = span * i / (count + 1) + 1;
      picks.push_back(lo < hi ? lo + offset : lo - offset);
    }
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    return picks;
  };
  for (const int mx : sampled(ax, bx)) {
    addPath({Run{ax, ay, mx, ay}, Run{mx, ay, mx, by},
             Run{mx, by, bx, by}});
  }
  for (const int my : sampled(ay, by)) {
    addPath({Run{ax, ay, ax, my}, Run{ax, my, bx, my},
             Run{bx, my, bx, by}});
  }
}

double PatternRouter::runCost(const Run& run, int layer) const {
  const bool horizontal = run.horizontal();
  if ((graph_.layerDir(layer) == db::LayerDir::kHorizontal) != horizontal) {
    return kInf;
  }
  double cost = 0.0;
  if (horizontal) {
    const int lo = std::min(run.x0, run.x1);
    const int hi = std::max(run.x0, run.x1);
    for (int x = lo; x < hi; ++x) {
      cost += graph_.wireEdgeCost(WireEdge{layer, x, run.y0});
    }
  } else {
    const int lo = std::min(run.y0, run.y1);
    const int hi = std::max(run.y0, run.y1);
    for (int y = lo; y < hi; ++y) {
      cost += graph_.wireEdgeCost(WireEdge{layer, run.x0, y});
    }
  }
  return cost;
}

double PatternRouter::viaStackCost(int x, int y, int lo, int hi) const {
  if (lo > hi) std::swap(lo, hi);
  double cost = 0.0;
  for (int l = lo; l < hi; ++l) {
    cost += graph_.viaEdgeCost(ViaEdge{l, x, y});
  }
  return cost;
}

bool PatternRouter::assignLayers(const std::vector<Run>& runs, int startLayer,
                                 int endLayer, double& cost,
                                 std::vector<int>& layers,
                                 Scratch& s) const {
  const int numLayers = graph_.numLayers();
  const int numRuns = static_cast<int>(runs.size());
  // dp[i*numLayers + l]: best cost of runs[0..i] with run i on layer l.
  s.dp.assign(static_cast<std::size_t>(numRuns) * numLayers, kInf);
  s.parent.assign(static_cast<std::size_t>(numRuns) * numLayers, -1);
  auto dp = [&](int i, int l) -> double& {
    return s.dp[static_cast<std::size_t>(i) * numLayers + l];
  };
  auto parent = [&](int i, int l) -> int& {
    return s.parent[static_cast<std::size_t>(i) * numLayers + l];
  };

  for (int l = 0; l < numLayers; ++l) {
    const double wire = runCost(runs[0], l);
    if (wire == kInf) continue;
    const double access =
        viaStackCost(runs[0].x0, runs[0].y0, startLayer, l);
    dp(0, l) = wire + access;
  }
  for (int i = 1; i < numRuns; ++i) {
    for (int l = 0; l < numLayers; ++l) {
      const double wire = runCost(runs[i], l);
      if (wire == kInf) continue;
      for (int pl = 0; pl < numLayers; ++pl) {
        if (dp(i - 1, pl) == kInf) continue;
        // Bend at the shared gcell (start of run i).
        const double bend = viaStackCost(runs[i].x0, runs[i].y0, pl, l);
        const double total = dp(i - 1, pl) + bend + wire;
        if (total < dp(i, l)) {
          dp(i, l) = total;
          parent(i, l) = pl;
        }
      }
    }
  }

  double best = kInf;
  int bestLayer = -1;
  for (int l = 0; l < numLayers; ++l) {
    if (dp(numRuns - 1, l) == kInf) continue;
    const double total =
        dp(numRuns - 1, l) +
        viaStackCost(runs.back().x1, runs.back().y1, l, endLayer);
    if (total < best) {
      best = total;
      bestLayer = l;
    }
  }
  if (bestLayer < 0) return false;

  layers.assign(numRuns, 0);
  int l = bestLayer;
  for (int i = numRuns - 1; i >= 0; --i) {
    layers[i] = l;
    l = parent(i, l) >= 0 ? parent(i, l) : l;
  }
  cost = best;
  return true;
}

double PatternRouter::routeTwoPinInto(const GPoint& a, const GPoint& b,
                                      Scratch& s,
                                      std::vector<RouteSegment>& out,
                                      bool& ok) const {
  ok = true;
  if (a.x == b.x && a.y == b.y) {
    // Same column: pure via stack.
    if (a.layer != b.layer) {
      out.push_back(RouteSegment{a, b});
    }
    return viaStackCost(a.x, a.y, a.layer, b.layer);
  }

  buildCandidatePaths(a.x, a.y, b.x, b.y, s);
  double bestCost = kInf;
  s.bestRuns.clear();
  for (std::size_t k = 0; k < s.numPaths; ++k) {
    const std::vector<Run>& runs = s.paths[k];
    double cost = 0.0;
    if (assignLayers(runs, a.layer, b.layer, cost, s.layers, s) &&
        cost < bestCost) {
      bestCost = cost;
      s.bestRuns.assign(runs.begin(), runs.end());
      s.bestLayers.assign(s.layers.begin(), s.layers.end());
    }
  }
  if (s.bestRuns.empty()) {
    ok = false;
    return 0.0;
  }

  // Emit wire segments plus connecting via stacks.
  int prevLayer = a.layer;
  for (std::size_t i = 0; i < s.bestRuns.size(); ++i) {
    const Run& run = s.bestRuns[i];
    const int layer = s.bestLayers[i];
    if (layer != prevLayer) {
      out.push_back(RouteSegment{GPoint{prevLayer, run.x0, run.y0},
                                 GPoint{layer, run.x0, run.y0}});
    }
    out.push_back(RouteSegment{GPoint{layer, run.x0, run.y0},
                               GPoint{layer, run.x1, run.y1}});
    prevLayer = layer;
  }
  if (prevLayer != b.layer) {
    out.push_back(RouteSegment{GPoint{prevLayer, b.x, b.y},
                               GPoint{b.layer, b.x, b.y}});
  }
  return bestCost;
}

PatternResult PatternRouter::routeTwoPin(const GPoint& a,
                                         const GPoint& b) const {
  Scratch scratch;
  PatternResult result;
  bool ok = false;
  const double cost = routeTwoPinInto(a, b, scratch, result.segments, ok);
  if (!ok) {
    result.segments.clear();
    return result;
  }
  result.ok = true;
  result.cost = cost;
  return result;
}

bool PatternRouter::routeTreeInto(const std::vector<GPoint>& terminals,
                                  Scratch& s, double& cost) const {
  cost = 0.0;
  s.segments.clear();
  if (terminals.size() <= 1) return true;

  // Steiner topology over gcell coordinates.
  s.pins.clear();
  for (const GPoint& t : terminals) {
    s.pins.push_back(geom::Point{t.x, t.y});
  }
  rsmt::buildSteinerTree(s.pins, s.tree, s.rsmt);
  const rsmt::SteinerTree& tree = s.tree;

  // Terminal layer lookup by column (min pin layer per column); Steiner
  // nodes access at the lowest routing layer above metal1 (cheap
  // default, refined by the via-merge pass below).
  s.pinLayer.clear();
  for (const GPoint& t : terminals) {
    s.pinLayer.push_back({{t.x, t.y}, t.layer});
  }
  std::sort(s.pinLayer.begin(), s.pinLayer.end());
  s.pinLayer.erase(
      std::unique(s.pinLayer.begin(), s.pinLayer.end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      s.pinLayer.end());
  auto accessLayer = [&](const geom::Point& node) {
    const std::pair<int, int> key{static_cast<int>(node.x),
                                  static_cast<int>(node.y)};
    const auto it = std::lower_bound(
        s.pinLayer.begin(), s.pinLayer.end(), key,
        [](const auto& entry, const std::pair<int, int>& k) {
          return entry.first < k;
        });
    if (it != s.pinLayer.end() && it->first == key) return it->second;
    return std::min(1, graph_.numLayers() - 1);
  };

  // Track the layer span touched at every tree-node column so the
  // merge pass can stitch components with via stacks.
  s.touches.clear();
  auto touch = [&](int x, int y, int layer) {
    s.touches.push_back(Scratch::ColumnTouch{x, y, layer, layer});
  };

  for (const auto& [ia, ib] : tree.edges) {
    const geom::Point pa = tree.nodes[ia];
    const geom::Point pb = tree.nodes[ib];
    const GPoint a{accessLayer(pa), static_cast<int>(pa.x),
                   static_cast<int>(pa.y)};
    const GPoint b{accessLayer(pb), static_cast<int>(pb.x),
                   static_cast<int>(pb.y)};
    bool ok = false;
    if (s.useTwoPinMemo) {
      // Replay memoized legs verbatim (cost and segments) so the
      // via-merge pass below sees the exact segment stream the live
      // route would have produced.
      const auto [it, inserted] =
          s.twoPinMemo.try_emplace(Scratch::TwoPinLeg{a, b});
      if (inserted) {
        s.legSegments.clear();
        it->second.cost = routeTwoPinInto(a, b, s, s.legSegments, ok);
        it->second.ok = ok;
        it->second.segments = s.legSegments;
      }
      if (!it->second.ok) return false;
      cost += it->second.cost;
      s.segments.insert(s.segments.end(), it->second.segments.begin(),
                        it->second.segments.end());
    } else {
      cost += routeTwoPinInto(a, b, s, s.segments, ok);
      if (!ok) return false;
    }
    touch(a.x, a.y, a.layer);
    touch(b.x, b.y, b.layer);
  }

  // Terminals sharing a column with different pin layers need a stack.
  for (const GPoint& t : terminals) touch(t.x, t.y, t.layer);
  for (const RouteSegment& seg : s.segments) {
    touch(seg.a.x, seg.a.y, seg.a.layer);
    touch(seg.b.x, seg.b.y, seg.b.layer);
  }

  // Merge touches into per-column spans, ascending column order.
  std::sort(s.touches.begin(), s.touches.end(),
            [](const Scratch::ColumnTouch& a, const Scratch::ColumnTouch& b) {
              return std::tie(a.x, a.y, a.lo) < std::tie(b.x, b.y, b.lo);
            });
  std::size_t spanCount = 0;
  for (std::size_t i = 0; i < s.touches.size(); ++i) {
    if (spanCount > 0 && s.touches[spanCount - 1].x == s.touches[i].x &&
        s.touches[spanCount - 1].y == s.touches[i].y) {
      s.touches[spanCount - 1].lo =
          std::min(s.touches[spanCount - 1].lo, s.touches[i].lo);
      s.touches[spanCount - 1].hi =
          std::max(s.touches[spanCount - 1].hi, s.touches[i].hi);
    } else {
      s.touches[spanCount++] = s.touches[i];
    }
  }

  for (std::size_t k = 0; k < spanCount; ++k) {
    const Scratch::ColumnTouch& span = s.touches[k];
    // Only stitch at columns that are tree nodes or terminals (segment
    // interiors never change layer).
    if (span.lo == span.hi) continue;
    bool isNode = false;
    for (const geom::Point& node : tree.nodes) {
      if (node.x == span.x && node.y == span.y) {
        isNode = true;
        break;
      }
    }
    if (!isNode) continue;
    // A via stack across the span guarantees connectivity; avoid
    // duplicating stacks already emitted by two-pin legs.
    const RouteSegment stack{GPoint{span.lo, span.x, span.y},
                             GPoint{span.hi, span.x, span.y}};
    bool covered = false;
    for (const RouteSegment& seg : s.segments) {
      if (seg.isVia() && seg.a.x == stack.a.x && seg.a.y == stack.a.y) {
        const int lo = std::min(seg.a.layer, seg.b.layer);
        const int hi = std::max(seg.a.layer, seg.b.layer);
        if (lo <= span.lo && hi >= span.hi) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) {
      s.segments.push_back(stack);
      cost += viaStackCost(span.x, span.y, span.lo, span.hi);
    }
  }
  return true;
}

PatternResult PatternRouter::routeTree(
    const std::vector<GPoint>& terminals) const {
  Scratch scratch;
  return routeTree(terminals, scratch);
}

PatternResult PatternRouter::routeTree(const std::vector<GPoint>& terminals,
                                       Scratch& scratch) const {
  PatternResult result;
  double cost = 0.0;
  if (!routeTreeInto(terminals, scratch, cost)) return result;
  result.ok = true;
  result.cost = cost;
  result.segments.assign(scratch.segments.begin(), scratch.segments.end());
  return result;
}

double PatternRouter::priceTree(const std::vector<GPoint>& terminals) const {
  Scratch scratch;
  return priceTree(terminals, scratch);
}

double PatternRouter::priceTree(const std::vector<GPoint>& terminals,
                                Scratch& scratch) const {
  double cost = 0.0;
  // An unroutable tree (every candidate path crosses a hard-blocked
  // edge) must price as prohibitively expensive, never as free: the
  // selection ILP consumes these prices as finite objective
  // coefficients, so return a huge sentinel instead of infinity.
  if (!routeTreeInto(terminals, scratch, cost)) return kUnroutablePrice;
  return cost;
}

}  // namespace crp::groute
