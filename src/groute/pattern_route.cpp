#include "groute/pattern_route.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "rsmt/steiner.hpp"

namespace crp::groute {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<std::vector<PatternRouter::Run>> PatternRouter::candidatePaths(
    int ax, int ay, int bx, int by) const {
  std::vector<std::vector<Run>> paths;
  if (ax == bx && ay == by) {
    return paths;  // same column; pure via connection
  }
  if (ay == by) {
    paths.push_back({Run{ax, ay, bx, by}});
  } else if (ax == bx) {
    paths.push_back({Run{ax, ay, bx, by}});
  } else {
    // L-shapes.
    paths.push_back({Run{ax, ay, bx, ay}, Run{bx, ay, bx, by}});  // H then V
    paths.push_back({Run{ax, ay, ax, by}, Run{ax, by, bx, by}});  // V then H
    // Z-shapes: intermediate bend coordinates, sampled evenly when the
    // span is wide to bound enumeration cost.
    auto sampled = [&](int lo, int hi) {
      std::vector<int> picks;
      const int span = std::abs(hi - lo) - 1;
      if (span <= 0) return picks;
      const int count = std::min(span, maxZCandidates_);
      for (int i = 1; i <= count; ++i) {
        const int offset = span * i / (count + 1) + 1;
        picks.push_back(lo < hi ? lo + offset : lo - offset);
      }
      std::sort(picks.begin(), picks.end());
      picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
      return picks;
    };
    for (const int mx : sampled(ax, bx)) {
      paths.push_back({Run{ax, ay, mx, ay}, Run{mx, ay, mx, by},
                       Run{mx, by, bx, by}});
    }
    for (const int my : sampled(ay, by)) {
      paths.push_back({Run{ax, ay, ax, my}, Run{ax, my, bx, my},
                       Run{bx, my, bx, by}});
    }
  }
  return paths;
}

double PatternRouter::runCost(const Run& run, int layer) const {
  const bool horizontal = run.horizontal();
  if ((graph_.layerDir(layer) == db::LayerDir::kHorizontal) != horizontal) {
    return kInf;
  }
  double cost = 0.0;
  if (horizontal) {
    const int lo = std::min(run.x0, run.x1);
    const int hi = std::max(run.x0, run.x1);
    for (int x = lo; x < hi; ++x) {
      cost += graph_.wireEdgeCost(WireEdge{layer, x, run.y0});
    }
  } else {
    const int lo = std::min(run.y0, run.y1);
    const int hi = std::max(run.y0, run.y1);
    for (int y = lo; y < hi; ++y) {
      cost += graph_.wireEdgeCost(WireEdge{layer, run.x0, y});
    }
  }
  return cost;
}

double PatternRouter::viaStackCost(int x, int y, int lo, int hi) const {
  if (lo > hi) std::swap(lo, hi);
  double cost = 0.0;
  for (int l = lo; l < hi; ++l) {
    cost += graph_.viaEdgeCost(ViaEdge{l, x, y});
  }
  return cost;
}

bool PatternRouter::assignLayers(const std::vector<Run>& runs, int startLayer,
                                 int endLayer, double& cost,
                                 std::vector<int>& layers) const {
  const int numLayers = graph_.numLayers();
  const int numRuns = static_cast<int>(runs.size());
  // dp[i][l]: best cost of placing runs[0..i] with run i on layer l.
  std::vector<std::vector<double>> dp(
      numRuns, std::vector<double>(numLayers, kInf));
  std::vector<std::vector<int>> parent(numRuns,
                                       std::vector<int>(numLayers, -1));

  for (int l = 0; l < numLayers; ++l) {
    const double wire = runCost(runs[0], l);
    if (wire == kInf) continue;
    const double access =
        viaStackCost(runs[0].x0, runs[0].y0, startLayer, l);
    dp[0][l] = wire + access;
  }
  for (int i = 1; i < numRuns; ++i) {
    for (int l = 0; l < numLayers; ++l) {
      const double wire = runCost(runs[i], l);
      if (wire == kInf) continue;
      for (int pl = 0; pl < numLayers; ++pl) {
        if (dp[i - 1][pl] == kInf) continue;
        // Bend at the shared gcell (start of run i).
        const double bend = viaStackCost(runs[i].x0, runs[i].y0, pl, l);
        const double total = dp[i - 1][pl] + bend + wire;
        if (total < dp[i][l]) {
          dp[i][l] = total;
          parent[i][l] = pl;
        }
      }
    }
  }

  double best = kInf;
  int bestLayer = -1;
  for (int l = 0; l < numLayers; ++l) {
    if (dp[numRuns - 1][l] == kInf) continue;
    const double total =
        dp[numRuns - 1][l] +
        viaStackCost(runs.back().x1, runs.back().y1, l, endLayer);
    if (total < best) {
      best = total;
      bestLayer = l;
    }
  }
  if (bestLayer < 0) return false;

  layers.assign(numRuns, 0);
  int l = bestLayer;
  for (int i = numRuns - 1; i >= 0; --i) {
    layers[i] = l;
    l = parent[i][l] >= 0 ? parent[i][l] : l;
  }
  cost = best;
  return true;
}

PatternResult PatternRouter::routeTwoPin(const GPoint& a,
                                         const GPoint& b) const {
  PatternResult result;
  if (a.x == b.x && a.y == b.y) {
    // Same column: pure via stack.
    result.ok = true;
    result.cost = viaStackCost(a.x, a.y, a.layer, b.layer);
    if (a.layer != b.layer) {
      result.segments.push_back(RouteSegment{a, b});
    }
    return result;
  }

  double bestCost = kInf;
  std::vector<Run> bestRuns;
  std::vector<int> bestLayers;
  for (const auto& runs : candidatePaths(a.x, a.y, b.x, b.y)) {
    double cost = 0.0;
    std::vector<int> layers;
    if (assignLayers(runs, a.layer, b.layer, cost, layers) &&
        cost < bestCost) {
      bestCost = cost;
      bestRuns = runs;
      bestLayers = std::move(layers);
    }
  }
  if (bestRuns.empty()) return result;

  result.ok = true;
  result.cost = bestCost;
  // Emit wire segments plus connecting via stacks.
  int prevLayer = a.layer;
  for (std::size_t i = 0; i < bestRuns.size(); ++i) {
    const Run& run = bestRuns[i];
    const int layer = bestLayers[i];
    if (layer != prevLayer) {
      result.segments.push_back(
          RouteSegment{GPoint{prevLayer, run.x0, run.y0},
                       GPoint{layer, run.x0, run.y0}});
    }
    result.segments.push_back(RouteSegment{GPoint{layer, run.x0, run.y0},
                                           GPoint{layer, run.x1, run.y1}});
    prevLayer = layer;
  }
  if (prevLayer != b.layer) {
    result.segments.push_back(RouteSegment{GPoint{prevLayer, b.x, b.y},
                                           GPoint{b.layer, b.x, b.y}});
  }
  return result;
}

PatternResult PatternRouter::routeTree(
    const std::vector<GPoint>& terminals) const {
  PatternResult result;
  if (terminals.size() <= 1) {
    result.ok = true;
    return result;
  }

  // Steiner topology over gcell coordinates.
  std::vector<geom::Point> pins;
  pins.reserve(terminals.size());
  for (const GPoint& t : terminals) {
    pins.push_back(geom::Point{t.x, t.y});
  }
  const rsmt::SteinerTree tree = rsmt::buildSteinerTree(pins);

  // Terminal layer lookup by column; Steiner nodes access at layer of
  // the lowest routing layer above metal1 (cheap default, refined by
  // the via-merge pass below).
  std::map<std::pair<int, int>, int> pinLayer;
  for (const GPoint& t : terminals) {
    auto [it, inserted] = pinLayer.try_emplace({t.x, t.y}, t.layer);
    if (!inserted) it->second = std::min(it->second, t.layer);
  }
  auto accessLayer = [&](const geom::Point& node) {
    const auto it = pinLayer.find({static_cast<int>(node.x),
                                   static_cast<int>(node.y)});
    if (it != pinLayer.end()) return it->second;
    return std::min(1, graph_.numLayers() - 1);
  };

  // Track the layer span touched at every tree-node column so the
  // merge pass can stitch components with via stacks.
  std::map<std::pair<int, int>, std::pair<int, int>> columnSpan;
  auto touch = [&](int x, int y, int layer) {
    auto [it, inserted] =
        columnSpan.try_emplace({x, y}, std::pair<int, int>{layer, layer});
    if (!inserted) {
      it->second.first = std::min(it->second.first, layer);
      it->second.second = std::max(it->second.second, layer);
    }
  };

  for (const auto& [ia, ib] : tree.edges) {
    const geom::Point pa = tree.nodes[ia];
    const geom::Point pb = tree.nodes[ib];
    const GPoint a{accessLayer(pa), static_cast<int>(pa.x),
                   static_cast<int>(pa.y)};
    const GPoint b{accessLayer(pb), static_cast<int>(pb.x),
                   static_cast<int>(pb.y)};
    PatternResult leg = routeTwoPin(a, b);
    if (!leg.ok) return PatternResult{};
    result.cost += leg.cost;
    for (const RouteSegment& seg : leg.segments) {
      result.segments.push_back(seg);
    }
    touch(a.x, a.y, a.layer);
    touch(b.x, b.y, b.layer);
  }

  // Terminals sharing a column with different pin layers need a stack.
  for (const GPoint& t : terminals) touch(t.x, t.y, t.layer);
  for (const RouteSegment& seg : result.segments) {
    touch(seg.a.x, seg.a.y, seg.a.layer);
    touch(seg.b.x, seg.b.y, seg.b.layer);
  }
  for (const auto& [xy, span] : columnSpan) {
    // Only stitch at columns that are tree nodes or terminals (segment
    // interiors never change layer).
    if (span.first == span.second) continue;
    bool isNode = false;
    for (const geom::Point& node : tree.nodes) {
      if (node.x == xy.first && node.y == xy.second) {
        isNode = true;
        break;
      }
    }
    if (!isNode) continue;
    // A via stack across the span guarantees connectivity; avoid
    // duplicating stacks already emitted by two-pin legs.
    const RouteSegment stack{GPoint{span.first, xy.first, xy.second},
                             GPoint{span.second, xy.first, xy.second}};
    bool covered = false;
    for (const RouteSegment& seg : result.segments) {
      if (seg.isVia() && seg.a.x == stack.a.x && seg.a.y == stack.a.y) {
        const int lo = std::min(seg.a.layer, seg.b.layer);
        const int hi = std::max(seg.a.layer, seg.b.layer);
        if (lo <= span.first && hi >= span.second) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) {
      result.segments.push_back(stack);
      result.cost += viaStackCost(xy.first, xy.second, span.first,
                                  span.second);
    }
  }

  result.ok = true;
  return result;
}

double PatternRouter::priceTree(const std::vector<GPoint>& terminals) const {
  return routeTree(terminals).cost;
}

}  // namespace crp::groute
