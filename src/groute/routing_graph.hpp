// The 3D GCell routing graph (paper §III): per-edge capacity C_e and
// demand D_e, via counts per node, and the cost model of §IV.A
// (Eq. 9 / Eq. 10).
//
// Note on Eq. 10's penalty: the paper prints
//     penalty(e) = 1 / (1 + exp(S * (D_e - C_e)))
// which *decreases* as demand exceeds capacity — a sign typo (the cited
// NTHU-Route penalty grows with congestion).  This implementation uses
// the intended logistic  1 / (1 + exp(-S * (D_e - C_e))), which is 0.5
// at D_e == C_e and approaches 1 under overflow, matching the paper's
// description that "increasing S causes faster overflow".
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "db/database.hpp"
#include "db/gcell_grid.hpp"
#include "groute/route.hpp"

namespace crp::groute {

class TileDemandView;

/// Cost-model parameters (paper values in DESIGN.md §5).
struct CostConfig {
  double beta = 1.5;      ///< via-demand weight in Eq. 9
  double slope = 1.0;     ///< S: logistic slope in Eq. 10
  /// Unit_e for wire edges per *pitch* of wire (contest wire weight:
  /// 0.5 per wire unit, where a wire unit is one routing pitch), so a
  /// via (2.0) trades off against 4 pitches of wire exactly as in the
  /// ISPD-2018 metric the paper quotes in §V.B.
  double wireUnit = 0.5;
  double viaUnit = 2.0;   ///< Unit_e for via edges (contest via weight)
  /// When false the logistic congestion penalty is dropped entirely
  /// (cost = Unit_e * Dist(e)); used by the ablation bench and by the
  /// baseline [18] re-implementation, whose cost has no congestion term.
  bool congestionPenalty = true;
};

/// Identifies a wire edge by its lower endpoint: on a horizontal layer
/// the edge goes (x,y)->(x+1,y); on a vertical layer (x,y)->(x,y+1).
struct WireEdge {
  int layer = 0;
  int x = 0;
  int y = 0;
};

/// Identifies a via edge between `layer` and `layer + 1` at (x, y).
struct ViaEdge {
  int layer = 0;
  int x = 0;
  int y = 0;
};

class RoutingGraph {
 public:
  /// Builds the graph from the database: computes per-edge track
  /// capacities from the design's track grids and charges fixed usage
  /// (U_f) from routing blockages and macro obstructions.
  RoutingGraph(const db::Database& db, CostConfig config = {});

  const db::GCellGrid& grid() const { return grid_; }
  int numLayers() const { return numLayers_; }
  const CostConfig& config() const { return config_; }
  void setConfig(const CostConfig& config) { config_ = config; }

  // ---- tile read overlay ---------------------------------------------------

  /// RAII installation of a tile demand view as this thread's read
  /// overlay: while in scope, the demand accessors below return the
  /// shared state plus the view's local deltas — exactly what the
  /// untiled path would read, since a tile-local net's own rip-up and
  /// the commits of earlier same-tile batch members live only in the
  /// view until the batch-boundary merge (docs/tiling.md).  Scopes are
  /// per-thread and non-nesting by construction (one tile group per
  /// work unit); reads of *other* graphs are unaffected.
  class OverlayScope {
   public:
    OverlayScope(const RoutingGraph& graph, const TileDemandView& view) {
      tlOverlayGraph_ = &graph;
      tlOverlayView_ = &view;
    }
    ~OverlayScope() {
      tlOverlayGraph_ = nullptr;
      tlOverlayView_ = nullptr;
    }
    OverlayScope(const OverlayScope&) = delete;
    OverlayScope& operator=(const OverlayScope&) = delete;
  };

  // ---- capacity / demand --------------------------------------------------

  double capacity(const WireEdge& e) const { return wireCap_[wireIndex(e)]; }
  double wireUsage(const WireEdge& e) const {
    double v = wireUse_[wireIndex(e)];
    if (tlOverlayGraph_ == this) v += overlayWireDelta(e);
    return v;
  }
  double fixedUsage(const WireEdge& e) const {
    return wireFixed_[wireIndex(e)];
  }
  int viaCount(const GPoint& node) const {
    int v = viaCount_[nodeIndex(node)];
    if (tlOverlayGraph_ == this) v += overlayViaCountDelta(node);
    return v;
  }
  double viaCapacity(const ViaEdge& e) const { return viaCap_[viaIndex(e)]; }
  double viaUsage(const ViaEdge& e) const {
    double v = viaUse_[viaIndex(e)];
    if (tlOverlayGraph_ == this) v += overlayViaDelta(e);
    return v;
  }

  /// Fraction of the edge's two adjacent gcells covered by obstructions
  /// of *fixed* cells (macro blocks).  1.0 means both gcells are fully
  /// inside macro metal on this layer.
  double blockedFraction(const WireEdge& e) const {
    return wireBlockedFrac_[wireIndex(e)];
  }

  /// True when the edge runs through the interior of a fixed macro's
  /// obstruction on its layer: both adjacent gcells fully covered.
  /// Hard-blocked edges cost infinity, so the pattern DP and the maze
  /// router never cross them — routes must detour around the macro or
  /// hop to an unobstructed layer.  Edges merely touching a macro
  /// boundary accumulate only 0.5 and stay soft (priced via U_f).
  bool hardBlocked(const WireEdge& e) const {
    return wireBlockedFrac_[wireIndex(e)] >= 0.999;
  }

  /// D_e per Eq. 9: U_w + U_f + beta * sqrt((V_src + V_dst) / 2).
  double demand(const WireEdge& e) const;

  /// Edge costs per Eq. 10.
  double wireEdgeCost(const WireEdge& e) const;
  double viaEdgeCost(const ViaEdge& e) const;

  /// Overflow of an edge: max(0, D_e - C_e).
  double overflow(const WireEdge& e) const;

  // ---- demand bookkeeping ---------------------------------------------------

  /// Adds (sign=+1) or removes (sign=-1) a route's demand.
  ///
  /// Concurrency contract (parallel RRR batching, DESIGN.md §6):
  /// concurrent applyRoute calls are safe iff the routes touch disjoint
  /// wire/via edges and gcell columns — per-edge demand entries are
  /// then distinct memory locations, and the scalar wire/via totals are
  /// relaxed atomics whose integer sums are order-independent, so the
  /// final state is bit-identical to any sequential interleaving.
  void applyRoute(const NetRoute& route, int sign);

  /// True when every wire edge the route crosses exists in the graph.
  bool routeInBounds(const NetRoute& route) const;

  // ---- aggregate statistics ---------------------------------------------------

  struct CongestionStats {
    double totalOverflow = 0.0;
    double maxOverflow = 0.0;
    int overflowedEdges = 0;
    int totalEdges = 0;
  };
  CongestionStats congestionStats() const;

  /// Sum over all nets of wire hops weighted by gcell distance — the
  /// global-route wirelength in DBU (tracked incrementally).
  geom::Coord totalWireDbu() const {
    return totalWireDbu_.load(std::memory_order_relaxed);
  }
  /// Total via edges in use (counted with multiplicity).
  long totalVias() const { return totalVias_.load(std::memory_order_relaxed); }

  // ---- geometry helpers ---------------------------------------------------

  bool validWireEdge(const WireEdge& e) const;
  bool validNode(const GPoint& p) const;
  db::LayerDir layerDir(int layer) const;

  /// Distance between gcell centers along an edge (Dist(e) of Eq. 10).
  geom::Coord wireEdgeDist(const WireEdge& e) const;

  /// Routing pitch used to convert Dist(e) from DBU to wire units.
  geom::Coord pitchUnit() const { return pitchUnit_; }

  /// Iteration support for stats/benches: edge counts per layer.
  int wireEdgeCountX(int layer) const;  ///< edges along x (H layers)
  int wireEdgeCountY(int layer) const;

  /// Flattened edge index helpers (exposed for the detailed router's
  /// guide expansion and for tests).
  std::size_t wireIndex(const WireEdge& e) const;
  std::size_t viaIndex(const ViaEdge& e) const;
  std::size_t nodeIndex(const GPoint& p) const;

 private:
  void buildCapacities(const db::Database& db);
  void chargeFixedUsage(const db::Database& db);

  // Out of line so this header does not depend on tile.hpp.
  double overlayWireDelta(const WireEdge& e) const;
  double overlayViaDelta(const ViaEdge& e) const;
  int overlayViaCountDelta(const GPoint& p) const;

  // The active tile overlay of the *current thread* (null almost
  // always).  Guarded by the graph identity so a thread routing for
  // one session never sees another graph's deltas.
  inline static thread_local const RoutingGraph* tlOverlayGraph_ = nullptr;
  inline static thread_local const TileDemandView* tlOverlayView_ = nullptr;

  db::GCellGrid grid_;
  int numLayers_ = 0;
  CostConfig config_;
  std::vector<db::LayerDir> dirs_;

  // Per-layer dense arrays, all indexed by the helpers above.
  std::vector<double> wireCap_;
  std::vector<double> wireUse_;
  std::vector<double> wireFixed_;
  std::vector<double> wireBlockedFrac_;  ///< fixed-macro coverage fraction
  std::vector<double> viaCap_;
  std::vector<double> viaUse_;
  std::vector<int> viaCount_;
  std::vector<std::size_t> wireLayerOffset_;  ///< offset per layer

  // Relaxed atomics: the only cross-thread shared scalars under the
  // conflict-free batch reroute (per-edge entries are disjoint there).
  std::atomic<geom::Coord> totalWireDbu_{0};
  std::atomic<long> totalVias_{0};
  geom::Coord pitchUnit_ = 1;
};

}  // namespace crp::groute
