#include "db/legality.hpp"

#include <algorithm>

namespace crp::db {

std::string PlacementViolation::describe(const Database& db) const {
  std::string name = cell == kInvalidId ? "?" : db.cell(cell).name;
  switch (kind) {
    case ViolationKind::kOutsideDie:
      return "cell " + name + " outside die";
    case ViolationKind::kOverlap:
      return "cells " + name + " and " +
             (other == kInvalidId ? "?" : db.cell(other).name) + " overlap";
    case ViolationKind::kOffSite:
      return "cell " + name + " not site-aligned";
    case ViolationKind::kOffRow:
      return "cell " + name + " not row-aligned";
    case ViolationKind::kRowOverflow:
      return "cell " + name + " extends past row end";
    case ViolationKind::kBadRowSpan:
      return "multi-row cell " + name + " breaks row-span alignment";
    case ViolationKind::kMacroOverlap:
      return "cell " + name + " overlaps fixed cell " +
             (other == kInvalidId ? "?" : db.cell(other).name);
    case ViolationKind::kBlockageOverlap:
      return "cell " + name + " overlaps placement blockage #" +
             std::to_string(blockage);
  }
  return "unknown violation";
}

namespace {

/// Checks everything about one cell except pairwise overlap.
///
/// Fixed cells (placed macro blocks, ECO tombstones) only need to sit
/// inside the die: they are floorplan inputs, not legalizer outputs,
/// and real macros rarely respect the site/row grid.  Movable cells
/// split by height: single-row cells follow the classic site/row rules,
/// multi-row cells must start on a row origin and find a compatible row
/// at every spanned strip (one kBadRowSpan per bad cell).
void checkSingleCellRules(const Database& db, CellId id,
                          std::vector<PlacementViolation>& out) {
  const auto rect = db.cellRect(id);
  const auto& die = db.design().dieArea;
  if (!die.contains(rect)) {
    out.push_back({ViolationKind::kOutsideDie, id, kInvalidId});
  }
  if (db.cell(id).fixed) return;

  const Coord rowH = db.rowHeight();
  const Coord height = rect.yhi - rect.ylo;
  if (height != rowH) {
    // Multi-row cell: integral height, base on a row origin, and every
    // spanned strip backed by a row that covers the cell's x extent on
    // the site grid.
    if (rowH <= 0 || height % rowH != 0) {
      out.push_back({ViolationKind::kBadRowSpan, id, kInvalidId});
      return;
    }
    const int strips = static_cast<int>(height / rowH);
    for (int s = 0; s < strips; ++s) {
      const int rowIdx = db.rowAtOrigin(rect.ylo + s * rowH);
      if (rowIdx == kInvalidId) {
        out.push_back({ViolationKind::kBadRowSpan, id, kInvalidId});
        return;
      }
      const Row& row = db.row(rowIdx);
      const Coord rowEnd = row.origin.x + row.numSites * db.siteWidth();
      if (rect.xlo < row.origin.x || rect.xhi > rowEnd ||
          (rect.xlo - row.origin.x) % db.siteWidth() != 0) {
        out.push_back({ViolationKind::kBadRowSpan, id, kInvalidId});
        return;
      }
    }
    return;
  }

  const int rowIdx = db.rowAt(rect.ylo);
  if (rowIdx == kInvalidId || db.row(rowIdx).origin.y != rect.ylo) {
    out.push_back({ViolationKind::kOffRow, id, kInvalidId});
    return;  // site alignment is relative to the row origin
  }
  const Row& row = db.row(rowIdx);
  if ((rect.xlo - row.origin.x) % db.siteWidth() != 0) {
    out.push_back({ViolationKind::kOffSite, id, kInvalidId});
  }
  const Coord rowEnd = row.origin.x + row.numSites * db.siteWidth();
  if (rect.xlo < row.origin.x || rect.xhi > rowEnd) {
    out.push_back({ViolationKind::kRowOverflow, id, kInvalidId});
  }
}

/// Overlaps involving a fixed cell are macro-legality violations; the
/// plain movable-vs-movable case stays kOverlap.
ViolationKind overlapKind(const Database& db, CellId a, CellId b) {
  return (db.cell(a).fixed || db.cell(b).fixed) ? ViolationKind::kMacroOverlap
                                                : ViolationKind::kOverlap;
}

/// Checks movable cells against placement blockages (layer ==
/// kInvalidId).  Fixed cells may legitimately coincide with blockage
/// geometry (a blockage often shadows a macro footprint).
void checkBlockageOverlaps(const Database& db, CellId only,
                           std::vector<PlacementViolation>& out) {
  const auto& blockages = db.design().blockages;
  bool any = false;
  for (const Blockage& b : blockages) {
    if (b.layer == kInvalidId) {
      any = true;
      break;
    }
  }
  if (!any) return;
  const CellId lo = only == kInvalidId ? 0 : only;
  const CellId hi = only == kInvalidId ? db.numCells() : only + 1;
  for (CellId i = lo; i < hi; ++i) {
    if (db.cell(i).fixed) continue;
    const auto rect = db.cellRect(i);
    for (int bi = 0; bi < static_cast<int>(blockages.size()); ++bi) {
      const Blockage& b = blockages[bi];
      if (b.layer != kInvalidId) continue;
      if (rect.overlaps(b.rect)) {
        out.push_back({ViolationKind::kBlockageOverlap, i, kInvalidId, bi});
      }
    }
  }
}

}  // namespace

std::vector<PlacementViolation> checkPlacement(const Database& db) {
  std::vector<PlacementViolation> out;
  const int n = db.numCells();
  for (CellId i = 0; i < n; ++i) checkSingleCellRules(db, i, out);

  // Overlap detection: bucket every cell into each row strip its rect
  // covers, then sweep each strip by xlo with exact rect tests.  Fixed
  // macros and multi-row cells appear in several strips; a pair sharing
  // more than one strip is reported once, in the lowest strip where
  // both are present (max of the two first strips).
  const Coord rowH = std::max<Coord>(1, db.rowHeight());
  struct Entry {
    Coord xlo, xhi, ylo, yhi;
    CellId id;
    int firstStrip;
  };
  std::vector<Entry> entries;
  entries.reserve(n);
  int minStrip = 0, maxStrip = -1;
  for (CellId i = 0; i < n; ++i) {
    const auto rect = db.cellRect(i);
    if (rect.xhi <= rect.xlo || rect.yhi <= rect.ylo) continue;
    const int first = static_cast<int>(
        rect.ylo >= 0 ? rect.ylo / rowH : (rect.ylo - rowH + 1) / rowH);
    const int last = static_cast<int>((rect.yhi - 1) >= 0
                                          ? (rect.yhi - 1) / rowH
                                          : (rect.yhi - 1 - rowH + 1) / rowH);
    entries.push_back({rect.xlo, rect.xhi, rect.ylo, rect.yhi, i, first});
    if (entries.size() == 1) {
      minStrip = first;
      maxStrip = last;
    } else {
      minStrip = std::min(minStrip, first);
      maxStrip = std::max(maxStrip, last);
    }
  }
  if (maxStrip >= minStrip) {
    std::vector<std::vector<const Entry*>> strips(maxStrip - minStrip + 1);
    for (const Entry& e : entries) {
      const int last = static_cast<int>((e.yhi - 1) >= 0
                                            ? (e.yhi - 1) / rowH
                                            : (e.yhi - 1 - rowH + 1) / rowH);
      for (int s = e.firstStrip; s <= last; ++s) {
        strips[s - minStrip].push_back(&e);
      }
    }
    for (int s = minStrip; s <= maxStrip; ++s) {
      auto& strip = strips[s - minStrip];
      std::sort(strip.begin(), strip.end(),
                [](const Entry* a, const Entry* b) {
                  if (a->xlo != b->xlo) return a->xlo < b->xlo;
                  return a->id < b->id;
                });
      for (std::size_t i = 0; i < strip.size(); ++i) {
        const Entry& a = *strip[i];
        for (std::size_t j = i + 1;
             j < strip.size() && strip[j]->xlo < a.xhi; ++j) {
          const Entry& b = *strip[j];
          if (std::max(a.firstStrip, b.firstStrip) != s) continue;
          if (a.ylo < b.yhi && b.ylo < a.yhi) {
            const CellId lo = std::min(a.id, b.id);
            const CellId hi = std::max(a.id, b.id);
            out.push_back({overlapKind(db, lo, hi), lo, hi});
          }
        }
      }
    }
  }

  checkBlockageOverlaps(db, kInvalidId, out);
  return out;
}

bool isPlacementLegal(const Database& db) { return checkPlacement(db).empty(); }

std::vector<PlacementViolation> checkCell(const Database& db, CellId id) {
  std::vector<PlacementViolation> out;
  checkSingleCellRules(db, id, out);
  const auto rect = db.cellRect(id);
  for (CellId other = 0; other < db.numCells(); ++other) {
    if (other == id) continue;
    if (rect.overlaps(db.cellRect(other))) {
      const CellId lo = std::min(id, other);
      const CellId hi = std::max(id, other);
      out.push_back({overlapKind(db, lo, hi), lo, hi});
    }
  }
  checkBlockageOverlaps(db, id, out);
  return out;
}

}  // namespace crp::db
