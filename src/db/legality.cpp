#include "db/legality.hpp"

#include <algorithm>

namespace crp::db {

std::string PlacementViolation::describe(const Database& db) const {
  std::string name = cell == kInvalidId ? "?" : db.cell(cell).name;
  switch (kind) {
    case ViolationKind::kOutsideDie:
      return "cell " + name + " outside die";
    case ViolationKind::kOverlap:
      return "cells " + name + " and " +
             (other == kInvalidId ? "?" : db.cell(other).name) + " overlap";
    case ViolationKind::kOffSite:
      return "cell " + name + " not site-aligned";
    case ViolationKind::kOffRow:
      return "cell " + name + " not row-aligned";
    case ViolationKind::kRowOverflow:
      return "cell " + name + " extends past row end";
  }
  return "unknown violation";
}

namespace {

/// Checks everything about one cell except pairwise overlap.
void checkSingleCellRules(const Database& db, CellId id,
                          std::vector<PlacementViolation>& out) {
  const auto rect = db.cellRect(id);
  const auto& die = db.design().dieArea;
  if (!die.contains(rect)) {
    out.push_back({ViolationKind::kOutsideDie, id, kInvalidId});
  }
  const int rowIdx = db.rowAt(rect.ylo);
  if (rowIdx == kInvalidId || db.row(rowIdx).origin.y != rect.ylo) {
    out.push_back({ViolationKind::kOffRow, id, kInvalidId});
    return;  // site alignment is relative to the row origin
  }
  const Row& row = db.row(rowIdx);
  if ((rect.xlo - row.origin.x) % db.siteWidth() != 0) {
    out.push_back({ViolationKind::kOffSite, id, kInvalidId});
  }
  const Coord rowEnd = row.origin.x + row.numSites * db.siteWidth();
  if (rect.xlo < row.origin.x || rect.xhi > rowEnd) {
    out.push_back({ViolationKind::kRowOverflow, id, kInvalidId});
  }
}

}  // namespace

std::vector<PlacementViolation> checkPlacement(const Database& db) {
  std::vector<PlacementViolation> out;
  const int n = db.numCells();
  for (CellId i = 0; i < n; ++i) checkSingleCellRules(db, i, out);

  // Overlap detection: sort cells by row (ylo), sweep each row by xlo.
  struct Entry {
    Coord xlo, xhi, ylo;
    CellId id;
  };
  std::vector<Entry> entries;
  entries.reserve(n);
  for (CellId i = 0; i < n; ++i) {
    const auto rect = db.cellRect(i);
    entries.push_back({rect.xlo, rect.xhi, rect.ylo, i});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.ylo != b.ylo) return a.ylo < b.ylo;
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    return a.id < b.id;
  });
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    const Entry& a = entries[i];
    const Entry& b = entries[i + 1];
    // Cells are single-row-height, so only same-row neighbours can
    // overlap; the sweep need only compare adjacent entries.
    if (a.ylo == b.ylo && b.xlo < a.xhi) {
      out.push_back({ViolationKind::kOverlap, a.id, b.id});
    }
  }
  return out;
}

bool isPlacementLegal(const Database& db) { return checkPlacement(db).empty(); }

std::vector<PlacementViolation> checkCell(const Database& db, CellId id) {
  std::vector<PlacementViolation> out;
  checkSingleCellRules(db, id, out);
  const auto rect = db.cellRect(id);
  for (CellId other = 0; other < db.numCells(); ++other) {
    if (other == id) continue;
    if (rect.overlaps(db.cellRect(other))) {
      out.push_back({ViolationKind::kOverlap, id, other});
    }
  }
  return out;
}

}  // namespace crp::db
