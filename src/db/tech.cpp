#include "db/tech.hpp"

#include <stdexcept>

namespace crp::db {

int Tech::addLayer(RoutingLayer layer) {
  layer.index = static_cast<int>(layers_.size());
  layers_.push_back(std::move(layer));
  return layers_.back().index;
}

void Tech::addCutLayer(CutLayer cut) {
  if (cut.below < 0 || cut.below + 1 >= numLayers()) {
    throw std::out_of_range("cut layer references missing routing layer");
  }
  cutLayers_.push_back(std::move(cut));
}

void Tech::addVia(ViaDef via) {
  if (via.below < 0 || via.below + 1 >= numLayers()) {
    throw std::out_of_range("via references missing routing layer");
  }
  vias_.push_back(std::move(via));
}

std::optional<int> Tech::findLayer(const std::string& name) const {
  for (const auto& layer : layers_) {
    if (layer.name == name) return layer.index;
  }
  return std::nullopt;
}

const ViaDef* Tech::defaultVia(int below) const {
  for (const auto& via : vias_) {
    if (via.below == below) return &via;
  }
  return nullptr;
}

Tech Tech::makeDefault(int numLayers, Coord pitch, Coord width, Coord spacing,
                       Coord minArea, Coord siteWidth, Coord rowHeight) {
  Tech tech;
  tech.site = Site{"core", siteWidth, rowHeight};
  for (int i = 0; i < numLayers; ++i) {
    RoutingLayer layer;
    layer.name = "Metal" + std::to_string(i + 1);
    layer.dir = (i % 2 == 0) ? LayerDir::kHorizontal : LayerDir::kVertical;
    layer.pitch = pitch;
    layer.width = width;
    layer.spacing = spacing;
    layer.minArea = minArea;
    layer.offset = pitch / 2;
    tech.addLayer(layer);
  }
  const Coord half = width / 2;
  for (int i = 0; i + 1 < numLayers; ++i) {
    CutLayer cut;
    cut.name = "Via" + std::to_string(i + 1);
    cut.below = i;
    cut.spacing = spacing;
    tech.addCutLayer(cut);

    ViaDef via;
    via.name = "VIA" + std::to_string(i + 1) + "_" + std::to_string(i + 2);
    via.below = i;
    via.bottomShape = Rect{-half, -half, half, half};
    via.cutShape = Rect{-half / 2, -half / 2, half / 2, half / 2};
    via.topShape = Rect{-half, -half, half, half};
    tech.addVia(via);
  }
  return tech;
}

}  // namespace crp::db
