// Placement legality checking (paper Eq. 5-8): every cell inside the
// die, no overlaps, x aligned to sites, y aligned to rows.  The CR&P
// invariant — "for any new candidate position a legalized placement
// solution for the entire circuit must be guaranteed" (§II) — is
// enforced by running this checker after every framework iteration in
// the integration tests.
#pragma once

#include <string>
#include <vector>

#include "db/database.hpp"

namespace crp::db {

enum class ViolationKind {
  kOutsideDie,
  kOverlap,
  kOffSite,
  kOffRow,
  kRowOverflow,  ///< cell extends past the end of its row
  /// A multi-row-height cell whose span breaks the row-alignment
  /// rules: height not a whole number of rows, base not on a row
  /// origin, or some spanned strip missing a row / overflowing it /
  /// off the site grid.  One violation per bad cell.
  kBadRowSpan,
  /// An overlap where at least one participant is a fixed cell (a
  /// placed macro block or an ECO tombstone).
  kMacroOverlap,
  /// A movable cell overlapping a placement blockage
  /// (db::Blockage with layer == kInvalidId).
  kBlockageOverlap,
};

struct PlacementViolation {
  ViolationKind kind;
  CellId cell = kInvalidId;
  CellId other = kInvalidId;  ///< second cell for overlaps
  int blockage = kInvalidId;  ///< blockage index for kBlockageOverlap
  std::string describe(const Database& db) const;
};

/// Full legality scan; O(n log n) via per-row sweeps.
std::vector<PlacementViolation> checkPlacement(const Database& db);

/// True when checkPlacement(db) is empty.
bool isPlacementLegal(const Database& db);

/// Checks a single cell against the die/site/row rules and against all
/// other cells intersecting its rect.  Used by unit tests and the
/// legalizer's postconditions.
std::vector<PlacementViolation> checkCell(const Database& db, CellId id);

}  // namespace crp::db
