#include "db/library.hpp"

#include <stdexcept>

namespace crp::db {

std::optional<int> Macro::findPin(const std::string& pinName) const {
  for (int i = 0; i < static_cast<int>(pins.size()); ++i) {
    if (pins[i].name == pinName) return i;
  }
  return std::nullopt;
}

int Library::addMacro(Macro macro) {
  if (findMacro(macro.name).has_value()) {
    throw std::invalid_argument("duplicate macro name: " + macro.name);
  }
  macros_.push_back(std::move(macro));
  return static_cast<int>(macros_.size()) - 1;
}

std::optional<int> Library::findMacro(const std::string& name) const {
  for (int i = 0; i < static_cast<int>(macros_.size()); ++i) {
    if (macros_[i].name == name) return i;
  }
  return std::nullopt;
}

namespace {

/// Lays out `nPins` pins evenly across a macro of `widthSites` sites;
/// input pins on the left portion, one output pin on the right.
Macro makeCell(const std::string& name, int widthSites, int nInputs,
               Coord siteWidth, Coord rowHeight, int pinLayer) {
  Macro macro;
  macro.name = name;
  macro.width = widthSites * siteWidth;
  macro.height = rowHeight;

  const int nPins = nInputs + 1;
  const Coord pinSize = std::max<Coord>(2, siteWidth / 5);
  for (int i = 0; i < nPins; ++i) {
    MacroPin pin;
    const bool isOutput = (i == nPins - 1);
    pin.name = isOutput ? "Y" : std::string(1, static_cast<char>('A' + i));
    pin.dir = isOutput ? PinDir::kOutput : PinDir::kInput;
    // Spread access points across the cell interior, vertically centered
    // bandwise so pins of stacked cells do not coincide.
    const Coord cx = macro.width * (2 * i + 1) / (2 * nPins);
    const Coord cy = rowHeight * (1 + (i % 3)) / 4;
    pin.shapes.push_back(
        PinShape{pinLayer, Rect{cx - pinSize / 2, cy - pinSize / 2,
                                cx + pinSize / 2, cy + pinSize / 2}});
    macro.pins.push_back(std::move(pin));
  }
  return macro;
}

}  // namespace

Library Library::makeDefault(Coord siteWidth, Coord rowHeight, int pinLayer) {
  Library lib;
  lib.addMacro(makeCell("INV_X1", 1, 1, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("BUF_X2", 2, 1, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("NAND2_X1", 2, 2, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("NOR2_X1", 2, 2, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("AOI21_X1", 3, 3, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("OAI22_X1", 4, 4, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("MUX2_X1", 4, 3, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("DFF_X1", 6, 2, siteWidth, rowHeight, pinLayer));
  lib.addMacro(makeCell("DFFR_X2", 8, 3, siteWidth, rowHeight, pinLayer));
  return lib;
}

}  // namespace crp::db
