// GCell grid geometry: the partition of the die into global-routing
// grid cells (paper §III).  Pure geometry — capacity/demand live in the
// global router's RoutingGraph, which is built on top of this grid.
#pragma once

#include <vector>

#include "geom/geometry.hpp"

namespace crp::db {

using geom::Coord;
using geom::Point;
using geom::Rect;

/// Integer GCell coordinate.
struct GCell {
  int x = 0;
  int y = 0;

  friend bool operator==(const GCell&, const GCell&) = default;
};

class GCellGrid {
 public:
  GCellGrid() = default;

  /// Partitions `die` into `countX` x `countY` cells.  The last
  /// row/column absorbs the remainder when the die does not divide
  /// evenly.
  GCellGrid(Rect die, int countX, int countY);

  int countX() const { return countX_; }
  int countY() const { return countY_; }
  const Rect& die() const { return die_; }

  /// GCell containing point `p` (clamped into the grid).
  GCell cellAt(Point p) const;

  /// Geometric bounds of a gcell.
  Rect cellRect(GCell g) const;

  /// Center point of a gcell.
  Point cellCenter(GCell g) const;

  /// Manhattan distance between the centers of two gcells — the
  /// Dist(e) term of the paper's edge cost (Eq. 10) for a wire edge
  /// between adjacent gcells.
  Coord centerDistance(GCell a, GCell b) const;

  bool inside(GCell g) const {
    return g.x >= 0 && g.x < countX_ && g.y >= 0 && g.y < countY_;
  }

  /// Flat index for dense arrays.
  int flatIndex(GCell g) const { return g.y * countX_ + g.x; }
  int numCells() const { return countX_ * countY_; }

  /// Boundary coordinates (countX_+1 entries on x, countY_+1 on y).
  const std::vector<Coord>& xBounds() const { return xBounds_; }
  const std::vector<Coord>& yBounds() const { return yBounds_; }

 private:
  Rect die_;
  int countX_ = 0;
  int countY_ = 0;
  std::vector<Coord> xBounds_;
  std::vector<Coord> yBounds_;
};

}  // namespace crp::db
