// The central design database.
//
// Wraps {Tech, Library, Design} with connectivity indices and
// invariant-preserving mutators.  All routers, the legalizer and the
// CR&P framework operate on this object; the "Update Database" phase of
// the paper (§IV.B.5) maps to moveCell() plus the router's demand-map
// refresh.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "db/design.hpp"
#include "db/library.hpp"
#include "db/tech.hpp"

namespace crp::db {

class Database {
 public:
  Database(Tech tech, Library library, Design design);

  const Tech& tech() const { return tech_; }
  const Library& library() const { return library_; }
  const Design& design() const { return design_; }
  Design& mutableDesign() { return design_; }

  // ---- basic lookups -----------------------------------------------------

  int numCells() const { return static_cast<int>(design_.components.size()); }
  int numNets() const { return static_cast<int>(design_.nets.size()); }

  const Component& cell(CellId id) const { return design_.components.at(id); }
  const Net& net(NetId id) const { return design_.nets.at(id); }
  const Macro& macroOf(CellId id) const {
    return library_.macro(cell(id).macro);
  }

  CellId findCell(const std::string& name) const;
  NetId findNet(const std::string& name) const;

  // ---- geometry ----------------------------------------------------------

  /// Placed bounding box of a cell.
  geom::Rect cellRect(CellId id) const;

  /// Die-frame access point of a component pin.
  Point pinPosition(const CompPinRef& ref) const;

  /// Die-frame access point of any net terminal.
  Point pinPosition(const NetPin& pin) const;

  /// Die-frame physical shapes (rect + layer) of a component pin.
  std::vector<PinShape> pinShapes(const CompPinRef& ref) const;

  /// Bounding box over all terminals of a net.
  geom::Rect netBoundingBox(NetId id) const;

  /// Half-perimeter wirelength of a net.
  Coord netHpwl(NetId id) const;

  /// Total HPWL over all nets.
  Coord totalHpwl() const;

  // ---- connectivity ------------------------------------------------------

  /// Nets attached to a cell (deduplicated, stable order).
  const std::vector<NetId>& netsOfCell(CellId id) const {
    return cellNets_.at(id);
  }

  /// Cells connected to `id` through any common net (excludes `id`).
  std::vector<CellId> connectedCells(CellId id) const;

  /// Cells on a net (deduplicated, excludes IO pins).
  std::vector<CellId> cellsOfNet(NetId id) const;

  /// Median of the positions of all terminals connected to `id` through
  /// its nets, excluding `id`'s own pins.  This is the target position
  /// the legalizer cost (Eq. 11) pulls toward.  Falls back to the cell's
  /// current position when the cell has no external connections.
  Point medianPosition(CellId id) const;

  // ---- placement helpers / mutators ---------------------------------------

  /// Row index whose y-span contains `y`, or kInvalidId.  O(log rows)
  /// via the sorted row index (rows never change after construction).
  int rowAt(Coord y) const;

  /// Row index whose origin.y equals `y` exactly, or kInvalidId.  The
  /// multi-row-height legality rules use this to require every spanned
  /// strip to start on a real row origin.
  int rowAtOrigin(Coord y) const;

  /// Indices of every row whose y-span intersects [ylo, yhi), in
  /// ascending y order.  O(log rows + hits); the legalizer's row
  /// bucketing uses this instead of scanning all rows per cell.
  std::vector<int> rowsInSpan(Coord ylo, Coord yhi) const;

  const Row& row(int index) const { return design_.rows.at(index); }
  int numRows() const { return static_cast<int>(design_.rows.size()); }

  Coord rowHeight() const { return tech_.site.height; }
  Coord siteWidth() const { return tech_.site.width; }

  /// Number of row strips a cell of this macro occupies (>= 1; rounds
  /// up for heights that are not an exact row multiple).
  int rowSpanOf(int macroId) const;

  /// True when the cell's macro is taller than one row (mixed-height
  /// designs; such cells obey the kBadRowSpan legality rules).
  bool isMultiRow(CellId id) const {
    return macroOf(id).height != rowHeight();
  }

  /// Snaps a point to the nearest legal (site, row) lower-left position
  /// clamped inside the die for a cell of macro `macroId`.
  Point snapToSiteRow(Point p, int macroId) const;

  /// Moves a cell to a new lower-left position (no legality check; use
  /// legality.hpp to validate).  Invalidates nothing: connectivity is
  /// positional-independent.
  void moveCell(CellId id, Point newPos);

  // ---- netlist mutators (the ECO delta primitives; see db/eco.hpp) --------
  //
  // Each call keeps the name and connectivity indices exact, so lookups
  // stay valid without a full buildIndices() pass.  Ids are append-only:
  // a cell or net, once created, keeps its id for the lifetime of the
  // database (removal is modeled by detaching pins, never by erasing).
  // applyEcoDelta() drives these transactionally; direct callers own
  // validation (unique names, resolvable pins, placement legality).

  /// Appends a component; its name must be unused.  Returns the new id.
  CellId addCell(Component comp);

  /// Appends a net; its name must be unused and every component pin must
  /// reference an existing cell and macro pin.  Returns the new id.
  NetId addNet(Net net);

  /// Replaces a net's terminal list (the ECO rewire primitive); the
  /// cell→nets index follows.
  void setNetPins(NetId id, std::vector<NetPin> pins);

  /// Pops the most recently added cell (rollback helper for addCell).
  /// The cell must not be referenced by any net.
  void removeLastCell();

  /// Pops the most recently added net (rollback helper for addNet).
  void removeLastNet();

  /// Flips a cell's fixed flag (ECO removal tombstones the component as
  /// an immovable blockage rather than erasing it; see docs/eco.md).
  void setCellFixed(CellId id, bool fixed);

  /// Sum of cell areas / core row area (utilization in [0,1]).
  double utilization() const;

 private:
  void buildIndices();

  Tech tech_;
  Library library_;
  Design design_;

  std::unordered_map<std::string, CellId> cellByName_;
  std::unordered_map<std::string, NetId> netByName_;
  std::vector<std::vector<NetId>> cellNets_;
  /// (origin.y, row index) sorted by y — rowAt/rowAtOrigin binary
  /// search this instead of scanning design_.rows (100K-cell designs
  /// call rowAt in every legality sweep and legalizer window).
  std::vector<std::pair<Coord, int>> rowsByY_;
  Coord maxRowTop_ = 0;  ///< highest row origin.y + rowHeight()
};

}  // namespace crp::db
