#include "db/gcell_grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace crp::db {

GCellGrid::GCellGrid(Rect die, int countX, int countY)
    : die_(die), countX_(countX), countY_(countY) {
  if (countX <= 0 || countY <= 0) {
    throw std::invalid_argument("gcell grid needs positive dimensions");
  }
  if (die.empty()) throw std::invalid_argument("gcell grid on empty die");
  xBounds_.resize(countX + 1);
  yBounds_.resize(countY + 1);
  for (int i = 0; i <= countX; ++i) {
    xBounds_[i] = die.xlo + die.width() * i / countX;
  }
  for (int j = 0; j <= countY; ++j) {
    yBounds_[j] = die.ylo + die.height() * j / countY;
  }
}

GCell GCellGrid::cellAt(Point p) const {
  // Binary search over the boundary arrays; upper_bound - 1 gives the
  // cell whose [lo, hi) span contains p.
  const auto xi = std::upper_bound(xBounds_.begin(), xBounds_.end(), p.x);
  const auto yi = std::upper_bound(yBounds_.begin(), yBounds_.end(), p.y);
  int gx = static_cast<int>(xi - xBounds_.begin()) - 1;
  int gy = static_cast<int>(yi - yBounds_.begin()) - 1;
  gx = std::clamp(gx, 0, countX_ - 1);
  gy = std::clamp(gy, 0, countY_ - 1);
  return GCell{gx, gy};
}

Rect GCellGrid::cellRect(GCell g) const {
  if (!inside(g)) throw std::out_of_range("gcell outside grid");
  return Rect{xBounds_[g.x], yBounds_[g.y], xBounds_[g.x + 1],
              yBounds_[g.y + 1]};
}

Point GCellGrid::cellCenter(GCell g) const { return cellRect(g).center(); }

Coord GCellGrid::centerDistance(GCell a, GCell b) const {
  return geom::manhattan(cellCenter(a), cellCenter(b));
}

}  // namespace crp::db
