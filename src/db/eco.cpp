#include "db/eco.hpp"

#include <algorithm>

#include "db/legality.hpp"
#include "obs/json.hpp"

namespace crp::db {

namespace {

/// Undo log for one applyEcoDelta call.  Entries are recorded before
/// each mutation; rollback() replays them newest-first, which restores
/// the database to its pre-call state in every failure path.
struct Txn {
  Database& db;
  std::vector<std::pair<CellId, Point>> movedFrom;
  std::vector<std::pair<CellId, bool>> fixedWas;
  std::vector<std::pair<NetId, std::vector<NetPin>>> pinsWere;
  int addedCells = 0;
  int addedNets = 0;

  void rollback() {
    for (auto it = pinsWere.rbegin(); it != pinsWere.rend(); ++it) {
      db.setNetPins(it->first, std::move(it->second));
    }
    for (auto it = fixedWas.rbegin(); it != fixedWas.rend(); ++it) {
      db.setCellFixed(it->first, it->second);
    }
    for (auto it = movedFrom.rbegin(); it != movedFrom.rend(); ++it) {
      db.moveCell(it->first, it->second);
    }
    // Added nets must go before added cells: removeLastCell insists the
    // cell is no longer referenced.
    for (int i = 0; i < addedNets; ++i) db.removeLastNet();
    for (int i = 0; i < addedCells; ++i) db.removeLastCell();
  }
};

CellId requireCell(const Database& db, const std::string& name,
                   const char* what) {
  const CellId id = db.findCell(name);
  if (id == kInvalidId) {
    throw EcoError(std::string(what) + ": unknown cell '" + name + "'");
  }
  return id;
}

NetId requireNet(const Database& db, const std::string& name,
                 const char* what) {
  const NetId id = db.findNet(name);
  if (id == kInvalidId) {
    throw EcoError(std::string(what) + ": unknown net '" + name + "'");
  }
  return id;
}

int requirePin(const Database& db, CellId cell, const std::string& pinName,
               const char* what) {
  const auto pin = db.macroOf(cell).findPin(pinName);
  if (!pin) {
    throw EcoError(std::string(what) + ": cell '" + db.cell(cell).name +
                   "' (" + db.macroOf(cell).name + ") has no pin '" + pinName +
                   "'");
  }
  return *pin;
}

Orientation orientationFromName(const std::string& name) {
  if (name == "N") return Orientation::kN;
  if (name == "S") return Orientation::kS;
  if (name == "FN") return Orientation::kFN;
  if (name == "FS") return Orientation::kFS;
  throw EcoError("unknown orientation '" + name + "'");
}

}  // namespace

EcoApplyResult applyEcoDelta(Database& db, const EcoDelta& delta) {
  EcoApplyResult result;
  Txn txn{db, {}, {}, {}, 0, 0};
  // Touched nets collected as ids; sorted + deduped at the end.
  std::vector<NetId> touchedNets;

  try {
    // 1. addCells — placed immediately; legality is checked after moves
    //    so a swap-style delta is judged on its final state.
    for (const EcoCellAdd& add : delta.addCells) {
      const auto macro = db.library().findMacro(add.macro);
      if (!macro) {
        throw EcoError("addCells: unknown macro '" + add.macro + "'");
      }
      if (db.findCell(add.name) != kInvalidId) {
        throw EcoError("addCells: cell name '" + add.name +
                       "' already exists");
      }
      Component comp;
      comp.name = add.name;
      comp.macro = *macro;
      comp.pos = add.pos;
      comp.orient = add.orient;
      const CellId id = db.addCell(std::move(comp));
      ++txn.addedCells;
      result.cells.push_back(EcoTouchedCell{id, add.pos, /*added=*/true});
      ++result.addedCells;
    }

    // 2. moves
    for (const EcoMove& move : delta.moves) {
      const CellId id = requireCell(db, move.cell, "moves");
      if (db.cell(id).fixed) {
        throw EcoError("moves: cell '" + move.cell + "' is fixed");
      }
      txn.movedFrom.emplace_back(id, db.cell(id).pos);
      result.cells.push_back(EcoTouchedCell{id, db.cell(id).pos});
      db.moveCell(id, move.to);
      ++result.movedCells;
    }

    // 3. removePins then addPins (rewires): a pin can hop nets within
    //    one delta without ever being double-attached.
    for (const EcoPinRef& ref : delta.removePins) {
      const NetId net = requireNet(db, ref.net, "removePins");
      const CellId cell = requireCell(db, ref.cell, "removePins");
      const int pin = requirePin(db, cell, ref.pin, "removePins");
      std::vector<NetPin> pins = db.net(net).pins;
      const auto it = std::find_if(
          pins.begin(), pins.end(), [&](const NetPin& p) {
            return !p.isIo() && p.compPin() == CompPinRef{cell, pin};
          });
      if (it == pins.end()) {
        throw EcoError("removePins: net '" + ref.net + "' has no pin " +
                       ref.cell + "/" + ref.pin);
      }
      pins.erase(it);
      txn.pinsWere.emplace_back(net, db.net(net).pins);
      db.setNetPins(net, std::move(pins));
      touchedNets.push_back(net);
      ++result.rewiredPins;
    }
    for (const EcoPinRef& ref : delta.addPins) {
      const NetId net = requireNet(db, ref.net, "addPins");
      const CellId cell = requireCell(db, ref.cell, "addPins");
      const int pin = requirePin(db, cell, ref.pin, "addPins");
      std::vector<NetPin> pins = db.net(net).pins;
      const bool present = std::any_of(
          pins.begin(), pins.end(), [&](const NetPin& p) {
            return !p.isIo() && p.compPin() == CompPinRef{cell, pin};
          });
      if (present) {
        throw EcoError("addPins: net '" + ref.net + "' already has pin " +
                       ref.cell + "/" + ref.pin);
      }
      pins.push_back(NetPin{CompPinRef{cell, pin}});
      txn.pinsWere.emplace_back(net, db.net(net).pins);
      db.setNetPins(net, std::move(pins));
      touchedNets.push_back(net);
      ++result.rewiredPins;
    }

    // 4. addNets
    for (const EcoNetAdd& add : delta.addNets) {
      if (db.findNet(add.name) != kInvalidId) {
        throw EcoError("addNets: net name '" + add.name + "' already exists");
      }
      if (add.pins.size() < 2) {
        throw EcoError("addNets: net '" + add.name +
                       "' needs at least two pins");
      }
      Net net;
      net.name = add.name;
      for (const auto& [cellName, pinName] : add.pins) {
        const CellId cell = requireCell(db, cellName, "addNets");
        const int pin = requirePin(db, cell, pinName, "addNets");
        net.pins.push_back(NetPin{CompPinRef{cell, pin}});
      }
      const NetId id = db.addNet(std::move(net));
      ++txn.addedNets;
      touchedNets.push_back(id);
      ++result.addedNets;
    }

    // 5. removeCells — detach from every net and tombstone in place as
    //    a fixed blockage (ids are append-only; see file comment).
    for (const std::string& name : delta.removeCells) {
      const CellId id = requireCell(db, name, "removeCells");
      if (db.cell(id).fixed) {
        throw EcoError("removeCells: cell '" + name +
                       "' is fixed (already removed?)");
      }
      const std::vector<NetId> nets = db.netsOfCell(id);  // copy: we mutate
      for (const NetId net : nets) {
        std::vector<NetPin> pins;
        for (const NetPin& p : db.net(net).pins) {
          if (!p.isIo() && p.compPin().cell == id) continue;
          pins.push_back(p);
        }
        txn.pinsWere.emplace_back(net, db.net(net).pins);
        db.setNetPins(net, std::move(pins));
        touchedNets.push_back(net);
      }
      txn.fixedWas.emplace_back(id, false);
      db.setCellFixed(id, true);
      result.cells.push_back(EcoTouchedCell{id, db.cell(id).pos});
      ++result.removedCells;
    }

    // 6. Placement legality of every touched cell at the final state.
    for (const EcoTouchedCell& touched : result.cells) {
      const auto violations = checkCell(db, touched.cell);
      if (!violations.empty()) {
        throw EcoError("delta leaves placement illegal: " +
                       violations.front().describe(db));
      }
    }
  } catch (...) {
    txn.rollback();
    throw;
  }

  std::sort(touchedNets.begin(), touchedNets.end());
  touchedNets.erase(std::unique(touchedNets.begin(), touchedNets.end()),
                    touchedNets.end());
  result.nets = std::move(touchedNets);
  return result;
}

obs::Json ecoDeltaToJson(const EcoDelta& delta) {
  obs::Json json = obs::Json::object();
  json.set("schemaVersion", EcoDelta::kSchemaVersion);
  obs::Json moves = obs::Json::array();
  for (const EcoMove& move : delta.moves) {
    obs::Json entry = obs::Json::object();
    entry.set("cell", move.cell);
    entry.set("x", move.to.x);
    entry.set("y", move.to.y);
    moves.append(std::move(entry));
  }
  json.set("moves", std::move(moves));

  obs::Json addCells = obs::Json::array();
  for (const EcoCellAdd& add : delta.addCells) {
    obs::Json entry = obs::Json::object();
    entry.set("name", add.name);
    entry.set("macro", add.macro);
    entry.set("x", add.pos.x);
    entry.set("y", add.pos.y);
    entry.set("orient", geom::orientationName(add.orient));
    addCells.append(std::move(entry));
  }
  json.set("addCells", std::move(addCells));

  obs::Json removeCells = obs::Json::array();
  for (const std::string& name : delta.removeCells) removeCells.append(name);
  json.set("removeCells", std::move(removeCells));

  obs::Json addNets = obs::Json::array();
  for (const EcoNetAdd& add : delta.addNets) {
    obs::Json entry = obs::Json::object();
    entry.set("name", add.name);
    obs::Json pins = obs::Json::array();
    for (const auto& [cell, pin] : add.pins) {
      obs::Json p = obs::Json::object();
      p.set("cell", cell);
      p.set("pin", pin);
      pins.append(std::move(p));
    }
    entry.set("pins", std::move(pins));
    addNets.append(std::move(entry));
  }
  json.set("addNets", std::move(addNets));

  const auto pinRefs = [](const std::vector<EcoPinRef>& refs) {
    obs::Json array = obs::Json::array();
    for (const EcoPinRef& ref : refs) {
      obs::Json entry = obs::Json::object();
      entry.set("net", ref.net);
      entry.set("cell", ref.cell);
      entry.set("pin", ref.pin);
      array.append(std::move(entry));
    }
    return array;
  };
  json.set("addPins", pinRefs(delta.addPins));
  json.set("removePins", pinRefs(delta.removePins));
  return json;
}

EcoDelta ecoDeltaFromJson(const obs::Json& json) {
  const std::int64_t version = json.at("schemaVersion").asInt();
  if (version != EcoDelta::kSchemaVersion) {
    throw EcoError("unsupported EcoDelta schemaVersion " +
                   std::to_string(version));
  }
  EcoDelta delta;
  if (const obs::Json* moves = json.find("moves")) {
    for (const obs::Json& entry : moves->asArray()) {
      EcoMove move;
      move.cell = entry.at("cell").asString();
      move.to = Point{static_cast<Coord>(entry.at("x").asInt()),
                      static_cast<Coord>(entry.at("y").asInt())};
      delta.moves.push_back(std::move(move));
    }
  }
  if (const obs::Json* addCells = json.find("addCells")) {
    for (const obs::Json& entry : addCells->asArray()) {
      EcoCellAdd add;
      add.name = entry.at("name").asString();
      add.macro = entry.at("macro").asString();
      add.pos = Point{static_cast<Coord>(entry.at("x").asInt()),
                      static_cast<Coord>(entry.at("y").asInt())};
      if (const obs::Json* orient = entry.find("orient")) {
        add.orient = orientationFromName(orient->asString());
      }
      delta.addCells.push_back(std::move(add));
    }
  }
  if (const obs::Json* removeCells = json.find("removeCells")) {
    for (const obs::Json& entry : removeCells->asArray()) {
      delta.removeCells.push_back(entry.asString());
    }
  }
  if (const obs::Json* addNets = json.find("addNets")) {
    for (const obs::Json& entry : addNets->asArray()) {
      EcoNetAdd add;
      add.name = entry.at("name").asString();
      for (const obs::Json& pin : entry.at("pins").asArray()) {
        add.pins.emplace_back(pin.at("cell").asString(),
                              pin.at("pin").asString());
      }
      delta.addNets.push_back(std::move(add));
    }
  }
  const auto readPinRefs = [&json](const char* key,
                                   std::vector<EcoPinRef>& out) {
    if (const obs::Json* refs = json.find(key)) {
      for (const obs::Json& entry : refs->asArray()) {
        EcoPinRef ref;
        ref.net = entry.at("net").asString();
        ref.cell = entry.at("cell").asString();
        ref.pin = entry.at("pin").asString();
        out.push_back(std::move(ref));
      }
    }
  };
  readPinRefs("addPins", delta.addPins);
  readPinRefs("removePins", delta.removePins);
  return delta;
}

}  // namespace crp::db
