#include "db/design.hpp"

// Design is plain data; all behaviour lives in Database.  This
// translation unit exists so the target has a stable archive member
// even if Design later grows out-of-line helpers.

namespace crp::db {}  // namespace crp::db
