// Standard-cell library: macros with pins and obstructions, all in the
// macro's local frame (origin at lower-left, N orientation).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace crp::db {

using geom::Coord;
using geom::Rect;

/// Signal direction of a macro pin.
enum class PinDir : std::uint8_t { kInput, kOutput, kInout };

/// One rectangle of a pin's physical port.
struct PinShape {
  int layer = 0;  ///< routing-layer index
  Rect rect;      ///< local frame
};

/// Logical + physical pin of a macro.
struct MacroPin {
  std::string name;
  PinDir dir = PinDir::kInput;
  std::vector<PinShape> shapes;

  /// Representative access point: center of the first shape.
  geom::Point accessPoint() const {
    if (shapes.empty()) return {};
    return shapes.front().rect.center();
  }
};

/// Routing obstruction inside a macro.
struct Obstruction {
  int layer = 0;
  Rect rect;  ///< local frame
};

/// One library cell (LEF MACRO).
struct Macro {
  std::string name;
  Coord width = 0;
  Coord height = 0;
  std::vector<MacroPin> pins;
  std::vector<Obstruction> obstructions;

  /// Width in sites for a given site width (rounded up).
  Coord widthInSites(Coord siteWidth) const {
    return (width + siteWidth - 1) / siteWidth;
  }

  std::optional<int> findPin(const std::string& pinName) const;
};

/// The set of macros available to a design.
class Library {
 public:
  /// Adds a macro; returns its id.  Names must be unique.
  int addMacro(Macro macro);

  int numMacros() const { return static_cast<int>(macros_.size()); }
  const Macro& macro(int id) const { return macros_.at(id); }
  Macro& macro(int id) { return macros_.at(id); }
  const std::vector<Macro>& macros() const { return macros_; }

  std::optional<int> findMacro(const std::string& name) const;

  /// Builds a small synthetic library (inverter/buffer/nand/nor/mux/
  /// dff-like cells of 1..8 sites width) on the given site; used by the
  /// benchmark generator and tests.
  static Library makeDefault(Coord siteWidth, Coord rowHeight, int pinLayer);

 private:
  std::vector<Macro> macros_;
};

}  // namespace crp::db
