#include "db/database.hpp"

#include <algorithm>
#include <stdexcept>

namespace crp::db {

Database::Database(Tech tech, Library library, Design design)
    : tech_(std::move(tech)),
      library_(std::move(library)),
      design_(std::move(design)) {
  buildIndices();
}

void Database::buildIndices() {
  cellByName_.clear();
  netByName_.clear();
  cellByName_.reserve(design_.components.size());
  netByName_.reserve(design_.nets.size());
  for (CellId i = 0; i < numCells(); ++i) {
    cellByName_.emplace(design_.components[i].name, i);
  }
  for (NetId i = 0; i < numNets(); ++i) {
    netByName_.emplace(design_.nets[i].name, i);
  }
  cellNets_.assign(design_.components.size(), {});
  for (NetId n = 0; n < numNets(); ++n) {
    for (const NetPin& pin : design_.nets[n].pins) {
      if (pin.isIo()) continue;
      auto& nets = cellNets_[pin.compPin().cell];
      if (nets.empty() || nets.back() != n) nets.push_back(n);
    }
  }
  // Deduplicate (a net can touch the same cell via several pins in any
  // order, so back-checking alone is not enough).
  for (auto& nets : cellNets_) {
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }
  rowsByY_.clear();
  rowsByY_.reserve(design_.rows.size());
  maxRowTop_ = 0;
  for (int i = 0; i < numRows(); ++i) {
    rowsByY_.emplace_back(design_.rows[i].origin.y, i);
    maxRowTop_ = std::max(maxRowTop_, design_.rows[i].origin.y + rowHeight());
  }
  std::sort(rowsByY_.begin(), rowsByY_.end());
}

CellId Database::findCell(const std::string& name) const {
  const auto it = cellByName_.find(name);
  return it == cellByName_.end() ? kInvalidId : it->second;
}

NetId Database::findNet(const std::string& name) const {
  const auto it = netByName_.find(name);
  return it == netByName_.end() ? kInvalidId : it->second;
}

geom::Rect Database::cellRect(CellId id) const {
  const Component& comp = cell(id);
  const Macro& macro = library_.macro(comp.macro);
  return geom::Rect{comp.pos.x, comp.pos.y, comp.pos.x + macro.width,
                    comp.pos.y + macro.height};
}

Point Database::pinPosition(const CompPinRef& ref) const {
  const Component& comp = cell(ref.cell);
  const Macro& macro = library_.macro(comp.macro);
  const Point local = macro.pins.at(ref.pin).accessPoint();
  return geom::transformPoint(local, comp.pos, macro.width, macro.height,
                              comp.orient);
}

Point Database::pinPosition(const NetPin& pin) const {
  if (pin.isIo()) return design_.ioPins.at(pin.ioPin()).pos;
  return pinPosition(pin.compPin());
}

std::vector<PinShape> Database::pinShapes(const CompPinRef& ref) const {
  const Component& comp = cell(ref.cell);
  const Macro& macro = library_.macro(comp.macro);
  std::vector<PinShape> shapes;
  shapes.reserve(macro.pins.at(ref.pin).shapes.size());
  for (const PinShape& shape : macro.pins.at(ref.pin).shapes) {
    shapes.push_back(PinShape{
        shape.layer, geom::transformRect(shape.rect, comp.pos, macro.width,
                                         macro.height, comp.orient)});
  }
  return shapes;
}

geom::Rect Database::netBoundingBox(NetId id) const {
  const Net& n = net(id);
  if (n.pins.empty()) return {};
  geom::Rect box;
  bool first = true;
  for (const NetPin& pin : n.pins) {
    const Point p = pinPosition(pin);
    if (first) {
      box = geom::Rect{p.x, p.y, p.x, p.y};
      first = false;
    } else {
      box.xlo = std::min(box.xlo, p.x);
      box.ylo = std::min(box.ylo, p.y);
      box.xhi = std::max(box.xhi, p.x);
      box.yhi = std::max(box.yhi, p.y);
    }
  }
  return box;
}

Coord Database::netHpwl(NetId id) const {
  if (net(id).pins.size() < 2) return 0;
  return netBoundingBox(id).halfPerimeter();
}

Coord Database::totalHpwl() const {
  Coord sum = 0;
  for (NetId n = 0; n < numNets(); ++n) sum += netHpwl(n);
  return sum;
}

std::vector<CellId> Database::connectedCells(CellId id) const {
  std::vector<CellId> cells;
  for (const NetId n : netsOfCell(id)) {
    for (const NetPin& pin : net(n).pins) {
      if (pin.isIo()) continue;
      const CellId other = pin.compPin().cell;
      if (other != id) cells.push_back(other);
    }
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

std::vector<CellId> Database::cellsOfNet(NetId id) const {
  std::vector<CellId> cells;
  for (const NetPin& pin : net(id).pins) {
    if (!pin.isIo()) cells.push_back(pin.compPin().cell);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

Point Database::medianPosition(CellId id) const {
  std::vector<Coord> xs;
  std::vector<Coord> ys;
  for (const NetId n : netsOfCell(id)) {
    for (const NetPin& pin : net(n).pins) {
      if (!pin.isIo() && pin.compPin().cell == id) continue;
      const Point p = pinPosition(pin);
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
  }
  if (xs.empty()) return cell(id).pos;
  const auto mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  std::nth_element(ys.begin(), ys.begin() + mid, ys.end());
  return Point{xs[mid], ys[mid]};
}

int Database::rowAt(Coord y) const {
  // Last row whose origin.y <= y; a hit requires y inside its span.
  auto it = std::upper_bound(
      rowsByY_.begin(), rowsByY_.end(), y,
      [](Coord value, const std::pair<Coord, int>& row) {
        return value < row.first;
      });
  if (it == rowsByY_.begin()) return kInvalidId;
  --it;
  return y < it->first + rowHeight() ? it->second : kInvalidId;
}

int Database::rowAtOrigin(Coord y) const {
  const auto it = std::lower_bound(
      rowsByY_.begin(), rowsByY_.end(), y,
      [](const std::pair<Coord, int>& row, Coord value) {
        return row.first < value;
      });
  if (it == rowsByY_.end() || it->first != y) return kInvalidId;
  return it->second;
}

std::vector<int> Database::rowsInSpan(Coord ylo, Coord yhi) const {
  std::vector<int> rows;
  // Rows intersect [ylo, yhi) iff origin.y in (ylo - rowHeight, yhi).
  auto it = std::upper_bound(
      rowsByY_.begin(), rowsByY_.end(), ylo - rowHeight(),
      [](Coord value, const std::pair<Coord, int>& row) {
        return value < row.first;
      });
  for (; it != rowsByY_.end() && it->first < yhi; ++it) {
    rows.push_back(it->second);
  }
  return rows;
}

int Database::rowSpanOf(int macroId) const {
  const Coord h = library_.macro(macroId).height;
  const Coord rowH = rowHeight();
  if (rowH <= 0) return 1;
  return static_cast<int>(std::max<Coord>(1, (h + rowH - 1) / rowH));
}

Point Database::snapToSiteRow(Point p, int macroId) const {
  const Macro& macro = library_.macro(macroId);
  if (design_.rows.empty()) return p;
  // Pick the nearest row by the y coordinate of the lower-left corner;
  // a taller-than-one-row cell must also fit below the topmost row top,
  // so rows too high up are skipped.
  const Row* best = nullptr;
  Coord bestDist = 0;
  for (const auto& [originY, index] : rowsByY_) {
    if (originY + macro.height > maxRowTop_) continue;
    const Coord dist = std::abs(p.y - originY);
    if (best == nullptr || dist < bestDist) {
      best = &design_.rows[index];
      bestDist = dist;
    }
  }
  if (best == nullptr) best = &design_.rows.front();
  Coord x = geom::snapNearest(p.x, best->origin.x, siteWidth());
  const Coord rowEnd = best->origin.x + best->numSites * siteWidth();
  x = std::clamp(x, best->origin.x, rowEnd - macro.width);
  return Point{x, best->origin.y};
}

void Database::moveCell(CellId id, Point newPos) {
  design_.components.at(id).pos = newPos;
}

namespace {

/// Sorted-unique insert into a cell's net list.
void indexInsert(std::vector<NetId>& nets, NetId net) {
  const auto it = std::lower_bound(nets.begin(), nets.end(), net);
  if (it == nets.end() || *it != net) nets.insert(it, net);
}

void indexErase(std::vector<NetId>& nets, NetId net) {
  const auto it = std::lower_bound(nets.begin(), nets.end(), net);
  if (it != nets.end() && *it == net) nets.erase(it);
}

}  // namespace

CellId Database::addCell(Component comp) {
  if (findCell(comp.name) != kInvalidId) {
    throw std::invalid_argument("addCell: duplicate cell name " + comp.name);
  }
  library_.macro(comp.macro);  // throws for an out-of-range macro id
  const CellId id = numCells();
  cellByName_.emplace(comp.name, id);
  design_.components.push_back(std::move(comp));
  cellNets_.emplace_back();
  return id;
}

NetId Database::addNet(Net net) {
  if (findNet(net.name) != kInvalidId) {
    throw std::invalid_argument("addNet: duplicate net name " + net.name);
  }
  const NetId id = numNets();
  for (const NetPin& pin : net.pins) {
    if (pin.isIo()) {
      design_.ioPins.at(pin.ioPin());  // range check
      continue;
    }
    const CompPinRef ref = pin.compPin();
    const Component& comp = design_.components.at(ref.cell);
    library_.macro(comp.macro).pins.at(ref.pin);  // range check
    indexInsert(cellNets_.at(ref.cell), id);
  }
  netByName_.emplace(net.name, id);
  design_.nets.push_back(std::move(net));
  return id;
}

void Database::setNetPins(NetId id, std::vector<NetPin> pins) {
  Net& n = design_.nets.at(id);
  for (const NetPin& pin : n.pins) {
    if (!pin.isIo()) indexErase(cellNets_.at(pin.compPin().cell), id);
  }
  for (const NetPin& pin : pins) {
    if (pin.isIo()) {
      design_.ioPins.at(pin.ioPin());  // range check
      continue;
    }
    const CompPinRef ref = pin.compPin();
    const Component& comp = design_.components.at(ref.cell);
    library_.macro(comp.macro).pins.at(ref.pin);  // range check
  }
  n.pins = std::move(pins);
  for (const NetPin& pin : n.pins) {
    if (!pin.isIo()) indexInsert(cellNets_.at(pin.compPin().cell), id);
  }
}

void Database::removeLastCell() {
  if (design_.components.empty()) {
    throw std::logic_error("removeLastCell: no cells");
  }
  const CellId id = numCells() - 1;
  if (!cellNets_.at(id).empty()) {
    throw std::logic_error("removeLastCell: cell still referenced by nets");
  }
  cellByName_.erase(design_.components.back().name);
  design_.components.pop_back();
  cellNets_.pop_back();
}

void Database::removeLastNet() {
  if (design_.nets.empty()) throw std::logic_error("removeLastNet: no nets");
  const NetId id = numNets() - 1;
  for (const NetPin& pin : design_.nets.back().pins) {
    if (!pin.isIo()) indexErase(cellNets_.at(pin.compPin().cell), id);
  }
  netByName_.erase(design_.nets.back().name);
  design_.nets.pop_back();
}

void Database::setCellFixed(CellId id, bool fixed) {
  design_.components.at(id).fixed = fixed;
}

double Database::utilization() const {
  Coord cellArea = 0;
  for (const Component& comp : design_.components) {
    const Macro& macro = library_.macro(comp.macro);
    cellArea += macro.width * macro.height;
  }
  Coord rowArea = 0;
  for (const Row& r : design_.rows) {
    rowArea += static_cast<Coord>(r.numSites) * siteWidth() * rowHeight();
  }
  if (rowArea == 0) return 0.0;
  return static_cast<double>(cellArea) / static_cast<double>(rowArea);
}

}  // namespace crp::db
