// ECO (engineering change order) deltas: the incremental mutation
// language of the flow (docs/eco.md).
//
// An EcoDelta names a small set of edits against a placed-and-routed
// design — cells moved, cells added, cells removed, nets added, pins
// rewired — by cell/net/pin *name*, so deltas survive serialization and
// apply to any database holding the same design.  applyEcoDelta()
// applies one transactionally: either every edit lands and the touched
// cells are placement-legal, or the database is left byte-identical to
// its pre-call state and an EcoError describes the first problem.
//
// Removal semantics: ids are append-only in Database, so a removed cell
// is detached from every net and tombstoned in place as a fixed
// blockage (its site stays occupied, like a filler cell).  This keeps
// every CellId/NetId stable across any ECO history, which is what lets
// the router and pricing caches patch state instead of rebuilding it.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "db/database.hpp"

namespace crp::obs {
class Json;
}

namespace crp::db {

/// Move an existing cell's lower-left corner to `to` (DBU).
struct EcoMove {
  std::string cell;
  Point to;
};

/// Create a new component (placed; pins get wired by addNets/addPins).
struct EcoCellAdd {
  std::string name;
  std::string macro;  ///< library macro name
  Point pos;
  Orientation orient = Orientation::kN;
};

/// Names one (net, component pin) attachment for rewiring.
struct EcoPinRef {
  std::string net;
  std::string cell;
  std::string pin;  ///< macro pin name
};

/// Create a new net over existing (possibly just-added) cells.
struct EcoNetAdd {
  std::string name;
  std::vector<std::pair<std::string, std::string>> pins;  ///< (cell, pin)
};

/// One engineering change order.  Application order: addCells, moves,
/// removePins, addPins, addNets, removeCells — so moves and new nets
/// may reference cells added by the same delta.
struct EcoDelta {
  static constexpr int kSchemaVersion = 1;

  std::vector<EcoMove> moves;
  std::vector<EcoCellAdd> addCells;
  std::vector<std::string> removeCells;
  std::vector<EcoNetAdd> addNets;
  std::vector<EcoPinRef> addPins;
  std::vector<EcoPinRef> removePins;

  bool empty() const {
    return moves.empty() && addCells.empty() && removeCells.empty() &&
           addNets.empty() && addPins.empty() && removePins.empty();
  }

  /// Number of atomic edits (the "delta size" of bench/fuzz reports).
  std::size_t size() const {
    return moves.size() + addCells.size() + removeCells.size() +
           addNets.size() + addPins.size() + removePins.size();
  }
};

/// Thrown by applyEcoDelta / ecoDeltaFromJson on an invalid delta; the
/// database is untouched when application throws.
class EcoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One cell touched by a delta: its id plus the pre-delta position (the
/// post-delta position is readable from the database).
struct EcoTouchedCell {
  CellId cell = kInvalidId;
  Point oldPos;
  bool added = false;
};

/// What a successful applyEcoDelta changed — the input to the ECO
/// engine's dirty-region computation.
struct EcoApplyResult {
  std::vector<EcoTouchedCell> cells;  ///< moved + added + tombstoned cells
  std::vector<NetId> nets;  ///< nets whose terminal set changed (sorted)
  int movedCells = 0;
  int addedCells = 0;
  int removedCells = 0;
  int addedNets = 0;
  int rewiredPins = 0;
};

/// Applies `delta` transactionally (all-or-nothing; see file comment).
EcoApplyResult applyEcoDelta(Database& db, const EcoDelta& delta);

/// JSON codec (schema v1, docs/eco.md).  ecoDeltaFromJson throws
/// EcoError on an unknown schemaVersion or malformed field.
obs::Json ecoDeltaToJson(const EcoDelta& delta);
EcoDelta ecoDeltaFromJson(const obs::Json& json);

}  // namespace crp::db
