// Technology model: routing/cut layers, via definitions and the
// standard-cell site.  This mirrors the LEF subset used by the
// ISPD-2018 benchmarks: alternating-direction routing metal stack with
// per-layer pitch/width/spacing/min-area, single-cut via defs between
// adjacent metals, and one CORE site.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace crp::db {

using geom::Coord;
using geom::Rect;

/// Preferred routing direction of a metal layer.
enum class LayerDir : std::uint8_t { kHorizontal, kVertical };

inline LayerDir otherDir(LayerDir d) {
  return d == LayerDir::kHorizontal ? LayerDir::kVertical
                                    : LayerDir::kHorizontal;
}

/// One metal (routing) layer.
struct RoutingLayer {
  std::string name;
  int index = 0;        ///< 0-based position in the metal stack.
  LayerDir dir = LayerDir::kHorizontal;
  Coord pitch = 0;      ///< track pitch (DBU)
  Coord width = 0;      ///< default wire width (DBU)
  Coord spacing = 0;    ///< minimum same-layer spacing (DBU)
  Coord minArea = 0;    ///< minimum metal area (DBU^2)
  Coord offset = 0;     ///< track offset from die origin (DBU)
};

/// One cut layer between routing layers `below` and `below + 1`.
struct CutLayer {
  std::string name;
  int below = 0;  ///< index of the routing layer underneath
  Coord spacing = 0;
};

/// Via definition: a cut connecting routing layers `below` / `below+1`.
/// Shapes are centered on the via point.
struct ViaDef {
  std::string name;
  int below = 0;
  Rect bottomShape;  ///< metal shape on layer `below`, centered at origin
  Rect cutShape;     ///< cut shape, centered at origin
  Rect topShape;     ///< metal shape on layer `below + 1`, centered at origin
};

/// Standard-cell placement site.
struct Site {
  std::string name;
  Coord width = 0;
  Coord height = 0;
};

/// Full technology description.
class Tech {
 public:
  int dbuPerMicron = 1000;
  Site site;

  const std::vector<RoutingLayer>& layers() const { return layers_; }
  const std::vector<CutLayer>& cutLayers() const { return cutLayers_; }
  const std::vector<ViaDef>& vias() const { return vias_; }

  int numLayers() const { return static_cast<int>(layers_.size()); }

  RoutingLayer& layer(int index) { return layers_.at(index); }
  const RoutingLayer& layer(int index) const { return layers_.at(index); }

  /// Adds a routing layer at the top of the stack; returns its index.
  int addLayer(RoutingLayer layer);
  /// Adds a cut layer; `below` must reference an existing routing layer.
  void addCutLayer(CutLayer cut);
  /// Adds a via def; `below` must reference an existing routing layer.
  void addVia(ViaDef via);

  /// Finds a routing layer by name; nullopt when absent.
  std::optional<int> findLayer(const std::string& name) const;

  /// The default via def connecting `below` and `below + 1`; nullptr
  /// when none was registered.
  const ViaDef* defaultVia(int below) const;

  /// Builds a canonical stack: `numLayers` metals, metal1 horizontal,
  /// alternating direction, given pitch/width/spacing, with default
  /// single-cut vias between all adjacent layers.  Used by the
  /// benchmark generator and unit tests.
  static Tech makeDefault(int numLayers, Coord pitch, Coord width,
                          Coord spacing, Coord minArea, Coord siteWidth,
                          Coord rowHeight);

 private:
  std::vector<RoutingLayer> layers_;
  std::vector<CutLayer> cutLayers_;
  std::vector<ViaDef> vias_;
};

}  // namespace crp::db
