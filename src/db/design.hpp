// Design model (DEF side): die area, rows, routing tracks, placed
// components, IO pins, nets and blockages.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "db/tech.hpp"
#include "geom/geometry.hpp"

namespace crp::db {

using geom::Orientation;
using geom::Point;

using CellId = int;   ///< index into Design::components
using NetId = int;    ///< index into Design::nets
using IoPinId = int;  ///< index into Design::ioPins
inline constexpr int kInvalidId = -1;

/// A placed instance of a library macro.
struct Component {
  std::string name;
  int macro = 0;  ///< Library macro id
  Point pos;      ///< lower-left corner in DBU
  Orientation orient = Orientation::kN;
  bool fixed = false;
};

/// A top-level IO pin with a fixed physical location.
struct IoPin {
  std::string name;
  Point pos;      ///< access point in DBU
  int layer = 0;  ///< routing layer of the pin shape
  geom::Rect shape;  ///< physical shape (die frame)
};

/// Reference to a component pin: (component id, macro-pin index).
struct CompPinRef {
  CellId cell = kInvalidId;
  int pin = 0;

  friend bool operator==(const CompPinRef&, const CompPinRef&) = default;
};

/// A net terminal: either a component pin or a top-level IO pin.
struct NetPin {
  // variant index 0: component pin, 1: io pin
  std::variant<CompPinRef, IoPinId> ref;

  bool isIo() const { return ref.index() == 1; }
  const CompPinRef& compPin() const { return std::get<CompPinRef>(ref); }
  IoPinId ioPin() const { return std::get<IoPinId>(ref); }
};

/// A signal net.
struct Net {
  std::string name;
  std::vector<NetPin> pins;
};

/// A standard-cell row: `numSites` sites starting at `origin`.
struct Row {
  std::string name;
  Point origin;
  int numSites = 0;
  Orientation orient = Orientation::kN;
};

/// Routing tracks for one layer along one direction.
struct TrackGrid {
  int layer = 0;
  LayerDir dir = LayerDir::kHorizontal;  ///< direction wires run
  Coord start = 0;   ///< coordinate of the first track line
  Coord step = 0;    ///< pitch
  int count = 0;
};

/// A placement/routing blockage.
struct Blockage {
  int layer = kInvalidId;  ///< kInvalidId means placement blockage
  geom::Rect rect;
};

/// The design netlist + floorplan.  Plain data; the Database wraps it
/// with connectivity indices and invariant-preserving mutators.
struct Design {
  std::string name;
  geom::Rect dieArea;
  std::vector<Row> rows;
  std::vector<TrackGrid> tracks;
  std::vector<Component> components;
  std::vector<IoPin> ioPins;
  std::vector<Net> nets;
  std::vector<Blockage> blockages;

  /// GCell grid dimensions requested for global routing (cells per axis).
  int gcellCountX = 0;
  int gcellCountY = 0;
};

}  // namespace crp::db
