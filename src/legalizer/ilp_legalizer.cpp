#include "legalizer/ilp_legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ilp/model.hpp"
#include "obs/obs.hpp"

namespace crp::legalizer {

namespace {

using db::CellId;
using geom::Coord;
using geom::Point;
using geom::Rect;

/// A cell overlapping the window, with its span in window-site units.
struct WindowCell {
  CellId id = db::kInvalidId;
  Rect rect;
  bool movable = false;
};

}  // namespace

/// Geometry of the legalization window around a critical cell.
struct IlpLegalizer::Window {
  Coord xlo = 0;       ///< left edge, site-aligned to the row origin
  Coord xhi = 0;       ///< right edge
  int rowLo = 0;       ///< first row index
  int rowHi = 0;       ///< last row index (inclusive)
  std::vector<WindowCell> cells;  ///< cells intersecting the window
};

namespace {

/// Eq. 11 displacement cost of placing a cell at `pos` given its median
/// target: site-row weighted, which equals the DBU Manhattan distance
/// when positions are site/row aligned.
double eq11Cost(const Point& pos, const Point& median) {
  return static_cast<double>(geom::manhattan(pos, median));
}

/// All legal x positions (site-aligned, inside window and row) for a
/// cell of width `w` in row `rowIdx`.
std::vector<Coord> slotPositions(const db::Database& db, const Rect& window,
                                 int rowIdx, Coord w) {
  std::vector<Coord> xs;
  const db::Row& row = db.row(rowIdx);
  const Coord siteW = db.siteWidth();
  const Coord rowEnd = row.origin.x + row.numSites * siteW;
  Coord x = geom::snapDown(std::max(window.xlo, row.origin.x), row.origin.x,
                           siteW);
  if (x < std::max(window.xlo, row.origin.x)) x += siteW;
  const Coord xMax = std::min(window.xhi, rowEnd) - w;
  for (; x <= xMax; x += siteW) xs.push_back(x);
  return xs;
}

/// True when [x, x+w) at row `rowIdx` avoids every rect in `obstacles`.
bool spanFree(const std::vector<Rect>& obstacles, Coord x, Coord w,
              Coord rowY, Coord rowH) {
  const Rect span{x, rowY, x + w, rowY + rowH};
  for (const Rect& obs : obstacles) {
    if (span.overlaps(obs)) return false;
  }
  return true;
}

}  // namespace

IlpLegalizer::IlpLegalizer(const db::Database& db, LegalizerOptions options)
    : db_(db), options_(options) {
  rowIndex_.resize(static_cast<std::size_t>(db_.numRows()));
  for (CellId cell = 0; cell < db_.numCells(); ++cell) {
    const Rect rect = db_.cellRect(cell);
    maxCellWidth_ = std::max(maxCellWidth_, rect.width());
    // rowsInSpan is O(log rows + hits); the all-rows scan this replaced
    // made construction O(cells x rows), which dominated at 100K cells.
    for (const int r : db_.rowsInSpan(rect.ylo, rect.yhi)) {
      rowIndex_[static_cast<std::size_t>(r)].push_back(
          RowEntry{rect.xlo, cell});
    }
  }
  for (std::vector<RowEntry>& bucket : rowIndex_) {
    std::sort(bucket.begin(), bucket.end(),
              [](const RowEntry& a, const RowEntry& b) {
                if (a.xlo != b.xlo) return a.xlo < b.xlo;
                return a.id < b.id;
              });
  }
}

std::vector<LegalizedCandidate> IlpLegalizer::generate(db::CellId cell) const {
  obs::ObsContextScope obsScope(options_.obsContext);
  CRP_OBS_SPAN("gcp", "legalizer.window");
  CRP_OBS_COUNT("legalizer.windows", 1);
  std::vector<LegalizedCandidate> candidates;
  const auto& comp = db_.cell(cell);
  const auto& macro = db_.macroOf(cell);
  const Coord siteW = db_.siteWidth();
  const Coord rowH = db_.rowHeight();
  const Coord w = macro.width;
  // Rows the critical cell occupies (1 for classic cells; multi-row
  // cells need that many consecutive rows free at every slot).
  const int span = std::max(
      1, static_cast<int>(rowH > 0 ? macro.height / rowH : 1));

  // ---- window geometry ------------------------------------------------------
  const int centerRow = db_.rowAt(comp.pos.y);
  if (centerRow == db::kInvalidId || db_.numRows() == 0) return candidates;
  int rowLo = centerRow - options_.numRows / 2;
  int rowHi = rowLo + options_.numRows - 1;
  rowLo = std::max(rowLo, 0);
  rowHi = std::min(rowHi, db_.numRows() - 1);

  const Coord windowWidth = static_cast<Coord>(options_.numSites) * siteW;
  Coord xlo = comp.pos.x + w / 2 - windowWidth / 2;
  xlo = geom::snapNearest(xlo, db_.row(centerRow).origin.x, siteW);
  xlo = std::max(xlo, db_.design().dieArea.xlo);
  Coord xhi = std::min(xlo + windowWidth, db_.design().dieArea.xhi);
  const Rect windowRect{xlo, db_.row(rowLo).origin.y, xhi,
                        db_.row(rowHi).origin.y + rowH};
  // Occupancy must also see cells in the extra rows a multi-row
  // critical cell's slots reach above the window.
  const int occRowHi = std::min(rowHi + span - 1, db_.numRows() - 1);
  const Rect occRect{windowRect.xlo, windowRect.ylo, windowRect.xhi,
                     db_.row(occRowHi).origin.y + rowH};

  // ---- window occupancy -----------------------------------------------------
  // Row-bucket index query (see constructor).  Cells land in ascending
  // id order after the sort, matching the full-scan order this replaced
  // — the ILP sees an identical window, so flows are value-exact.
  std::vector<WindowCell> windowCells;
  for (int rowIdx = rowLo; rowIdx <= occRowHi; ++rowIdx) {
    const std::vector<RowEntry>& bucket =
        rowIndex_[static_cast<std::size_t>(rowIdx)];
    const Coord first = windowRect.xlo - maxCellWidth_;
    auto it = std::lower_bound(bucket.begin(), bucket.end(), first,
                               [](const RowEntry& entry, Coord x) {
                                 return entry.xlo < x;
                               });
    for (; it != bucket.end() && it->xlo < occRect.xhi; ++it) {
      if (it->id == cell) continue;
      const Rect rect = db_.cellRect(it->id);
      if (!rect.overlaps(occRect)) continue;
      // Fixed cells (macro blocks) and multi-row cells are immovable
      // blockers here: the conflict ILP only relocates classic
      // single-row cells, whose slot/packing model matches rows 1:1.
      const bool movable =
          !db_.cell(it->id).fixed && !db_.isMultiRow(it->id);
      windowCells.push_back(WindowCell{it->id, rect, movable});
    }
  }
  std::sort(windowCells.begin(), windowCells.end(),
            [](const WindowCell& a, const WindowCell& b) {
              return a.id < b.id;
            });
  windowCells.erase(std::unique(windowCells.begin(), windowCells.end(),
                                [](const WindowCell& a, const WindowCell& b) {
                                  return a.id == b.id;
                                }),
                    windowCells.end());

  const Point median = db_.medianPosition(cell);

  // ---- enumerate and rank target slots for the critical cell ---------------
  struct Slot {
    Point pos;
    double cost;
    std::vector<CellId> conflicts;  ///< movable cells displaced by it
  };
  std::vector<Slot> slots;
  for (int rowIdx = rowLo; rowIdx <= rowHi; ++rowIdx) {
    const db::Row& row = db_.row(rowIdx);
    // A multi-row cell's base row must have `span` contiguous rows
    // stacked above it, each covering the slot's x range on the site
    // grid (the kBadRowSpan legality rules).
    bool rowsOk = true;
    for (int s = 1; s < span; ++s) {
      const int upper = db_.rowAtOrigin(row.origin.y + s * rowH);
      if (upper == db::kInvalidId) {
        rowsOk = false;
        break;
      }
    }
    if (!rowsOk) continue;
    for (const Coord x : slotPositions(db_, windowRect, rowIdx, w)) {
      const Point pos{x, row.origin.y};
      if (pos == comp.pos) continue;  // current position added by caller
      bool xOk = true;
      for (int s = 1; s < span && xOk; ++s) {
        const db::Row& upper =
            db_.row(db_.rowAtOrigin(row.origin.y + s * rowH));
        const Coord upperEnd = upper.origin.x + upper.numSites * siteW;
        xOk = x >= upper.origin.x && x + w <= upperEnd &&
              (x - upper.origin.x) % siteW == 0;
      }
      if (!xOk) continue;
      const Rect target{x, row.origin.y, x + w,
                        row.origin.y + macro.height};
      std::vector<CellId> conflicts;
      bool blocked = false;
      for (const WindowCell& wc : windowCells) {
        if (!target.overlaps(wc.rect)) continue;
        if (!wc.movable) {
          blocked = true;
          break;
        }
        conflicts.push_back(wc.id);
      }
      if (blocked) continue;
      if (static_cast<int>(conflicts.size()) >
          options_.maxCellsPerIlp - 1) {
        continue;  // too many conflicts for one ILP execution
      }
      slots.push_back(Slot{pos, eq11Cost(pos, median), std::move(conflicts)});
    }
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
    return a.pos.x < b.pos.x;
  });

  // ---- legalize each slot (ILP when conflicts exist) ------------------------
  for (const Slot& slot : slots) {
    if (static_cast<int>(candidates.size()) >= options_.maxCandidates) break;
    const Rect target{slot.pos.x, slot.pos.y, slot.pos.x + w,
                      slot.pos.y + macro.height};
    if (slot.conflicts.empty()) {
      candidates.push_back(LegalizedCandidate{slot.pos, {}, slot.cost});
      continue;
    }

    // Obstacles for the conflict cells: the critical cell's target plus
    // every window cell that is not being relocated.
    std::vector<Rect> obstacles{target};
    for (const WindowCell& wc : windowCells) {
      if (std::find(slot.conflicts.begin(), slot.conflicts.end(), wc.id) ==
          slot.conflicts.end()) {
        obstacles.push_back(wc.rect);
      }
    }

    // Build the Eq. 11 ILP over the conflict cells.
    ilp::Model model;
    struct VarInfo {
      CellId cell;
      Point pos;
      int row;
      int siteLo, siteHi;  // covered site units (window coordinates)
    };
    std::vector<VarInfo> varInfo;
    bool anyCellWithoutSlots = false;
    for (const CellId conflictCell : slot.conflicts) {
      const auto& cMacro = db_.macroOf(conflictCell);
      const Point cMedian = db_.medianPosition(conflictCell);
      std::vector<int> cellVars;
      for (int rowIdx = rowLo; rowIdx <= rowHi; ++rowIdx) {
        const db::Row& row = db_.row(rowIdx);
        for (const Coord x :
             slotPositions(db_, windowRect, rowIdx, cMacro.width)) {
          if (!spanFree(obstacles, x, cMacro.width, row.origin.y, rowH)) {
            continue;
          }
          const Point pos{x, row.origin.y};
          const int var = model.addBinary(eq11Cost(pos, cMedian));
          cellVars.push_back(var);
          varInfo.push_back(VarInfo{
              conflictCell, pos, rowIdx,
              static_cast<int>((x - xlo) / siteW),
              static_cast<int>((x + cMacro.width - 1 - xlo) / siteW)});
        }
      }
      if (cellVars.empty()) {
        anyCellWithoutSlots = true;
        break;
      }
      model.addOneHot(cellVars);
    }
    if (anyCellWithoutSlots) continue;

    // Unit-site packing rows between the conflict cells.
    const int sitesInWindow = static_cast<int>((xhi - xlo) / siteW) + 1;
    for (int rowIdx = rowLo; rowIdx <= rowHi; ++rowIdx) {
      for (int site = 0; site < sitesInWindow; ++site) {
        std::vector<int> covering;
        for (int v = 0; v < static_cast<int>(varInfo.size()); ++v) {
          if (varInfo[v].row == rowIdx && varInfo[v].siteLo <= site &&
              site <= varInfo[v].siteHi) {
            covering.push_back(v);
          }
        }
        if (covering.size() > 1) model.addPacking(covering);
      }
    }

    CRP_OBS_COUNT("legalizer.ilp_solves", 1);
    const ilp::IlpResult solution = ilp::solveIlp(model);
    if (solution.status != ilp::IlpStatus::kOptimal &&
        solution.status != ilp::IlpStatus::kFeasible) {
      continue;  // no legal rearrangement for this slot
    }

    LegalizedCandidate candidate;
    candidate.position = slot.pos;
    candidate.legalizerCost = slot.cost + solution.objective;
    for (int v = 0; v < static_cast<int>(varInfo.size()); ++v) {
      if (solution.x[v] > 0.5) {
        candidate.displaced.emplace_back(varInfo[v].cell, varInfo[v].pos);
      }
    }
    candidates.push_back(std::move(candidate));
  }
  CRP_OBS_COUNT("legalizer.candidates", candidates.size());
  return candidates;
}

bool candidateIsLegal(const db::Database& db, db::CellId cell,
                      const LegalizedCandidate& candidate) {
  // Final rects of every moved cell.
  std::vector<std::pair<CellId, Rect>> moved;
  auto rectAt = [&](CellId id, const Point& pos) {
    const auto& macro = db.macroOf(id);
    return Rect{pos.x, pos.y, pos.x + macro.width, pos.y + macro.height};
  };
  moved.emplace_back(cell, rectAt(cell, candidate.position));
  for (const auto& [id, pos] : candidate.displaced) {
    moved.emplace_back(id, rectAt(id, pos));
  }

  const auto& die = db.design().dieArea;
  const Coord rowH = db.rowHeight();
  for (const auto& [id, rect] : moved) {
    if (!die.contains(rect)) return false;
    if (rowH <= 0 || (rect.yhi - rect.ylo) % rowH != 0) return false;
    const int span = static_cast<int>((rect.yhi - rect.ylo) / rowH);
    for (int s = 0; s < span; ++s) {
      const int rowIdx = db.rowAtOrigin(rect.ylo + s * rowH);
      if (rowIdx == db::kInvalidId) return false;
      const db::Row& row = db.row(rowIdx);
      if ((rect.xlo - row.origin.x) % db.siteWidth() != 0) return false;
      if (rect.xlo < row.origin.x ||
          rect.xhi > row.origin.x + row.numSites * db.siteWidth()) {
        return false;
      }
    }
  }
  // Pairwise among moved.
  for (std::size_t i = 0; i < moved.size(); ++i) {
    for (std::size_t j = i + 1; j < moved.size(); ++j) {
      if (moved[i].second.overlaps(moved[j].second)) return false;
    }
  }
  // Against every untouched cell.
  for (CellId other = 0; other < db.numCells(); ++other) {
    bool isMoved = false;
    for (const auto& [id, rect] : moved) {
      if (id == other) isMoved = true;
    }
    if (isMoved) continue;
    const Rect otherRect = db.cellRect(other);
    for (const auto& [id, rect] : moved) {
      if (rect.overlaps(otherRect)) return false;
    }
  }
  return true;
}

}  // namespace crp::legalizer
