// The ILP-based legalizer of paper §IV.B.2 (Eq. 11).
//
// For a critical cell c, the legalizer works inside a local window of
// N_site sites x N_row rows centered on c.  It proposes up to
// `maxCandidates` legal positions for c; for every proposed position
// that collides with neighbours, a small ILP (|cells| <= 3 including c)
// relocates the colliding "conflict cells" inside the window,
// minimizing the Eq. 11 displacement-toward-median cost:
//
//   cost_c^(i,j) = W_site * |X - X_med| + H_row * |Y - Y_med|
//
// Every returned candidate therefore carries a fully legal assignment
// (the framework invariant: "for any new candidate position a
// legalized placement solution for the entire circuit must be
// guaranteed", §II).
#pragma once

#include <vector>

#include "db/database.hpp"
#include "ilp/solver.hpp"

namespace crp::legalizer {

/// One legal placement proposal for a critical cell.
struct LegalizedCandidate {
  geom::Point position;  ///< lower-left target for the critical cell
  /// Conflict cells displaced to make the position legal (possibly
  /// empty), with their new legal lower-left positions.
  std::vector<std::pair<db::CellId, geom::Point>> displaced;
  double legalizerCost = 0.0;  ///< Eq. 11 objective of this assignment
};

struct LegalizerOptions {
  int numSites = 20;       ///< N_site (paper value)
  int numRows = 5;         ///< N_row (paper value)
  int maxCellsPerIlp = 3;  ///< |cells| per ILP execution (paper value)
  int maxCandidates = 6;   ///< positions proposed per critical cell
};

class IlpLegalizer {
 public:
  IlpLegalizer(const db::Database& db, LegalizerOptions options = {})
      : db_(db), options_(options) {}

  /// Proposes legal candidates for `cell` (its current position is NOT
  /// included — the framework adds it separately per Alg. 2 line 2).
  /// Thread-safe: reads the database, never mutates it.
  std::vector<LegalizedCandidate> generate(db::CellId cell) const;

  const LegalizerOptions& options() const { return options_; }

 private:
  struct Window;

  const db::Database& db_;
  LegalizerOptions options_;
};

/// Verifies that applying `candidate` for `cell` yields a placement
/// with no overlaps / boundary violations among the affected cells and
/// their window neighbours.  Exposed for tests and debug assertions.
bool candidateIsLegal(const db::Database& db, db::CellId cell,
                      const LegalizedCandidate& candidate);

}  // namespace crp::legalizer
