// The ILP-based legalizer of paper §IV.B.2 (Eq. 11).
//
// For a critical cell c, the legalizer works inside a local window of
// N_site sites x N_row rows centered on c.  It proposes up to
// `maxCandidates` legal positions for c; for every proposed position
// that collides with neighbours, a small ILP (|cells| <= 3 including c)
// relocates the colliding "conflict cells" inside the window,
// minimizing the Eq. 11 displacement-toward-median cost:
//
//   cost_c^(i,j) = W_site * |X - X_med| + H_row * |Y - Y_med|
//
// Every returned candidate therefore carries a fully legal assignment
// (the framework invariant: "for any new candidate position a
// legalized placement solution for the entire circuit must be
// guaranteed", §II).
#pragma once

#include <vector>

#include "db/database.hpp"
#include "ilp/solver.hpp"

namespace crp::obs {
class ObsContext;
}

namespace crp::legalizer {

/// One legal placement proposal for a critical cell.
struct LegalizedCandidate {
  geom::Point position;  ///< lower-left target for the critical cell
  /// Conflict cells displaced to make the position legal (possibly
  /// empty), with their new legal lower-left positions.
  std::vector<std::pair<db::CellId, geom::Point>> displaced;
  double legalizerCost = 0.0;  ///< Eq. 11 objective of this assignment
};

struct LegalizerOptions {
  int numSites = 20;       ///< N_site (paper value)
  int numRows = 5;         ///< N_row (paper value)
  int maxCellsPerIlp = 3;  ///< |cells| per ILP execution (paper value)
  int maxCandidates = 6;   ///< positions proposed per critical cell
  /// Observability context generate() records into (ilp.* counters —
  /// the ones RunReport fingerprints).  Null resolves ambiently (the
  /// GCP pool workers inherit the framework's context through the
  /// submit-time task wrapper), so only standalone multi-session users
  /// need to set it.  Must outlive the legalizer when set.
  obs::ObsContext* obsContext = nullptr;
};

class IlpLegalizer {
 public:
  /// Snapshots a row-bucketed spatial index of the current cell
  /// positions (every consumer — the GCP phase, tests, benches —
  /// constructs a fresh legalizer after positions change; the framework
  /// builds one per iteration).  The index turns the per-window
  /// occupancy query from a full-database scan into a scan of the
  /// window's rows, which is what keeps GCP cost proportional to the
  /// critical set instead of critical-set x design size.
  IlpLegalizer(const db::Database& db, LegalizerOptions options = {});

  /// Proposes legal candidates for `cell` (its current position is NOT
  /// included — the framework adds it separately per Alg. 2 line 2).
  /// Thread-safe: reads the database and the snapshot index, never
  /// mutates either.  Positions must not have changed since
  /// construction.
  std::vector<LegalizedCandidate> generate(db::CellId cell) const;

  const LegalizerOptions& options() const { return options_; }

 private:
  struct Window;

  /// One cell's x-span within a row bucket, sorted by xlo.
  struct RowEntry {
    geom::Coord xlo = 0;
    db::CellId id = db::kInvalidId;
  };

  const db::Database& db_;
  LegalizerOptions options_;
  std::vector<std::vector<RowEntry>> rowIndex_;  ///< one bucket per row
  geom::Coord maxCellWidth_ = 0;
};

/// Verifies that applying `candidate` for `cell` yields a placement
/// with no overlaps / boundary violations among the affected cells and
/// their window neighbours.  Exposed for tests and debug assertions.
bool candidateIsLegal(const db::Database& db, db::CellId cell,
                      const LegalizedCandidate& candidate);

}  // namespace crp::legalizer
