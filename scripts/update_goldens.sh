#!/usr/bin/env bash
# Regenerates the golden-regression fingerprints in tests/golden/.
#
# The golden test (tests/test_golden.cpp) first proves the fingerprint
# is identical across --threads 1 and --threads 8; only then does
# CRP_UPDATE_GOLDENS=1 overwrite the golden file.  Inspect the diff of
# tests/golden/*.json before committing — a changed golden is a changed
# flow result and needs a justification in the commit message.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)" --target test_golden

CRP_UPDATE_GOLDENS=1 ctest --test-dir "$BUILD" --output-on-failure -L golden

git -P diff --stat -- tests/golden || true
