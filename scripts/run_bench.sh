#!/usr/bin/env bash
# ECC pricing-engine + parallel-RRR benchmark driver
# (docs/pricing_cache.md, DESIGN.md "Parallel conflict-free RRR
# batching").
#
#   1. Release build, run the bench_micro ECC benchmarks + bench_fig2,
#      and distill BENCH_micro.json at the repo root: naive vs engine
#      ECC wall time, the speedup, and the cache/delta reuse rate.
#   2. UD-phase batch reroute at 1 vs 8 router threads, distilled into
#      BENCH_parallel_rrr.json.  The >= 2x speedup gate only applies
#      when the machine exposes >= 4 CPUs — on fewer cores the wall
#      clock is recorded honestly (parallelism cannot help there; the
#      batch plan and routes are identical either way).  The same wave
#      under the 4x4 chip-tile decomposition (docs/tiling.md) lands in
#      BENCH_tile.json: the >= 4x-at-8-threads gate applies only when
#      nproc >= 8 (same multicore policy), but the per-tile
#      plan-parallelism — tile-local vs boundary nets, tiles carrying
#      work, merge wall clock — is always recorded.
#   3. Incremental-ECO vs from-scratch over the crp_test1..10 suite
#      (bench_eco), distilled into BENCH_eco.json with a >= 10x
#      median-speedup gate for the recorded 0.5%-of-cells deltas.
#   4. The scale ladder (bench_scale): the full flow at 10K/30K/100K
#      cells with macros and mixed heights on, wall clock per stage and
#      peak RSS per rung, every rung ending in a clean paranoid audit —
#      distilled into BENCH_scale.json.  Skip with CRP_SKIP_SCALE=1.
#   5. The crp serve daemon under load (crp_loadgen): >= 1000 bmgen
#      jobs over 8 concurrent client sessions, p50/p99 latency and
#      jobs/sec distilled into BENCH_serve.json, and a clean SIGTERM
#      shutdown required.
#   6. Every BENCH_*.json is stamped with the host CPU count and the
#      git SHA of the tree that produced it, so recorded numbers stay
#      attributable.
#   7. ThreadPool + pricing + observability + parallel-reroute + serve tests
#      under ThreadSanitizer (CRP_SANITIZE=thread, separate build
#      tree), guarding the sharded cache, the dynamic parallelFor
#      scheduling, the metrics registry / span tracer / flight-recorder
#      ring, the concurrent rerouteNet batches, and the tile-equivalence
#      battery (concurrent tile workers merging boundary demand through
#      per-tile views).  Skip with CRP_SKIP_TSAN=1.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)"

# Repetitions + random interleaving: ECC phases are ~20 ms, so on a
# shared machine run-to-run noise swamps a single measurement; medians
# over interleaved repetitions keep the speedup stable.
"$BUILD"/bench/bench_micro \
  --benchmark_filter='BM_EccPriceCandidates' \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json \
  --benchmark_out=ecc_bench_raw.json \
  --benchmark_out_format=json

python3 - <<'EOF'
import json

with open("ecc_bench_raw.json") as f:
    raw = json.load(f)

rows = {b["name"]: b for b in raw["benchmarks"]
        if b.get("aggregate_name") == "median"}
off = rows["BM_EccPriceCandidates/cache:0/delta:0_median"]
on = rows["BM_EccPriceCandidates/cache:1/delta:1_median"]

def ms(row):
    assert row["time_unit"] == "ms", row["time_unit"]
    return row["real_time"]

reused = on["nets_priced"] - on["pattern_routes"]
summary = {
    "benchmark": "BM_EccPriceCandidates",
    "suite": "bmgen micro (600 cells), every 3rd cell critical",
    "ecc_naive_ms": round(ms(off), 3),
    "ecc_engine_ms": round(ms(on), 3),
    "speedup": round(ms(off) / ms(on), 2),
    "nets_priced": int(on["nets_priced"]),
    "pattern_routes": int(on["pattern_routes"]),
    "cache_hit_rate": round(reused / on["nets_priced"], 4),
    "context": raw["context"],
}
with open("BENCH_micro.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

print("BENCH_micro.json:")
print(json.dumps({k: v for k, v in summary.items() if k != "context"},
                 indent=2))
assert summary["speedup"] >= 3.0, \
    f"ECC engine speedup {summary['speedup']}x below the 3x target"
EOF
rm -f ecc_bench_raw.json

# ---- parallel UD batch reroute ---------------------------------------------
"$BUILD"/bench/bench_micro \
  --benchmark_filter='BM_UdBatchReroute' \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json \
  --benchmark_out=rrr_bench_raw.json \
  --benchmark_out_format=json

python3 - <<'EOF'
import json
import os

with open("rrr_bench_raw.json") as f:
    raw = json.load(f)

rows = {b["name"]: b for b in raw["benchmarks"]
        if b.get("aggregate_name") == "median"}
serial = rows["BM_UdBatchReroute/threads:1_median"]
parallel = rows["BM_UdBatchReroute/threads:8_median"]

def ms(row):
    assert row["time_unit"] == "ms", row["time_unit"]
    return row["real_time"]

cpus = os.cpu_count() or 1
summary = {
    "benchmark": "BM_UdBatchReroute",
    "suite": "bmgen 2400 cells, fine gcell grid, every 9th cell shifted 4 gcells",
    "cpus": cpus,
    "ud_reroute_serial_ms": round(ms(serial), 3),
    "ud_reroute_threads8_ms": round(ms(parallel), 3),
    "speedup": round(ms(serial) / ms(parallel), 2),
    "nets": int(parallel["nets"]),
    "batches": int(parallel["batches"]),
    "context": raw["context"],
}
with open("BENCH_parallel_rrr.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

print("BENCH_parallel_rrr.json:")
print(json.dumps({k: v for k, v in summary.items() if k != "context"},
                 indent=2))
# Wall-clock parallel speedup needs actual cores; on a small container
# the run still guards correctness (the routes are bit-identical) but a
# speedup assertion would only measure the machine, not the code.
if cpus >= 4:
    assert summary["speedup"] >= 2.0, \
        f"parallel RRR speedup {summary['speedup']}x below the 2x target"
else:
    print(f"note: only {cpus} CPU(s) visible - skipping the 2x gate")
EOF
rm -f rrr_bench_raw.json

# ---- chip-tile batch reroute ------------------------------------------------
"$BUILD"/bench/bench_micro \
  --benchmark_filter='BM_TileBatchReroute' \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json \
  --benchmark_out=tile_bench_raw.json \
  --benchmark_out_format=json

python3 - <<'EOF'
import json
import os

with open("tile_bench_raw.json") as f:
    raw = json.load(f)

rows = {b["name"]: b for b in raw["benchmarks"]
        if b.get("aggregate_name") == "median"}
serial = rows["BM_TileBatchReroute/tiles:1/threads:1_median"]
tiled = rows["BM_TileBatchReroute/tiles:4/threads:8_median"]

def ms(row):
    assert row["time_unit"] == "ms", row["time_unit"]
    return row["real_time"]

cpus = os.cpu_count() or 1
total = int(tiled["tile_local"]) + int(tiled["boundary"])
summary = {
    "benchmark": "BM_TileBatchReroute",
    "suite": "bmgen 2400 cells, fine gcell grid, every 9th cell shifted 4 gcells",
    "cpus": cpus,
    "tile_grid": "4x4",
    "ud_reroute_untiled_serial_ms": round(ms(serial), 3),
    "ud_reroute_tiled_threads8_ms": round(ms(tiled), 3),
    "speedup": round(ms(serial) / ms(tiled), 2),
    "nets": int(tiled["nets"]),
    "batches": int(tiled["batches"]),
    "tile_local_nets": int(tiled["tile_local"]),
    "boundary_nets": int(tiled["boundary"]),
    "tile_local_frac": round(int(tiled["tile_local"]) / total, 4) if total else 0.0,
    "tiles_used": int(tiled["tiles_used"]),
    "merge_ms": round(tiled["merge_ms"], 3),
    "context": raw["context"],
}
with open("BENCH_tile.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

print("BENCH_tile.json:")
print(json.dumps({k: v for k, v in summary.items() if k != "context"},
                 indent=2))
# PR 3 multicore policy: the wall-clock gate measures the machine as
# much as the code, so it arms only with enough real cores for the
# 8-thread row; the plan-parallelism counters above are recorded
# unconditionally either way.
if cpus >= 8:
    assert summary["speedup"] >= 4.0, \
        f"tiled RRR speedup {summary['speedup']}x below the 4x target"
else:
    print(f"note: only {cpus} CPU(s) visible - skipping the 4x gate")
EOF
rm -f tile_bench_raw.json

# ---- spatial-observability overhead ----------------------------------------
# One CR&P iteration with heatmap snapshots off vs on.  The off row is
# the PR-2 era hot path and must stay within noise of it (the ECC/RRR
# medians above already run snapshot-free); the on row records what the
# spatial tier costs so regressions in capture/delta-encoding show up
# here rather than in user flows.
"$BUILD"/bench/bench_micro \
  --benchmark_filter='BM_CrpIterationSpatial' \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json \
  --benchmark_out=obs_bench_raw.json \
  --benchmark_out_format=json

python3 - <<'EOF'
import json

with open("obs_bench_raw.json") as f:
    raw = json.load(f)

rows = {b["name"]: b for b in raw["benchmarks"]
        if b.get("aggregate_name") == "median"}
off = rows["BM_CrpIterationSpatial/snapshots:0_median"]
on = rows["BM_CrpIterationSpatial/snapshots:1_median"]

def ms(row):
    assert row["time_unit"] == "ms", row["time_unit"]
    return row["real_time"]

summary = {
    "benchmark": "BM_CrpIterationSpatial",
    "suite": "bmgen micro (600 cells), one CR&P iteration",
    "iteration_snapshots_off_ms": round(ms(off), 3),
    "iteration_snapshots_on_ms": round(ms(on), 3),
    "snapshot_overhead_percent": round(100.0 * (ms(on) - ms(off)) / ms(off), 2),
    "heatmaps_per_run": int(on["heatmaps"]),
    "context": raw["context"],
}
with open("BENCH_obs_spatial.json", "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

print("BENCH_obs_spatial.json:")
print(json.dumps({k: v for k, v in summary.items() if k != "context"},
                 indent=2))
assert summary["heatmaps_per_run"] == 2, summary["heatmaps_per_run"]
# Guard rail, not a target: capture + delta encoding must stay a small
# fraction of an iteration (the grids are a few thousand doubles).
assert summary["snapshot_overhead_percent"] < 50.0, \
    f"spatial tier costs {summary['snapshot_overhead_percent']}% per iteration"
EOF
rm -f obs_bench_raw.json

"$BUILD"/bench/bench_fig2

# ---- incremental ECO vs from-scratch ---------------------------------------
# Paired runs over the 10-design suite (check::runEcoVsScratch): every
# design must audit clean on both sides and hold the parity bounds; the
# gate is the median wall-clock speedup of the recorded configuration
# (0.5%-of-cells clustered deltas, min-of-3 timing).
"$BUILD"/bench/bench_eco

python3 - <<'EOF'
import json

with open("BENCH_eco.json") as f:
    summary = json.load(f)

print("BENCH_eco.json:")
print(json.dumps({k: v for k, v in summary.items() if k != "designs"},
                 indent=2))
assert summary["failures"] == 0, \
    f"{summary['failures']} design(s) failed the eco-vs-scratch pairing"
assert summary["median_speedup"] >= 10.0, \
    f"eco median speedup {summary['median_speedup']}x below the 10x target"
EOF

# ---- scale ladder -----------------------------------------------------------
# Growth curve, not a speedup gate: wall clock per stage and peak RSS
# at 10K/30K/100K cells (scenario axes on), each rung audited paranoid.
# bench_scale exits nonzero when any rung's final audit is dirty.
if [[ "${CRP_SKIP_SCALE:-0}" != "1" ]]; then
  "$BUILD"/bench/bench_scale
fi

# ---- serve daemon load test -------------------------------------------------
# Boot the daemon on a private socket, flood it with >= 1000 bmgen jobs
# over 8 client connections, and distill latency percentiles +
# throughput into BENCH_serve.json (crp_loadgen writes it directly; the
# provenance stamp below adds host CPUs + git SHA).  The daemon must
# come down clean on SIGTERM — a hung or crashed shutdown fails the
# `wait`.
SERVE_SOCK="$(mktemp -u /tmp/crp-serve-bench.XXXXXX.sock)"
"$BUILD"/tools/crp serve --socket "$SERVE_SOCK" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SERVE_SOCK" ]] && break; sleep 0.05; done
"$BUILD"/tools/crp_loadgen --socket "$SERVE_SOCK" \
  --jobs 1000 --clients 8 --cells 150 --out BENCH_serve.json
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"

python3 - <<'EOF'
import json

with open("BENCH_serve.json") as f:
    summary = json.load(f)

print("BENCH_serve.json:")
print(json.dumps(summary, indent=2))
assert summary["jobs"] >= 1000, summary["jobs"]
assert 0 < summary["latencyMsP50"] <= summary["latencyMsP99"], summary
assert summary["jobsPerSec"] > 0, summary
EOF

# ---- provenance stamp ------------------------------------------------------
# Machine-checkable dirty state: an explicit boolean plus the changed-
# path count, not just a "-dirty" sha suffix a consumer would have to
# string-match for (crp_report ledger --skip-dirty keys off the same
# facts).
python3 - <<'EOF'
import glob
import json
import os
import subprocess

sha = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                     text=True).stdout.strip() or "unknown"
status = subprocess.run(["git", "status", "--porcelain"],
                        capture_output=True, text=True).stdout.strip()
dirty_files = len(status.splitlines()) if status else 0
host = {"cpus": os.cpu_count() or 1,
        "git_sha": sha + ("-dirty" if dirty_files else ""),
        "dirty": dirty_files > 0,
        "dirty_files": dirty_files}
for path in sorted(glob.glob("BENCH_*.json")):
    with open(path) as f:
        data = json.load(f)
    data["host"] = host
    with open(path, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"stamped {path} with {host}")
EOF

# ---- run ledger -------------------------------------------------------------
# Fold every bench artifact into the persistent run ledger (one bench
# entry per BENCH_*.json, numeric fields only), then gate the newest
# entry of every series against its predecessor.  The first run of a
# fresh ledger passes trivially (nothing to gate against); later runs
# fail here when a latency/seconds metric grows or a speedup/throughput
# metric shrinks past the tolerance band (docs/observability.md).
LEDGER="${CRP_LEDGER:-crp_ledger.jsonl}"
for bench in BENCH_*.json; do
  [[ -e "$bench" ]] || continue
  "$BUILD"/tools/crp_report ledger "$LEDGER" --add-bench "$bench"
done
"$BUILD"/tools/crp_report ledger "$LEDGER" --check 1

if [[ "${CRP_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_BUILD=build-tsan
  cmake -B "$TSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCRP_SANITIZE=thread
  cmake --build "$TSAN_BUILD" -j "$(nproc)" \
    --target test_util test_pricing test_obs test_groute test_serve test_tile
  ctest --test-dir "$TSAN_BUILD" --output-on-failure \
    -R 'ThreadPool|PricingCache|PricingEngine|Metrics|Tracer|ObsMacros|FlightRecorder|ParallelReroute|ObsContext|Logger|Serve|TileEquivalence|TileDemandView'
fi
