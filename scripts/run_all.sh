#!/usr/bin/env bash
# Full reproduction driver: build, test, and regenerate every table and
# figure, logging to test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md points to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
