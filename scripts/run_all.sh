#!/usr/bin/env bash
# Full reproduction driver: build, test, and regenerate every table and
# figure, logging to test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md points to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# Observability smoke: run the CLI flow on a tiny generated design with
# the spatial tier armed and validate every emitted artifact — the
# Chrome trace, the v2 RunReport (with its k-entry timeline), the
# delta-encoded heatmap series (k+1 snapshots), and the flight-recorder
# dump — then render each through crp_report.
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/crp generate "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  --cells 200 --seed 3
build/tools/crp run "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  "$OBS_TMP/out.def" "$OBS_TMP/out.guide" --k 2 --snapshots 1 \
  --trace-out "$OBS_TMP/trace.json" --report-out "$OBS_TMP/report.json" \
  --heatmaps-out "$OBS_TMP/heatmaps.json" --flight-out "$OBS_TMP/flight.json"
python3 - "$OBS_TMP/trace.json" "$OBS_TMP/report.json" \
  "$OBS_TMP/heatmaps.json" "$OBS_TMP/flight.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
assert all(e["ph"] == "X" for e in trace["traceEvents"])

with open(sys.argv[2]) as f:
    report = json.load(f)
assert report["schemaVersion"] == 2, report.get("schemaVersion")
assert len(report["phases"]) == 5, report["phases"]
assert len(report["timeline"]) == 2, "expected a k-entry timeline"
for record in report["timeline"]:
    assert "overflowBefore" in record and "overflowAfter" in record, record

with open(sys.argv[3]) as f:
    heatmaps = json.load(f)
assert heatmaps["count"] == 3, "expected k+1 heatmap snapshots"
assert heatmaps["base"]["label"] == "post-gr", heatmaps["base"]["label"]
assert len(heatmaps["deltas"]) == 2, "one delta per iteration"
# The timeline's overflow bracket must agree with the snapshots.
assert report["timeline"][-1]["overflowAfter"] == \
    heatmaps["deltas"][-1]["totalOverflow"]

with open(sys.argv[4]) as f:
    flight = json.load(f)
assert flight["schemaVersion"] == 1, flight.get("schemaVersion")
assert flight["events"], "flight recorder captured no events"
assert flight["latestHeatmap"]["label"] == "iter1", \
    "flight dump lost the latest heatmap"

print(f"obs smoke ok: {len(trace['traceEvents'])} trace events, "
      f"{len(report['phases'])} phases, {len(report['timeline'])} timeline "
      f"records, {heatmaps['count']} heatmaps, "
      f"{len(flight['events'])} flight events")
EOF

# The offline renderer must be able to display every artifact.
build/tools/crp_report heatmap "$OBS_TMP/heatmaps.json" \
  --ppm "$OBS_TMP/heatmap.ppm" > /dev/null
head -c 2 "$OBS_TMP/heatmap.ppm" | grep -q P3
build/tools/crp_report timeline "$OBS_TMP/report.json" \
  --csv "$OBS_TMP/timeline.csv" > /dev/null
grep -q overflowBefore "$OBS_TMP/timeline.csv"
build/tools/crp_report flight "$OBS_TMP/flight.json" > /dev/null
echo "crp_report render ok"

# Serve smoke (docs/serve.md): boot the daemon on a private socket,
# drive concurrent bmgen -> run -> eco -> report chains through the
# wire protocol with crp_loadgen's validation mode (streamed iteration
# events in order, timeline + heatmap delta per event, fingerprints on
# every final frame, report fingerprint == eco fingerprint), then
# require a clean SIGTERM shutdown (exit 0).
SERVE_SOCK="$OBS_TMP/serve.sock"
build/tools/crp serve --socket "$SERVE_SOCK" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SERVE_SOCK" ]] && break; sleep 0.05; done
build/tools/crp_loadgen --socket "$SERVE_SOCK" --chain 1 --jobs 4 --clients 2
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "serve smoke ok"

for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Differential fuzz campaign + ASan/UBSan leg (docs/checking.md): the
# audited flow must agree with itself bit-for-bit across paired
# configurations on 25 seeds.  Skip with CRP_SKIP_FUZZ=1.
if [[ "${CRP_SKIP_FUZZ:-0}" != "1" ]]; then
  scripts/run_fuzz.sh
fi
