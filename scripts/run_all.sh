#!/usr/bin/env bash
# Full reproduction driver: build, test, and regenerate every table and
# figure, logging to test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md points to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# Observability smoke: run the CLI flow on a tiny generated design with
# the spatial tier armed and validate every emitted artifact — the
# Chrome trace, the v2 RunReport (with its k-entry timeline), the
# delta-encoded heatmap series (k+1 snapshots), and the flight-recorder
# dump — then render each through crp_report.
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/crp generate "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  --cells 200 --seed 3
build/tools/crp run "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  "$OBS_TMP/out.def" "$OBS_TMP/out.guide" --k 2 --snapshots 1 \
  --trace-out "$OBS_TMP/trace.json" --report-out "$OBS_TMP/report.json" \
  --heatmaps-out "$OBS_TMP/heatmaps.json" --flight-out "$OBS_TMP/flight.json"
python3 - "$OBS_TMP/trace.json" "$OBS_TMP/report.json" \
  "$OBS_TMP/heatmaps.json" "$OBS_TMP/flight.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
assert all(e["ph"] == "X" for e in trace["traceEvents"])

with open(sys.argv[2]) as f:
    report = json.load(f)
assert report["schemaVersion"] == 2, report.get("schemaVersion")
assert len(report["phases"]) == 5, report["phases"]
assert len(report["timeline"]) == 2, "expected a k-entry timeline"
for record in report["timeline"]:
    assert "overflowBefore" in record and "overflowAfter" in record, record

with open(sys.argv[3]) as f:
    heatmaps = json.load(f)
assert heatmaps["count"] == 3, "expected k+1 heatmap snapshots"
assert heatmaps["base"]["label"] == "post-gr", heatmaps["base"]["label"]
assert len(heatmaps["deltas"]) == 2, "one delta per iteration"
# The timeline's overflow bracket must agree with the snapshots.
assert report["timeline"][-1]["overflowAfter"] == \
    heatmaps["deltas"][-1]["totalOverflow"]

with open(sys.argv[4]) as f:
    flight = json.load(f)
assert flight["schemaVersion"] == 1, flight.get("schemaVersion")
assert flight["events"], "flight recorder captured no events"
assert flight["latestHeatmap"]["label"] == "iter1", \
    "flight dump lost the latest heatmap"

print(f"obs smoke ok: {len(trace['traceEvents'])} trace events, "
      f"{len(report['phases'])} phases, {len(report['timeline'])} timeline "
      f"records, {heatmaps['count']} heatmaps, "
      f"{len(flight['events'])} flight events")
EOF

# The offline renderer must be able to display every artifact.
build/tools/crp_report heatmap "$OBS_TMP/heatmaps.json" \
  --ppm "$OBS_TMP/heatmap.ppm" > /dev/null
head -c 2 "$OBS_TMP/heatmap.ppm" | grep -q P3
build/tools/crp_report timeline "$OBS_TMP/report.json" \
  --csv "$OBS_TMP/timeline.csv" > /dev/null
grep -q overflowBefore "$OBS_TMP/timeline.csv"
build/tools/crp_report flight "$OBS_TMP/flight.json" > /dev/null
echo "crp_report render ok"

# Determinism attestation (docs/observability.md): a second run with the
# same design and seed must produce a bit-identical fingerprint, which
# crp_report --diff certifies with exit 0 (exit 3 means divergence).
# Both runs also land in a ledger, and --check must find no regression.
build/tools/crp run "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  "$OBS_TMP/out2.def" "$OBS_TMP/out2.guide" --k 2 --snapshots 1 \
  --report-out "$OBS_TMP/report2.json" \
  --metrics-out "$OBS_TMP/metrics.prom" --ledger "$OBS_TMP/ledger.jsonl"
build/tools/crp run "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  "$OBS_TMP/out3.def" "$OBS_TMP/out3.guide" --k 2 --snapshots 1 \
  --report-out "$OBS_TMP/report3.json" --ledger "$OBS_TMP/ledger.jsonl"
build/tools/crp_report --diff "$OBS_TMP/report2.json" "$OBS_TMP/report3.json"
grep -q "# TYPE" "$OBS_TMP/metrics.prom"
build/tools/crp_report ledger "$OBS_TMP/ledger.jsonl" --check 1
echo "determinism diff ok"

# Serve smoke (docs/serve.md): boot the daemon on a private socket,
# drive concurrent bmgen -> run -> eco -> report chains through the
# wire protocol with crp_loadgen's validation mode (streamed iteration
# events in order, timeline + heatmap delta per event, fingerprints on
# every final frame, report fingerprint == eco fingerprint), then
# require a clean SIGTERM shutdown (exit 0).
SERVE_SOCK="$OBS_TMP/serve.sock"
build/tools/crp serve --socket "$SERVE_SOCK" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -S "$SERVE_SOCK" ]] && break; sleep 0.05; done
build/tools/crp_loadgen --socket "$SERVE_SOCK" --chain 1 --jobs 4 --clients 2

# Telemetry scrape (docs/serve.md): pull the server-wide Prometheus
# payload through the `metrics` op and the self-instrumentation stats,
# then validate the exposition format line by line — every sample must
# match the text-format grammar and every histogram's cumulative
# buckets must be monotone and agree with its _count.
python3 - "$SERVE_SOCK" <<'EOF'
import json, re, socket, struct, sys

def call(sock_path, request):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(sock_path)
    payload = json.dumps(request).encode()
    s.sendall(struct.pack(">I", len(payload)) + payload)
    header = b""
    while len(header) < 4:
        header += s.recv(4 - len(header))
    (length,) = struct.unpack(">I", header)
    body = b""
    while len(body) < length:
        body += s.recv(length - len(body))
    s.close()
    return json.loads(body)

stats = call(sys.argv[1], {"op": "stats"})
assert stats["ok"], stats
assert stats["uptimeSeconds"] >= 0, stats
assert stats["bytesIn"] > 0 and stats["bytesOut"] > 0, stats
ops = stats["ops"]
assert ops["run"]["requests"] >= 1, "loadgen chains should have run jobs"
assert ops["run"]["latencyP50Micros"] <= ops["run"]["latencyP99Micros"]

reply = call(sys.argv[1], {"op": "metrics"})
assert reply["ok"], reply
assert reply["contentType"].startswith("text/plain"), reply["contentType"]
text = reply["metrics"]

sample_re = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9eE.+-]*$')
type_re = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
buckets, counts = {}, {}
samples = 0
for line in text.splitlines():
    if line.startswith("#"):
        assert type_re.match(line), f"bad TYPE line: {line!r}"
        continue
    assert sample_re.match(line), f"bad sample line: {line!r}"
    samples += 1
    name, value = line.split(" ", 1)
    if "_bucket{" in name:
        buckets.setdefault(name.split("_bucket{")[0], []).append(int(value))
    elif name.endswith("_count"):
        counts[name[: -len("_count")]] = int(value)
assert samples > 0, "metrics payload is empty"
assert buckets, "expected serve latency histograms in the payload"
for metric, series in buckets.items():
    assert all(a <= b for a, b in zip(series, series[1:])), \
        f"{metric} buckets are not cumulative: {series}"
    assert series[-1] == counts[metric], \
        f"{metric} +Inf bucket disagrees with _count"
print(f"metrics scrape ok: {samples} samples, "
      f"{len(buckets)} histograms, {sum(v['requests'] for v in ops.values())} "
      f"requests across {len(ops)} ops")
EOF

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "serve smoke ok"

for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Differential fuzz campaign + ASan/UBSan leg (docs/checking.md): the
# audited flow must agree with itself bit-for-bit across paired
# configurations on 25 seeds.  Skip with CRP_SKIP_FUZZ=1.
if [[ "${CRP_SKIP_FUZZ:-0}" != "1" ]]; then
  scripts/run_fuzz.sh
fi
