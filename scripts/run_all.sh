#!/usr/bin/env bash
# Full reproduction driver: build, test, and regenerate every table and
# figure, logging to test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md points to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

# Observability smoke: run the CLI flow on a tiny generated design and
# validate that the emitted trace and report files load as JSON (the
# trace must also be Chrome trace_event-shaped).
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
build/tools/crp generate "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  --cells 200 --seed 3
build/tools/crp run "$OBS_TMP/tiny.lef" "$OBS_TMP/tiny.def" \
  "$OBS_TMP/out.def" "$OBS_TMP/out.guide" --k 2 \
  --trace-out "$OBS_TMP/trace.json" --report-out "$OBS_TMP/report.json"
python3 - "$OBS_TMP/trace.json" "$OBS_TMP/report.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
assert all(e["ph"] == "X" for e in trace["traceEvents"])

with open(sys.argv[2]) as f:
    report = json.load(f)
assert report["schemaVersion"] == 1, report.get("schemaVersion")
assert len(report["phases"]) == 5, report["phases"]
print(f"obs smoke ok: {len(trace['traceEvents'])} trace events, "
      f"{len(report['phases'])} phases")
EOF

for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Differential fuzz campaign + ASan/UBSan leg (docs/checking.md): the
# audited flow must agree with itself bit-for-bit across paired
# configurations on 25 seeds.  Skip with CRP_SKIP_FUZZ=1.
if [[ "${CRP_SKIP_FUZZ:-0}" != "1" ]]; then
  scripts/run_fuzz.sh
fi
