#!/usr/bin/env bash
# Invariant-audit fuzz driver (docs/checking.md).
#
#   1. Release build, then the fixed-seed smoke campaign: 25 seeds at
#      k=2 with paranoid in-flow audits.  Every seed runs four paired
#      configurations (serial / rt-4 / cache-off / obs-off) that must
#      all finish with clean audits and a bit-identical state
#      fingerprint, plus the eco-vs-scratch paired leg (clean audits on
#      both sides and WL/via/overflow parity; disable with
#      CRP_FUZZ_ECO=0).  Failing seeds are minimized and dumped under
#      fuzz-artifacts/ with a one-line replay command.
#   2. Scenario-axis campaigns (docs/scenarios.md): the same 25-seed
#      window re-run with fixed macro blocks + routing blockages
#      (--macros) and again with mixed cell heights (--multi-row),
#      both at paranoid audit level.  Skip with CRP_SKIP_SCENARIOS=1.
#      A third pass arms the chip-tile decomposition (--tiles 2,2,
#      docs/tiling.md), adding the tiled-2x2 paired leg that must match
#      the serial fingerprints exactly.  Skip with CRP_SKIP_TILES=1.
#   3. A shorter campaign in a separate ASan+UBSan build tree
#      (CRP_SANITIZE=address), so memory errors on the audited paths
#      surface even when every invariant holds.  Skip with
#      CRP_SKIP_ASAN=1.
#
# Nightly use: raise the range via the environment, e.g.
#   CRP_FUZZ_SEEDS=500 CRP_FUZZ_SEED_START=1000 scripts/run_fuzz.sh
# (each night a fresh, disjoint seed window; see docs/checking.md).
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${CRP_FUZZ_SEEDS:-25}"
SEED_START="${CRP_FUZZ_SEED_START:-1}"
ECO="${CRP_FUZZ_ECO:-1}"

BUILD=build
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)" --target crp_fuzz

"$BUILD"/tools/crp_fuzz --seeds "$SEEDS" --seed-start "$SEED_START" --k 2 \
  --eco "$ECO" --artifacts fuzz-artifacts

if [[ "${CRP_SKIP_SCENARIOS:-0}" != "1" ]]; then
  # Macro/blockage axis: up to 3 fixed macro blocks per seed, each with
  # full lower-layer obstructions and a partial routing blockage.
  "$BUILD"/tools/crp_fuzz --seeds "$SEEDS" --seed-start "$SEED_START" --k 2 \
    --macros 3 --artifacts fuzz-artifacts-macro
  # Mixed-height axis: per-seed multi-row cell fraction in [0.05, 0.3].
  "$BUILD"/tools/crp_fuzz --seeds "$SEEDS" --seed-start "$SEED_START" --k 2 \
    --multi-row 0.3 --artifacts fuzz-artifacts-multirow
fi

if [[ "${CRP_SKIP_TILES:-0}" != "1" ]]; then
  # Chip-tile axis: the tiled-2x2 paired leg (concurrent tile workers
  # merging boundary demand) must keep every fingerprint bit-identical.
  "$BUILD"/tools/crp_fuzz --seeds "$SEEDS" --seed-start "$SEED_START" --k 2 \
    --tiles 2,2 --artifacts fuzz-artifacts-tile
fi

if [[ "${CRP_SKIP_ASAN:-0}" != "1" ]]; then
  ASAN_BUILD=build-asan
  cmake -B "$ASAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCRP_SANITIZE=address
  cmake --build "$ASAN_BUILD" -j "$(nproc)" --target crp_fuzz
  "$ASAN_BUILD"/tools/crp_fuzz --seeds 6 --seed-start "$SEED_START" --k 1 \
    --artifacts fuzz-artifacts-asan
fi
