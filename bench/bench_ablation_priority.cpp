// Ablation A2 (paper §V.B reason 2): criticality-ordered cell
// selection.  Runs CR&P k=10 with Alg. 1's cost-sorted selection
// (paper) vs random order (the [18]-style "all cells, no priority"),
// under the same per-iteration selection budget.
//
// Environment: CRP_SCALE (default 120).
#include <iostream>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using bench::FlowKind;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 140.0);
  auto suite = bmgen::ispdLikeSuite(scale);
  std::vector<bmgen::SuiteEntry> picks;
  for (const auto& entry : suite) {
    if (entry.hotspots >= 2) picks.push_back(entry);
  }

  std::cout << "=== Ablation A2: criticality priority in Alg. 1 (k=10, "
               "scale 1/"
            << scale << ") ===\n";
  std::cout << padRight("Benchmark", 12) << padLeft("BL vias", 9)
            << padLeft("sorted%", 9) << padLeft("random%", 9)
            << padLeft("BL wl", 11) << padLeft("sorted%", 9)
            << padLeft("random%", 9) << "\n";

  for (const auto& entry : picks) {
    const auto design = bmgen::generateBenchmark(entry.spec);
    const auto base =
        bench::runFlow(entry, FlowKind::kBaseline, 1, {}, 1e9, &design);
    const auto sorted =
        bench::runFlow(entry, FlowKind::kCrp, 10, {}, 1e9, &design);
    core::CrpOptions randomOrder;
    randomOrder.prioritizeByCost = false;
    const auto random = bench::runFlow(entry, FlowKind::kCrp, 10,
                                       randomOrder, 1e9, &design);

    auto improveVias = [&](long value) {
      return eval::improvementPercent(
          static_cast<double>(base.metrics.viaCount),
          static_cast<double>(value));
    };
    auto improveWl = [&](geom::Coord value) {
      return eval::improvementPercent(
          static_cast<double>(base.metrics.wirelengthDbu),
          static_cast<double>(value));
    };
    std::cout << padRight(entry.name, 12)
              << padLeft(std::to_string(base.metrics.viaCount), 9)
              << padLeft(bench::pct(improveVias(sorted.metrics.viaCount)),
                         9)
              << padLeft(bench::pct(improveVias(random.metrics.viaCount)),
                         9)
              << padLeft(std::to_string(base.metrics.wirelengthDbu), 11)
              << padLeft(
                     bench::pct(improveWl(sorted.metrics.wirelengthDbu)), 9)
              << padLeft(
                     bench::pct(improveWl(random.metrics.wirelengthDbu)), 9)
              << "\n";
  }
  std::cout << "expectation: cost-sorted selection targets the congested "
               "nets first and extracts more improvement per move.\n";
  return 0;
}
