// BENCH_scale.json: the scale ladder (docs/scenarios.md).
//
// Runs the full in-process flow — generate -> global route -> CR&P
// (k=1) -> final paranoid audit — at 10K, 30K and 100K cells, with
// both scenario axes on (a handful of fixed macro blocks and 10%
// double-height cells), and records the wall clock of every stage plus
// the process peak RSS after each rung.  The point is not a speedup
// gate but a growth curve: a superlinear blowup in any stage (or in
// memory) between rungs is a regression even when every small-design
// bench stays green.
//
// The final audit runs the full paranoid catalog (placement legality
// incl. macro overlap and height alignment, demand exactness, blockage
// demand, I/O round trips) and every rung must come back clean — the
// ladder doubles as the "100K cells through the whole flow, audited"
// acceptance check.
//
// Env knobs: CRP_SCALE_K (CR&P iterations, default 1),
// CRP_SCALE_ROUTER_THREADS (default 1).
#include <sys/resource.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bmgen/generator.hpp"
#include "check/audit.hpp"
#include "crp/framework.hpp"
#include "flow_common.hpp"
#include "groute/global_router.hpp"
#include "obs/json.hpp"
#include "util/timer.hpp"

namespace {

/// Peak resident set size of this process in MiB (ru_maxrss is KiB on
/// Linux).  Monotone over the run, so per-rung deltas understate later
/// rungs that fit inside an earlier peak — the absolute value is the
/// honest number, and the ladder runs smallest-first so the 100K rung's
/// reading is its own.
double peakRssMib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

}  // namespace

int main() {
  using namespace crp;

  const int k = bench::envInt("CRP_SCALE_K", 1);
  const int routerThreads = bench::envInt("CRP_SCALE_ROUTER_THREADS", 1);
  const std::vector<int> ladder = {10000, 30000, 100000};

  std::printf("bench_scale: k=%d, router threads=%d\n\n", k, routerThreads);
  std::printf("%8s %8s %8s %8s %9s %9s %10s  %s\n", "cells", "gen_s", "gr_s",
              "crp_s", "audit_s", "total_s", "peak_mib", "audit");

  obs::Json rungs = obs::Json::array();
  int failures = 0;
  for (const int cells : ladder) {
    bmgen::BenchmarkSpec spec;
    spec.name = "scale_" + std::to_string(cells);
    spec.targetCells = cells;
    spec.seed = 29;
    spec.utilization = 0.75;
    spec.hotspots = 2;
    spec.macroCount = 4;
    spec.multiRowFrac = 0.1;

    util::Stopwatch watch;
    auto db = bmgen::generateBenchmark(spec);
    const double genSeconds = watch.seconds();

    watch.restart();
    groute::GlobalRouterOptions routerOptions;
    routerOptions.routerThreads = routerThreads;
    groute::GlobalRouter router(db, routerOptions);
    router.run();
    const double grSeconds = watch.seconds();

    watch.restart();
    core::CrpOptions options;
    options.iterations = k;
    options.routerThreads = routerThreads;
    core::CrpFramework framework(db, router, options);
    framework.run();
    const double crpSeconds = watch.seconds();

    watch.restart();
    const check::DbAuditor auditor(db, &router);
    const check::AuditReport report = auditor.auditAll();
    const double auditSeconds = watch.seconds();
    if (!report.clean()) {
      ++failures;
      std::printf("audit FAILED at %d cells:\n%s\n", cells,
                  report.summary().c_str());
    }

    const double rssMib = peakRssMib();
    const double totalSeconds =
        genSeconds + grSeconds + crpSeconds + auditSeconds;
    std::printf("%8d %8.2f %8.2f %8.2f %9.2f %9.2f %10.1f  %s\n", db.numCells(),
                genSeconds, grSeconds, crpSeconds, auditSeconds, totalSeconds,
                rssMib, report.clean() ? "clean" : "DIRTY");

    obs::Json row = obs::Json::object();
    row.set("target_cells", cells);
    row.set("cells", db.numCells());
    row.set("nets", db.numNets());
    row.set("generate_seconds", genSeconds);
    row.set("global_route_seconds", grSeconds);
    row.set("crp_seconds", crpSeconds);
    row.set("audit_seconds", auditSeconds);
    row.set("total_seconds", totalSeconds);
    row.set("peak_rss_mib", rssMib);
    row.set("audit_clean", report.clean());
    rungs.append(std::move(row));
  }

  obs::Json summary = obs::Json::object();
  summary.set("benchmark", "bench_scale");
  summary.set("suite", "bmgen scale ladder, macros + mixed heights");
  summary.set("crp_iterations", k);
  summary.set("router_threads", routerThreads);
  summary.set("failures", failures);
  summary.set("rungs", std::move(rungs));

  std::ofstream out("BENCH_scale.json");
  out << summary.dump(2) << "\n";
  std::printf("\nwrote BENCH_scale.json\n");
  return failures == 0 ? 0 : 1;
}
