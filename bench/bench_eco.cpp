// BENCH_eco.json: incremental ECO vs from-scratch rebuild over the
// crp_test1..10 suite (ISSUE "Incremental ECO engine").
//
// For every suite entry the paired runner (check::runEcoVsScratch)
// takes one base flow to convergence, derives a clustered
// 0.5%-of-cells EcoDelta from the result, and then finishes the job
// twice from identical copies of that state: once through
// CrpFramework::runEco (dirty-region patch) and once through a full
// global route + CR&P re-run.  Both sides must audit clean and agree
// within the parity bounds; the numbers recorded here are the wall
// clocks of the two finishing paths and their ratio.  Target: >= 10x
// median speedup for deltas touching <= 1% of cells (in-flow audits
// are off so the timing measures the engines, not the checkers; the
// fuzz harness runs the same pairing with paranoid audits).
//
// Each pair is repeated CRP_ECO_REPS times and the per-side minimum
// wall clock is kept: the work on both sides is deterministic for a
// fixed seed, so min-of-N is a pure scheduler-noise filter, not
// cherry-picking — every rep must still audit clean.
//
// Env knobs: CRP_SCALE (suite divisor, default 40), CRP_ECO_BASE_K,
// CRP_ECO_K, CRP_ECO_FRAC (delta size as a cell fraction),
// CRP_ECO_REPS (timing repetitions per design, default 3).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bmgen/suite.hpp"
#include "check/eco_equivalence.hpp"
#include "flow_common.hpp"
#include "obs/json.hpp"

int main() {
  using namespace crp;

  const double scale = bench::envDouble("CRP_SCALE", 40.0);
  const int baseK = bench::envInt("CRP_ECO_BASE_K", 2);
  const int ecoK = bench::envInt("CRP_ECO_K", 1);
  const double frac = bench::envDouble("CRP_ECO_FRAC", 0.005);
  const int reps = std::max(1, bench::envInt("CRP_ECO_REPS", 3));

  const std::vector<bmgen::SuiteEntry> suite = bmgen::ispdLikeSuite(scale);

  std::printf("bench_eco: scale 1/%g, base k=%d, eco k=%d, frac=%g, reps=%d\n\n",
              scale, baseK, ecoK, frac, reps);
  std::printf("%-10s %6s %6s %6s %6s %9s %8s %10s %8s  %s\n", "design",
              "cells", "edits", "dirty", "scope", "patch_ms", "eco_ms",
              "scratch_ms", "speedup", "status");

  obs::Json designs = obs::Json::array();
  std::vector<double> speedups;
  int failures = 0;
  for (const bmgen::SuiteEntry& entry : suite) {
    check::EcoPairOptions options;
    options.baseIterations = baseK;
    options.ecoIterations = ecoK;
    options.auditLevel = check::AuditLevel::kOff;  // timing run
    options.routerThreads = 1;
    options.perturbSeed = entry.spec.seed;
    options.perturbFrac = frac;
    check::EcoPairResult r = check::runEcoVsScratch(entry.spec, options);
    for (int rep = 1; rep < reps && r.ok; ++rep) {
      const check::EcoPairResult again =
          check::runEcoVsScratch(entry.spec, options);
      if (!again.ok) {
        r = again;  // a failing rep fails the design
        break;
      }
      r.ecoSeconds = std::min(r.ecoSeconds, again.ecoSeconds);
      r.ecoPatchSeconds = std::min(r.ecoPatchSeconds, again.ecoPatchSeconds);
      r.scratchSeconds = std::min(r.scratchSeconds, again.scratchSeconds);
    }

    if (!r.ok) ++failures;
    if (r.ok) speedups.push_back(r.speedup());
    std::printf("%-10s %6d %6zu %6d %6d %9.1f %8.1f %10.1f %7.1fx  %s\n",
                entry.name.c_str(), entry.spec.targetCells, r.deltaEdits,
                r.dirtyNets, r.scopeCells, r.ecoPatchSeconds * 1e3,
                r.ecoSeconds * 1e3, r.scratchSeconds * 1e3, r.speedup(),
                r.ok ? "ok" : r.error.c_str());

    obs::Json row = obs::Json::object();
    row.set("design", entry.name);
    row.set("cells", entry.spec.targetCells);
    row.set("delta_edits", static_cast<long long>(r.deltaEdits));
    row.set("dirty_nets", r.dirtyNets);
    row.set("scope_cells", r.scopeCells);
    row.set("cache_evictions", static_cast<long long>(r.cacheEvictions));
    row.set("eco_patch_seconds", r.ecoPatchSeconds);
    row.set("eco_seconds", r.ecoSeconds);
    row.set("scratch_seconds", r.scratchSeconds);
    row.set("speedup", r.speedup());
    row.set("eco_wirelength_dbu", static_cast<long long>(r.ecoWirelength));
    row.set("scratch_wirelength_dbu",
            static_cast<long long>(r.scratchWirelength));
    row.set("ok", r.ok);
    if (!r.ok) row.set("error", r.error);
    designs.append(std::move(row));
  }

  double median = 0.0;
  if (!speedups.empty()) {
    std::sort(speedups.begin(), speedups.end());
    const std::size_t n = speedups.size();
    median = n % 2 == 1 ? speedups[n / 2]
                        : 0.5 * (speedups[n / 2 - 1] + speedups[n / 2]);
  }

  obs::Json summary = obs::Json::object();
  summary.set("benchmark", "bench_eco");
  summary.set("suite", "crp_test1..10, scale 1/" + std::to_string(scale));
  summary.set("base_iterations", baseK);
  summary.set("eco_iterations", ecoK);
  summary.set("perturb_frac", frac);
  summary.set("timing_reps", reps);
  summary.set("median_speedup", median);
  summary.set("failures", failures);
  summary.set("designs", std::move(designs));

  std::ofstream out("BENCH_eco.json");
  out << summary.dump(2) << "\n";

  std::printf("\nmedian speedup: %.1fx over %zu clean designs", median,
              speedups.size());
  if (failures > 0) std::printf("  (%d FAILED)", failures);
  std::printf("\nwrote BENCH_eco.json\n");
  return failures == 0 ? 0 : 1;
}
