// Reproduces Table II: "ISPD-2018 Contest Benchmarks Statistics".
//
// Prints the paper's contest-scale numbers next to the generated
// scaled suite's actual statistics (cells, nets, utilization), so the
// size ladder and cells/nets ratios can be compared at a glance.
//
// Environment: CRP_SCALE (suite scale divisor, default 40).
#include <iostream>

#include "bmgen/generator.hpp"
#include "bmgen/suite.hpp"
#include "flow_common.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace crp;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 40.0);
  const auto suite = bmgen::ispdLikeSuite(scale);

  std::cout << "=== Table II: benchmark statistics (paper vs generated, "
               "scale 1/"
            << scale << ") ===\n";
  std::cout << padRight("Circuit", 12) << padLeft("paper #nets", 12)
            << padLeft("paper #cells", 13) << padLeft("node", 6)
            << padLeft("gen #nets", 11) << padLeft("gen #cells", 12)
            << padLeft("util%", 7) << padLeft("hotspots", 9) << "\n";

  for (const auto& entry : suite) {
    const auto db = bmgen::generateBenchmark(entry.spec);
    std::cout << padRight(entry.name, 12)
              << padLeft(std::to_string(entry.paperNets / 1000) + "K", 12)
              << padLeft(std::to_string(entry.paperCells / 1000) + "K", 13)
              << padLeft(std::to_string(entry.techNode) + "nm", 6)
              << padLeft(std::to_string(db.numNets()), 11)
              << padLeft(std::to_string(db.numCells()), 12)
              << padLeft(util::formatDouble(100.0 * db.utilization(), 1), 7)
              << padLeft(std::to_string(entry.hotspots), 9) << "\n";
  }
  return 0;
}
