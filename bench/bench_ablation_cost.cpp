// Ablation A1 (paper §V.B reason 1): the congestion-aware cost
// function.  Runs CR&P k=10 with the Eq. 10 logistic congestion
// penalty enabled (paper) vs disabled (the [18]-style distance-only
// cost) on the congested suite designs, and reports the detailed-route
// deltas.  Expectation: the congestion-aware cost wins on vias/DRVs in
// congested designs — the paper's first stated reason for beating [18].
//
// Environment: CRP_SCALE (default 120).
#include <iostream>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using bench::FlowKind;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 140.0);
  auto suite = bmgen::ispdLikeSuite(scale);
  // Congested designs only (test5..test9 per the paper's narrative).
  std::vector<bmgen::SuiteEntry> picks;
  for (const auto& entry : suite) {
    if (entry.hotspots >= 2) picks.push_back(entry);
  }

  std::cout << "=== Ablation A1: congestion penalty in the cost function "
               "(k=10, scale 1/"
            << scale << ") ===\n";
  std::cout << padRight("Benchmark", 12) << padLeft("BL vias", 9)
            << padLeft("with%", 8) << padLeft("without%", 10)
            << padLeft("BL drv", 8) << padLeft("with", 6)
            << padLeft("without", 9) << "\n";

  for (const auto& entry : picks) {
    const auto design = bmgen::generateBenchmark(entry.spec);
    const auto base =
        bench::runFlow(entry, FlowKind::kBaseline, 1, {}, 1e9, &design);

    const auto withPenalty =
        bench::runFlow(entry, FlowKind::kCrp, 10, {}, 1e9, &design);

    core::CrpOptions noPenalty;
    auto db = design;
    // Disable the penalty inside the router's cost model for the whole
    // flow: rebuild the stack manually.
    groute::GlobalRouterOptions grOptions;
    grOptions.cost.congestionPenalty = false;
    util::Stopwatch watch;
    groute::GlobalRouter router(db, grOptions);
    router.run();
    core::CrpOptions crpOptions;
    crpOptions.iterations = 10;
    core::CrpFramework framework(db, router, crpOptions);
    framework.run();
    droute::DetailedRouter detailed(db, router.buildGuides());
    const auto without = eval::collectMetrics(detailed.run());

    auto improve = [&](geom::Coord value) {
      return eval::improvementPercent(
          static_cast<double>(base.metrics.viaCount),
          static_cast<double>(value));
    };
    std::cout << padRight(entry.name, 12)
              << padLeft(std::to_string(base.metrics.viaCount), 9)
              << padLeft(bench::pct(improve(withPenalty.metrics.viaCount)),
                         8)
              << padLeft(bench::pct(improve(without.viaCount)), 10)
              << padLeft(std::to_string(base.metrics.totalDrvs()), 8)
              << padLeft(std::to_string(withPenalty.metrics.totalDrvs()), 6)
              << padLeft(std::to_string(without.totalDrvs()), 9) << "\n";
  }
  std::cout << "expectation: the congestion-aware cost (with) preserves or "
               "beats the distance-only cost (without) on vias and DRVs.\n";
  return 0;
}
