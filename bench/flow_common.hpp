// Shared flow runner for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper by
// running full flows (generate -> GR -> optional optimizer -> DR ->
// evaluate) over the crp_test1..10 suite.  The suite scale divisor is
// tunable through the CRP_SCALE environment variable (paper scale = 1;
// default divisors keep every bench a few minutes on a laptop).
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baseline/median_ilp.hpp"
#include "bmgen/generator.hpp"
#include "bmgen/suite.hpp"
#include "crp/framework.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"
#include "obs/run_report.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace crp::bench {

enum class FlowKind {
  kBaseline,  ///< GR + DR only (CUGR + TritonRoute analogue)
  kMedian18,  ///< GR + median-move ILP [18] + DR
  kCrp,       ///< GR + CR&P(k) + DR
};

struct FlowOutcome {
  bool failed = false;  ///< only for [18]: budget exhausted
  eval::Metrics metrics;
  double grSeconds = 0.0;
  double optSeconds = 0.0;  ///< CR&P or [18] optimizer time
  double drSeconds = 0.0;
  double totalSeconds() const { return grSeconds + optSeconds + drSeconds; }
  int moves = 0;
  obs::RunReport crpReport;  ///< populated for kCrp (phase seconds etc.)
};

/// Environment override helper.
inline double envDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : fallback;
}

inline int envInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Runs one flow over one suite entry.  `iterations` is the CR&P k
/// (ignored unless kind == kCrp).  `options` tweaks (for ablations) are
/// applied on top of the paper defaults.  `prebuilt`, when given, skips
/// benchmark generation and copies the provided database instead (flows
/// mutate their copy) — benches comparing several flows on one design
/// share one generation this way.
inline FlowOutcome runFlow(const bmgen::SuiteEntry& entry, FlowKind kind,
                           int iterations = 1,
                           std::optional<core::CrpOptions> crpOverride = {},
                           double median18BudgetSeconds = 1e9,
                           const db::Database* prebuilt = nullptr) {
  FlowOutcome outcome;
  auto db = prebuilt != nullptr ? *prebuilt
                                : bmgen::generateBenchmark(entry.spec);

  util::Stopwatch watch;
  groute::GlobalRouter router(db);
  router.run();
  outcome.grSeconds = watch.seconds();

  watch.restart();
  switch (kind) {
    case FlowKind::kBaseline:
      break;
    case FlowKind::kMedian18: {
      baseline::BaselineOptions options;
      options.timeBudgetSeconds = median18BudgetSeconds;
      const auto result =
          baseline::runMedianIlpOptimizer(db, router, options);
      outcome.moves = result.movedCells;
      if (result.failed) {
        outcome.failed = true;
        outcome.optSeconds = watch.seconds();
        return outcome;
      }
      break;
    }
    case FlowKind::kCrp: {
      core::CrpOptions options =
          crpOverride.has_value() ? *crpOverride : core::CrpOptions{};
      options.iterations = iterations;
      core::CrpFramework framework(db, router, options);
      const auto report = framework.run();
      outcome.moves = report.totalMoves;
      outcome.crpReport = framework.runReport();
      break;
    }
  }
  outcome.optSeconds = watch.seconds();

  watch.restart();
  droute::DetailedRouter detailed(db, router.buildGuides());
  outcome.metrics = eval::collectMetrics(detailed.run());
  outcome.drSeconds = watch.seconds();
  return outcome;
}

/// Formats an improvement percentage like Table III (positive = better).
inline std::string pct(double value) {
  return util::formatDouble(value, 2);
}

}  // namespace crp::bench
