// Reproduces Fig. 3: runtime breakdown of the CUGR + CR&P + DetailedRoute
// flow — GR / GCP (generate candidate positions) / ECC (estimate
// candidates cost) / UD (update database) / Misc (labeling + selection
// ILP) / DR, in percent per design.
//
// Reproduction targets from the paper: ECC is the largest CR&P phase
// ("the estimation of candidates costs has the highest overhead"), and
// CR&P in total costs less than global routing on most designs (in our
// substrate, DR dominates both, as it does for TritonRoute).
//
// Environment: CRP_SCALE (default 120), CRP_MAX_DESIGNS (default 10),
// CRP_K (iterations, default 10).
#include <iostream>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using bench::FlowKind;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 120.0);
  const int maxDesigns = bench::envInt("CRP_MAX_DESIGNS", 10);
  const int k = bench::envInt("CRP_K", 10);
  auto suite = bmgen::ispdLikeSuite(scale);
  if (static_cast<int>(suite.size()) > maxDesigns) suite.resize(maxDesigns);

  std::cout << "=== Fig. 3: runtime breakdown % of GR+CR&P(k=" << k
            << ")+DR (scale 1/" << scale << ") ===\n";
  std::cout << padRight("Benchmark", 12) << padLeft("GR", 8)
            << padLeft("GCP", 8) << padLeft("ECC", 8) << padLeft("UD", 8)
            << padLeft("Misc", 8) << padLeft("DR", 8)
            << padLeft("ECC/CRP%", 10) << "\n";

  for (const auto& entry : suite) {
    const auto run = bench::runFlow(entry, FlowKind::kCrp, k);
    const auto& phases = run.crpReport;
    const double gcp = phases.phaseSeconds(core::kPhaseGcp);
    const double ecc = phases.phaseSeconds(core::kPhaseEcc);
    const double ud = phases.phaseSeconds(core::kPhaseUd);
    const double misc = phases.phaseSeconds(core::kPhaseLcc) +
                        phases.phaseSeconds(core::kPhaseSel);
    const double total = run.grSeconds + gcp + ecc + ud + misc +
                         run.drSeconds;
    auto share = [total](double seconds) {
      return util::formatDouble(total > 0 ? 100.0 * seconds / total : 0.0,
                                1);
    };
    const double crpTotal = gcp + ecc + ud + misc;
    std::cout << padRight(entry.name, 12) << padLeft(share(run.grSeconds), 8)
              << padLeft(share(gcp), 8) << padLeft(share(ecc), 8)
              << padLeft(share(ud), 8) << padLeft(share(misc), 8)
              << padLeft(share(run.drSeconds), 8)
              << padLeft(util::formatDouble(
                             crpTotal > 0 ? 100.0 * ecc / crpTotal : 0.0, 1),
                         10)
              << "\n";
  }
  std::cout << "paper shape: ECC dominates the CR&P phases; CR&P total "
               "stays below the routing engines.\n";
  return 0;
}
