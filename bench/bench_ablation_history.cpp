// Ablation A3 (paper §IV.B.1): the simulated-annealing history damping
// of Alg. 1 (hist_c / hist_m).  Runs CR&P k=10 with damping on (paper)
// vs off, reporting moves per iteration and final quality.  With
// damping off the framework re-selects the same congested cells every
// iteration and explores fewer distinct cells ("not be stuck with
// critical cells in congested areas").
//
// Environment: CRP_SCALE (default 120).
#include <iostream>
#include <set>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 120.0);
  auto suite = bmgen::ispdLikeSuite(scale);
  std::vector<bmgen::SuiteEntry> picks;
  for (const auto& entry : suite) {
    if (entry.hotspots >= 2) picks.push_back(entry);
  }

  std::cout << "=== Ablation A3: Alg. 1 history damping (k=10, scale 1/"
            << scale << ") ===\n";
  std::cout << padRight("Benchmark", 12) << padLeft("damp moves", 12)
            << padLeft("damp cells", 12) << padLeft("nodamp moves", 14)
            << padLeft("nodamp cells", 14) << "\n";

  for (const auto& entry : picks) {
    auto runVariant = [&](bool damping) {
      auto db = bmgen::generateBenchmark(entry.spec);
      groute::GlobalRouter router(db);
      router.run();
      core::CrpOptions options;
      options.iterations = 10;
      options.historyDamping = damping;
      core::CrpFramework framework(db, router, options);
      const auto report = framework.run();
      return std::make_pair(report.totalMoves,
                            framework.movedSet().size());
    };
    const auto [dampMoves, dampCells] = runVariant(true);
    const auto [noDampMoves, noDampCells] = runVariant(false);
    std::cout << padRight(entry.name, 12)
              << padLeft(std::to_string(dampMoves), 12)
              << padLeft(std::to_string(dampCells), 12)
              << padLeft(std::to_string(noDampMoves), 14)
              << padLeft(std::to_string(noDampCells), 14) << "\n";
  }
  std::cout << "expectation: damping spreads the move budget over more "
               "distinct cells instead of re-touching the same ones.\n";
  return 0;
}
