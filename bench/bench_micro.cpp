// Micro-benchmarks (google-benchmark) for the computational kernels:
// RSMT construction, LP/ILP solves, pattern routing, maze routing,
// legalizer candidate generation and LEF/DEF parsing.  These document
// component throughput and guard against performance regressions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>

#include "bmgen/generator.hpp"
#include "crp/candidate_generation.hpp"
#include "crp/framework.hpp"
#include "groute/global_router.hpp"
#include "groute/maze_route.hpp"
#include "groute/pattern_route.hpp"
#include "ilp/solver.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "legalizer/ilp_legalizer.hpp"
#include "obs/obs.hpp"
#include "rsmt/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace crp;

// ---- RSMT ------------------------------------------------------------------

void BM_RsmtBuild(benchmark::State& state) {
  const int numPins = static_cast<int>(state.range(0));
  util::Rng rng(7);
  std::vector<geom::Point> pins;
  for (int i = 0; i < numPins; ++i) {
    pins.push_back({rng.uniformInt(0, 10000), rng.uniformInt(0, 10000)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsmt::buildSteinerTree(pins));
  }
}
BENCHMARK(BM_RsmtBuild)->Arg(3)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

// ---- ILP -------------------------------------------------------------------

void BM_IlpLegalizerShaped(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  util::Rng rng(11);
  ilp::Model model;
  std::vector<std::vector<int>> vars(3, std::vector<int>(slots));
  for (int c = 0; c < 3; ++c) {
    for (int s = 0; s < slots; ++s) {
      vars[c][s] = model.addBinary(rng.uniform(0.0, 100.0));
    }
  }
  for (int c = 0; c < 3; ++c) model.addOneHot(vars[c]);
  for (int s = 0; s < slots; ++s) {
    model.addPacking({vars[0][s], vars[1][s], vars[2][s]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solveIlp(model));
  }
}
BENCHMARK(BM_IlpLegalizerShaped)->Arg(20)->Arg(50)->Arg(100);

// ---- routing fixtures ----------------------------------------------------------

struct RoutingFixture {
  RoutingFixture()
      : db([] {
          bmgen::BenchmarkSpec spec;
          spec.name = "micro";
          spec.targetCells = 600;
          spec.hotspots = 1;
          spec.seed = 3;
          return bmgen::generateBenchmark(spec);
        }()),
        graph(db) {}
  db::Database db;
  groute::RoutingGraph graph;
};

RoutingFixture& fixture() {
  static RoutingFixture instance;
  return instance;
}

void BM_PatternRouteTwoPin(benchmark::State& state) {
  auto& f = fixture();
  groute::PatternRouter router(f.graph);
  const int spanX = f.graph.grid().countX() - 2;
  const int spanY = f.graph.grid().countY() - 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.routeTwoPin(
        groute::GPoint{0, 1, 1}, groute::GPoint{0, spanX, spanY}));
  }
}
BENCHMARK(BM_PatternRouteTwoPin);

void BM_PatternRouteTree(benchmark::State& state) {
  auto& f = fixture();
  groute::PatternRouter router(f.graph);
  util::Rng rng(9);
  std::vector<groute::GPoint> terminals;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    terminals.push_back(groute::GPoint{
        0, static_cast<int>(rng.uniformInt(0, f.graph.grid().countX() - 1)),
        static_cast<int>(rng.uniformInt(0, f.graph.grid().countY() - 1))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.routeTree(terminals));
  }
}
BENCHMARK(BM_PatternRouteTree)->Arg(3)->Arg(8)->Arg(16);

void BM_MazeRouteTwoPin(benchmark::State& state) {
  auto& f = fixture();
  groute::MazeRouter maze(f.graph);
  const int spanX = f.graph.grid().countX() - 2;
  const int spanY = f.graph.grid().countY() - 2;
  const std::vector<groute::GPoint> terminals{
      groute::GPoint{0, 1, 1}, groute::GPoint{0, spanX, spanY}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(maze.routeTree(terminals));
  }
}
BENCHMARK(BM_MazeRouteTwoPin);

void BM_GlobalRouteFull(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    groute::GlobalRouter router(f.db);
    benchmark::DoNotOptimize(router.run());
  }
}
BENCHMARK(BM_GlobalRouteFull)->Unit(benchmark::kMillisecond);

// ---- ECC pricing engine ----------------------------------------------------

// One ECC phase over a fixed candidate set on the generated 600-cell
// benchmark: every 3rd cell is treated as critical (the paper's gamma
// defaults to 0.6, so dense critical sets are the common case).  Arg
// encodes the engine mode; the acceptance target is cache+delta >= 3x
// faster than the naive per-candidate pricing (see
// scripts/run_bench.sh, which compares the "off" and "cache+delta"
// rows into BENCH_micro.json).
struct EccFixture {
  EccFixture() : router(fixture().db) {
    router.run();
    std::vector<db::CellId> critical;
    for (db::CellId c = 0; c < fixture().db.numCells(); c += 3) {
      critical.push_back(c);
    }
    const legalizer::IlpLegalizer legalizer(fixture().db);
    candidates =
        core::buildCandidates(fixture().db, legalizer, critical, nullptr);
  }
  groute::GlobalRouter router;
  std::vector<core::CellCandidates> candidates;
};

EccFixture& eccFixture() {
  static EccFixture instance;
  return instance;
}

void BM_EccPriceCandidates(benchmark::State& state) {
  auto& f = eccFixture();
  core::PricingOptions options;
  options.cacheEnabled = state.range(0) != 0;
  options.deltaEnabled = state.range(1) != 0;
  core::PricingStats stats;
  for (auto _ : state) {
    stats = core::PricingStats{};
    core::priceCandidates(fixture().db, f.router, f.candidates, nullptr,
                          options, &stats);
    benchmark::DoNotOptimize(f.candidates);
  }
  state.counters["nets_priced"] =
      benchmark::Counter(static_cast<double>(stats.netsPriced()));
  state.counters["pattern_routes"] =
      benchmark::Counter(static_cast<double>(stats.cacheMisses));
  state.counters["reuse_rate"] = benchmark::Counter(
      stats.netsPriced() == 0
          ? 0.0
          : 1.0 - static_cast<double>(stats.cacheMisses) /
                      static_cast<double>(stats.netsPriced()));
}
BENCHMARK(BM_EccPriceCandidates)
    ->ArgNames({"cache", "delta"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// ---- UD batch reroute ------------------------------------------------------

// One UD-phase reroute wave on a private 2400-cell design with a
// fine gcell grid (~48x48 — the stock 600-cell spec only has ~5x5
// gcells, where every conflict rect overlaps and no batch parallelism
// can exist): shift every 9th cell a few gcells sideways — the local
// moves the UD phase actually commits — then batch-reroute the
// affected nets with Arg(0) router threads.  The shift alternates
// sign, so the placement (and with it the workload) is stationary
// across iteration pairs.  The batch plan and the resulting routes
// are identical at every thread count (determinism contract); only
// the wall clock may differ.  scripts/run_bench.sh distills the
// threads:1 vs threads:8 rows into BENCH_parallel_rrr.json.
struct UdRerouteFixture {
  static constexpr geom::Coord kShift = 200;  // 4 gcells

  UdRerouteFixture()
      : db([] {
          bmgen::BenchmarkSpec spec;
          spec.name = "ud";
          spec.targetCells = 2400;
          spec.gcellSize = 50;
          spec.hotspots = 1;
          spec.seed = 3;
          return bmgen::generateBenchmark(spec);
        }()) {
    const geom::Rect die = db.design().dieArea;
    for (db::CellId c = 0; c < db.numCells(); c += 9) {
      // Only cells with room to shift right, so +kShift / -kShift is
      // an exact involution.
      if (db.cell(c).pos.x + db.macroOf(c).width + kShift <= die.xhi) {
        cells.push_back(c);
      }
    }
    for (const db::CellId c : cells) {
      for (const db::NetId n : db.netsOfCell(c)) affected.push_back(n);
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
  }
  void shiftCells() {
    for (const db::CellId c : cells) {
      geom::Point pos = db.cell(c).pos;
      pos.x += shift;
      db.moveCell(c, pos);
    }
    shift = -shift;
  }
  db::Database db;
  std::vector<db::CellId> cells;
  std::vector<db::NetId> affected;
  geom::Coord shift = kShift;
};

UdRerouteFixture& udFixture() {
  static UdRerouteFixture instance;
  return instance;
}

void BM_UdBatchReroute(benchmark::State& state) {
  auto& f = udFixture();
  groute::GlobalRouterOptions options;
  options.mazeMargin = 1;  // tight conflict rects: multi-net batches
  options.routerThreads = static_cast<int>(state.range(0));
  groute::GlobalRouter router(f.db, options);
  router.run();
  groute::RerouteBatchStats last;
  for (auto _ : state) {
    state.PauseTiming();
    f.shiftCells();
    state.ResumeTiming();
    last = router.rerouteNets(f.affected);
    benchmark::DoNotOptimize(last);
  }
  state.counters["nets"] =
      benchmark::Counter(static_cast<double>(last.nets));
  state.counters["batches"] =
      benchmark::Counter(static_cast<double>(last.batches));
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(last.conflicts));
  state.counters["failed"] =
      benchmark::Counter(static_cast<double>(last.failed));
}
BENCHMARK(BM_UdBatchReroute)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The same UD wave under the chip-tile decomposition (docs/tiling.md):
// tiles:1/threads:1 is the untiled serial baseline, tiles:4/threads:8
// runs a 4x4 tile grid with concurrent tile workers.  Routes and
// demand are bit-identical across rows (the tile-equivalence battery
// proves it); the rows differ only in wall clock and in the recorded
// plan-parallelism counters — how many nets ran tile-local vs on the
// boundary path, how many tiles carried work, and what the fixed-order
// boundary merges cost.  scripts/run_bench.sh distills both rows into
// BENCH_tile.json.
void BM_TileBatchReroute(benchmark::State& state) {
  auto& f = udFixture();
  const int tilesPerSide = static_cast<int>(state.range(0));
  groute::GlobalRouterOptions options;
  options.mazeMargin = 1;  // tight conflict rects: multi-net batches
  options.routerThreads = static_cast<int>(state.range(1));
  options.tileRows = tilesPerSide;
  options.tileCols = tilesPerSide;
  groute::GlobalRouter router(f.db, options);
  router.run();
  groute::RerouteBatchStats last;
  for (auto _ : state) {
    state.PauseTiming();
    f.shiftCells();
    state.ResumeTiming();
    last = router.rerouteNets(f.affected);
    benchmark::DoNotOptimize(last);
  }
  state.counters["nets"] =
      benchmark::Counter(static_cast<double>(last.nets));
  state.counters["batches"] =
      benchmark::Counter(static_cast<double>(last.batches));
  state.counters["tile_local"] =
      benchmark::Counter(static_cast<double>(last.tileLocalNets));
  state.counters["boundary"] =
      benchmark::Counter(static_cast<double>(last.boundaryNets));
  state.counters["tiles_used"] =
      benchmark::Counter(static_cast<double>(last.tilesUsed));
  state.counters["merge_ms"] =
      benchmark::Counter(last.mergeSeconds * 1e3);
}
BENCHMARK(BM_TileBatchReroute)
    ->ArgNames({"tiles", "threads"})
    ->Args({1, 1})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

// ---- spatial observability overhead ----------------------------------------

// One full CR&P iteration (k=1) on the 600-cell benchmark with the
// spatial tier off vs on.  The timed region covers framework
// construction (which captures the post-GR snapshot when armed)
// through run(), so the snapshots:1 row pays for two heatmap captures,
// the delta encoding, and the timeline bookkeeping; snapshots:0 is the
// PR-2 era hot path and must stay within noise of it.
// scripts/run_bench.sh distills both rows into BENCH_obs_spatial.json.
void BM_CrpIterationSpatial(benchmark::State& state) {
  obs::EnabledScope enabled(true);
  const bool snapshots = state.range(0) != 0;
  std::size_t heatmaps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    obs::resetAll();
    bmgen::BenchmarkSpec spec;
    spec.name = "micro";
    spec.targetCells = 600;
    spec.hotspots = 2;
    spec.seed = 7;
    db::Database db = bmgen::generateBenchmark(spec);
    groute::GlobalRouter router(db);
    router.run();
    core::CrpOptions options;
    options.iterations = 1;
    options.snapshots = snapshots;
    state.ResumeTiming();
    core::CrpFramework framework(db, router, options);
    benchmark::DoNotOptimize(framework.run());
    heatmaps = framework.heatmaps().size();
  }
  state.counters["heatmaps"] =
      benchmark::Counter(static_cast<double>(heatmaps));
}
BENCHMARK(BM_CrpIterationSpatial)
    ->ArgName("snapshots")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- legalizer -------------------------------------------------------------

void BM_LegalizerGenerate(benchmark::State& state) {
  auto& f = fixture();
  legalizer::IlpLegalizer legalizer(f.db);
  int cell = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(legalizer.generate(cell));
    cell = (cell + 7) % f.db.numCells();
  }
}
BENCHMARK(BM_LegalizerGenerate);

// ---- LEF/DEF ---------------------------------------------------------------

void BM_DefParse(benchmark::State& state) {
  auto& f = fixture();
  std::ostringstream out;
  lefdef::writeDef(out, f.db);
  const std::string text = out.str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lefdef::parseDef(text, f.db.tech(), f.db.library()));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(text.size()));
}
BENCHMARK(BM_DefParse)->Unit(benchmark::kMillisecond);

void BM_LefParse(benchmark::State& state) {
  auto& f = fixture();
  std::ostringstream out;
  lefdef::writeLef(out, f.db.tech(), f.db.library());
  const std::string text = out.str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lefdef::parseLef(text));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(text.size()));
}
BENCHMARK(BM_LefParse);

}  // namespace

BENCHMARK_MAIN();
