// Reproduces Fig. 2: runtime comparison between Baseline, [18],
// CR&P k=1 and k=10 across the suite.
//
// The reproduction target is the SHAPE: CR&P k=1 adds a small margin
// over baseline, k=10 adds a roughly constant (not exponential)
// increment, and [18]'s single shot is the most expensive optimizer.
// Runtimes are wall-clock on the host; the paper's absolute seconds
// belong to an i7-8700 at contest scale.
//
// Environment: CRP_SCALE (default 140), CRP_MAX_DESIGNS (default 10).
#include <iostream>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using bench::FlowKind;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 140.0);
  const int maxDesigns = bench::envInt("CRP_MAX_DESIGNS", 10);
  auto suite = bmgen::ispdLikeSuite(scale);
  if (static_cast<int>(suite.size()) > maxDesigns) suite.resize(maxDesigns);

  std::cout << "=== Fig. 2: runtime (seconds, full flow GR+opt+DR; scale 1/"
            << scale << ") ===\n";
  std::cout << padRight("Benchmark", 12) << padLeft("Baseline", 10)
            << padLeft("[18]", 10) << padLeft("Ours k=1", 10)
            << padLeft("Ours k=10", 10) << padLeft("k1/BL", 8)
            << padLeft("k10/BL", 8) << "\n";

  for (const auto& entry : suite) {
    const auto design = bmgen::generateBenchmark(entry.spec);
    const auto base =
        bench::runFlow(entry, FlowKind::kBaseline, 1, {}, 1e9, &design);
    const auto m18 =
        bench::runFlow(entry, FlowKind::kMedian18, 1, {}, 1e9, &design);
    const auto k1 =
        bench::runFlow(entry, FlowKind::kCrp, 1, {}, 1e9, &design);
    const auto k10 =
        bench::runFlow(entry, FlowKind::kCrp, 10, {}, 1e9, &design);
    std::cout << padRight(entry.name, 12)
              << padLeft(util::formatDouble(base.totalSeconds(), 2), 10)
              << padLeft(m18.failed
                             ? "Failed"
                             : util::formatDouble(m18.totalSeconds(), 2),
                         10)
              << padLeft(util::formatDouble(k1.totalSeconds(), 2), 10)
              << padLeft(util::formatDouble(k10.totalSeconds(), 2), 10)
              << padLeft(util::formatDouble(
                             k1.totalSeconds() / base.totalSeconds(), 2),
                         8)
              << padLeft(util::formatDouble(
                             k10.totalSeconds() / base.totalSeconds(), 2),
                         8)
              << "\n";
  }
  std::cout << "paper shape: k=1 adds a small margin over baseline; k=10 "
               "adds a roughly constant increment; [18] is slower and "
               "failed on test10.\n";
  return 0;
}
