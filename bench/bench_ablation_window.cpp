// Ablation A4: the legalizer window size (paper §IV.B.2 — N_site = 20,
// N_row = 5, |cells| = 3 "achieved experimentally ... a trade-off
// between runtime and a number of candidates for each cell").
// Sweeps the window across smaller and larger settings on a congested
// design and reports quality vs CR&P runtime — regenerating the
// trade-off the paper describes.
//
// Environment: CRP_SCALE (default 140).
#include <iostream>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using bench::FlowKind;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 140.0);
  auto suite = bmgen::ispdLikeSuite(scale);
  // One representative congested design (test7-equivalent).
  const auto& entry = suite[6];

  struct Setting {
    const char* label;
    int sites, rows, cells;
  };
  const Setting settings[] = {
      {"8x3 window, 2 cells", 8, 3, 2},
      {"12x3 window, 3 cells", 12, 3, 3},
      {"20x5 window, 3 cells (paper)", 20, 5, 3},
      {"32x7 window, 3 cells", 32, 7, 3},
  };

  std::cout << "=== Ablation A4: legalizer window size on " << entry.name
            << " (k=10, scale 1/" << scale << ") ===\n";
  const auto design = bmgen::generateBenchmark(entry.spec);
  const auto base =
      bench::runFlow(entry, FlowKind::kBaseline, 1, {}, 1e9, &design);
  std::cout << padRight("Setting", 30) << padLeft("vias%", 8)
            << padLeft("wl%", 8) << padLeft("CR&P s", 9)
            << padLeft("moves", 7) << "\n";

  for (const Setting& setting : settings) {
    core::CrpOptions options;
    options.legalizer.numSites = setting.sites;
    options.legalizer.numRows = setting.rows;
    options.legalizer.maxCellsPerIlp = setting.cells;
    const auto run =
        bench::runFlow(entry, FlowKind::kCrp, 10, options, 1e9, &design);
    std::cout << padRight(setting.label, 30)
              << padLeft(bench::pct(eval::improvementPercent(
                             static_cast<double>(base.metrics.viaCount),
                             static_cast<double>(run.metrics.viaCount))),
                         8)
              << padLeft(
                     bench::pct(eval::improvementPercent(
                         static_cast<double>(base.metrics.wirelengthDbu),
                         static_cast<double>(run.metrics.wirelengthDbu))),
                     8)
              << padLeft(util::formatDouble(run.optSeconds, 2), 9)
              << padLeft(std::to_string(run.moves), 7) << "\n";
  }
  std::cout << "expectation: larger windows buy quality at CR&P runtime "
               "cost, saturating around the paper's 20x5 setting.\n";
  return 0;
}
